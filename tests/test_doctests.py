"""Docstring examples must actually run (doctest over key modules)."""

import doctest

import pytest

import repro.core.expressions
import repro.core.model
import repro.core.parameters
import repro.core.sheet
import repro.core.sheetbridge
import repro.core.units

MODULES = [
    repro.core.expressions,
    repro.core.model,
    repro.core.sheet,
    repro.core.units,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    results = doctest.testmod(
        module,
        optionflags=doctest.ELLIPSIS | doctest.NORMALIZE_WHITESPACE,
        verbose=False,
    )
    assert results.failed == 0, f"{results.failed} doctest(s) failed"
