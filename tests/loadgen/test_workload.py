"""Workload generation: determinism, validity, serialization."""

import pytest

from repro.errors import PowerPlayError
from repro.loadgen.workload import (
    CELLS,
    EXAMPLES,
    LIBRARIES,
    OP_WEIGHTS,
    Operation,
    WorkloadScript,
    generate_workload,
)


class TestDeterminism:
    def test_same_seed_same_bytes(self):
        a = generate_workload(123, users=5, ops=200)
        b = generate_workload(123, users=5, ops=200)
        assert a.to_json() == b.to_json()

    def test_different_seed_different_script(self):
        a = generate_workload(1, users=4, ops=100)
        b = generate_workload(2, users=4, ops=100)
        assert a.to_json() != b.to_json()

    def test_json_round_trip(self):
        script = generate_workload(77, users=3, ops=60)
        restored = WorkloadScript.from_json(script.to_json())
        assert restored.to_json() == script.to_json()
        assert restored.seed == 77
        assert restored.users == script.users


class TestStructure:
    def test_op_count_and_indices(self):
        script = generate_workload(9, users=4, ops=120)
        assert len(script) >= 120
        assert [op.index for op in script] == list(range(len(script)))

    def test_every_user_has_prologue(self):
        script = generate_workload(5, users=6, ops=100)
        for user in script.users:
            ops = script.for_user(user)
            assert ops[0].kind == "login"
            assert ops[1].kind == "design_new"
            assert ops[1].params["name"] == f"{user}_main"

    def test_cell_save_rows_are_unique_per_user(self):
        script = generate_workload(31, users=4, ops=400)
        for user in script.users:
            rows = [
                op.params["row"]
                for op in script.for_user(user)
                if op.kind == "cell_save"
            ]
            assert len(rows) == len(set(rows))

    def test_only_known_kinds_and_values(self):
        script = generate_workload(13, users=3, ops=300)
        known = {kind for kind, _ in OP_WEIGHTS} | {"login", "design_new"}
        for op in script:
            assert op.kind in known
            if op.kind == "library":
                assert op.params["library"] in LIBRARIES
            elif op.kind in ("cell_form", "cell_compute", "cell_save"):
                assert op.params["name"] in CELLS
            elif op.kind == "load_example":
                assert op.params["example"] in EXAMPLES

    def test_per_user_state_is_disjoint(self):
        """No operation of one user names another user's design or
        model — the oracle's disjointness precondition."""
        script = generate_workload(17, users=5, ops=500)
        for op in script:
            design = op.params.get("design") or (
                op.params.get("name")
                if op.kind in ("design_sheet", "design_play",
                               "design_analysis", "design_new")
                else None
            )
            if design is not None and design.endswith("_main"):
                assert design == f"{op.user}_main"
            if op.kind == "define_model":
                assert op.params["name"].startswith(f"{op.user}_m")


class TestValidation:
    def test_rejects_zero_users(self):
        with pytest.raises(PowerPlayError):
            generate_workload(1, users=0, ops=10)

    def test_rejects_budget_below_prologue(self):
        with pytest.raises(PowerPlayError):
            generate_workload(1, users=5, ops=9)

    def test_rejects_malformed_json(self):
        with pytest.raises(PowerPlayError):
            WorkloadScript.from_json("{not json")
        with pytest.raises(PowerPlayError):
            WorkloadScript.from_json('{"format": "something-else/9"}')

    def test_operation_payload_round_trip(self):
        op = Operation(3, "alice", "cell_compute",
                       {"name": "sram", "bitwidth": "16"})
        assert Operation.from_payload(op.to_payload()) == op
