"""Driver semantics and the serial-replay oracle.

Includes the negative control every oracle needs: a deliberately
corrupted end state must be *detected* — an oracle that can't fail
proves nothing.
"""

import json
from pathlib import Path

import pytest

from repro.errors import PowerPlayError
from repro.loadgen import (
    InProcessTarget,
    generate_workload,
    replay_serial,
    run_script,
    verify,
)
from repro.loadgen.driver import OpResult, _partition_users, op_request
from repro.loadgen.oracle import capture_state
from repro.loadgen.stats import (
    histogram_quantile,
    percentile,
    summarize_latencies,
)
from repro.obs.metrics import MetricsRegistry
from repro.loadgen.workload import Operation
from repro.web.app import Application


class TestOpRequest:
    def test_all_generated_kinds_map(self):
        script = generate_workload(3, users=2, ops=60)
        for op in script:
            method, path, form = op_request(op)
            assert method in ("GET", "POST")
            assert path.startswith("/")
            if method == "POST":
                assert form["user"] == op.user

    def test_unknown_kind_rejected(self):
        with pytest.raises(PowerPlayError):
            op_request(Operation(0, "u", "drop_tables", {}))


class TestPartition:
    def test_round_robin_covers_all_users(self):
        users = [f"u{i}" for i in range(7)]
        partitions = _partition_users(users, 3)
        assert sorted(u for p in partitions for u in p) == sorted(users)
        assert len(partitions) == 3

    def test_more_threads_than_users_collapses(self):
        partitions = _partition_users(["a", "b"], 8)
        assert len(partitions) == 2


class TestDriver:
    def test_preserves_per_user_order(self, tmp_path: Path):
        script = generate_workload(11, users=4, ops=80)
        application = Application(tmp_path)
        seen = []
        result = run_script(
            script,
            InProcessTarget(application),
            threads=4,
            on_result=lambda r: seen.append(r),
        )
        assert len(result.results) == len(script)
        for user in script.users:
            indices = [r.index for r in seen if r.user == user]
            assert indices == sorted(indices), (
                f"per-user order violated for {user}"
            )

    def test_exception_becomes_599_not_abort(self, tmp_path: Path):
        class Exploding:
            def request(self, method, path, form):
                raise RuntimeError("boom")

        script = generate_workload(2, users=2, ops=6)
        result = run_script(script, Exploding(), threads=2)
        assert len(result.results) == len(script)
        assert all(r.status == 599 for r in result.results)
        assert all("RuntimeError" in r.error for r in result.results)
        assert result.server_errors

    def test_rejects_zero_threads(self, tmp_path: Path):
        script = generate_workload(2, users=2, ops=6)
        with pytest.raises(PowerPlayError):
            run_script(script, InProcessTarget(Application(tmp_path)), threads=0)

    def test_opresult_ok_semantics(self):
        assert OpResult(0, "u", "menu", 200, 0.0).ok
        assert OpResult(0, "u", "menu", 303, 0.0).ok
        assert not OpResult(0, "u", "menu", 404, 0.0).ok
        assert not OpResult(0, "u", "menu", 200, 0.0, error="x").ok


class TestOracle:
    def test_concurrent_matches_serial(self, tmp_path: Path):
        script = generate_workload(42, users=4, ops=120)
        application = Application(tmp_path / "concurrent")
        result = run_script(script, InProcessTarget(application), threads=4)
        assert not result.server_errors
        serial_app, serial_result = replay_serial(script, tmp_path / "serial")
        assert not serial_result.server_errors
        report = verify(script, application, serial_app)
        assert report.matches, report.differences
        assert report.users == script.users
        assert report.designs_checked > 0

    def test_detects_lost_update(self, tmp_path: Path):
        """Negative control: delete a design after the run — the oracle
        must flag the divergence."""
        script = generate_workload(42, users=3, ops=60)
        application = Application(tmp_path / "concurrent")
        run_script(script, InProcessTarget(application), threads=3)
        serial_app, _ = replay_serial(script, tmp_path / "serial")

        victim = script.users[0]
        session = application.users.session(victim)
        session.delete_design(f"{victim}_main")

        report = verify(script, application, serial_app)
        assert not report.matches
        assert any(victim in diff for diff in report.differences)

    def test_detects_torn_state_file(self, tmp_path: Path):
        """Negative control: truncate a state file on disk — the
        disk-vs-memory check must flag it."""
        script = generate_workload(7, users=2, ops=20)
        application = Application(tmp_path / "concurrent")
        run_script(script, InProcessTarget(application), threads=2)
        serial_app, _ = replay_serial(script, tmp_path / "serial")

        victim = script.users[1]
        state_file = application.users.root / f"{victim}.json"
        state_file.write_text(state_file.read_text()[: 40])

        report = verify(script, application, serial_app)
        assert not report.matches
        assert any("disk" in diff for diff in report.differences)

    def test_capture_state_is_canonical(self, tmp_path: Path):
        script = generate_workload(5, users=2, ops=16)
        application = Application(tmp_path)
        run_script(script, InProcessTarget(application), threads=1)
        first = capture_state(application, script)
        second = capture_state(application, script)
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )


class TestStats:
    def test_percentile_edges(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([3.0], 0.99) == 3.0
        samples = [float(i) for i in range(1, 101)]
        assert percentile(samples, 0.0) == 1.0
        assert percentile(samples, 1.0) == 100.0
        assert percentile(samples, 0.5) == pytest.approx(50.5)

    def test_percentile_validates_range(self):
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)

    def test_summary_shape(self):
        summary = summarize_latencies([0.010, 0.020, 0.030])
        assert summary["count"] == 3
        assert summary["p50"] == pytest.approx(0.020)
        assert summary["max"] == pytest.approx(0.030)
        assert summarize_latencies([])["count"] == 0

    def test_histogram_quantile_interpolates(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "t_seconds", "test", ("route",), buckets=(0.01, 0.1, 1.0)
        )
        assert histogram_quantile(histogram, 0.5) == 0.0  # empty
        for _ in range(10):
            histogram.observe(0.05, route="/cell")
        # all 10 samples in (0.01, 0.1]: median interpolates to midpoint
        assert histogram_quantile(histogram, 0.5) == pytest.approx(0.055)
        # route filter isolates label sets
        histogram.observe(0.5, route="/menu")
        assert histogram_quantile(
            histogram, 0.5, route="/menu"
        ) == pytest.approx(0.55)
        # +Inf observations clamp to the top finite bound
        histogram.observe(99.0, route="/slow")
        assert histogram_quantile(histogram, 1.0, route="/slow") == 1.0
