"""The telemetry-history CLI surface: history, capacity, serve flags."""

import json

import pytest

from repro import obs
from repro.cli import _parse_peer, main
from repro.errors import PowerPlayError
from repro.obs.history import HistoryConfig, HistoryStore


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


@pytest.fixture(autouse=True)
def _fresh_registry():
    obs.get_registry().reset()
    yield
    obs.get_registry().reset()


@pytest.fixture
def store_dir(tmp_path):
    """A sealed store with 12 rounds of steady /api/ping traffic."""
    store = HistoryStore(
        tmp_path / "history",
        HistoryConfig(interval_s=5.0, seal_every=6, fsync_journal=False),
        clock=lambda: 0.0,
    )
    for index in range(12):
        value = float(index * 2)
        store.append({
            "powerplay_http_requests_total": {
                "kind": "counter",
                "series": {
                    'powerplay_http_requests_total{route="/api/ping"}':
                        value,
                },
            },
            "powerplay_http_request_seconds_sum": {
                "kind": "histogram",
                "series": {
                    "powerplay_http_request_seconds_sum"
                    '{route="/api/ping"}': value * 0.05,
                },
            },
            "powerplay_http_request_seconds_count": {
                "kind": "histogram",
                "series": {
                    "powerplay_http_request_seconds_count"
                    '{route="/api/ping"}': value,
                },
            },
        }, when=1000.0 + index * 5)
    store.seal()
    store.close()
    return tmp_path / "history"


# -- peer validation at parse time (regression) ----------------------------


class TestParsePeerValidation:
    def test_valid_specs_still_work(self):
        assert _parse_peer("alpha=http://h:1") == ("alpha", "http://h:1")
        name, url = _parse_peer("http://127.0.0.1:8080/")
        assert (name, url) == ("127.0.0.1-8080", "http://127.0.0.1:8080")

    @pytest.mark.parametrize("spec", [
        "localhost:9090",            # no scheme: the original bug report
        "alpha=localhost:9090",
        "ftp://h:21",
        "alpha=http://",
        "=http://h:1",               # empty name
    ])
    def test_malformed_specs_fail_at_parse_time(self, spec):
        with pytest.raises(PowerPlayError):
            _parse_peer(spec)

    def test_serve_surfaces_the_error_before_binding(self, capsys):
        code, _out, err = run(
            capsys, "serve", "--peer", "localhost:9090"
        )
        assert code == 2
        assert "peer" in err and "scheme" in err


# -- repro history ---------------------------------------------------------


class TestHistoryCommand:
    def test_info_lists_families_and_segments(self, capsys, store_dir):
        code, out, _err = run(
            capsys, "history", "--dir", str(store_dir), "info"
        )
        assert code == 0
        assert "raw=2" in out
        assert "powerplay_http_requests_total (counter)" in out

    def test_query_text_renders_sparklines(self, capsys, store_dir):
        code, out, _err = run(
            capsys, "history", "--dir", str(store_dir), "query",
            "powerplay_http_requests_total", "--label",
            "route=/api/ping",
        )
        assert code == 0
        assert "1 series" in out
        assert "12 pts" in out

    def test_query_json_replay_is_byte_identical(self, capsys, store_dir):
        argv = ("history", "--dir", str(store_dir), "--json", "query",
                "powerplay_http_requests_total", "--op", "rate")
        code, first, _err = run(capsys, *argv)
        assert code == 0
        code, second, _err = run(capsys, *argv)
        assert code == 0
        assert first == second
        payload = json.loads(first)
        assert payload["op"] == "rate"
        (series,) = payload["series"]
        assert all(v == pytest.approx(0.4) for _, v in series["points"])

    def test_query_rejects_bad_op_and_labels(self, capsys, store_dir):
        code, _out, err = run(
            capsys, "history", "--dir", str(store_dir), "query", "x",
            "--label", "route",  # missing =value
        )
        assert code == 2 and "name=value" in err

    def test_missing_store_is_a_clean_error(self, capsys, tmp_path):
        code, _out, err = run(
            capsys, "history", "--dir", str(tmp_path / "nope"), "info"
        )
        assert code == 2
        assert "no history store" in err

    def test_compact_reports_counts(self, capsys, store_dir):
        code, out, _err = run(
            capsys, "history", "--dir", str(store_dir), "compact"
        )
        assert code == 0
        assert out.startswith("compacted:")


# -- repro capacity --------------------------------------------------------


class TestCapacityCommand:
    def test_text_report(self, capsys, store_dir):
        code, out, _err = run(
            capsys, "capacity", "--dir", str(store_dir)
        )
        assert code == 0
        assert "/api/ping" in out
        assert "provision" in out

    def test_json_report_is_deterministic(self, capsys, store_dir):
        argv = ("capacity", "--dir", str(store_dir), "--json")
        code, first, _err = run(capsys, *argv)
        assert code == 0
        code, second, _err = run(capsys, *argv)
        assert first == second
        payload = json.loads(first)
        (route,) = payload["routes"]
        assert route["route"] == "/api/ping"
        assert route["rps_mean"] == pytest.approx(0.4)
        assert route["mean_latency_s"] == pytest.approx(0.05)

    def test_knobs_reach_the_report(self, capsys, store_dir):
        code, out, _err = run(
            capsys, "capacity", "--dir", str(store_dir), "--json",
            "--threads-per-worker", "2", "--utilization", "0.5",
            "--horizon-hours", "1",
        )
        payload = json.loads(out)
        assert payload["threads_per_worker"] == 2
        assert payload["utilization"] == 0.5
        assert payload["horizon_s"] == 3600.0
