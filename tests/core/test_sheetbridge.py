"""The Design <-> Sheet bridge."""

import pytest

from repro.core.design import Design
from repro.core.estimator import evaluate_power
from repro.core.expressions import compile_expression as E
from repro.core.model import CapacitiveTerm, TemplatePowerModel
from repro.core.parameters import Parameter
from repro.core.sheetbridge import DesignSheet, design_sheet
from repro.errors import SheetError

ADDER = TemplatePowerModel(
    "adder",
    capacitive=[CapacitiveTerm("bits", E("bitwidth * 68f"))],
    parameters=(Parameter("bitwidth", 16),),
)


def make_design():
    design = Design("demo")
    design.scope.set("VDD", 1.5)
    design.scope.set("f", 2e6)
    design.add("alu", ADDER, params={"bitwidth": 16})
    design.add("acc", ADDER, params={"bitwidth": 32})
    return design


class TestConstruction:
    def test_cells_created(self):
        bridge = design_sheet(make_design())
        names = set(bridge.sheet.names())
        assert {"g.VDD", "g.f", "alu.bitwidth", "acc.bitwidth",
                "P.alu", "P.acc", "P.total"} <= names

    def test_total_matches_estimator(self):
        design = make_design()
        bridge = DesignSheet(design)
        assert bridge.total_power == pytest.approx(
            evaluate_power(design).power
        )

    def test_row_power_matches(self):
        design = make_design()
        bridge = DesignSheet(design)
        report = evaluate_power(design)
        assert bridge.row_power("alu") == pytest.approx(report["alu"].power)

    def test_formula_parameters_not_exposed_as_cells(self):
        design = make_design()
        design.row("alu").set("f", "g_rate / 4")
        design.scope.set("g_rate", 8e6)
        bridge = DesignSheet(design)
        assert "alu.f" not in bridge.sheet
        # but the formula still feeds the evaluation
        assert bridge.row_power("alu") > 0


class TestEdits:
    def test_set_parameter_updates_both_sides(self):
        design = make_design()
        bridge = DesignSheet(design)
        base = bridge.total_power
        bridge.set_parameter("g.VDD", 3.0)
        assert design.scope["VDD"] == 3.0
        assert bridge.total_power == pytest.approx(4 * base)

    def test_row_parameter_edit(self):
        design = make_design()
        bridge = DesignSheet(design)
        alu_before = bridge.row_power("alu")
        bridge.set_parameter("alu.bitwidth", 32)
        assert bridge.row_power("alu") == pytest.approx(2 * alu_before)
        assert design.row("alu").scope["bitwidth"] == 32.0

    def test_incremental_recalculation(self):
        """Editing one row's parameter must not re-run the other row."""
        design = make_design()
        bridge = DesignSheet(design)
        _ = bridge.total_power
        calls = {"alu": 0, "acc": 0}
        original = evaluate_power

        # count recomputation via fresh bound cells
        bridge.sheet.bind(
            "probe.alu",
            lambda: calls.__setitem__("alu", calls["alu"] + 1) or 0.0,
            depends_on=("alu.bitwidth",),
        )
        bridge.sheet.bind(
            "probe.acc",
            lambda: calls.__setitem__("acc", calls["acc"] + 1) or 0.0,
            depends_on=("acc.bitwidth",),
        )
        bridge.sheet.recalculate()
        calls["alu"] = calls["acc"] = 0
        bridge.set_parameter("alu.bitwidth", 24)
        bridge.sheet.recalculate()
        assert calls["alu"] == 1
        assert calls["acc"] == 0

    def test_unknown_cell_rejected(self):
        bridge = DesignSheet(make_design())
        with pytest.raises(SheetError, match="not a writable"):
            bridge.set_parameter("P.total", 1.0)
        with pytest.raises(SheetError):
            bridge.set_parameter("ghost", 1.0)


class TestDerivedCells:
    def test_user_formula_over_power_cells(self):
        """'Any parameter can be expressed as a function of these
        parameters' — e.g. energy per frame from total power."""
        design = make_design()
        bridge = DesignSheet(design)
        bridge.add_derived(
            "energy_per_frame", "P.total / 60", unit="J",
            doc="total power over the 60 Hz frame rate",
        )
        assert bridge.sheet["energy_per_frame"] == pytest.approx(
            bridge.total_power / 60
        )

    def test_derived_cell_tracks_edits(self):
        design = make_design()
        bridge = DesignSheet(design)
        bridge.add_derived("budget_share", "P.alu / P.total")
        before = bridge.sheet["budget_share"]
        bridge.set_parameter("acc.bitwidth", 64)
        after = bridge.sheet["budget_share"]
        assert after < before

    def test_battery_current_cell(self):
        design = make_design()
        bridge = DesignSheet(design)
        bridge.add_derived("battery_current", "P.total / 6.0", unit="A")
        assert bridge.sheet["battery_current"] == pytest.approx(
            bridge.total_power / 6.0
        )


class TestSubDesigns:
    def test_subdesign_power_cell(self):
        child = Design("child")
        child.add("x", ADDER, params={"bitwidth": 8})
        parent = Design("parent")
        parent.scope.set("VDD", 1.5)
        parent.scope.set("f", 2e6)
        parent.add_subdesign("child", child)
        bridge = DesignSheet(parent)
        report = evaluate_power(parent)
        assert bridge.row_power("child") == pytest.approx(
            report["child"].power
        )


class TestSharedEvaluation:
    def test_one_evaluation_per_edit_regardless_of_rows(self):
        design = Design("wide")
        design.scope.set("VDD", 1.5)
        design.scope.set("f", 2e6)
        for index in range(40):
            design.add(f"row{index:02d}", ADDER, params={"bitwidth": 8})
        bridge = DesignSheet(design)
        _ = bridge.total_power
        settled = bridge.evaluations
        assert settled >= 1
        # a GLOBAL edit dirties all 40 power cells — still one evaluation
        bridge.set_parameter("g.VDD", 1.2)
        _ = bridge.total_power
        assert bridge.evaluations == settled + 1
        # a row edit: one more
        bridge.set_parameter("row07.bitwidth", 24)
        _ = bridge.total_power
        assert bridge.evaluations == settled + 2

    def test_values_still_correct_after_shared_eval(self):
        design = Design("d2")
        design.scope.set("VDD", 1.5)
        design.scope.set("f", 2e6)
        design.add("a", ADDER, params={"bitwidth": 8})
        design.add("b", ADDER, params={"bitwidth": 16})
        bridge = DesignSheet(design)
        bridge.set_parameter("a.bitwidth", 32)
        report = evaluate_power(design)
        assert bridge.row_power("a") == pytest.approx(report["a"].power)
        assert bridge.row_power("b") == pytest.approx(report["b"].power)
        assert bridge.total_power == pytest.approx(report.power)
