"""Parameter declarations and hierarchical scopes."""

import pytest
from hypothesis import given, strategies as st

from repro.core.expressions import Expression
from repro.core.parameters import Parameter, ParameterScope
from repro.errors import ParameterError


class TestParameter:
    def test_basic_declaration(self):
        parameter = Parameter("bitwidth", 16, "bits", "datapath width", 1, 64)
        assert parameter.validate(32) == 32.0

    def test_bounds(self):
        parameter = Parameter("alpha", 0.5, minimum=0.0, maximum=1.0)
        with pytest.raises(ParameterError, match="below minimum"):
            parameter.validate(-0.1)
        with pytest.raises(ParameterError, match="above maximum"):
            parameter.validate(1.1)

    def test_inverted_bounds_rejected(self):
        with pytest.raises(ParameterError):
            Parameter("x", 0, minimum=2, maximum=1)

    def test_integer_coercion(self):
        parameter = Parameter("words", 256, integer=True)
        assert parameter.validate(128.0) == 128.0
        with pytest.raises(ParameterError, match="integer"):
            parameter.validate(128.5)

    def test_choices(self):
        parameter = Parameter("inputs", 2, choices=(2, 4, 8))
        assert parameter.validate(4) == 4.0
        with pytest.raises(ParameterError, match="not one of"):
            parameter.validate(3)

    @pytest.mark.parametrize("bad", ["", "1abc", "a b", "a-b", None])
    def test_bad_names(self, bad):
        with pytest.raises(ParameterError):
            Parameter(bad, 0)

    def test_dotted_name_allowed(self):
        Parameter("lut.words", 256)

    def test_non_numeric_validate(self):
        with pytest.raises(ParameterError, match="not a number"):
            Parameter("x", 0).validate("abc")


class TestScopeBasics:
    def test_set_get(self):
        scope = ParameterScope()
        scope.set("VDD", 1.5)
        assert scope["VDD"] == 1.5
        assert "VDD" in scope

    def test_string_numbers_coerce(self):
        scope = ParameterScope()
        scope.set("f", "2000000")
        assert scope["f"] == 2e6

    def test_string_formulas(self):
        scope = ParameterScope({"f_pixel": 2e6})
        scope.set("f", "f_pixel / 16")
        assert scope["f"] == pytest.approx(125000.0)
        assert isinstance(scope.raw("f"), Expression)

    def test_bool_coercion(self):
        scope = ParameterScope()
        scope.set("enabled", True)
        assert scope["enabled"] == 1.0

    def test_unknown_raises(self):
        with pytest.raises(ParameterError, match="unknown parameter"):
            ParameterScope()["nope"]

    def test_get_default(self):
        assert ParameterScope().get("nope", 7.0) == 7.0

    def test_unset(self):
        scope = ParameterScope({"x": 1.0})
        scope.unset("x")
        assert "x" not in scope
        with pytest.raises(ParameterError):
            scope.unset("x")

    def test_bad_value_type(self):
        with pytest.raises(ParameterError):
            ParameterScope().set("x", object())

    def test_mapping_protocol(self):
        scope = ParameterScope({"a": 1.0, "b": 2.0})
        assert set(scope) == {"a", "b"}
        assert len(scope) == 2
        assert scope.flattened() == {"a": 1.0, "b": 2.0}


class TestInheritance:
    def test_child_sees_parent(self):
        parent = ParameterScope({"VDD": 1.5})
        child = parent.child()
        assert child["VDD"] == 1.5

    def test_child_override_shadows(self):
        parent = ParameterScope({"VDD": 1.5})
        child = parent.child({"VDD": 3.3})
        assert child["VDD"] == 3.3
        assert parent["VDD"] == 1.5

    def test_unset_reexposes_inherited(self):
        parent = ParameterScope({"VDD": 1.5})
        child = parent.child({"VDD": 3.3})
        child.unset("VDD")
        assert child["VDD"] == 1.5

    def test_three_levels(self):
        top = ParameterScope({"VDD": 5.0})
        middle = top.child()
        leaf = middle.child()
        assert leaf["VDD"] == 5.0
        top.set("VDD", 3.3)
        assert leaf["VDD"] == 3.3

    def test_formula_resolves_through_child(self):
        """A parent formula evaluated via a child uses child overrides —
        the 'any parameter as a function of these parameters' behaviour."""
        parent = ParameterScope({"VDD": 1.5, "energy": "C * VDD^2", "C": 1e-12})
        child = parent.child({"VDD": 3.0})
        assert parent["energy"] == pytest.approx(2.25e-12)
        assert child["energy"] == pytest.approx(9e-12)

    def test_names_dedupe(self):
        parent = ParameterScope({"a": 1.0, "b": 2.0})
        child = parent.child({"a": 3.0, "c": 4.0})
        assert child.names() == ["a", "c", "b"]
        assert child.local_names() == ["a", "c"]


class TestFormulas:
    def test_chained_formulas(self):
        scope = ParameterScope({"a": 2.0, "b": "a * 3", "c": "b + a"})
        assert scope["c"] == 8.0

    def test_self_reference_detected(self):
        scope = ParameterScope({"x": "x + 1"})
        with pytest.raises(ParameterError, match="circular"):
            scope["x"]

    def test_mutual_cycle_detected(self):
        scope = ParameterScope({"a": "b + 1", "b": "a + 1"})
        with pytest.raises(ParameterError, match="circular"):
            scope["a"]

    def test_missing_dependency(self):
        scope = ParameterScope({"x": "y * 2"})
        with pytest.raises(ParameterError, match="cannot evaluate"):
            scope["x"]

    def test_formula_after_fix_is_reusable(self):
        scope = ParameterScope({"x": "y * 2"})
        with pytest.raises(ParameterError):
            scope["x"]
        scope.set("y", 4.0)
        assert scope["x"] == 8.0


class TestDeclarations:
    def test_declare_installs_default(self):
        scope = ParameterScope()
        scope.declare(Parameter("bitwidth", 16))
        assert scope["bitwidth"] == 16.0

    def test_declared_bounds_enforced_on_set(self):
        scope = ParameterScope()
        scope.declare(Parameter("alpha", 0.5, minimum=0.0, maximum=1.0))
        with pytest.raises(ParameterError):
            scope.set("alpha", 2.0)

    def test_declaration_found_up_the_chain(self):
        parent = ParameterScope(declarations=[Parameter("alpha", 0.5, maximum=1.0)])
        child = parent.child()
        with pytest.raises(ParameterError):
            child.set("alpha", 5.0)

    def test_declare_does_not_clobber_existing_value(self):
        scope = ParameterScope({"bitwidth": 8})
        scope.declare(Parameter("bitwidth", 16))
        assert scope["bitwidth"] == 8.0


@given(
    st.dictionaries(
        st.sampled_from(["a", "b", "c", "d"]),
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1,
    ),
    st.dictionaries(
        st.sampled_from(["a", "b", "c", "d"]),
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
    ),
)
def test_property_child_resolution(parent_values, child_values):
    """A child resolves to its own value when set, else the parent's."""
    parent = ParameterScope(parent_values)
    child = parent.child(child_values)
    for name in set(parent_values) | set(child_values):
        expected = child_values.get(name, parent_values.get(name))
        assert child[name] == expected
