"""Property-based tests for the expression language.

Hypothesis generates random ASTs and environments; the invariants are
the ones the web forms and the spreadsheet lean on every day:

* ``parse(unparse(t))`` evaluates identically to ``t`` (round-trip);
* tokenizing is total and deterministic on generated sources;
* numeric literals (including engineering suffixes) mean what the
  docstring says they mean;
* ``+``/``*`` are commutative under IEEE-754 (exact, not approximate);
* parameter overrides commute when they touch different names, and
  :func:`scope_overrides` always restores the scope.
"""

from __future__ import annotations

import math

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core.estimator import scope_overrides  # noqa: E402
from repro.core.expressions import (  # noqa: E402
    Binary,
    Call,
    Expression,
    Name,
    Num,
    Ternary,
    Unary,
    evaluate,
    parse,
    tokenize,
    unparse,
    variables,
)
from repro.core.parameters import ParameterScope  # noqa: E402
from repro.errors import EvaluationError  # noqa: E402

#: variable pool — dotted names included, since scopes resolve those
NAMES = ("x", "y", "z", "bitwidth", "VDD", "lut.words", "c_eff")

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
positive_floats = st.floats(min_value=1e-6, max_value=1e6, allow_nan=False)


def _asts(depth: int = 3) -> st.SearchStrategy:
    """Random well-formed ASTs over NAMES and safe operators."""
    leaves = st.one_of(
        st.builds(Num, finite_floats),
        st.builds(Name, st.sampled_from(NAMES)),
    )

    def extend(children: st.SearchStrategy) -> st.SearchStrategy:
        return st.one_of(
            st.builds(Unary, st.just("-"), children),
            st.builds(
                Binary,
                st.sampled_from(["+", "-", "*", "<", "<=", ">", ">=", "=="]),
                children,
                children,
            ),
            st.builds(
                Call,
                st.sampled_from(["abs", "min", "max"]),
                st.tuples(children, children),
            ),
            st.builds(Ternary, children, children, children),
        )

    return st.recursive(leaves, extend, max_leaves=2 ** depth)


def _env(draw_values) -> dict:
    return dict(zip(NAMES, draw_values))


envs = st.lists(
    finite_floats, min_size=len(NAMES), max_size=len(NAMES)
).map(_env)


@given(tree=_asts(), env=envs)
@settings(max_examples=200, deadline=None)
def test_unparse_parse_round_trip(tree, env):
    """parse(unparse(t)) is evaluation-equivalent to t."""
    text = unparse(tree)
    reparsed = parse(text)
    try:
        expected = evaluate(tree, env)
    except EvaluationError:
        with pytest.raises(EvaluationError):
            evaluate(reparsed, env)
        return
    result = evaluate(reparsed, env)
    if math.isnan(expected):
        assert math.isnan(result)
    else:
        assert result == expected


@given(tree=_asts())
@settings(max_examples=200, deadline=None)
def test_unparse_round_trip_preserves_variables(tree):
    assert variables(parse(unparse(tree))) == variables(tree)


@given(tree=_asts())
@settings(max_examples=100, deadline=None)
def test_tokenize_total_and_deterministic(tree):
    text = unparse(tree)
    first = tokenize(text)
    second = tokenize(text)
    assert first == second
    assert first[-1].kind == "end"


@given(value=finite_floats)
@settings(max_examples=200, deadline=None)
def test_numeric_literal_round_trip(value):
    """Any float repr survives parse -> evaluate exactly."""
    source = repr(abs(value))
    assert evaluate(parse(source)) == abs(value)


@given(
    mantissa=st.integers(min_value=1, max_value=999),
    suffix=st.sampled_from(list("afpnumkMGT")),
)
@settings(max_examples=100, deadline=None)
def test_engineering_suffix_literals(mantissa, suffix):
    scales = {
        "a": 1e-18, "f": 1e-15, "p": 1e-12, "n": 1e-9, "u": 1e-6,
        "m": 1e-3, "k": 1e3, "M": 1e6, "G": 1e9, "T": 1e12,
    }
    assert evaluate(parse(f"{mantissa}{suffix}")) == mantissa * scales[suffix]


@given(a=finite_floats, b=finite_floats, env=envs)
@settings(max_examples=200, deadline=None)
def test_add_mul_commute(a, b, env):
    """IEEE addition/multiplication commute exactly."""
    for op in ("+", "*"):
        left = Expression(f"{a!r} {op} {b!r}").evaluate(env)
        right = Expression(f"{b!r} {op} {a!r}").evaluate(env)
        if math.isnan(left):
            assert math.isnan(right)
        else:
            assert left == right


@given(
    values=st.dictionaries(
        st.sampled_from(["alpha", "beta", "gamma", "delta"]),
        finite_floats,
        min_size=2,
        max_size=4,
    ),
    order_seed=st.randoms(use_true_random=False),
)
@settings(max_examples=100, deadline=None)
def test_parameter_overrides_commute(values, order_seed):
    """Setting distinct parameters is order-independent."""
    names = list(values)
    shuffled = list(names)
    order_seed.shuffle(shuffled)

    first = ParameterScope()
    for name in names:
        first.set(name, values[name])
    second = ParameterScope()
    for name in shuffled:
        second.set(name, values[name])
    assert {n: first.resolve(n) for n in names} == {
        n: second.resolve(n) for n in names
    }


@given(
    base=finite_floats,
    override=finite_floats,
)
@settings(max_examples=100, deadline=None)
def test_scope_overrides_restores(base, override):
    """scope_overrides is an exact save/restore, even on reentry."""
    scope = ParameterScope()
    scope.set("VDD", base)
    with scope_overrides(scope, {"VDD": override}):
        assert scope.resolve("VDD") == override
        with scope_overrides(scope, {"VDD": base}):
            assert scope.resolve("VDD") == base
        assert scope.resolve("VDD") == override
    assert scope.resolve("VDD") == base
