"""Design-space exploration: voltage optimization, grids, Pareto."""

import pytest

from repro.core.composition import Chain, FixedDelay
from repro.core.design import Design
from repro.core.estimator import evaluate_power
from repro.core.expressions import compile_expression as E
from repro.core.model import (
    CapacitiveTerm,
    TemplatePowerModel,
    VoltageScaledTimingModel,
)
from repro.core.optimize import (
    GridPoint,
    grid_search,
    minimum_voltage,
    optimize_voltage,
    pareto_front,
    pareto_points,
)
from repro.core.parameters import Parameter
from repro.errors import ModelError

ADDER = TemplatePowerModel(
    "adder",
    capacitive=[CapacitiveTerm("bits", E("bitwidth * 68f"))],
    parameters=(Parameter("bitwidth", 16),),
)


def make_design():
    design = Design("d")
    design.scope.set("VDD", 1.5)
    design.scope.set("f", 2e6)
    design.add("alu", ADDER, params={"bitwidth": 16})
    return design


class TestMinimumVoltage:
    def test_bisection_finds_threshold(self):
        timing = VoltageScaledTimingModel("t", delay_ref=100e-9, v_ref=1.5)
        # at 1.5 V delay is 100 ns; ask for a 150 ns period (6.67 MHz):
        # some voltage below 1.5 suffices
        vdd = minimum_voltage(timing, 1.0 / 150e-9)
        assert vdd < 1.5
        assert timing.delay({"VDD": vdd}) <= 150e-9
        # and just below it, timing fails
        assert timing.delay({"VDD": vdd - 0.02}) > 150e-9

    def test_already_feasible_at_floor(self):
        timing = VoltageScaledTimingModel("t", delay_ref=1e-9, v_ref=1.5)
        assert minimum_voltage(timing, 1e6, v_low=0.8) == 0.8

    def test_infeasible_raises(self):
        timing = VoltageScaledTimingModel("t", delay_ref=1e-3, v_ref=1.5)
        with pytest.raises(ModelError, match="cannot reach"):
            minimum_voltage(timing, 1e9)

    def test_validation(self):
        timing = VoltageScaledTimingModel("t", 1e-9)
        with pytest.raises(ModelError):
            minimum_voltage(timing, 0)
        with pytest.raises(ModelError):
            minimum_voltage(timing, 1e6, v_low=3.0, v_high=1.0)

    def test_composed_path(self):
        path = Chain(
            "p",
            [
                VoltageScaledTimingModel("gates", 60e-9, v_ref=1.5),
                FixedDelay("wire", 20e-9),
            ],
        )
        vdd = minimum_voltage(path, 1.0 / 120e-9)
        assert path.delay({"VDD": vdd}) <= 120e-9


class TestOptimizeVoltage:
    def test_optimum_saves_power_and_meets_timing(self):
        design = make_design()
        timing = VoltageScaledTimingModel("cp", delay_ref=100e-9, v_ref=1.5)
        result = optimize_voltage(design, timing, frequency=1.0 / 200e-9)
        assert result.vdd < 1.5
        assert result.power < result.nominal_power
        assert 0.0 < result.saving < 1.0
        assert timing.delay({"VDD": result.vdd}) <= 200e-9

    def test_design_scope_untouched(self):
        design = make_design()
        timing = VoltageScaledTimingModel("cp", 100e-9, v_ref=1.5)
        optimize_voltage(design, timing, frequency=1.0 / 200e-9)
        assert design.scope["VDD"] == 1.5

    def test_needs_nominal_vdd(self):
        design = Design("no_vdd")
        design.scope.set("f", 1e6)
        design.add("alu", ADDER)
        timing = VoltageScaledTimingModel("cp", 1e-9)
        with pytest.raises(ModelError, match="VDD"):
            optimize_voltage(design, timing, frequency=1e6)

    def test_on_the_paper_design(self):
        from repro.designs.luminance import build_figure3_design

        design = build_figure3_design()
        lut_access = VoltageScaledTimingModel("lut", 500e-9, v_ref=1.5)
        # the LUT runs at f/4: ~2 us period
        result = optimize_voltage(
            design, lut_access, frequency=design.scope["f_pixel"] / 4
        )
        assert result.vdd < 1.5
        assert result.saving > 0.3


class TestGridSearch:
    def test_sorted_by_power(self):
        design = make_design()
        results = grid_search(
            design, {"VDD": [1.1, 1.5, 3.3], "bitwidth": [8, 16]}
        )
        assert len(results) == 6
        powers = [point.power for point in results]
        assert powers == sorted(powers)
        assert results[0].parameters == {"VDD": 1.1, "bitwidth": 8.0}

    def test_scope_restored(self):
        design = make_design()
        grid_search(design, {"VDD": [5.0]})
        assert design.scope["VDD"] == 1.5

    def test_metrics_evaluated_under_overrides(self):
        design = make_design()
        results = grid_search(
            design,
            {"VDD": [1.0, 2.0]},
            metrics={"vdd_seen": lambda d: d.scope["VDD"]},
        )
        seen = sorted(point.metrics["vdd_seen"] for point in results)
        assert seen == [1.0, 2.0]

    def test_limit_guard(self):
        design = make_design()
        with pytest.raises(ModelError, match="over the limit"):
            grid_search(design, {"VDD": list(range(200)),
                                 "bitwidth": list(range(1, 101))}, limit=100)

    def test_empty_grid(self):
        with pytest.raises(ModelError):
            grid_search(make_design(), {})


class TestPareto:
    def test_front_extraction(self):
        points = [(1, 9), (2, 4), (3, 5), (4, 2), (5, 3), (2, 9)]
        front = pareto_front(points)
        assert front == [(1, 9), (2, 4), (4, 2)]

    def test_single_point(self):
        assert pareto_front([(1.0, 1.0)]) == [(1.0, 1.0)]

    def test_duplicates_collapse(self):
        assert pareto_front([(1, 1), (1, 1)]) == [(1, 1)]

    def test_empty_input(self):
        assert pareto_front([]) == []

    def test_ties_on_one_axis_dominated(self):
        # (1,5) loses to (1,4): equal on the first axis, worse on the
        # second; (2,4) loses to (1,4) outright
        assert pareto_front([(1, 5), (1, 4), (2, 4)]) == [(1, 4)]

    def test_non_finite_rejected(self):
        with pytest.raises(ModelError, match="non-finite"):
            pareto_front([(1.0, float("nan"))])
        with pytest.raises(ModelError, match="non-finite"):
            pareto_front([(float("inf"), 1.0), (1.0, 1.0)])

    def test_pareto_points_keeps_tied_configurations(self):
        # two different configurations with identical objectives both
        # stay visible; the dominated third does not
        a = GridPoint({"x": 1.0}, 1.0, {"m": 2.0})
        b = GridPoint({"x": 2.0}, 1.0, {"m": 2.0})
        worse = GridPoint({"x": 3.0}, 2.0, {"m": 3.0})
        assert pareto_points([a, b, worse], "m") == [a, b]

    def test_oversized_grid_fails_fast(self):
        import time as _time

        design = make_design()
        started = _time.perf_counter()
        with pytest.raises(ModelError, match="over the limit"):
            grid_search(
                design,
                {"VDD": range(10**6), "bitwidth": range(10**6)},
            )
        # the point count is checked before any combination is built,
        # so a 10^12-point grid must fail in well under a second
        assert _time.perf_counter() - started < 1.0

    def test_pareto_points_from_grid(self):
        design = make_design()
        results = grid_search(
            design,
            {"VDD": [1.0, 1.5, 3.0], "bitwidth": [8, 32]},
            metrics={
                # a stand-in delay metric: slower at low VDD
                "delay": lambda d: 1.0 / d.scope["VDD"],
            },
        )
        front = pareto_points(results, "delay")
        assert front
        # no front point is dominated by any grid point
        for candidate in front:
            for other in results:
                dominates = (
                    other.power <= candidate.power
                    and other.metrics["delay"] <= candidate.metrics["delay"]
                    and (
                        other.power < candidate.power
                        or other.metrics["delay"] < candidate.metrics["delay"]
                    )
                )
                assert not dominates
