"""Units: engineering-notation parsing, formatting, Quantity arithmetic."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.units import (
    Quantity,
    format_eng,
    format_quantity,
    parse_float,
    parse_quantity,
    split_prefix,
    volts,
    watts,
)
from repro.errors import UnitError


class TestParseQuantity:
    def test_plain_number(self):
        assert parse_quantity("1.5") == (1.5, "")

    def test_number_with_unit(self):
        assert parse_quantity("1.5 V") == (1.5, "V")

    def test_prefixed_unit(self):
        value, unit = parse_quantity("253fF")
        assert value == pytest.approx(253e-15)
        assert unit == "F"

    def test_prefixed_unit_with_space(self):
        value, unit = parse_quantity("2 MHz")
        assert value == pytest.approx(2e6)
        assert unit == "Hz"

    def test_micro_sign_variants(self):
        for symbol in ("2uW", "2µW", "2μW"):
            value, unit = parse_quantity(symbol)
            assert value == pytest.approx(2e-6)
            assert unit == "W"

    def test_spice_style_bare_prefix(self):
        assert parse_float("2M") == pytest.approx(2e6)
        assert parse_float("100k") == pytest.approx(1e5)
        assert parse_float("253f") == pytest.approx(253e-15)

    def test_meter_is_a_unit_not_milli(self):
        value, unit = parse_quantity("3m")
        assert value == 3.0
        assert unit == "m"

    def test_hz_not_hecto(self):
        value, unit = parse_quantity("5Hz")
        assert value == 5.0
        assert unit == "Hz"

    def test_scientific_notation(self):
        assert parse_float("7.438e-04") == pytest.approx(7.438e-4)

    def test_negative(self):
        assert parse_float("-2.5mW") == pytest.approx(-2.5e-3)

    def test_default_unit(self):
        assert parse_quantity("3", default_unit="V") == (3.0, "V")

    @pytest.mark.parametrize("bad", ["", "volts", "1.2.3", "--3", "3 4", None])
    def test_garbage_raises(self, bad):
        with pytest.raises(UnitError):
            parse_quantity(bad)


class TestSplitPrefix:
    def test_known_unit_wins(self):
        assert split_prefix("m") == (1.0, "m")

    def test_prefix_with_custom_unit(self):
        scale, unit = split_prefix("kops")
        assert scale == 1e3
        assert unit == "ops"

    def test_unknown_symbol_passthrough(self):
        assert split_prefix("widgets") == (1.0, "widgets")


class TestFormat:
    def test_basic_prefixes(self):
        assert format_quantity(253e-15, "F") == "253 fF"
        assert format_quantity(2e6, "Hz") == "2 MHz"
        assert format_quantity(1.5, "V") == "1.5 V"

    def test_eng_matches_paper_style(self):
        assert format_eng(7.438e-4, "W") == "7.4380e-04 W"

    def test_zero_and_nonfinite(self):
        assert format_quantity(0.0, "W") == "0 W"
        assert "inf" in format_quantity(math.inf, "W")

    def test_no_unit(self):
        assert format_quantity(0.25) == "250 m"

    def test_out_of_table_falls_back(self):
        text = format_quantity(1e30, "W")
        assert "e+" in text


class TestQuantity:
    def test_parse_and_str(self):
        q = Quantity.parse("2 MHz")
        assert float(q) == pytest.approx(2e6)
        assert str(q) == "2 MHz"

    def test_addition_same_unit(self):
        assert (watts(1.0) + watts(0.5)).value == pytest.approx(1.5)

    def test_addition_mismatch_raises(self):
        with pytest.raises(UnitError):
            watts(1.0) + volts(1.0)

    def test_scalar_multiplication(self):
        assert (watts(2.0) * 3).value == pytest.approx(6.0)
        assert (3 * watts(2.0)).value == pytest.approx(6.0)

    def test_quantity_multiplication_returns_float(self):
        assert volts(2.0) * volts(3.0) == pytest.approx(6.0)

    def test_division(self):
        assert (watts(6.0) / 3).value == pytest.approx(2.0)
        assert watts(6.0) / watts(3.0) == pytest.approx(2.0)

    def test_comparison(self):
        assert watts(1.0) < watts(2.0)
        with pytest.raises(UnitError):
            _ = watts(1.0) < volts(2.0)

    def test_negation(self):
        assert (-watts(1.0)).value == -1.0

    def test_eng_rendering(self):
        assert watts(7.438e-4).eng() == "7.4380e-04 W"


@given(st.floats(min_value=1e-14, max_value=1e11, allow_nan=False))
def test_format_parse_round_trip(value):
    """format_quantity -> parse_quantity recovers the value to 4 sig figs."""
    text = format_quantity(value, "W", digits=8)
    recovered, unit = parse_quantity(text)
    assert unit == "W"
    assert recovered == pytest.approx(value, rel=1e-6)


@given(st.floats(min_value=-1e20, max_value=1e20, allow_nan=False))
def test_eng_round_trip(value):
    recovered, _unit = parse_quantity(format_eng(value, "W", digits=10))
    assert recovered == pytest.approx(value, rel=1e-9, abs=1e-30)
