"""Text rendering of reports (the Figure 2 / Figure 5 tables)."""

import pytest

from repro.core.design import Design
from repro.core.estimator import evaluate_area, evaluate_power, evaluate_timing
from repro.core.expressions import compile_expression as E
from repro.core.model import (
    CapacitiveTerm,
    ExpressionAreaModel,
    ModelSet,
    TemplatePowerModel,
    VoltageScaledTimingModel,
)
from repro.core.parameters import Parameter
from repro.core.report import (
    render_area,
    render_comparison,
    render_coverage,
    render_power,
    render_power_csv,
    render_table,
    render_timing,
)

ADDER = TemplatePowerModel(
    "adder",
    capacitive=[CapacitiveTerm("bits", E("bitwidth * 68f"))],
    parameters=(Parameter("bitwidth", 16),),
)


@pytest.fixture
def design():
    d = Design("demo")
    d.scope.set("VDD", 1.5)
    d.scope.set("f", 2e6)
    d.add("small", ADDER, params={"bitwidth": 8})
    d.add(
        "big",
        ModelSet(
            power=ADDER,
            area=ExpressionAreaModel("a", "bitwidth * 2n", (Parameter("bitwidth", 32),)),
            timing=VoltageScaledTimingModel("t", 20e-9),
        ),
        params={"bitwidth": 32},
    )
    return d


class TestRenderTable:
    def test_alignment_and_borders(self):
        text = render_table([["a", "bb"], ["ccc", "d"]], ["col1", "col2"])
        lines = text.splitlines()
        assert all(len(line) == len(lines[0]) for line in lines)
        assert lines[0].startswith("+-")
        assert "col1" in lines[1]

    def test_ragged_rows_padded(self):
        text = render_table([["only"]], ["a", "b"])
        assert "only" in text


class TestRenderPower:
    def test_engineering_notation(self, design):
        text = render_power(evaluate_power(design))
        assert "e-0" in text  # the paper's 7.438e-04 W style
        assert "demo summary" in text
        assert "100.0%" in text
        assert "Total:" in text

    def test_human_notation(self, design):
        text = render_power(evaluate_power(design), eng=False)
        assert "uW" in text

    def test_max_depth(self, design):
        report = evaluate_power(design)
        shallow = render_power(report, max_depth=0)
        assert "small" not in shallow

    def test_shares_sum_to_total(self, design):
        report = evaluate_power(design)
        text = render_power(report)
        # the two leaf shares must appear and be complementary
        assert " 20.0%" in text and " 80.0%" in text

    def test_csv(self, design):
        csv = render_power_csv(evaluate_power(design))
        lines = csv.strip().splitlines()
        assert lines[0] == "path,power_w,share"
        assert len(lines) == 3
        assert lines[1].startswith("demo/small,")

    def test_coverage_table(self, design):
        text = render_coverage(evaluate_power(design))
        assert "Cumulative" in text
        assert "demo/big" in text


class TestRenderAreaTiming:
    def test_area_marks_unmodeled(self, design):
        text = render_area(evaluate_area(design))
        assert "-" in text          # 'small' has no area model
        assert "um2" in text

    def test_timing(self, design):
        text = render_timing(evaluate_timing(design))
        assert "ns" in text


class TestRenderComparison:
    def test_ratio_column(self):
        text = render_comparison([("fig1", 750e-6), ("fig3", 150e-6)])
        assert "0.200x" in text
        assert "fig1" in text and "fig3" in text

    def test_empty(self):
        assert "no designs" in render_comparison([])

    def test_zero_base(self):
        text = render_comparison([("a", 0.0), ("b", 1.0)])
        assert "-" in text
