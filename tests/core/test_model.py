"""The EQ 1 model template and the model protocol family."""

import pytest
from hypothesis import given, strategies as st

from repro.core.expressions import compile_expression as E
from repro.core.model import (
    CallablePowerModel,
    CapacitiveTerm,
    ExpressionAreaModel,
    ExpressionPowerModel,
    ExpressionTimingModel,
    FixedPowerModel,
    ModelSet,
    StaticTerm,
    TemplatePowerModel,
    VoltageScaledTimingModel,
)
from repro.core.parameters import Parameter
from repro.errors import ModelError

ENV = {"VDD": 1.5, "f": 2e6}


class TestCapacitiveTerm:
    def test_rail_to_rail_energy(self):
        term = CapacitiveTerm("c", E("10p"))
        # E = C * VDD * VDD (swing defaults to VDD)
        assert term.energy(ENV) == pytest.approx(10e-12 * 1.5 * 1.5)

    def test_reduced_swing(self):
        term = CapacitiveTerm("c", E("10p"), v_swing=E("0.3"))
        assert term.energy(ENV) == pytest.approx(10e-12 * 0.3 * 1.5)

    def test_activity_scales(self):
        term = CapacitiveTerm("c", E("10p"), activity=E("0.25"))
        full = CapacitiveTerm("c", E("10p"))
        assert term.energy(ENV) == pytest.approx(0.25 * full.energy(ENV))

    def test_power_uses_env_frequency(self):
        term = CapacitiveTerm("c", E("10p"))
        assert term.power(ENV) == pytest.approx(term.energy(ENV) * 2e6)

    def test_per_term_frequency_override(self):
        term = CapacitiveTerm("c", E("10p"), frequency=E("f / 16"))
        base = CapacitiveTerm("c", E("10p"))
        assert term.power(ENV) == pytest.approx(base.power(ENV) / 16)

    def test_negative_capacitance_rejected(self):
        term = CapacitiveTerm("c", E("0 - 5p"))
        with pytest.raises(ModelError, match="negative capacitance"):
            term.energy(ENV)

    def test_missing_vdd(self):
        term = CapacitiveTerm("c", E("10p"))
        with pytest.raises(ModelError, match="VDD"):
            term.energy({"f": 1.0})


class TestStaticTerm:
    def test_power(self):
        term = StaticTerm("bias", E("2m"))
        assert term.power(ENV) == pytest.approx(2e-3 * 1.5)

    def test_explicit_supply(self):
        term = StaticTerm("bias", E("2m"), supply=E("3.0"))
        assert term.power(ENV) == pytest.approx(6e-3)


class TestTemplate:
    def make(self):
        return TemplatePowerModel(
            "block",
            capacitive=[
                CapacitiveTerm("a", E("bitwidth * 68f")),
                CapacitiveTerm("b", E("1p")),
            ],
            static=[StaticTerm("leak", E("1u"))],
            parameters=(Parameter("bitwidth", 16),),
        )

    def test_requires_terms(self):
        with pytest.raises(ModelError, match="no terms"):
            TemplatePowerModel("empty")

    def test_power_is_sum_of_terms(self):
        model = self.make()
        env = dict(ENV, bitwidth=16)
        assert model.power(env) == pytest.approx(sum(model.breakdown(env).values()))

    def test_breakdown_names(self):
        model = self.make()
        assert set(model.breakdown(dict(ENV, bitwidth=16))) == {"a", "b", "leak"}

    def test_energy_excludes_static(self):
        model = self.make()
        env = dict(ENV, bitwidth=16)
        dynamic_only = (16 * 68e-15 + 1e-12) * 1.5 * 1.5
        assert model.energy_per_access(env) == pytest.approx(dynamic_only)

    def test_effective_capacitance(self):
        model = TemplatePowerModel(
            "c", capacitive=[CapacitiveTerm("x", E("10p"), v_swing=E("0.75"))]
        )
        # swing-weighted: C * (swing / VDD) = 10p * 0.5
        assert model.effective_capacitance(ENV) == pytest.approx(5e-12)

    def test_paper_eq20_number(self):
        """The Figure 4 anchor: 16x16 multiplier, 1.5 V, 2 MHz."""
        model = TemplatePowerModel(
            "mult", capacitive=[CapacitiveTerm("array", E("bwA * bwB * 253f"))]
        )
        env = {"bwA": 16, "bwB": 16, "VDD": 1.5, "f": 2e6}
        assert model.power(env) * 1e6 == pytest.approx(291.456)

    def test_quadratic_in_vdd(self):
        model = self.make()
        low = model.energy_per_access(dict(ENV, VDD=1.0, bitwidth=16))
        high = model.energy_per_access(dict(ENV, VDD=2.0, bitwidth=16))
        assert high / low == pytest.approx(4.0)

    def test_default_scope(self):
        scope = self.make().default_scope()
        assert scope["bitwidth"] == 16.0


class TestExpressionModels:
    def test_power(self):
        model = ExpressionPowerModel("m", "a * VDD", (Parameter("a", 2.0),))
        assert model.power(dict(ENV, a=2.0)) == pytest.approx(3.0)

    def test_bad_equation_reports_model(self):
        model = ExpressionPowerModel("m", "missing + 1")
        with pytest.raises(ModelError, match="'m'"):
            model.power(ENV)

    def test_energy_per_access_default(self):
        model = ExpressionPowerModel("m", "10u")
        assert model.energy_per_access(ENV) == pytest.approx(10e-6 / 2e6)
        with pytest.raises(ModelError, match="f > 0"):
            model.energy_per_access({"VDD": 1.5, "f": 0})

    def test_area_model(self):
        model = ExpressionAreaModel("a", "bitwidth * 2n", (Parameter("bitwidth", 8),))
        assert model.area({"bitwidth": 8}) == pytest.approx(16e-9)
        bad = ExpressionAreaModel("a", "0 - 1")
        with pytest.raises(ModelError, match="negative area"):
            bad.area({})

    def test_timing_model(self):
        model = ExpressionTimingModel("t", "10n * bitwidth")
        assert model.delay({"bitwidth": 4}) == pytest.approx(40e-9)


class TestFixedPower:
    def test_full_duty(self):
        assert FixedPowerModel("lcd", 1.0).power({}) == 1.0

    def test_alpha(self):
        assert FixedPowerModel("cpu", 2.0).power({"alpha": 0.25}) == 0.5

    def test_alpha_bounds(self):
        with pytest.raises(ModelError):
            FixedPowerModel("cpu", 2.0).power({"alpha": 1.5})

    def test_negative_power_rejected(self):
        with pytest.raises(ModelError):
            FixedPowerModel("x", -1.0)


class TestCallable:
    def test_wraps_function(self):
        model = CallablePowerModel("tool", lambda env: env["VDD"] * 2)
        assert model.power(ENV) == 3.0

    def test_non_numeric_result(self):
        model = CallablePowerModel("tool", lambda env: "oops")
        with pytest.raises(ModelError, match="non-numeric"):
            model.power(ENV)


class TestVoltageScaledTiming:
    def test_reference_point(self):
        model = VoltageScaledTimingModel("t", delay_ref=10e-9, v_ref=1.5)
        assert model.delay({"VDD": 1.5}) == pytest.approx(10e-9)

    def test_lower_voltage_is_slower(self):
        model = VoltageScaledTimingModel("t", delay_ref=10e-9, v_ref=1.5)
        assert model.delay({"VDD": 1.1}) > 10e-9
        assert model.delay({"VDD": 3.0}) < 10e-9

    def test_below_threshold_raises(self):
        model = VoltageScaledTimingModel("t", 10e-9, v_threshold=0.7)
        with pytest.raises(ModelError, match="threshold"):
            model.delay({"VDD": 0.6})

    def test_max_frequency(self):
        model = VoltageScaledTimingModel("t", 10e-9)
        assert model.max_frequency({"VDD": 1.5}) == pytest.approx(1e8)

    def test_constructor_validation(self):
        with pytest.raises(ModelError):
            VoltageScaledTimingModel("t", 0.0)
        with pytest.raises(ModelError):
            VoltageScaledTimingModel("t", 1e-9, v_ref=0.5, v_threshold=0.7)


class TestModelSet:
    def test_parameter_union(self):
        model_set = ModelSet(
            power=ExpressionPowerModel("p", "a", (Parameter("a", 1.0),)),
            area=ExpressionAreaModel("ar", "b", (Parameter("b", 2.0), Parameter("a", 9.0))),
        )
        names = [parameter.name for parameter in model_set.parameters]
        assert names == ["a", "b"]
        # the power model's declaration wins on clash
        assert model_set.parameters[0].default == 1.0

    def test_name(self):
        model_set = ModelSet(power=ExpressionPowerModel("p", "1"))
        assert model_set.name == "p"


@given(
    st.floats(min_value=0.5, max_value=5.0),
    st.floats(min_value=1e3, max_value=1e9),
    st.floats(min_value=1e-15, max_value=1e-9),
)
def test_property_template_linearity(vdd, frequency, capacitance):
    """EQ 1: dynamic power is linear in f and quadratic in VDD."""
    model = TemplatePowerModel(
        "m", capacitive=[CapacitiveTerm("c", E(repr(capacitance)))]
    )
    base = model.power({"VDD": vdd, "f": frequency})
    assert model.power({"VDD": vdd, "f": 2 * frequency}) == pytest.approx(2 * base)
    assert model.power({"VDD": 2 * vdd, "f": frequency}) == pytest.approx(4 * base)
