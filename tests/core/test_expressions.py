"""Expression language: parsing, evaluation, analysis, properties."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.expressions import (
    Expression,
    compile_expression,
    evaluate,
    parse,
    unparse,
    variables,
)
from repro.errors import EvaluationError, ParseError


def ev(source, **env):
    return evaluate(parse(source), env)


class TestParsing:
    def test_number(self):
        assert ev("42") == 42.0

    def test_engineering_suffix(self):
        assert ev("253f") == pytest.approx(253e-15)
        assert ev("2M") == pytest.approx(2e6)
        assert ev("1.5k") == pytest.approx(1500.0)

    def test_suffix_not_applied_mid_name(self):
        # "2f" is 2e-15 but "2fF" would be a malformed token
        with pytest.raises(ParseError):
            parse("2fF")

    def test_scientific(self):
        assert ev("1e-3") == pytest.approx(1e-3)
        assert ev("2.5E+2") == 250.0

    def test_dotted_names(self):
        assert ev("lut.words * 2", **{"lut.words": 8}) == 16.0

    def test_name_cannot_end_with_dot(self):
        with pytest.raises(ParseError):
            parse("a. + 1")

    @pytest.mark.parametrize(
        "bad",
        ["", "   ", "1 +", "(1", "1)", "* 3", "1 ? 2", "foo(", "a b", "@x",
         "1..2", "?"],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(ParseError):
            parse(bad)

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as info:
            parse("1 + @")
        assert info.value.position == 4

    def test_non_string(self):
        with pytest.raises(ParseError):
            parse(42)


class TestPrecedence:
    def test_mul_before_add(self):
        assert ev("2 + 3 * 4") == 14.0

    def test_parentheses(self):
        assert ev("(2 + 3) * 4") == 20.0

    def test_power_right_associative(self):
        assert ev("2 ^ 3 ^ 2") == 512.0

    def test_power_binds_tighter_than_mul(self):
        assert ev("2 * 3 ^ 2") == 18.0

    def test_unary_minus(self):
        assert ev("-3 + 5") == 2.0
        assert ev("-(3 + 5)") == -8.0
        assert ev("--3") == 3.0
        assert ev("+3") == 3.0

    def test_unary_minus_with_power(self):
        # -x^2 parses as -(x)^... per our grammar unary binds the atom first
        assert ev("-2 ^ 2") == 4.0  # (-2)^2 with unary-before-power grammar

    def test_modulo(self):
        assert ev("7 % 3") == pytest.approx(1.0)

    def test_comparison_chain(self):
        assert ev("1 < 2") == 1.0
        assert ev("2 <= 1") == 0.0
        assert ev("3 == 3") == 1.0
        assert ev("3 != 3") == 0.0
        assert ev("4 >= 5") == 0.0
        assert ev("5 > 4") == 1.0

    def test_boolean_operators(self):
        assert ev("1 and 2") == 1.0
        assert ev("0 or 3") == 1.0
        assert ev("not 0") == 1.0
        assert ev("not 5") == 0.0

    def test_short_circuit(self):
        # the right side would divide by zero if evaluated
        assert ev("0 and (1 / 0)") == 0.0
        assert ev("1 or (1 / 0)") == 1.0

    def test_ternary(self):
        assert ev("1 ? 10 : 20") == 10.0
        assert ev("0 ? 10 : 20") == 20.0
        assert ev("x > 2 ? x : -x", x=5) == 5.0

    def test_ternary_lazy(self):
        assert ev("1 ? 7 : 1/0") == 7.0


class TestFunctions:
    def test_math_functions(self):
        assert ev("sqrt(9)") == 3.0
        assert ev("log2(8)") == 3.0
        assert ev("log10(1000)") == pytest.approx(3.0)
        assert ev("ln(e)") == pytest.approx(1.0)
        assert ev("abs(-4)") == 4.0
        assert ev("floor(2.7)") == 2.0
        assert ev("ceil(2.1)") == 3.0
        assert ev("exp(0)") == 1.0

    def test_varargs(self):
        assert ev("min(3, 1, 2)") == 1.0
        assert ev("max(3, 1, 2)") == 3.0
        assert ev("sum(1, 2, 3)") == 6.0
        assert ev("avg(2, 4)") == 3.0

    def test_if_and_clamp(self):
        assert ev("if(1, 5, 9)") == 5.0
        assert ev("clamp(12, 0, 10)") == 10.0

    def test_constants(self):
        assert ev("pi") == pytest.approx(math.pi)
        assert ev("kT_over_q") == pytest.approx(0.02585, rel=1e-3)

    def test_unknown_function(self):
        with pytest.raises(EvaluationError, match="unknown function"):
            ev("frobnicate(1)")

    def test_wrong_arity(self):
        with pytest.raises(EvaluationError, match="args"):
            ev("sqrt(1, 2)")
        with pytest.raises(EvaluationError):
            ev("pow(2)")

    def test_domain_errors(self):
        with pytest.raises(EvaluationError):
            ev("sqrt(-1)")
        with pytest.raises(EvaluationError):
            ev("log(0)")


class TestEvaluation:
    def test_names_from_env(self):
        assert ev("a * b", a=6, b=7) == 42.0

    def test_unknown_name(self):
        with pytest.raises(EvaluationError, match="unknown name 'missing'"):
            ev("missing + 1")

    def test_lazy_callable_values(self):
        assert evaluate(parse("x * 2"), {"x": lambda: 21}) == 42.0

    def test_division_by_zero(self):
        with pytest.raises(EvaluationError, match="division by zero"):
            ev("1 / 0")

    def test_modulo_by_zero(self):
        with pytest.raises(EvaluationError):
            ev("1 % 0")

    def test_complex_power_rejected(self):
        with pytest.raises(EvaluationError):
            ev("(-1) ^ 0.5")

    def test_overflow_power(self):
        with pytest.raises(EvaluationError):
            ev("1e300 ^ 10")

    def test_non_numeric_env_value(self):
        with pytest.raises(EvaluationError, match="not numeric"):
            evaluate(parse("x"), {"x": "hello"})

    def test_env_shadows_constants(self):
        assert ev("pi", pi=3.0) == 3.0

    def test_paper_equations(self):
        # EQ 20 at the paper's Figure 4 defaults
        c = ev("bitwidthA * bitwidthB * 253f", bitwidthA=16, bitwidthB=16)
        assert c == pytest.approx(16 * 16 * 253e-15)
        # EQ 19 converter dissipation
        assert ev("P_load * (1 - eta) / eta", P_load=9.0, eta=0.9) == pytest.approx(1.0)


class TestAnalysis:
    def test_variables(self):
        assert variables(parse("a * b + sqrt(c) - a")) == {"a", "b", "c"}

    def test_constants_excluded(self):
        assert variables(parse("pi * r ^ 2")) == {"r"}

    def test_expression_class(self):
        expression = Expression("bitwidth * c0")
        assert expression.variables == {"bitwidth", "c0"}
        assert expression(bitwidth=8, c0=2.0) == 16.0
        assert expression == compile_expression("bitwidth  *  c0")
        assert hash(expression) == hash(compile_expression("bitwidth * c0"))

    def test_compile_passthrough(self):
        expression = Expression("1 + 1")
        assert compile_expression(expression) is expression


# -- property tests ---------------------------------------------------------

_names = st.sampled_from(["a", "b", "c", "x_1", "lut.words"])
_numbers = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
).map(lambda value: round(value, 6))


@st.composite
def _expressions(draw, depth=0):
    if depth > 3:
        choice = draw(st.integers(0, 1))
    else:
        choice = draw(st.integers(0, 4))
    if choice == 0:
        return repr(draw(_numbers))
    if choice == 1:
        return draw(_names)
    if choice == 2:
        op = draw(st.sampled_from(["+", "-", "*"]))
        left = draw(_expressions(depth=depth + 1))
        right = draw(_expressions(depth=depth + 1))
        return f"({left} {op} {right})"
    if choice == 3:
        inner = draw(_expressions(depth=depth + 1))
        return f"(-{inner})"
    condition = draw(_expressions(depth=depth + 1))
    left = draw(_expressions(depth=depth + 1))
    right = draw(_expressions(depth=depth + 1))
    return f"(({condition}) > 0 ? {left} : {right})"


@given(_expressions())
def test_unparse_round_trip(source):
    """parse(unparse(t)) evaluates identically to t."""
    env = {"a": 1.5, "b": -2.25, "c": 3.0, "x_1": 0.5, "lut.words": 8.0}
    tree = parse(source)
    rendered = unparse(tree)
    assert evaluate(parse(rendered), env) == pytest.approx(
        evaluate(tree, env), rel=1e-12, abs=1e-12
    )


@given(_expressions())
def test_variables_complete(source):
    """Evaluation succeeds given exactly the reported variables."""
    tree = parse(source)
    env = {name: 1.0 for name in variables(tree)}
    evaluate(tree, env)  # must not raise


@given(st.floats(min_value=-1e8, max_value=1e8, allow_nan=False))
def test_literal_evaluation(value):
    assert evaluate(parse(repr(value))) == value
