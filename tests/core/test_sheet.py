"""Spreadsheet engine: cells, recalculation, cycles, dirty tracking."""

import pytest
from hypothesis import given, strategies as st

from repro.core.sheet import Sheet
from repro.errors import CycleError, EvaluationError, SheetError


def make_power_sheet():
    sheet = Sheet("power")
    sheet.set("VDD", 1.5)
    sheet.set("C", 2e-12)
    sheet.set("f", "2M")
    sheet.set("E", "C * VDD^2")
    sheet.set("P", "E * f")
    return sheet


class TestBasics:
    def test_constant(self):
        sheet = Sheet()
        sheet.set("x", 3)
        assert sheet["x"] == 3.0

    def test_string_number_is_constant(self):
        sheet = Sheet()
        sheet.set("x", " 42 ")
        assert sheet.cell("x").kind == "constant"

    def test_formula_chain(self):
        sheet = make_power_sheet()
        assert sheet["P"] == pytest.approx(9e-6)

    def test_update_propagates(self):
        sheet = make_power_sheet()
        _ = sheet["P"]
        sheet.set("VDD", 3.0)
        assert sheet["P"] == pytest.approx(36e-6)

    def test_unknown_cell(self):
        with pytest.raises(SheetError, match="no cell"):
            _ = Sheet()["ghost"]

    def test_get_with_default(self):
        assert Sheet().get("ghost", 1.0) == 1.0

    @pytest.mark.parametrize("bad", ["", "1x", "a b", None])
    def test_bad_names(self, bad):
        with pytest.raises(SheetError):
            Sheet().set(bad, 1)

    def test_bad_value(self):
        with pytest.raises(SheetError):
            Sheet().set("x", object())

    def test_len_iter_contains(self):
        sheet = make_power_sheet()
        assert len(sheet) == 5
        assert "VDD" in sheet
        assert set(sheet) == {"VDD", "C", "f", "E", "P"}


class TestErrors:
    def test_missing_dependency_is_cell_error(self):
        sheet = Sheet()
        sheet.set("y", "x * 2")
        with pytest.raises(EvaluationError, match="unknown name 'x'"):
            _ = sheet["y"]
        assert "y" in sheet.errors()

    def test_error_propagates_downstream(self):
        sheet = Sheet()
        sheet.set("a", "1 / 0")
        sheet.set("b", "a + 1")
        errors = sheet.errors()
        assert "a" in errors and "b" in errors
        assert "errored" in errors["b"]

    def test_error_clears_after_fix(self):
        sheet = Sheet()
        sheet.set("y", "x * 2")
        assert sheet.errors()
        sheet.set("x", 5)
        assert sheet["y"] == 10.0
        assert not sheet.errors()

    def test_values_skips_errored(self):
        sheet = Sheet()
        sheet.set("good", 1)
        sheet.set("bad", "1/0")
        assert sheet.values() == {"good": 1.0}


class TestCycles:
    def test_self_cycle(self):
        sheet = Sheet()
        sheet.set("x", "x + 1")
        with pytest.raises(CycleError):
            sheet.recalculate()

    def test_mutual_cycle_lists_members(self):
        sheet = Sheet()
        sheet.set("a", "b")
        sheet.set("b", "c")
        sheet.set("c", "a")
        with pytest.raises(CycleError) as info:
            sheet.recalculate()
        assert set(info.value.cycle) >= {"a", "b", "c"}

    def test_cycle_broken_by_redefinition(self):
        sheet = Sheet()
        sheet.set("a", "b")
        sheet.set("b", "a")
        with pytest.raises(CycleError):
            sheet.recalculate()
        sheet.set("b", 5)
        assert sheet["a"] == 5.0


class TestBoundCells:
    def test_bound_cell(self):
        sheet = Sheet()
        sheet.set("x", 4)
        calls = []

        def compute():
            calls.append(1)
            return sheet.cell("x").value * 10

        sheet.bind("y", compute, depends_on=["x"])
        assert sheet["y"] == 40.0

    def test_bound_cell_invalidated_by_dependency(self):
        sheet = Sheet()
        sheet.set("x", 4)
        sheet.bind("y", lambda: sheet.cell("x").value * 10, depends_on=["x"])
        assert sheet["y"] == 40.0
        sheet.set("x", 5)
        assert sheet["y"] == 50.0

    def test_bound_cell_not_recomputed_when_clean(self):
        sheet = Sheet()
        calls = []
        sheet.bind("y", lambda: calls.append(1) or 7.0)
        assert sheet["y"] == 7.0
        assert sheet["y"] == 7.0
        assert len(calls) == 1

    def test_invalidate_forces_bound_recompute(self):
        sheet = Sheet()
        box = {"value": 1.0}
        sheet.bind("y", lambda: box["value"])
        assert sheet["y"] == 1.0
        box["value"] = 2.0
        sheet.invalidate("y")
        assert sheet["y"] == 2.0

    def test_bound_non_numeric(self):
        sheet = Sheet()
        sheet.bind("y", lambda: "nope")
        assert "non-numeric" in sheet.errors()["y"]

    def test_formula_over_bound_cell(self):
        sheet = Sheet()
        sheet.bind("y", lambda: 21.0)
        sheet.set("z", "y * 2")
        assert sheet["z"] == 42.0


class TestRemoval:
    def test_remove(self):
        sheet = make_power_sheet()
        sheet.remove("P")
        assert "P" not in sheet

    def test_remove_missing(self):
        with pytest.raises(SheetError):
            Sheet().remove("ghost")

    def test_dependents_error_after_removal(self):
        sheet = make_power_sheet()
        _ = sheet["P"]
        sheet.remove("E")
        assert "P" in sheet.errors()


class TestIncrementalEqualsFull:
    def test_dirty_only_recomputes_cone(self):
        sheet = Sheet()
        sheet.set("a", 1)
        sheet.set("b", 2)
        evaluations = []
        sheet.bind("fa", lambda: evaluations.append("fa") or 1.0, depends_on=["a"])
        sheet.bind("fb", lambda: evaluations.append("fb") or 2.0, depends_on=["b"])
        sheet.recalculate()
        evaluations.clear()
        sheet.set("a", 10)
        sheet.recalculate()
        assert evaluations == ["fa"]

    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["a", "b", "c", "d", "e"]),
                st.floats(min_value=-100, max_value=100, allow_nan=False),
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_property_incremental_matches_full(self, edits):
        """Incremental recalculation equals a from-scratch pass."""
        sheet = Sheet()
        sheet.set("a", 1)
        sheet.set("b", 2)
        sheet.set("c", "a + b")
        sheet.set("d", "c * a")
        sheet.set("e", "d - b + c")
        sheet.recalculate()
        for name, value in edits:
            sheet.set(name, value)
            incremental = dict(sheet.recalculate())
            full = dict(sheet.recalculate(full=True))
            assert incremental == full
