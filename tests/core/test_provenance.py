"""Row provenance and measurement back-annotation.

Figure 5's caption: "the power dissipation data for the LCDs came from
actual measurements, the data for the custom hardware is modeled for one
configuration and measured for another" — rows carry their source, and
measurements override models until cleared.
"""

import pytest

from repro.core.design import Design, PROVENANCE
from repro.core.estimator import evaluate_power
from repro.core.model import FixedPowerModel
from repro.errors import DesignError
from repro.library.designio import design_from_json, design_to_json


def make_design():
    design = Design("d")
    design.scope.set("VDD", 1.5)
    design.add("block", FixedPowerModel("block", 2.0), source="datasheet")
    return design


class TestProvenanceLabels:
    def test_default_is_modeled(self):
        design = Design("d")
        row = design.add("x", FixedPowerModel("x", 1.0))
        assert row.source == "modeled"

    def test_explicit_source(self):
        design = make_design()
        assert design.row("block").source == "datasheet"

    def test_unknown_source_rejected(self):
        design = Design("d")
        with pytest.raises(DesignError, match="unknown source"):
            design.add("x", FixedPowerModel("x", 1.0), source="psychic")

    def test_source_in_report(self):
        report = evaluate_power(make_design())
        assert report["block"].source == "datasheet"
        assert report.source == "hierarchy"

    def test_source_in_rendered_table(self):
        from repro.core.report import render_power

        text = render_power(evaluate_power(make_design()))
        assert "Source" in text
        assert "datasheet" in text

    def test_infopad_mixes_sources(self):
        """The Figure 5 property: measured, datasheet and estimated rows
        coexist in one spreadsheet."""
        from repro.designs.infopad import build_infopad

        report = evaluate_power(build_infopad())
        sources = {child.source for child in report.children}
        assert "measured" in sources
        assert "datasheet" in sources
        assert "estimated" in sources
        assert "hierarchy" in sources  # the custom-hardware sub-design


class TestBackAnnotation:
    def test_measurement_overrides_model(self):
        design = make_design()
        design.row("block").record_measurement(1.25)
        report = evaluate_power(design)
        assert report["block"].power == pytest.approx(1.25)
        assert report["block"].source == "measured"
        assert report["block"].details == {"measured": 1.25}

    def test_measurement_scales_with_quantity(self):
        design = Design("d")
        design.scope.set("VDD", 1.5)
        row = design.add("banks", FixedPowerModel("bank", 1.0), quantity=4)
        row.record_measurement(0.5)
        assert evaluate_power(design)["banks"].power == pytest.approx(2.0)

    def test_clear_returns_to_model(self):
        design = make_design()
        row = design.row("block")
        row.record_measurement(1.25)
        row.clear_measurement()
        report = evaluate_power(design)
        assert report["block"].power == pytest.approx(2.0)
        assert report["block"].source == "modeled"

    def test_negative_measurement_rejected(self):
        design = make_design()
        with pytest.raises(DesignError):
            design.row("block").record_measurement(-1.0)

    def test_measured_row_ignores_parameter_sweeps(self):
        """A measurement is a number, not a model: VDD edits no longer
        move the row until the measurement is cleared."""
        design = make_design()
        design.row("block").record_measurement(1.0)
        base = evaluate_power(design)["block"].power
        swept = evaluate_power(design, overrides={"VDD": 3.0})["block"].power
        assert swept == pytest.approx(base)

    def test_converter_feeds_see_measured_values(self):
        """EQ 19 runs on whatever the rows report — including
        measurements."""
        from repro.models.converter import DCDCConverterModel

        design = make_design()
        design.add(
            "regulator",
            DCDCConverterModel(efficiency=0.8),
            params={"eta": 0.8},
            power_feeds=["block"],
        )
        design.row("block").record_measurement(4.0)
        report = evaluate_power(design)
        assert report["regulator"].power == pytest.approx(4.0 * 0.25)


class TestPersistence:
    def test_source_and_measurement_round_trip(self):
        design = make_design()
        design.row("block").record_measurement(1.75)
        clone = design_from_json(design_to_json(design))
        row = clone.row("block")
        assert row.source == "measured"
        assert row.measured_power == pytest.approx(1.75)
        assert evaluate_power(clone)["block"].power == pytest.approx(1.75)

    def test_datasheet_label_round_trips(self):
        clone = design_from_json(design_to_json(make_design()))
        assert clone.row("block").source == "datasheet"

    def test_web_sheet_shows_source_column(self, tmp_path):
        from repro.web.app import Application

        app = Application(tmp_path / "state")
        app.handle("POST", "/login", {"user": "x"})
        app.handle(
            "POST", "/design/load_example",
            {"user": "x", "example": "infopad"},
        )
        page = app.handle("GET", "/design?user=x&name=infopad")
        assert "<th>Source</th>" in page.body
        assert "measured" in page.body
