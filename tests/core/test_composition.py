"""Compositional delay estimation (the paper's 'being examined' item)."""

import pytest

from repro.core.composition import (
    Chain,
    FixedDelay,
    Iterative,
    ParallelPaths,
    Pipelined,
    meets_frequency,
    slack,
)
from repro.core.model import VoltageScaledTimingModel
from repro.errors import ModelError

ENV = {"VDD": 1.5}


def block(name, delay_ns):
    return FixedDelay(name, delay_ns * 1e-9)


class TestChain:
    def test_delays_add(self):
        chain = Chain("path", [block("a", 3), block("b", 5), block("c", 2)])
        assert chain.delay(ENV) == pytest.approx(10e-9)

    def test_breakdown(self):
        chain = Chain("path", [block("a", 3), block("b", 5)])
        assert chain.breakdown(ENV) == pytest.approx(
            {"a": 3e-9, "b": 5e-9}
        )

    def test_needs_blocks(self):
        with pytest.raises(ModelError):
            Chain("empty", [])

    def test_nests(self):
        inner = Chain("inner", [block("a", 1), block("b", 1)])
        outer = Chain("outer", [inner, block("c", 3)])
        assert outer.delay(ENV) == pytest.approx(5e-9)


class TestParallel:
    def test_slowest_dominates(self):
        paths = ParallelPaths("join", [block("fast", 2), block("slow", 9)])
        assert paths.delay(ENV) == pytest.approx(9e-9)

    def test_critical_path_identification(self):
        slow = block("slow", 9)
        paths = ParallelPaths("join", [block("fast", 2), slow])
        assert paths.critical_path(ENV) is slow

    def test_critical_path_can_move_with_voltage(self):
        """A voltage-scaled gate path vs a fixed wire path: the critical
        path flips as VDD drops — the thing composition exposes."""
        gates = VoltageScaledTimingModel("gates", delay_ref=5e-9, v_ref=1.5)
        wire = FixedDelay("wire", 7e-9)
        join = ParallelPaths("join", [gates, wire])
        assert join.critical_path({"VDD": 3.0}) is wire
        assert join.critical_path({"VDD": 1.0}) is gates

    def test_needs_paths(self):
        with pytest.raises(ModelError):
            ParallelPaths("empty", [])


class TestPipelined:
    def test_cycle_time_is_slowest_stage_plus_overhead(self):
        pipe = Pipelined(
            "pipe", [block("s1", 4), block("s2", 9), block("s3", 6)],
            register_overhead=1e-9,
        )
        assert pipe.delay(ENV) == pytest.approx(10e-9)

    def test_latency(self):
        pipe = Pipelined("pipe", [block("s1", 4), block("s2", 9)],
                         register_overhead=1e-9)
        assert pipe.latency(ENV) == pytest.approx(2 * 10e-9)

    def test_max_frequency(self):
        pipe = Pipelined("pipe", [block("s", 9)], register_overhead=1e-9)
        assert pipe.max_frequency(ENV) == pytest.approx(1e8)

    def test_pipelining_beats_the_chain(self):
        """The architecture-level speed/power lever: same logic, higher
        clock ceiling."""
        stages = [block("s1", 6), block("s2", 6), block("s3", 6)]
        chain = Chain("combinational", stages)
        pipe = Pipelined("pipelined", stages, register_overhead=1.5e-9)
        assert pipe.delay(ENV) < chain.delay(ENV)

    def test_validation(self):
        with pytest.raises(ModelError):
            Pipelined("p", [])
        with pytest.raises(ModelError):
            Pipelined("p", [block("s", 1)], register_overhead=-1)


class TestIterative:
    def test_multiplies(self):
        serial = Iterative("serial_mult", block("add_shift", 5), 16)
        assert serial.delay(ENV) == pytest.approx(80e-9)

    def test_validation(self):
        with pytest.raises(ModelError):
            Iterative("bad", block("x", 1), 0)

    def test_serial_vs_parallel_tradeoff(self):
        """One adder reused 16x vs an array: the classic area/time swap
        whose power side the luminance study explores."""
        serial = Iterative("serial", block("adder", 5), 16)
        array = Chain("array", [block(f"row{i}", 5) for i in range(4)])
        assert serial.delay(ENV) > array.delay(ENV)


class TestConstraints:
    def test_meets_frequency(self):
        path = Chain("p", [block("a", 40)])
        assert meets_frequency(path, 20e6, ENV)       # 50 ns period
        assert not meets_frequency(path, 30e6, ENV)   # 33 ns period

    def test_slack_sign(self):
        path = Chain("p", [block("a", 40)])
        assert slack(path, 20e6, ENV) == pytest.approx(10e-9)
        assert slack(path, 30e6, ENV) < 0

    def test_frequency_validation(self):
        with pytest.raises(ModelError):
            meets_frequency(block("a", 1), 0, ENV)
        with pytest.raises(ModelError):
            slack(block("a", 1), -1, ENV)

    def test_fixed_delay_validation(self):
        with pytest.raises(ModelError):
            FixedDelay("bad", -1e-9)


class TestWithLibraryModels:
    def test_luminance_datapath_composition(self):
        """LUT access then mux then register, at the Figure 3 rates."""
        lut = VoltageScaledTimingModel("lut", delay_ref=9e-9 * 1.25, v_ref=1.5)
        mux = VoltageScaledTimingModel("mux", delay_ref=1.2e-9, v_ref=1.5)
        path = Chain("pixel_path", [lut, mux])
        # pixel period at 2 MHz is 508 ns: plenty of slack at 1.5 V
        assert meets_frequency(path, 1.966e6, {"VDD": 1.5})
        # and still fine at 1.1 V — headroom the optimizer can spend
        assert meets_frequency(path, 1.966e6, {"VDD": 1.1})
