"""Hierarchical estimation: the Play button and its analyses."""

import pytest
from hypothesis import given, strategies as st

from repro.core.design import Design
from repro.core.estimator import (
    consumers_for_fraction,
    compare,
    coverage,
    evaluate_area,
    evaluate_power,
    evaluate_timing,
    scope_overrides,
    sweep,
    top_consumers,
)
from repro.core.expressions import compile_expression as E
from repro.core.model import (
    CapacitiveTerm,
    ExpressionAreaModel,
    ExpressionPowerModel,
    ModelSet,
    TemplatePowerModel,
    VoltageScaledTimingModel,
)
from repro.core.parameters import Parameter, ParameterScope
from repro.errors import DesignError, ModelError

ADDER = TemplatePowerModel(
    "adder",
    capacitive=[CapacitiveTerm("bits", E("bitwidth * 68f"))],
    parameters=(Parameter("bitwidth", 16),),
)

FULL_SET = ModelSet(
    power=ADDER,
    area=ExpressionAreaModel("area", "bitwidth * 2n", (Parameter("bitwidth", 16),)),
    timing=VoltageScaledTimingModel("delay", 10e-9),
)


def nested_design():
    leafs = Design("leafs")
    leafs.add("x", ADDER, params={"bitwidth": 8})
    leafs.add("y", ADDER, params={"bitwidth": 24})
    top = Design("top")
    top.scope.set("VDD", 1.5)
    top.scope.set("f", 2e6)
    top.add("z", ADDER, params={"bitwidth": 16})
    top.add_subdesign("sub", leafs)
    return top


class TestPowerEvaluation:
    def test_root_is_sum_of_children(self):
        report = evaluate_power(nested_design())
        assert report.power == pytest.approx(
            sum(child.power for child in report.children)
        )

    def test_inner_nodes_sum_of_leaves(self):
        report = evaluate_power(nested_design())
        sub = report["sub"]
        assert sub.power == pytest.approx(sum(c.power for c in sub.children))

    def test_flatten_paths(self):
        report = evaluate_power(nested_design())
        paths = [path for path, _ in report.flatten()]
        assert paths == ["top/z", "top/sub/x", "top/sub/y"]

    def test_leaves_iteration(self):
        report = evaluate_power(nested_design())
        assert len(list(report.leaves())) == 3

    def test_child_lookup_errors(self):
        report = evaluate_power(nested_design())
        with pytest.raises(DesignError):
            report.child("nope")

    def test_overrides_do_not_leak(self):
        design = nested_design()
        base = evaluate_power(design).power
        boosted = evaluate_power(design, overrides={"VDD": 3.0}).power
        assert boosted == pytest.approx(4 * base)
        assert evaluate_power(design).power == pytest.approx(base)

    def test_override_with_formula(self):
        design = nested_design()
        design.scope.set("V_nom", 1.5)
        report = evaluate_power(design, overrides={"VDD": "V_nom * 2"})
        assert report.power == pytest.approx(4 * evaluate_power(design).power)

    def test_model_error_names_row(self):
        design = Design("d")
        design.add("bad", ExpressionPowerModel("bad", "ghost * 2"))
        with pytest.raises(ModelError, match="'bad'"):
            evaluate_power(design)

    def test_report_parameters_snapshot(self):
        report = evaluate_power(nested_design())
        assert report["z"].parameters["bitwidth"] == 16.0
        assert report.parameters["VDD"] == 1.5


class TestScopeOverrides:
    def test_restores_values_and_formulas(self):
        scope = ParameterScope({"a": 1.0, "b": "a * 2"})
        with scope_overrides(scope, {"a": 5.0, "b": 7.0}):
            assert scope["a"] == 5.0
            assert scope["b"] == 7.0
        assert scope["a"] == 1.0
        assert scope["b"] == 2.0  # formula restored, not frozen value

    def test_restores_on_exception(self):
        scope = ParameterScope({"a": 1.0})
        with pytest.raises(RuntimeError):
            with scope_overrides(scope, {"a": 9.0}):
                raise RuntimeError("boom")
        assert scope["a"] == 1.0

    def test_new_name_removed_after(self):
        scope = ParameterScope({"a": 1.0})
        with scope_overrides(scope, {"fresh": 2.0}):
            assert scope["fresh"] == 2.0
        assert "fresh" not in scope


class TestAreaTiming:
    def make(self):
        design = Design("d")
        design.scope.set("VDD", 1.5)
        design.scope.set("f", 2e6)
        design.add("a", FULL_SET, params={"bitwidth": 8})
        design.add("b", FULL_SET, params={"bitwidth": 16})
        design.add("no_area", ADDER, params={"bitwidth": 4})
        return design

    def test_area_sums_modeled_rows(self):
        report = evaluate_area(self.make())
        assert report.area == pytest.approx((8 + 16) * 2e-9)
        unmodeled = [c for c in report.children if not c.modeled]
        assert [c.name for c in unmodeled] == ["no_area"]

    def test_timing_is_max(self):
        design = self.make()
        report = evaluate_timing(design)
        modeled = [c.delay for c in report.children if c.modeled]
        assert report.delay == pytest.approx(max(modeled))

    def test_timing_voltage_tradeoff(self):
        design = self.make()
        slow = evaluate_timing(design, overrides={"VDD": 1.1}).delay
        fast = evaluate_timing(design, overrides={"VDD": 3.0}).delay
        assert slow > fast

    def test_area_feed_into_interconnect(self):
        from repro.models.interconnect import InterconnectModel

        design = self.make()
        design.add(
            "wiring",
            InterconnectModel(),
            params={"activity": 0.25},
            area_feeds=["a", "b"],
        )
        report = evaluate_power(design)
        assert report["wiring"].power > 0


class TestAnalyses:
    def test_top_consumers_sorted(self):
        report = evaluate_power(nested_design())
        ranked = top_consumers(report, 3)
        values = [watts for _path, watts in ranked]
        assert values == sorted(values, reverse=True)
        assert ranked[0][0] == "top/sub/y"  # widest adder

    def test_coverage_monotonic_and_complete(self):
        report = evaluate_power(nested_design())
        rows = coverage(report)
        cumulative = [fraction for _p, _w, fraction in rows]
        assert cumulative == sorted(cumulative)
        assert cumulative[-1] == pytest.approx(1.0)

    def test_consumers_for_fraction(self):
        report = evaluate_power(nested_design())
        selected = consumers_for_fraction(report, 0.5)
        total = sum(watts for _path, watts in selected)
        assert total / report.power >= 0.5
        # minimality: dropping the last selection goes below the target
        if len(selected) > 1:
            assert (total - selected[-1][1]) / report.power < 0.5

    def test_fraction_bounds(self):
        report = evaluate_power(nested_design())
        with pytest.raises(ValueError):
            consumers_for_fraction(report, 0.0)
        with pytest.raises(ValueError):
            consumers_for_fraction(report, 1.5)

    def test_sweep_shape(self):
        design = nested_design()
        results = sweep(design, "VDD", [1.0, 2.0, 3.0])
        assert [value for value, _w in results] == [1.0, 2.0, 3.0]
        watts = [w for _v, w in results]
        assert watts[1] == pytest.approx(4 * watts[0])
        assert watts[2] == pytest.approx(9 * watts[0])

    def test_sweep_with_overrides(self):
        design = nested_design()
        plain = sweep(design, "VDD", [1.5])
        doubled = sweep(design, "VDD", [1.5], overrides={"f": 4e6})
        assert doubled[0][1] == pytest.approx(2 * plain[0][1])

    def test_compare(self):
        a = nested_design()
        b = nested_design()
        b.name = "other"
        results = compare([a, b])
        assert [name for name, _w in results] == ["top", "other"]
        assert results[0][1] == pytest.approx(results[1][1])


@given(
    st.lists(st.integers(min_value=1, max_value=64), min_size=1, max_size=8),
    st.floats(min_value=0.8, max_value=5.0),
)
def test_property_hierarchy_sum_invariant(bitwidths, vdd):
    """Any design's total equals the sum over its leaves."""
    design = Design("p")
    design.scope.set("VDD", vdd)
    design.scope.set("f", 1e6)
    for index, bits in enumerate(bitwidths):
        design.add(f"row{index}", ADDER, params={"bitwidth": bits})
    report = evaluate_power(design)
    assert report.power == pytest.approx(
        sum(watts for _path, watts in report.flatten())
    )
