"""The memoized evaluation cache: hits, bounds, and — above all —
invalidation.  Every mutation the web UI can perform must change the
fingerprint; the proof in each case is equality with a *fresh*
``evaluate_power`` of the mutated design."""

import pytest

from repro.core.design import Design
from repro.core.estimator import evaluate_power
from repro.core.evalcache import (
    DEFAULT_CACHE,
    EvaluationCache,
    cached_evaluate_power,
    design_fingerprint,
)
from repro.core.model import ExpressionPowerModel
from repro.core.parameters import Parameter
from repro.designs.infopad import build_infopad
from repro.designs.luminance import build_figure1_design


def _probe_model(name="probe_model"):
    return ExpressionPowerModel(
        name, "C * VDD^2 * f", parameters=[Parameter("C", 1e-12, "F")]
    )


def _simple_design(name="cache_probe"):
    design = Design(name)
    design.scope.set("VDD", 3.3)
    design.scope.set("f", 1e6)
    design.add("row1", _probe_model())
    return design


class TestHitsAndBounds:
    def test_identical_design_hits(self):
        cache = EvaluationCache()
        design = build_infopad()
        first = cache.power(design)
        second = cache.power(design)
        assert cache.stats() == {
            "size": 1, "hits": 1, "misses": 1, "evictions": 0
        }
        assert second.power == first.power

    def test_hit_returns_independent_copy(self):
        cache = EvaluationCache()
        design = _simple_design()
        first = cache.power(design)
        first.parameters["VDD"] = -1.0
        first.children.clear()
        second = cache.power(design)
        assert second.parameters.get("VDD") != -1.0
        assert second.children, "cache must not serve caller-mutated reports"

    def test_kinds_are_separate_keys(self):
        cache = EvaluationCache()
        design = build_infopad()
        cache.power(design)
        cache.area(design)
        cache.timing(design)
        assert cache.stats()["size"] == 3
        assert cache.stats()["misses"] == 3

    def test_lru_bound_and_eviction(self):
        cache = EvaluationCache(maxsize=2)
        designs = [_simple_design(f"d{i}") for i in range(3)]
        for design in designs:
            cache.power(design)
        stats = cache.stats()
        assert stats["size"] == 2
        assert stats["evictions"] == 1
        # d0 was evicted; d2 (most recent) still hits
        cache.power(designs[2])
        assert cache.stats()["hits"] == 1
        cache.power(designs[0])
        assert cache.stats()["misses"] == 4

    def test_lru_recency_order(self):
        cache = EvaluationCache(maxsize=2)
        a, b, c = (_simple_design(f"d{i}") for i in range(3))
        cache.power(a)
        cache.power(b)
        cache.power(a)  # refresh a; b is now least-recent
        cache.power(c)  # evicts b
        cache.power(a)
        assert cache.stats()["hits"] == 2
        cache.power(b)
        assert cache.stats()["misses"] == 4

    def test_default_cache_helpers(self):
        design = _simple_design("default_cache_probe")
        before = DEFAULT_CACHE.stats()["misses"]
        report = cached_evaluate_power(design)
        assert report.power == pytest.approx(evaluate_power(design).power)
        assert DEFAULT_CACHE.stats()["misses"] == before + 1

    def test_explicit_empty_cache_is_used_not_default(self):
        """Regression: __len__ makes an empty cache falsy, so a
        ``cache or DEFAULT_CACHE`` fallback would silently route an
        explicitly passed (empty) cache to the global one."""
        private = EvaluationCache()
        design = _simple_design("empty_cache_probe")
        default_before = DEFAULT_CACHE.stats()["misses"]
        cached_evaluate_power(design, cache=private)
        assert private.stats()["misses"] == 1
        assert DEFAULT_CACHE.stats()["misses"] == default_before

    def test_overrides_are_part_of_the_key(self):
        cache = EvaluationCache()
        design = build_figure1_design()
        base = cache.power(design)
        low = cache.power(design, overrides={"VDD": 1.1})
        assert cache.stats()["misses"] == 2
        assert low.power != base.power
        again = cache.power(design, overrides={"VDD": 1.1})
        assert cache.stats()["hits"] == 1
        assert again.power == low.power


class TestInvalidation:
    """Each mutation must force re-evaluation matching a fresh one."""

    def _assert_tracks_fresh(self, cache, design):
        cached = cache.power(design)
        fresh = evaluate_power(design)
        assert cached.power == pytest.approx(fresh.power)

    def test_scope_set(self):
        cache = EvaluationCache()
        design = _simple_design()
        before = cache.power(design).power
        design.scope.set("VDD", 1.1)
        self._assert_tracks_fresh(cache, design)
        assert cache.power(design).power != pytest.approx(before)

    def test_row_parameter_set(self):
        cache = EvaluationCache()
        design = _simple_design()
        before = cache.power(design).power
        design.row("row1").set("C", 2e-12)
        self._assert_tracks_fresh(cache, design)
        assert cache.power(design).power == pytest.approx(before * 2)

    def test_add_and_remove_row(self):
        cache = EvaluationCache()
        design = _simple_design()
        single = cache.power(design).power
        design.add("row2", _probe_model("probe_model2"))
        self._assert_tracks_fresh(cache, design)
        assert cache.power(design).power == pytest.approx(single * 2)
        design.remove("row2")
        # back to the original fingerprint — this should HIT, and be right
        hits_before = cache.stats()["hits"]
        assert cache.power(design).power == pytest.approx(single)
        assert cache.stats()["hits"] == hits_before + 1

    def test_quantity_change(self):
        cache = EvaluationCache()
        design = _simple_design()
        single = cache.power(design).power
        design.row("row1").quantity = 3
        self._assert_tracks_fresh(cache, design)
        assert cache.power(design).power == pytest.approx(single * 3)

    def test_record_measurement(self):
        cache = EvaluationCache()
        design = _simple_design()
        modeled = cache.power(design).power
        design.row("row1").record_measurement(42.0)
        self._assert_tracks_fresh(cache, design)
        assert cache.power(design).power == pytest.approx(42.0)
        design.row("row1").clear_measurement()
        assert cache.power(design).power == pytest.approx(modeled)

    def test_macro_inner_design_mutation(self):
        """A macro wraps a live design — inner edits must invalidate the
        outer design's fingerprint."""
        inner = _simple_design("inner")
        outer = Design("outer")
        outer.scope.set("f_clk", 1e6)
        outer.add("macro_row", inner.as_macro())
        before = EvaluationCache()
        first = before.power(outer).power
        inner.scope.set("VDD", 1.1)
        cached = before.power(outer)
        fresh = evaluate_power(outer)
        assert cached.power == pytest.approx(fresh.power)
        assert cached.power != pytest.approx(first)

    def test_infopad_global_parameter(self):
        cache = EvaluationCache()
        design = build_infopad()
        nominal = cache.power(design).power
        design.scope.set("VDD2", 1.1)
        self._assert_tracks_fresh(cache, design)
        assert cache.power(design).power != pytest.approx(nominal)


class TestFingerprint:
    def test_stable_for_unchanged_design(self):
        design = build_infopad()
        assert design_fingerprint(design) == design_fingerprint(design)

    def test_differs_across_equivalent_but_distinct_models(self):
        """Two structurally identical designs use distinct model objects;
        identity-based model tokens must keep their keys apart (models
        are only guaranteed immutable per instance)."""
        assert design_fingerprint(_simple_design()) != design_fingerprint(
            _simple_design()
        )

    def test_overrides_change_fingerprint(self):
        design = build_infopad()
        assert design_fingerprint(design) != design_fingerprint(
            design, overrides={"VDD2": 1.1}
        )
        assert design_fingerprint(
            design, overrides={"VDD2": 1.1}
        ) == design_fingerprint(design, overrides={"VDD2": 1.1})

    def test_maxsize_validated(self):
        with pytest.raises(ValueError):
            EvaluationCache(maxsize=0)
