"""Property-based tests for engineering-notation quantities.

The invariants behind every value PowerPlay displays or accepts:

* ``parse_quantity(format_quantity(v, unit))`` recovers ``v`` to the
  printed precision, with the same unit (round-trip);
* SI prefixes scale exactly as documented, and ``split_prefix`` never
  invents magnitude (multiplier x unit is lossless);
* ``format_quantity`` keeps the mantissa in ``[1, 1000)`` whenever a
  prefix exists for the magnitude;
* :class:`Quantity` addition is commutative and unit-checked.
"""

from __future__ import annotations

import math

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import assume, given, settings, strategies as st  # noqa: E402

from repro.core.units import (  # noqa: E402
    KNOWN_UNITS,
    SI_PREFIXES,
    Quantity,
    format_eng,
    format_quantity,
    parse_quantity,
    split_prefix,
)
from repro.errors import UnitError  # noqa: E402

UNITS = sorted(KNOWN_UNITS - {""})

#: magnitudes covered by the formatting prefix table (f .. T)
formattable = st.floats(
    min_value=1e-15, max_value=9.99e14, allow_nan=False, allow_infinity=False
)


@given(value=formattable, unit=st.sampled_from(UNITS))
@settings(max_examples=300, deadline=None)
def test_format_parse_round_trip(value, unit):
    """Printing then parsing recovers value (to print precision) + unit."""
    text = format_quantity(value, unit, digits=12)
    parsed_value, parsed_unit = parse_quantity(text)
    assert parsed_unit == unit
    assert parsed_value == pytest.approx(value, rel=1e-9)


@given(value=formattable)
@settings(max_examples=200, deadline=None)
def test_format_mantissa_in_engineering_range(value):
    text = format_quantity(value, "W", digits=12)
    mantissa = float(text.split()[0])
    assert 1.0 <= abs(mantissa) < 1000.0 or mantissa == 0.0


@given(
    mantissa=st.floats(min_value=0.001, max_value=999.0, allow_nan=False),
    prefix=st.sampled_from(sorted(set(SI_PREFIXES) - {"µ", "μ", "K"})),
    unit=st.sampled_from(["F", "V", "W", "Hz", "s", "A", "J"]),
)
@settings(max_examples=300, deadline=None)
def test_prefix_scales_exactly(mantissa, prefix, unit):
    """``<n><prefix><unit>`` parses to n x multiplier, unit preserved."""
    value, parsed_unit = parse_quantity(f"{mantissa!r}{prefix}{unit}")
    assert parsed_unit == unit
    assert value == mantissa * SI_PREFIXES[prefix]


@given(
    prefix=st.sampled_from(sorted(SI_PREFIXES)),
    unit=st.sampled_from(UNITS),
)
@settings(max_examples=200, deadline=None)
def test_split_prefix_lossless(prefix, unit):
    """multiplier x unit from split_prefix reconstructs the symbol's
    meaning: a known unit never gets its first letter eaten."""
    multiplier, parsed = split_prefix(unit)
    assert (multiplier, parsed) == (1.0, unit)
    fused = f"{prefix}{unit}"
    multiplier, parsed = split_prefix(fused)
    if fused in KNOWN_UNITS:
        assert (multiplier, parsed) == (1.0, fused)
    else:
        assert multiplier == SI_PREFIXES[prefix]
        assert parsed == unit


@given(value=formattable, unit=st.sampled_from(UNITS))
@settings(max_examples=200, deadline=None)
def test_format_eng_round_trip(value, unit):
    """The Figure-2 style ``7.438e-04 W`` rendering parses back."""
    parsed_value, parsed_unit = parse_quantity(format_eng(value, unit, 12))
    assert parsed_unit == unit
    assert parsed_value == pytest.approx(value, rel=1e-9)


@given(
    a=st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
    b=st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
    unit=st.sampled_from(UNITS),
)
@settings(max_examples=200, deadline=None)
def test_quantity_addition_commutes(a, b, unit):
    left = Quantity(a, unit) + Quantity(b, unit)
    right = Quantity(b, unit) + Quantity(a, unit)
    assert left.value == right.value
    assert left.unit == right.unit == unit


@given(
    a=st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
    b=st.floats(min_value=-1e9, max_value=1e9, allow_nan=False),
    unit_a=st.sampled_from(UNITS),
    unit_b=st.sampled_from(UNITS),
)
@settings(max_examples=100, deadline=None)
def test_quantity_addition_unit_checked(a, b, unit_a, unit_b):
    assume(unit_a != unit_b)
    with pytest.raises(UnitError):
        Quantity(a, unit_a) + Quantity(b, unit_b)
