"""Design hierarchy: rows, inheritance, feeds, macros, sub-designs."""

import pytest

from repro.core.design import Design, MacroPowerModel
from repro.core.estimator import evaluate_power
from repro.core.expressions import compile_expression as E
from repro.core.model import (
    CapacitiveTerm,
    ExpressionPowerModel,
    TemplatePowerModel,
)
from repro.core.parameters import Parameter
from repro.errors import DesignError

ADDER = TemplatePowerModel(
    "adder",
    capacitive=[CapacitiveTerm("bits", E("bitwidth * 68f"))],
    parameters=(Parameter("bitwidth", 16),),
)


def simple_design():
    design = Design("d")
    design.scope.set("VDD", 1.5)
    design.scope.set("f", 2e6)
    design.add("adder", ADDER, params={"bitwidth": 8})
    return design


class TestRows:
    def test_add_and_lookup(self):
        design = simple_design()
        assert "adder" in design
        assert design.row("adder").scope["bitwidth"] == 8.0
        assert len(design) == 1

    def test_duplicate_name_rejected(self):
        design = simple_design()
        with pytest.raises(DesignError, match="duplicate"):
            design.add("adder", ADDER)

    def test_empty_name_rejected(self):
        with pytest.raises(DesignError):
            simple_design().add("", ADDER)

    def test_unknown_row(self):
        with pytest.raises(DesignError, match="no row"):
            simple_design().row("ghost")

    def test_row_order_preserved(self):
        design = simple_design()
        design.add("second", ADDER)
        design.add("third", ADDER)
        assert design.row_names() == ["adder", "second", "third"]

    def test_remove(self):
        design = simple_design()
        design.remove("adder")
        assert "adder" not in design

    def test_remove_fed_row_rejected(self):
        design = simple_design()
        design.add(
            "conv",
            ExpressionPowerModel("conv", "P_load * 0.1"),
            power_feeds=["adder"],
        )
        with pytest.raises(DesignError, match="feeds on it"):
            design.remove("adder")

    def test_quantity_validation(self):
        with pytest.raises(DesignError, match="quantity"):
            simple_design().add("x", ADDER, quantity=0)

    def test_quantity_multiplies_power(self):
        design = simple_design()
        design.add("bank", ADDER, params={"bitwidth": 8}, quantity=4)
        report = evaluate_power(design)
        assert report["bank"].power == pytest.approx(4 * report["adder"].power)


class TestInheritance:
    def test_global_parameter_reaches_row(self):
        design = simple_design()
        report_a = evaluate_power(design)
        design.scope.set("VDD", 3.0)
        report_b = evaluate_power(design)
        assert report_b.power == pytest.approx(4 * report_a.power)

    def test_model_default_used_when_parent_lacks_value(self):
        design = Design("d")
        design.scope.set("VDD", 1.5)
        design.scope.set("f", 2e6)
        instance = design.add("adder", ADDER)  # no explicit bitwidth
        assert instance.scope["bitwidth"] == 16.0

    def test_parent_value_wins_over_model_default(self):
        design = Design("d")
        design.scope.set("VDD", 1.5)
        design.scope.set("f", 2e6)
        design.scope.set("bitwidth", 24)
        instance = design.add("adder", ADDER)
        assert instance.scope["bitwidth"] == 24.0

    def test_row_override_wins_over_everything(self):
        design = Design("d")
        design.scope.set("VDD", 1.5)
        design.scope.set("f", 2e6)
        design.scope.set("bitwidth", 24)
        instance = design.add("adder", ADDER, params={"bitwidth": 4})
        assert instance.scope["bitwidth"] == 4.0

    def test_formula_row_parameter(self):
        design = Design("d")
        design.scope.set("VDD", 1.5)
        design.scope.set("f_pixel", 2e6)
        instance = design.add("lut", ADDER, params={"f": "f_pixel / 16"})
        assert instance.scope["f"] == pytest.approx(125e3)


class TestFeeds:
    def test_power_feed_environment(self):
        design = simple_design()
        design.add(
            "conv",
            ExpressionPowerModel("conv", "P_load * 0.5"),
            power_feeds=["adder"],
        )
        report = evaluate_power(design)
        assert report["conv"].power == pytest.approx(0.5 * report["adder"].power)

    def test_named_feed_values(self):
        design = simple_design()
        design.add("adder2", ADDER, params={"bitwidth": 16})
        design.add(
            "diff",
            ExpressionPowerModel("diff", "P.adder2 - P.adder"),
            power_feeds=["adder", "adder2"],
        )
        report = evaluate_power(design)
        assert report["diff"].power == pytest.approx(
            report["adder2"].power - report["adder"].power
        )

    def test_feed_on_unknown_row(self):
        design = simple_design()
        design.add(
            "conv", ExpressionPowerModel("conv", "P_load"), power_feeds=["ghost"]
        )
        with pytest.raises(DesignError, match="unknown"):
            design.evaluation_order()

    def test_feed_cycle_detected(self):
        design = Design("d")
        design.scope.set("VDD", 1.5)
        design.scope.set("f", 1e6)
        design.add("a", ExpressionPowerModel("a", "P_load"), power_feeds=["b"])
        design.add("b", ExpressionPowerModel("b", "P_load"), power_feeds=["a"])
        with pytest.raises(DesignError, match="cycle"):
            design.evaluation_order()

    def test_feeds_evaluated_before_consumers_regardless_of_order(self):
        design = Design("d")
        design.scope.set("VDD", 1.5)
        design.scope.set("f", 2e6)
        # converter added FIRST, feeding on a later row
        design.add(
            "conv", ExpressionPowerModel("conv", "P_load * 0.1"),
            power_feeds=["load"],
        )
        design.add("load", ADDER, params={"bitwidth": 8})
        order = design.evaluation_order()
        assert order.index("load") < order.index("conv")
        report = evaluate_power(design)
        assert report["conv"].power == pytest.approx(0.1 * report["load"].power)


class TestSubDesigns:
    def test_mount_and_inherit(self):
        child = Design("child")
        child.add("adder", ADDER, params={"bitwidth": 8})
        parent = Design("parent")
        parent.scope.set("VDD", 1.5)
        parent.scope.set("f", 2e6)
        parent.add_subdesign("child", child)
        report = evaluate_power(parent)
        assert report["child"]["adder"].power > 0

    def test_self_mount_rejected(self):
        design = Design("d")
        with pytest.raises(DesignError, match="cannot contain itself"):
            design.add_subdesign("self", design)

    def test_double_mount_rejected(self):
        child = Design("child")
        parent_a = Design("a")
        parent_b = Design("b")
        parent_a.add_subdesign("child", child)
        with pytest.raises(DesignError, match="already mounted"):
            parent_b.add_subdesign("child", child)

    def test_subdesign_set_reaches_its_scope(self):
        child = Design("child")
        parent = Design("parent")
        row = parent.add_subdesign("child", child)
        row.set("VDD", 2.0)
        assert child.scope["VDD"] == 2.0


class TestMacro:
    def test_macro_matches_design_total(self):
        design = simple_design()
        macro = design.as_macro()
        assert macro.power({}) == pytest.approx(evaluate_power(design).power)

    def test_exported_parameter(self):
        design = simple_design()
        macro = design.as_macro(exported=["VDD"])
        base = macro.power({"VDD": 1.5})
        assert macro.power({"VDD": 3.0}) == pytest.approx(4 * base)

    def test_export_restores_scope(self):
        design = simple_design()
        macro = design.as_macro(exported=["VDD"])
        macro.power({"VDD": 5.0})
        assert design.scope["VDD"] == 1.5

    def test_export_unknown_parameter(self):
        with pytest.raises(DesignError, match="not resolvable"):
            simple_design().as_macro(exported=["ghost"])

    def test_macro_breakdown(self):
        design = simple_design()
        design.add("adder2", ADDER)
        macro = design.as_macro()
        breakdown = macro.breakdown({})
        assert set(breakdown) == {"adder", "adder2"}

    def test_macro_usable_as_library_row(self):
        inner = simple_design()
        macro = inner.as_macro(exported=["VDD"], name="adder_macro")
        outer = Design("outer")
        outer.scope.set("VDD", 3.0)
        outer.scope.set("f", 2e6)
        outer.add("ip", macro)
        report = evaluate_power(outer)
        assert report["ip"].power == pytest.approx(macro.power({"VDD": 3.0}))


class TestUnmount:
    def test_removed_subdesign_can_be_remounted(self):
        child = Design("child")
        child.add("adder", ADDER, params={"bitwidth": 8})
        first_parent = Design("first")
        first_parent.scope.set("VDD", 1.5)
        first_parent.scope.set("f", 2e6)
        first_parent.add_subdesign("child", child)
        first_parent.remove("child")
        assert child.scope.parent is None
        second_parent = Design("second")
        second_parent.scope.set("VDD", 3.0)
        second_parent.scope.set("f", 2e6)
        second_parent.add_subdesign("child", child)
        report = evaluate_power(second_parent)
        assert report["child"]["adder"].power > 0
        # the child now inherits the *second* parent's supply
        assert child.scope["VDD"] == 3.0
