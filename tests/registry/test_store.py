"""The crash-safe mirror store: atomic writes, quarantine, pins, GC."""

import json
import os

import pytest

from repro import obs
from repro.errors import ArtifactConflict, IntegrityError, RegistryError
from repro.registry.artifacts import ModelArtifact
from repro.registry.store import MirrorStore


class FakeClock:
    def __init__(self):
        self.now = 1000.0

    def __call__(self):
        return self.now


@pytest.fixture(autouse=True)
def clean_metrics():
    obs.get_registry().reset()


@pytest.fixture
def store(tmp_path):
    return MirrorStore(tmp_path / "mirror", clock=FakeClock())


def make(name="sram", version=1, value=1.0, kind="entry"):
    return ModelArtifact.create(
        kind, name, {"value": value}, version=version, publisher="test",
        clock=lambda: 500.0,
    )


class TestPutGet:
    def test_roundtrip(self, store):
        stored = store.put(make())
        fetched = store.get("entry", "sram", 1)
        assert fetched == stored
        assert ("entry", "sram", 1) in store
        assert len(store) == 1

    def test_latest_by_default(self, store):
        store.put(make(version=1, value=1.0))
        store.put(make(version=3, value=3.0))
        store.put(make(version=2, value=2.0))
        assert store.get("entry", "sram").version == 3

    def test_missing_raises(self, store):
        with pytest.raises(RegistryError, match="no artifact"):
            store.get("entry", "ghost")
        with pytest.raises(RegistryError, match="no artifact"):
            store.get("entry", "sram", 7)

    def test_duplicate_put_is_idempotent(self, store):
        store.put(make())
        store.put(make())  # same content, no conflict
        assert len(store) == 1

    def test_conflicting_put_refused(self, store):
        store.put(make(value=1.0))
        with pytest.raises(ArtifactConflict, match="refusing to replace"):
            store.put(make(value=2.0))
        # the original survives untouched
        assert store.get("entry", "sram").payload["value"] == 1.0

    def test_unverified_artifact_never_lands(self, store, tmp_path):
        wire = make().to_wire()
        wire["payload"] = {"value": 666.0}
        bad = ModelArtifact.from_wire(wire, verify=False)
        with pytest.raises(IntegrityError):
            store.put(bad)
        assert len(store) == 0
        assert list((tmp_path / "mirror").glob("*.json")) == []

    def test_no_temp_droppings(self, store, tmp_path):
        for version in range(1, 6):
            store.put(make(version=version, value=float(version)))
        leftovers = [
            p for p in (tmp_path / "mirror").iterdir()
            if p.suffix == ".saving"
        ]
        assert leftovers == []


class TestQuarantine:
    def _corrupt_on_disk(self, store, artifact, mutate):
        path = store._path(artifact.kind, artifact.name, artifact.version)
        mutate(path)
        return path

    def test_tampered_file_quarantined_on_read(self, store):
        artifact = store.put(make())
        path = self._corrupt_on_disk(
            store, artifact,
            lambda p: p.write_text(p.read_text().replace("1.0", "9.0")),
        )
        with pytest.raises(IntegrityError, match="quarantined"):
            store.get("entry", "sram", 1)
        assert not path.exists()
        corrupt = list(store.root.glob("*.corrupt*"))
        assert len(corrupt) == 1  # damaged bytes preserved for forensics
        assert store.quarantined[0][1] == corrupt[0]
        assert len(store) == 0

    def test_truncated_file_quarantined(self, store):
        artifact = store.put(make())
        self._corrupt_on_disk(
            store, artifact,
            lambda p: p.write_text(p.read_text()[: p.stat().st_size // 2]),
        )
        with pytest.raises(IntegrityError, match="quarantined"):
            store.get("entry", "sram", 1)
        assert len(store.quarantined) == 1

    def test_quarantine_names_never_collide(self, store):
        for _ in range(3):
            artifact = store.put(make())
            self._corrupt_on_disk(
                store, artifact, lambda p: p.write_text("garbage")
            )
            with pytest.raises(IntegrityError):
                store.get("entry", "sram", 1)
        assert len(list(store.root.glob("*.corrupt*"))) == 3

    def test_put_replaces_quarantined_resident(self, store):
        artifact = store.put(make())
        self._corrupt_on_disk(
            store, artifact, lambda p: p.write_text("garbage")
        )
        store.put(make())  # verified incoming copy heals the slot
        assert store.get("entry", "sram", 1).payload["value"] == 1.0
        assert len(store.quarantined) == 1

    def test_verify_all_reports_and_quarantines(self, store):
        store.put(make(name="good"))
        bad = store.put(make(name="bad"))
        self._corrupt_on_disk(store, bad, lambda p: p.write_text("x"))
        result = store.verify_all()
        assert result["ok"] == ["entry:good@v1"]
        assert result["corrupt"] == ["entry:bad@v1"]

    def test_quarantine_metric(self, store):
        artifact = store.put(make())
        self._corrupt_on_disk(store, artifact, lambda p: p.write_text("x"))
        with pytest.raises(IntegrityError):
            store.get("entry", "sram", 1)
        counter = obs.get_registry().counter(
            "powerplay_registry_integrity_total", "", ("event",)
        )
        assert counter.value(event="quarantine") == 1


class TestCatalog:
    def test_rows(self, store):
        store.put(make(version=1))
        store.put(make(name="dram", value=2.0))
        rows = store.catalog()
        assert [(r["kind"], r["name"], r["version"]) for r in rows] == [
            ("entry", "dram", 1), ("entry", "sram", 1),
        ]
        assert all("digest" in r and "age_s" in r for r in rows)

    def test_corrupt_rows_reported_not_hidden(self, store):
        artifact = store.put(make())
        path = store._path(artifact.kind, artifact.name, artifact.version)
        path.write_text("garbage")
        rows = store.catalog()
        assert rows[0]["corrupt"] is True
        assert "error" in rows[0]

    def test_pinned_flag(self, store):
        store.put(make(version=1))
        store.put(make(version=2, value=2.0))
        store.pin("entry", "sram", 1)
        rows = {r["version"]: r["pinned"] for r in store.catalog()}
        assert rows == {1: True, 2: False}


class TestPins:
    def test_pin_requires_presence(self, store):
        with pytest.raises(RegistryError, match="not in the mirror"):
            store.pin("entry", "ghost", 1)

    def test_pins_survive_reopen(self, store, tmp_path):
        store.put(make())
        store.pin("entry", "sram", 1)
        reopened = MirrorStore(tmp_path / "mirror")
        assert reopened.pinned() == {"entry:sram": 1}

    def test_unpin(self, store):
        store.put(make())
        store.pin("entry", "sram", 1)
        store.unpin("entry", "sram")
        assert store.pinned() == {}
        with pytest.raises(RegistryError, match="not pinned"):
            store.unpin("entry", "sram")

    def test_torn_pins_file_does_not_kill_the_mirror(self, store, tmp_path):
        store.put(make())
        (tmp_path / "mirror" / "pins.json").write_text('{"pins": {tor')
        reopened = MirrorStore(tmp_path / "mirror")
        assert reopened.pinned() == {}
        assert len(reopened) == 1  # artifacts unaffected


class TestGC:
    def _fill(self, store, versions):
        for version in versions:
            store.put(make(version=version, value=float(version)))
            # distinct mtimes so eviction order is deterministic
            path = store._path("entry", "sram", version)
            os.utime(path, (version, version))

    def test_under_bound_is_a_noop(self, store):
        self._fill(store, [1, 2])
        assert store.gc(max_artifacts=5) == []
        assert len(store) == 2

    def test_evicts_oldest_non_latest(self, store):
        self._fill(store, [1, 2, 3, 4])
        evicted = store.gc(max_artifacts=2)
        assert evicted == ["entry:sram@v1", "entry:sram@v2"]
        assert len(store) == 2
        assert store.get("entry", "sram").version == 4

    def test_latest_always_survives(self, store):
        self._fill(store, [1, 2, 3])
        store.gc(max_artifacts=1)
        assert store.get("entry", "sram").version == 3

    def test_pinned_always_survives(self, store):
        self._fill(store, [1, 2, 3, 4])
        store.pin("entry", "sram", 1)
        evicted = store.gc(max_artifacts=2)
        assert "entry:sram@v1" not in evicted
        assert ("entry", "sram", 1) in store

    def test_bad_bound_rejected(self, store):
        with pytest.raises(RegistryError):
            store.gc(max_artifacts=0)
        with pytest.raises(RegistryError):
            MirrorStore(store.root, max_artifacts=0)


class TestHealth:
    def test_writable_probe(self, store):
        assert store.writable() is True
