"""ModelRegistry: publish, ingest, materialize — with versions attached."""

import pytest

from repro import obs
from repro.core.estimator import evaluate_power
from repro.core.model import FixedPowerModel, ModelSet
from repro.designs.luminance import build_figure3_design
from repro.errors import IntegrityError, RegistryError
from repro.library.catalog import LibraryEntry
from repro.registry.registry import ModelRegistry
from repro.registry.store import MirrorStore


@pytest.fixture(autouse=True)
def clean_metrics():
    obs.get_registry().reset()


@pytest.fixture
def registry(tmp_path):
    return ModelRegistry(
        MirrorStore(tmp_path / "mirror"), publisher="mass.server"
    )


def entry(name="sram", watts=2.0, **kwargs):
    return LibraryEntry(
        name, ModelSet(power=FixedPowerModel(name, watts)), **kwargs
    )


class TestPublish:
    def test_entry_roundtrip(self, registry):
        artifact = registry.publish_entry(entry())
        assert artifact.ref == "entry:sram@v1"
        assert artifact.publisher == "mass.server"
        again = registry.get_entry("sram")
        assert again.models.power.power({}) == 2.0
        assert again.origin == "registry:mass.server"

    def test_versions_increment(self, registry):
        assert registry.publish_entry(entry(watts=1.0)).version == 1
        assert registry.publish_entry(entry(watts=2.0)).version == 2
        assert registry.publish_entry(entry(watts=3.0)).version == 3
        assert registry.get_entry("sram").models.power.power({}) == 3.0
        assert registry.get_entry("sram", 1).models.power.power({}) == 1.0

    def test_proprietary_never_published(self, registry):
        with pytest.raises(RegistryError, match="proprietary"):
            registry.publish_entry(entry(proprietary=True))
        assert len(registry.store) == 0

    def test_design_roundtrip_bit_identical(self, registry):
        design = build_figure3_design()
        registry.publish_design(design)
        mirrored = registry.get_design(design.name)
        original = evaluate_power(design)
        replayed = evaluate_power(mirrored)
        # the acceptance bar: a mirrored design evaluates to the exact
        # same power as the original, not merely approximately
        assert replayed.power == original.power


class TestIngest:
    def test_new_then_duplicate(self, registry, tmp_path):
        peer = ModelRegistry(
            MirrorStore(tmp_path / "peer"), publisher="calif.server"
        )
        artifact = peer.publish_entry(entry())
        assert registry.ingest(artifact) is True
        assert registry.ingest(artifact) is False  # already mirrored
        assert registry.get_entry("sram").origin == "registry:calif.server"

    def test_tampered_ingest_refused(self, registry):
        from repro.registry.artifacts import ModelArtifact

        wire = ModelArtifact.create("entry", "sram", {"x": 1}).to_wire()
        wire["payload"] = {"x": 2}
        bad = ModelArtifact.from_wire(wire, verify=False)
        with pytest.raises(IntegrityError):
            registry.ingest(bad)
        assert len(registry.store) == 0


class TestMaterialize:
    def test_as_library_latest_versions(self, registry):
        registry.publish_entry(entry("sram", 1.0))
        registry.publish_entry(entry("sram", 2.0))
        registry.publish_entry(entry("dram", 5.0))
        registry.publish_design(build_figure3_design())  # not an entry
        library = registry.as_library()
        assert sorted(e.name for e in library) == ["dram", "sram"]
        assert library.get("sram").models.power.power({}) == 2.0

    def test_missing_raises(self, registry):
        with pytest.raises(RegistryError):
            registry.get_entry("ghost")
        with pytest.raises(RegistryError):
            registry.get_design("ghost")
