"""Content-addressed artifacts: digests, tamper detection, wire codec.

The registry's integrity guarantee starts here: an artifact that fails
digest verification can never decode into a usable object, whatever the
damage — truncation, bit flips, identity tampering.
"""

import json

import pytest

from repro.errors import IntegrityError, RegistryError
from repro.registry.artifacts import (
    DIGEST_SCHEME,
    WIRE_FORMAT,
    ModelArtifact,
    artifact_digest,
    canonical_json,
    validate_artifact_name,
    validate_kind,
    validate_version,
)

PAYLOAD = {"cap_pf": 1.25, "kind": "sram", "bits": 64}


def make(name="sram", version=1, payload=PAYLOAD, publisher="mass.server"):
    return ModelArtifact.create(
        "entry", name, payload, version=version, publisher=publisher,
        clock=lambda: 836930921.0,
    )


class TestCanonicalJson:
    def test_key_order_does_not_matter(self):
        a = canonical_json({"b": 1, "a": {"z": 2, "y": 3}})
        b = canonical_json({"a": {"y": 3, "z": 2}, "b": 1})
        assert a == b == '{"a":{"y":3,"z":2},"b":1}'

    def test_non_finite_floats_rejected(self):
        with pytest.raises(RegistryError, match="canonicalizable"):
            canonical_json({"x": float("nan")})

    def test_unserializable_rejected(self):
        with pytest.raises(RegistryError, match="canonicalizable"):
            canonical_json({"x": object()})


class TestDigest:
    def test_deterministic(self):
        one = artifact_digest("entry", "sram", 1, "mass", PAYLOAD)
        two = artifact_digest("entry", "sram", 1, "mass", dict(PAYLOAD))
        assert one == two
        assert len(one) == 40  # blake2b-160 -> 40 hex chars

    def test_identity_is_part_of_the_address(self):
        base = artifact_digest("entry", "sram", 1, "mass", PAYLOAD)
        assert artifact_digest("design", "sram", 1, "mass", PAYLOAD) != base
        assert artifact_digest("entry", "dram", 1, "mass", PAYLOAD) != base
        assert artifact_digest("entry", "sram", 2, "mass", PAYLOAD) != base
        assert artifact_digest("entry", "sram", 1, "calif", PAYLOAD) != base

    def test_published_at_excluded_from_digest(self):
        early = ModelArtifact.create(
            "entry", "sram", PAYLOAD, clock=lambda: 1.0
        )
        late = ModelArtifact.create(
            "entry", "sram", PAYLOAD, clock=lambda: 999.0
        )
        assert early.digest == late.digest
        assert early.published_at != late.published_at


class TestVerify:
    def test_clean_roundtrip(self):
        artifact = make()
        again = ModelArtifact.from_json(artifact.to_json())
        assert again == artifact
        assert again.verify() is again

    def test_payload_tamper_detected(self):
        wire = make().to_wire()
        wire["payload"] = dict(wire["payload"], cap_pf=9.99)
        with pytest.raises(IntegrityError, match="digest mismatch"):
            ModelArtifact.from_wire(wire)

    def test_identity_tamper_detected(self):
        wire = make().to_wire()
        wire["publisher"] = "impostor"
        with pytest.raises(IntegrityError, match="digest mismatch"):
            ModelArtifact.from_wire(wire)

    def test_digest_tamper_detected(self):
        wire = make().to_wire()
        wire["digest"] = "0" * 40
        with pytest.raises(IntegrityError, match="digest mismatch"):
            ModelArtifact.from_wire(wire)

    def test_malformed_digest_detected(self):
        wire = make().to_wire()
        wire["digest"] = "not-a-digest"
        with pytest.raises(IntegrityError, match="malformed digest"):
            ModelArtifact.from_wire(wire)

    def test_truncated_json_never_parses(self):
        text = make().to_json()
        for cut in (1, len(text) // 3, 2 * len(text) // 3, len(text) - 1):
            with pytest.raises(IntegrityError, match="truncated or corrupt"):
                ModelArtifact.from_json(text[:cut])

    def test_bitflip_anywhere_detected(self):
        text = make().to_json()
        # flip one character inside the payload section
        index = text.index("1.25")
        mangled = text[:index] + "1.35" + text[index + 4:]
        with pytest.raises(IntegrityError):
            ModelArtifact.from_json(mangled)

    def test_verify_false_is_forensics_only(self):
        wire = make().to_wire()
        wire["digest"] = "0" * 40
        artifact = ModelArtifact.from_wire(wire, verify=False)
        assert artifact.digest == "0" * 40  # decoded, not trusted


class TestWireFormat:
    def test_wire_fields(self):
        wire = make().to_wire()
        assert wire["format"] == WIRE_FORMAT == "powerplay-artifact/1"
        assert wire["digest_scheme"] == DIGEST_SCHEME == "blake2b-160"
        assert json.loads(make().to_json()) == wire

    def test_unknown_format_rejected(self):
        wire = make().to_wire()
        wire["format"] = "powerplay-artifact/99"
        with pytest.raises(RegistryError, match="unsupported artifact format"):
            ModelArtifact.from_wire(wire)

    def test_unknown_digest_scheme_rejected(self):
        wire = make().to_wire()
        wire["digest_scheme"] = "md5"
        with pytest.raises(RegistryError, match="unsupported digest scheme"):
            ModelArtifact.from_wire(wire)

    def test_non_object_rejected(self):
        with pytest.raises(RegistryError, match="must be an object"):
            ModelArtifact.from_wire([1, 2, 3])

    def test_descriptor_has_no_payload(self):
        row = make().descriptor()
        assert "payload" not in row
        assert row["digest"] == make().digest
        assert row["kind"] == "entry" and row["version"] == 1


class TestValidation:
    @pytest.mark.parametrize("name", ["sram", "a", "Counter_8.v2-final"])
    def test_good_names(self, name):
        assert validate_artifact_name(name) == name

    @pytest.mark.parametrize(
        "name", ["", "8bit", "../etc/passwd", "a b", "x" * 65, "a\n", None]
    )
    def test_bad_names(self, name):
        with pytest.raises(RegistryError, match="invalid artifact name"):
            validate_artifact_name(name)

    def test_kinds(self):
        assert validate_kind("entry") == "entry"
        assert validate_kind("design") == "design"
        with pytest.raises(RegistryError, match="unknown artifact kind"):
            validate_kind("plugin")

    @pytest.mark.parametrize("version", [0, -1, 1.5, "3", True, None])
    def test_bad_versions(self, version):
        with pytest.raises(RegistryError):
            validate_version(version)
