"""The resolution chain: local -> live -> stale -> mirror -> explicit report.

Every outcome is tested, along with the bookkeeping that feeds /status,
/healthz and the ``powerplay_registry_resolutions_total`` metric.
"""

import pytest

from repro import obs
from repro.core.model import FixedPowerModel, ModelSet
from repro.errors import RegistryError
from repro.library.catalog import Library, LibraryEntry
from repro.registry.registry import ModelRegistry
from repro.registry.resolve import (
    DEGRADED_OUTCOMES,
    DegradedResolution,
    RegistryResolver,
)
from repro.registry.store import MirrorStore
from repro.web.app import Application
from repro.web.remote import RemoteLibraryClient
from repro.web.resilience import CircuitBreaker, RetryPolicy
from repro.web.server import PowerPlayServer


@pytest.fixture(autouse=True)
def clean_metrics():
    obs.get_registry().reset()


def entry(name, watts):
    return LibraryEntry(name, ModelSet(power=FixedPowerModel(name, watts)))


def fast_client(url, clock=None):
    kwargs = {"clock": clock} if clock is not None else {}
    return RemoteLibraryClient(
        url,
        retry_policy=RetryPolicy(max_attempts=2, sleep=lambda s: None),
        breaker=CircuitBreaker(failure_threshold=3),
        cache_ttl=60.0,
        **kwargs,
    )


@pytest.fixture
def mirror(tmp_path):
    registry = ModelRegistry(
        MirrorStore(tmp_path / "mirror"), publisher="mirror"
    )
    registry.publish_entry(entry("mirrored_only", 4.0))
    registry.publish_entry(entry("sram", 8.0))
    return registry


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestChainOrder:
    def test_local_wins(self, mirror):
        local = Library("local")
        local.add(entry("sram", 1.0))
        resolver = RegistryResolver(local, registry=mirror)
        resolved, report = resolver.resolve("sram")
        assert resolved.models.power.power({}) == 1.0
        assert report.outcome == "local"
        assert not report.degraded

    def test_live_from_remote(self, tmp_path, mirror):
        with PowerPlayServer(tmp_path / "srv") as server:
            resolver = RegistryResolver(
                Library("local"),
                [fast_client(server.base_url)],
                registry=mirror,
            )
            resolved, report = resolver.resolve("sram")
        assert resolved.origin == server.base_url  # remote beat the mirror
        assert report.outcome == "live"
        assert report.served_from == server.base_url

    def test_stale_cache_beats_mirror(self, tmp_path, mirror):
        clock = FakeClock()
        with PowerPlayServer(tmp_path / "srv") as server:
            client = fast_client(server.base_url, clock=clock)
            resolver = RegistryResolver(
                Library("local"), [client], registry=mirror
            )
            resolver.resolve("sram")  # warm the cache
        clock.advance(120.0)  # past the 60 s TTL; the server is now gone
        resolved, report = resolver.resolve("sram")
        assert resolved.origin == server.base_url  # the stale cached copy
        assert report.outcome == "stale"
        assert report.degraded

    def test_mirror_when_everything_is_down(self, mirror):
        dead = fast_client("http://127.0.0.1:1")
        resolver = RegistryResolver(Library("local"), [dead], registry=mirror)
        resolved, report = resolver.resolve("mirrored_only")
        assert resolved.models.power.power({}) == 4.0
        assert resolved.origin == "registry:mirror"
        assert report.outcome == "mirror"
        assert report.degraded
        steps = [(s["step"], s["result"]) for s in report.steps]
        assert steps[0] == ("local", "miss")
        assert steps[1] == ("remote", "failed")
        assert steps[-1] == ("mirror", "hit")

    def test_failed_is_explicit_not_an_exception(self, mirror):
        resolver = RegistryResolver(Library("local"), registry=mirror)
        resolved, report = resolver.resolve("ghost")
        assert resolved is None
        assert report.failed
        assert any(s["result"] == "miss" for s in report.steps)

    def test_resolve_strict_raises_with_the_chain(self, mirror):
        resolver = RegistryResolver(Library("local"), registry=mirror)
        with pytest.raises(RegistryError, match="mirror\\(registry\\)=miss"):
            resolver.resolve_strict("ghost")

    def test_resolve_design(self, tmp_path):
        from repro.designs.luminance import build_figure3_design

        registry = ModelRegistry(MirrorStore(tmp_path / "m"))
        registry.publish_design(build_figure3_design())
        resolver = RegistryResolver(Library("local"), registry=registry)
        design, report = resolver.resolve_design("luminance_fig3")
        assert design is not None
        assert report.outcome == "mirror"
        missing, report = resolver.resolve_design("ghost")
        assert missing is None and report.failed


class TestBookkeeping:
    def test_health_counts_and_recent(self, mirror):
        local = Library("local")
        local.add(entry("here", 1.0))
        resolver = RegistryResolver(local, registry=mirror, history=8)
        resolver.resolve("here")
        resolver.resolve("mirrored_only")
        resolver.resolve("ghost")
        counts = resolver.health_counts()
        assert counts == {"local": 1, "mirror": 1, "failed": 1}
        assert [r.name for r in resolver.recent()] == [
            "here", "mirrored_only", "ghost",
        ]

    def test_history_is_bounded(self, mirror):
        local = Library("local")
        local.add(entry("here", 1.0))
        resolver = RegistryResolver(local, registry=mirror, history=3)
        for _ in range(10):
            resolver.resolve("here")
        assert len(resolver.recent()) == 3

    def test_metric_by_outcome(self, mirror):
        resolver = RegistryResolver(Library("local"), registry=mirror)
        resolver.resolve("mirrored_only")
        resolver.resolve("ghost")
        counter = obs.get_registry().counter(
            "powerplay_registry_resolutions_total", "", ("outcome",)
        )
        assert counter.value(outcome="mirror") == 1
        assert counter.value(outcome="failed") == 1

    def test_report_payload(self):
        report = DegradedResolution("x")
        report.record("local", "lib", "miss")
        report.outcome = "mirror"
        payload = report.to_payload()
        assert payload["degraded"] is True
        assert payload["steps"][0]["step"] == "local"
        assert DEGRADED_OUTCOMES == {"stale", "mirror"}
