"""Publish/subscribe sync over real HTTP, including through chaos.

The headline guarantee under test: **zero digest-unverified artifacts
ever enter a mirror**.  A truncated body (reset mid-transfer, with no
Content-Length to betray it) must fail digest verification at the fetch
boundary — retried if the next attempt may succeed, rejected if not,
ingested never.
"""

import pytest

from repro import obs
from repro.core.model import FixedPowerModel, ModelSet
from repro.errors import RemoteError
from repro.library.catalog import LibraryEntry
from repro.registry.registry import ModelRegistry
from repro.registry.store import MirrorStore
from repro.registry.sync import RegistrySyncClient, sync_from
from repro.web.app import Application
from repro.web.faults import ChaosServer, FaultPlan
from repro.web.resilience import CircuitBreaker, RetryPolicy
from repro.web.server import PowerPlayServer


@pytest.fixture(autouse=True)
def clean_metrics():
    obs.get_registry().reset()


def entry(name, watts):
    return LibraryEntry(name, ModelSet(power=FixedPowerModel(name, watts)))


def publish_fleet(application, count=4):
    for index in range(count):
        application.models_registry.publish_entry(
            entry(f"model_{index}", float(index + 1))
        )


@pytest.fixture
def provider(tmp_path):
    application = Application(tmp_path / "provider", server_name="provider")
    publish_fleet(application)
    with PowerPlayServer(
        tmp_path / "provider", application=application
    ) as server:
        yield server


def make_client(url, attempts=4):
    return RegistrySyncClient(
        url,
        retry_policy=RetryPolicy(
            max_attempts=attempts, sleep=lambda s: None
        ),
        breaker=CircuitBreaker(failure_threshold=100),
    )


@pytest.fixture
def local(tmp_path):
    return ModelRegistry(
        MirrorStore(tmp_path / "local"), publisher="subscriber"
    )


class TestSyncHappyPath:
    def test_full_mirror(self, provider, local):
        report = sync_from(local, make_client(provider.base_url))
        assert report.complete
        assert len(report.fetched) == 4
        assert len(local.store) == 4
        assert local.get_entry("model_2").models.power.power({}) == 3.0

    def test_second_pass_is_all_duplicates(self, provider, local):
        sync_from(local, make_client(provider.base_url))
        report = sync_from(local, make_client(provider.base_url))
        assert report.fetched == []
        assert len(report.duplicates) == 4

    def test_push_direction(self, provider, local):
        artifact = local.publish_entry(entry("pushed", 7.0))
        result = make_client(provider.base_url).push_artifact(artifact)
        assert result["ingested"] is True
        assert result["digest"] == artifact.digest
        assert (
            provider.application.models_registry
            .get_entry("pushed").models.power.power({}) == 7.0
        )

    def test_conflict_surfaces_never_overwrites(self, provider, local):
        # same (kind, name, version), different content locally
        local.publish_entry(entry("model_0", 99.0))
        report = sync_from(local, make_client(provider.base_url))
        assert "entry:model_0@v1" in report.conflicts
        assert local.get_entry("model_0").models.power.power({}) == 99.0


class TestSyncThroughChaos:
    def _chaos_provider(self, tmp_path, plan):
        application = Application(tmp_path / "chaos", server_name="chaos")
        publish_fleet(application)
        return ChaosServer(tmp_path / "chaos", plan, application=application)

    def test_truncated_bodies_never_ingest_unverified(self, tmp_path, local):
        # every artifact response is reset mid-body once, then served
        # clean on retry: the sync must end complete, and nothing that
        # failed verification may have landed
        plan = FaultPlan(
            script=[None] + ["reset_mid_body", None] * 4,
            exempt_paths=("/api/registry/catalog.json",),
        )
        with self._chaos_provider(tmp_path, plan) as server:
            report = sync_from(local, make_client(server.base_url))
        assert report.complete
        assert len(local.store) == 4
        for index in range(4):
            local.get_entry(f"model_{index}")  # digest-verified reads

    def test_persistent_truncation_is_rejected_not_mirrored(
        self, tmp_path, local
    ):
        plan = FaultPlan(
            rate=1.0, seed=1, kinds=("reset_mid_body",),
            exempt_paths=("/api/registry/catalog.json",),
        )
        with self._chaos_provider(tmp_path, plan) as server:
            report = sync_from(local, make_client(server.base_url, attempts=2))
        assert not report.complete
        assert len(report.integrity_rejected) == 4
        assert len(local.store) == 0  # zero unverified loads

    def test_flapping_provider_still_syncs_fully(self, tmp_path, local):
        plan = FaultPlan(flap_up=2, flap_down=1)
        with self._chaos_provider(tmp_path, plan) as server:
            report = sync_from(local, make_client(server.base_url, attempts=5))
        assert report.complete
        assert len(local.store) == 4
        assert plan.flap_outages > 0  # the flap schedule really fired

    def test_unreachable_catalog_aborts_cleanly(self, local):
        with pytest.raises((RemoteError, OSError)):
            sync_from(local, make_client("http://127.0.0.1:1", attempts=1))

    def test_integrity_rejections_counted(self, tmp_path, local):
        plan = FaultPlan(
            rate=1.0, seed=1, kinds=("reset_mid_body",),
            exempt_paths=("/api/registry/catalog.json",),
        )
        with self._chaos_provider(tmp_path, plan) as server:
            sync_from(local, make_client(server.base_url, attempts=2))
        counter = obs.get_registry().counter(
            "powerplay_registry_sync_total", "", ("outcome",)
        )
        assert counter.value(outcome="integrity_rejected") > 0
        assert counter.value(outcome="fetched") == 0
