"""The fleet-telemetry CLI surface: fleet, flight, bench-report."""

import json

import pytest

from repro import obs
from repro.cli import _parse_peer, main
from repro.web.server import PowerPlayServer


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


@pytest.fixture(autouse=True)
def _fresh_registry():
    obs.get_registry().reset()
    yield
    obs.get_registry().reset()


class TestParsePeer:
    def test_named(self):
        assert _parse_peer("alpha=http://h:1") == ("alpha", "http://h:1")

    def test_bare_url_derives_a_name(self):
        name, url = _parse_peer("http://127.0.0.1:8080/")
        assert url == "http://127.0.0.1:8080"
        assert name == "127.0.0.1-8080"


class TestFleet:
    def test_scrapes_a_live_server(self, capsys, tmp_path):
        with PowerPlayServer(tmp_path / "a", server_name="alpha") as server:
            code, out, _err = run(
                capsys, "fleet", f"alpha={server.base_url}"
            )
        assert code == 0
        assert "1/1 reachable" in out
        assert "alpha" in out
        assert "aggregate:" in out

    def test_json_output_and_dead_peer_exit_code(self, capsys, tmp_path):
        with PowerPlayServer(tmp_path / "a", server_name="alpha") as server:
            code, out, _err = run(
                capsys, "fleet", "--json", "--timeout", "0.2",
                f"alpha={server.base_url}", "ghost=http://127.0.0.1:9",
            )
        assert code == 1  # a dead peer is visible in the exit code
        payload = json.loads(out)["fleet"]
        assert payload["reachable"] == 1
        assert [n["name"] for n in payload["nodes"]] == ["alpha", "ghost"]


class TestFlight:
    def test_show_live_ring(self, capsys, tmp_path):
        with PowerPlayServer(tmp_path / "a", server_name="alpha") as server:
            from repro.web.client import Browser

            Browser(server.base_url).get("/api/ping")
            code, out, _err = run(
                capsys, "flight", "--url", server.base_url, "show"
            )
        assert code == 0
        assert "live ring on 'alpha'" in out
        assert "/api/ping" in out

    def test_show_offline_snapshots(self, capsys, tmp_path):
        from repro.obs.recorder import FlightRecorder

        state = tmp_path / "state"
        recorder = FlightRecorder(snapshot_dir=state / "flight")
        recorder.record(route="/menu", method="GET", status=500,
                        duration_ms=1.0, trace_id="cafe")
        code, out, _err = run(
            capsys, "flight", "--state", str(state), "show"
        )
        assert code == 0
        assert "5xx" in out
        assert "/menu" in out

    def test_dump_is_json(self, capsys, tmp_path):
        from repro.obs.recorder import FlightRecorder

        state = tmp_path / "state"
        recorder = FlightRecorder(snapshot_dir=state / "flight")
        recorder.record(route="/menu", method="GET", status=503,
                        duration_ms=2.0)
        code, out, _err = run(
            capsys, "flight", "--state", str(state), "dump"
        )
        assert code == 0
        (snapshot,) = json.loads(out)
        assert snapshot["trigger"] == "5xx"
        assert snapshot["records"][0]["status"] == 503

    def test_no_snapshots_is_a_clean_failure(self, capsys, tmp_path):
        code, out, _err = run(
            capsys, "flight", "--state", str(tmp_path), "show"
        )
        assert code == 1
        assert "no flight snapshots" in out


class TestBenchReport:
    def write_artifact(self, bench_dir, mean):
        bench_dir.mkdir(parents=True, exist_ok=True)
        # trajectory.py rides along so the CLI can import it anywhere
        import pathlib
        import shutil

        source = (
            pathlib.Path(__file__).parent.parent
            / "benchmarks" / "trajectory.py"
        )
        shutil.copy(source, bench_dir / "trajectory.py")
        (bench_dir / "bench_demo.json").write_text(json.dumps({
            "benchmarks": [
                {"name": "test_demo", "stats": {"mean": mean}},
            ],
        }))

    def test_write_then_pass_then_regress(self, capsys, tmp_path):
        bench_dir = tmp_path / "benchmarks"
        self.write_artifact(bench_dir, mean=0.010)
        code, out, _err = run(
            capsys, "bench-report", "--bench-dir", str(bench_dir),
            "--write",
        )
        assert code == 0 and "wrote" in out

        # unchanged artifacts: the gate passes
        code, out, _err = run(
            capsys, "bench-report", "--bench-dir", str(bench_dir)
        )
        assert code == 0
        assert "no time regressions" in out

        # a 50% slowdown: the gate fails with a named regression
        self.write_artifact(bench_dir, mean=0.015)
        code, out, _err = run(
            capsys, "bench-report", "--bench-dir", str(bench_dir)
        )
        assert code == 1
        assert "REGRESSIONS" in out
        assert "test_demo.mean" in out

    def test_missing_trajectory_module_is_an_error(self, capsys, tmp_path):
        code, _out, err = run(
            capsys, "bench-report", "--bench-dir", str(tmp_path)
        )
        assert code == 2
        assert "trajectory.py" in err
