"""Datasheet component models (the InfoPad system parts)."""

import pytest

from repro.library.datasheet import (
    build_system_library,
    io_devices,
    lcd_display,
    microprocessor_subsystem,
    radio_transceiver,
    support_electronics,
)
from repro.errors import ModelError


class TestLCD:
    def test_full_on(self):
        model = lcd_display(panel_watts=0.25, backlight_watts=0.75)
        assert model.power({"panel_duty": 1.0, "backlight_duty": 1.0}) == pytest.approx(1.0)

    def test_backlight_off(self):
        model = lcd_display(panel_watts=0.25, backlight_watts=0.75)
        assert model.power({"panel_duty": 1.0, "backlight_duty": 0.0}) == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ModelError):
            lcd_display(panel_watts=-1.0)


class TestRadio:
    def test_state_mix(self):
        model = radio_transceiver(tx_watts=2.0, rx_watts=1.0, idle_watts=0.1)
        power = model.power({"tx_duty": 0.1, "rx_duty": 0.4})
        assert power == pytest.approx(2.0 * 0.1 + 1.0 * 0.4 + 0.1 * 0.5)

    def test_all_idle(self):
        model = radio_transceiver(idle_watts=0.08)
        assert model.power({"tx_duty": 0.0, "rx_duty": 0.0}) == pytest.approx(0.08)

    def test_receive_cheaper_than_transmit(self):
        model = radio_transceiver()
        rx_heavy = model.power({"tx_duty": 0.0, "rx_duty": 0.5})
        tx_heavy = model.power({"tx_duty": 0.5, "rx_duty": 0.0})
        assert rx_heavy < tx_heavy


class TestMicroprocessor:
    def test_datasheet_point(self):
        model = microprocessor_subsystem(watts_per_mhz=0.034, v_ref=5.0)
        watts = model.power({"f": 25e6, "VDD": 5.0, "alpha": 1.0})
        assert watts == pytest.approx(0.85)

    def test_quadratic_voltage_rescale(self):
        model = microprocessor_subsystem()
        full = model.power({"f": 25e6, "VDD": 5.0, "alpha": 1.0})
        low = model.power({"f": 25e6, "VDD": 2.5, "alpha": 1.0})
        assert low == pytest.approx(full / 4)

    def test_eq11_duty(self):
        model = microprocessor_subsystem()
        full = model.power({"f": 25e6, "VDD": 5.0, "alpha": 1.0})
        idle = model.power({"f": 25e6, "VDD": 5.0, "alpha": 0.2})
        assert idle == pytest.approx(full * 0.2)

    def test_validation(self):
        with pytest.raises(ModelError):
            microprocessor_subsystem(watts_per_mhz=0)


class TestOthers:
    def test_support_electronics(self):
        model = support_electronics(0.45, 0.18, 0.12)
        assert model.power({"codec_duty": 1.0}) == pytest.approx(0.75)
        assert model.power({"codec_duty": 0.0}) == pytest.approx(0.57)

    def test_io_devices_total(self):
        model = io_devices(0.015, 0.04, 0.025)
        assert model.power({}) == pytest.approx(0.08)

    def test_negative_rejected(self):
        with pytest.raises(ModelError):
            support_electronics(sram_watts=-1)


class TestSystemLibrary:
    def test_contents(self):
        library = build_system_library()
        assert set(library.names()) == {
            "lcd_display", "radio", "microprocessor",
            "support_electronics", "io_devices",
        }

    def test_serializable(self):
        from repro.library.catalog import Library

        library = build_system_library()
        clone = Library.from_json(library.to_json())
        assert len(clone) == len(library)
        original = library.get("radio").models.power.power(
            {"tx_duty": 0.05, "rx_duty": 0.35}
        )
        copied = clone.get("radio").models.power.power(
            {"tx_duty": 0.05, "rx_duty": 0.35}
        )
        assert copied == pytest.approx(original)
