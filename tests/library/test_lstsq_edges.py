"""Edge cases of the shared least-squares solver.

``_lstsq`` is load-bearing twice over: the Landman characterization
fits (EQ 3/4) and every surrogate regression ride the same rank-checked
solve, so its failure modes are part of both subsystems' contracts.
"""

import numpy as np
import pytest

from repro.errors import CharacterizationError
from repro.library.characterize import _lstsq


def design(xs, columns=2):
    xs = np.asarray(xs, dtype=float)
    cols = [np.ones_like(xs)]
    for power in range(1, columns):
        cols.append(xs ** power)
    return np.column_stack(cols)


class TestLstsqEdges:
    def test_exact_fit_recovered(self):
        xs = np.array([1.0, 2.0, 3.0, 4.0])
        basis = design(xs)
        solution = _lstsq(basis, 3.0 + 0.5 * xs)
        np.testing.assert_allclose(solution, [3.0, 0.5])

    def test_underdetermined_rejected(self):
        basis = design([1.0], columns=2)  # 1 row, 2 columns
        with pytest.raises(CharacterizationError,
                           match="need at least 2 sweep points"):
            _lstsq(basis, np.array([1.0]))

    def test_rank_deficient_basis_rejected(self):
        # every sweep point identical: the slope column is a constant
        # multiple of the intercept column
        basis = design([2.0, 2.0, 2.0, 2.0])
        with pytest.raises(CharacterizationError,
                           match="rank-deficient"):
            _lstsq(basis, np.array([1.0, 1.0, 1.0, 1.0]))

    def test_duplicate_points_are_fine_if_rank_survives(self):
        # duplicates add weight, not degeneracy, when other values vary
        xs = np.array([1.0, 1.0, 2.0, 2.0, 3.0])
        solution = _lstsq(design(xs), 1.0 + 2.0 * xs)
        np.testing.assert_allclose(solution, [1.0, 2.0])

    def test_single_column_basis(self):
        xs = np.array([1.0, 2.0, 4.0])
        basis = design(xs, columns=1)  # intercept only
        solution = _lstsq(basis, np.array([3.0, 3.0, 3.0]))
        np.testing.assert_allclose(solution, [3.0])

    def test_single_column_of_zeros_is_rank_deficient(self):
        basis = np.zeros((3, 1))
        with pytest.raises(CharacterizationError, match="rank-deficient"):
            _lstsq(basis, np.array([1.0, 2.0, 3.0]))

    def test_overdetermined_least_squares_solution(self):
        xs = np.array([0.0, 1.0, 2.0, 3.0])
        measured = np.array([0.0, 1.1, 1.9, 3.1])
        solution = _lstsq(design(xs), measured)
        # normal-equations optimum, not an interpolation
        predicted = design(xs) @ solution
        gradient = design(xs).T @ (predicted - measured)
        np.testing.assert_allclose(gradient, 0.0, atol=1e-12)

    def test_non_finite_measurements_do_not_crash_the_rank_check(self):
        # lstsq happily returns NaN coefficients for NaN inputs; the
        # callers (fit_surrogates, characterize) are responsible for
        # filtering.  This pins the division of labor: _lstsq checks
        # shape and rank, nothing else.
        xs = np.array([1.0, 2.0, 3.0, 4.0])
        solution = _lstsq(design(xs), np.array([1.0, np.nan, 2.0, 3.0]))
        assert solution.shape == (2,)
