"""Design serialization round trips."""

import pytest

from repro.core.design import Design
from repro.core.estimator import evaluate_power
from repro.core.expressions import Expression
from repro.core.model import FixedPowerModel
from repro.designs.infopad import build_infopad
from repro.designs.luminance import build_figure1_design, build_figure3_design
from repro.library.designio import (
    design_from_json,
    design_from_payload,
    design_to_json,
    design_to_payload,
)
from repro.errors import LibraryError


def roundtrip(design):
    return design_from_json(design_to_json(design))


class TestRoundTrip:
    @pytest.mark.parametrize(
        "builder", [build_figure1_design, build_figure3_design, build_infopad]
    )
    def test_evaluation_preserved(self, builder):
        design = builder()
        clone = roundtrip(design)
        original = evaluate_power(design)
        copied = evaluate_power(clone)
        assert copied.power == pytest.approx(original.power)
        assert [c.name for c in copied.children] == [
            c.name for c in original.children
        ]

    def test_formula_parameters_survive(self):
        design = build_figure1_design()
        clone = roundtrip(design)
        raw = clone.row("read_bank").scope.raw("f")
        assert isinstance(raw, Expression)
        assert "f_pixel" in raw.source
        # and they stay live: editing the global changes the row
        clone.scope.set("f_pixel", 4e6)
        assert clone.row("read_bank").scope["f"] == pytest.approx(4e6 / 16)

    def test_feeds_survive(self):
        design = build_infopad()
        clone = roundtrip(design)
        converter = clone.row("voltage_converters")
        assert "display_lcds" in converter.power_feeds
        # converter still tracks load after the round trip
        report = evaluate_power(clone)
        load = sum(
            report[name].power for name in converter.power_feeds
        )
        assert report["voltage_converters"].power == pytest.approx(
            load * (1 - 0.85) / 0.85
        )

    def test_subdesign_hierarchy_survives(self):
        clone = roundtrip(build_infopad())
        custom = clone.row("custom_hardware")
        assert custom.is_subdesign
        assert "luminance_chip" in custom.design
        # top-level supply still reaches the grandchild
        base = evaluate_power(clone)["custom_hardware"].power
        clone.scope.set("VDD2", 3.0)
        boosted = evaluate_power(clone)["custom_hardware"].power
        assert boosted == pytest.approx(4 * base, rel=1e-6)

    def test_quantity_and_doc_survive(self):
        design = Design("d")
        design.scope.set("VDD", 1.0)
        design.add(
            "banks", FixedPowerModel("bank", 0.5), doc="note", quantity=3
        )
        clone = roundtrip(design)
        assert clone.row("banks").quantity == 3
        assert clone.row("banks").doc == "note"
        assert evaluate_power(clone).power == pytest.approx(1.5)


class TestErrors:
    def test_bad_json(self):
        with pytest.raises(LibraryError, match="malformed"):
            design_from_json("{")

    def test_wrong_format(self):
        with pytest.raises(LibraryError, match="unsupported"):
            design_from_payload({"format": "nope"})

    def test_unknown_row_type(self):
        payload = design_to_payload(build_figure1_design())
        payload["rows"][0]["type"] = "hologram"
        with pytest.raises(LibraryError, match="unknown row type"):
            design_from_payload(payload)


class TestRoundTripProperty:
    def test_random_designs_round_trip(self):
        """Randomized designs (rows, params, feeds, quantities) evaluate
        identically after a JSON round trip."""
        import random

        from hypothesis import given, settings
        from hypothesis import strategies as st

        from repro.core.model import FixedPowerModel
        from repro.models.computation import ripple_adder
        from repro.models.converter import DCDCConverterModel

        @settings(max_examples=25, deadline=None)
        @given(
            st.lists(
                st.tuples(
                    st.integers(min_value=1, max_value=64),  # bitwidth
                    st.integers(min_value=1, max_value=4),   # quantity
                ),
                min_size=1,
                max_size=6,
            ),
            st.floats(min_value=0.9, max_value=5.0),
            st.booleans(),
        )
        def check(rows, vdd, with_converter):
            design = Design("prop")
            design.scope.set("VDD", vdd)
            design.scope.set("f", 2e6)
            names = []
            for index, (bitwidth, quantity) in enumerate(rows):
                name = f"row{index}"
                design.add(
                    name, ripple_adder(), params={"bitwidth": bitwidth},
                    quantity=quantity,
                )
                names.append(name)
            if with_converter:
                design.add(
                    "conv",
                    DCDCConverterModel(efficiency=0.85),
                    params={"eta": 0.85},
                    power_feeds=names,
                )
            original = evaluate_power(design).power
            clone = design_from_json(design_to_json(design))
            assert evaluate_power(clone).power == pytest.approx(original)

        check()
