"""Characterization flow: sweeps, least-squares fits, EQ 8 extraction."""

import random

import pytest

from repro.library.characterize import (
    FitResult,
    characterize_adder,
    characterize_multiplier,
    extract_reduced_swing,
    fit_bilinear,
    fit_linear,
    fit_sram,
    model_from_bilinear_fit,
    model_from_linear_fit,
    octave_report,
    sweep_adder,
    sweep_multiplier,
    sweep_register,
    within_octave,
)
from repro.errors import CharacterizationError


class TestWithinOctave:
    def test_band(self):
        assert within_octave(1.0, 1.0)
        assert within_octave(1.9, 1.0)
        assert within_octave(0.51, 1.0)
        assert not within_octave(2.1, 1.0)
        assert not within_octave(0.4, 1.0)

    def test_zero_handling(self):
        assert within_octave(0.0, 0.0)
        assert not within_octave(1.0, 0.0)


class TestFits:
    def test_linear_exact_recovery(self):
        points = [(bits, 2e-15 * bits + 5e-14) for bits in (4, 8, 16, 32)]
        fit = fit_linear(points)
        assert fit.coefficients["c_per_bit"] == pytest.approx(2e-15)
        assert fit.coefficients["c_intercept"] == pytest.approx(5e-14)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.within_octave

    def test_linear_through_origin(self):
        points = [(bits, 3e-15 * bits) for bits in (4, 8, 16)]
        fit = fit_linear(points, through_origin=True)
        assert list(fit.coefficients) == ["c_per_bit"]
        assert fit.coefficients["c_per_bit"] == pytest.approx(3e-15)

    def test_linear_needs_two_points(self):
        with pytest.raises(CharacterizationError):
            fit_linear([(4, 1e-15)])

    def test_degenerate_sweep_detected(self):
        points = [(8, 1e-15), (8, 1.1e-15), (8, 0.9e-15)]
        with pytest.raises(CharacterizationError, match="degenerate"):
            fit_linear(points)

    def test_bilinear_exact_recovery(self):
        points = [((a, b), 253e-15 * a * b) for a, b in ((2, 2), (4, 4), (4, 8))]
        fit = fit_bilinear(points)
        assert fit.coefficients["c_per_bit_pair"] == pytest.approx(253e-15)

    def test_sram_exact_recovery(self):
        c0, cw, cb, cc = 1e-12, 6e-15, 160e-15, 0.3e-15
        sizes = [(64, 4), (64, 16), (256, 4), (256, 16), (1024, 8), (128, 8)]
        points = [
            ((w, b), c0 + cw * w + cb * b + cc * w * b) for w, b in sizes
        ]
        fit = fit_sram(points)
        assert fit.coefficients["c0"] == pytest.approx(c0)
        assert fit.coefficients["c_words"] == pytest.approx(cw)
        assert fit.coefficients["c_bits"] == pytest.approx(cb)
        assert fit.coefficients["c_cell"] == pytest.approx(cc)

    def test_sram_needs_four_points(self):
        with pytest.raises(CharacterizationError):
            fit_sram([((64, 4), 1e-12)] * 3)

    def test_noisy_fit_quality_reported(self):
        rng = random.Random(1)
        points = [
            (bits, 2e-15 * bits * rng.uniform(0.9, 1.1)) for bits in (4, 8, 16, 32, 64)
        ]
        fit = fit_linear(points)
        assert 0.9 < fit.r_squared <= 1.0
        assert fit.max_relative_error < 0.3


class TestModelPackaging:
    def test_linear_to_model(self):
        fit = fit_linear([(bits, 2e-15 * bits + 1e-14) for bits in (4, 8, 16)])
        model = model_from_linear_fit("adder_fit", fit)
        env = {"bitwidth": 10, "VDD": 1.5, "f": 1e6}
        assert model.effective_capacitance(env) == pytest.approx(
            2e-15 * 10 + 1e-14
        )

    def test_negative_intercept_dropped(self):
        fit = FitResult(
            "linear (EQ 3)",
            {"c_intercept": -1e-14, "c_per_bit": 2e-15},
            1.0, 0.0,
        )
        model = model_from_linear_fit("m", fit)
        env = {"bitwidth": 10, "VDD": 1.5, "f": 1e6}
        assert model.effective_capacitance(env) == pytest.approx(2e-14)

    def test_nonpositive_slope_rejected(self):
        fit = FitResult("linear (EQ 3)", {"c_per_bit": -1e-15}, 1.0, 0.0)
        with pytest.raises(CharacterizationError):
            model_from_linear_fit("m", fit)

    def test_bilinear_to_model(self):
        fit = fit_bilinear([((4, 4), 253e-15 * 16)])
        model = model_from_bilinear_fit("mult_fit", fit)
        env = {"bitwidthA": 16, "bitwidthB": 16, "VDD": 1.5, "f": 2e6}
        assert model.power(env) * 1e6 == pytest.approx(291.456, rel=1e-6)


class TestEQ8Extraction:
    def test_exact(self):
        c_full, c_partial, swing = 80e-12, 120e-12, 0.3
        measurements = [
            (v, c_full * v * v + c_partial * swing * v) for v in (1.0, 1.5, 2.5, 3.3)
        ]
        result = extract_reduced_swing(measurements, v_swing=swing)
        assert result["c_fullswing"] == pytest.approx(c_full)
        assert result["c_partialswing"] == pytest.approx(c_partial)
        assert result["r_squared"] == pytest.approx(1.0)

    def test_lumped_when_swing_unknown(self):
        measurements = [(v, 1e-12 * v * v + 3e-13 * v) for v in (1.0, 2.0, 3.0)]
        result = extract_reduced_swing(measurements)
        assert result["c_partial_times_swing"] == pytest.approx(3e-13)
        assert "c_partialswing" not in result

    def test_needs_two_distinct_voltages(self):
        with pytest.raises(CharacterizationError):
            extract_reduced_swing([(1.5, 1e-12)])
        with pytest.raises(CharacterizationError, match="distinct"):
            extract_reduced_swing([(1.5, 1e-12), (1.5, 1.1e-12)])

    def test_bad_swing(self):
        with pytest.raises(CharacterizationError):
            extract_reduced_swing(
                [(1.0, 1e-12), (2.0, 3e-12)], v_swing=-1.0
            )


class TestEndToEnd:
    def test_adder_characterization(self):
        model, fit = characterize_adder(bit_widths=(4, 8, 16), cycles=120)
        assert fit.r_squared > 0.98
        assert fit.within_octave
        # the packaged model predicts a held-out size within the octave
        held_out = sweep_adder((12,), cycles=120)
        rows = octave_report(
            model, [({"bitwidth": bits}, cap) for bits, cap in held_out]
        )
        assert all(ok for _env, _m, _p, ok in rows)

    def test_multiplier_characterization(self):
        model, fit = characterize_multiplier(
            sizes=((2, 2), (3, 3), (4, 4)), cycles=80
        )
        assert fit.coefficients["c_per_bit_pair"] > 0
        assert fit.r_squared > 0.9

    def test_correlated_sweep_measures_less(self):
        plain = sweep_adder((8,), cycles=250, correlation=0.0)[0][1]
        correlated = sweep_adder((8,), cycles=250, correlation=0.95)[0][1]
        assert correlated < plain

    def test_register_sweep_monotonic(self):
        points = sweep_register((2, 8, 32), cycles=100)
        capacitances = [cap for _bits, cap in points]
        assert capacitances == sorted(capacitances)


class TestMemoryCharacterization:
    """EQ 7 fit against *simulated* memory arrays (not synthetic data)."""

    def test_fit_quality(self):
        from repro.library.characterize import characterize_memory

        model, fit = characterize_memory(cycles=100)
        assert fit.r_squared > 0.98
        assert fit.within_octave
        assert fit.coefficients["c_cell"] > 0  # the words*bits term is real

    def test_model_predicts_held_out_size(self):
        from repro.library.characterize import characterize_memory, sweep_memory

        model, _fit = characterize_memory(cycles=100)
        held_out = sweep_memory(sizes=((16, 3),), cycles=100, seed=42)
        (size, measured) = held_out[0]
        predicted = model.effective_capacitance(
            {"words": size[0], "bits": size[1], "VDD": 1.5, "f": 1.0}
        )
        assert within_octave(predicted, measured), (measured, predicted)

    def test_cross_term_measurable(self):
        """Doubling words costs more in a wide memory than a narrow one
        — the physical origin of EQ 7's C_2 words*bits term."""
        from repro.library.characterize import sweep_memory

        points = dict(sweep_memory(
            sizes=((8, 2), (32, 2), (8, 4), (32, 4)), cycles=120
        ))
        narrow_gain = points[(32, 2)] - points[(8, 2)]
        wide_gain = points[(32, 4)] - points[(8, 4)]
        assert wide_gain > narrow_gain
