"""Library catalog: entries, lookup, JSON codecs, sharing semantics."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.expressions import compile_expression as E
from repro.core.model import (
    CapacitiveTerm,
    ExpressionPowerModel,
    FixedPowerModel,
    ModelSet,
    PowerModel,
    StaticTerm,
    TemplatePowerModel,
)
from repro.core.parameters import Parameter
from repro.library.catalog import (
    Library,
    LibraryEntry,
    decode_model,
    encode_model,
    register_codec,
)
from repro.library.cells import build_default_library
from repro.errors import LibraryError

ENV = {"VDD": 1.5, "f": 2e6}


def entry(name="cell", **kwargs):
    defaults = dict(
        models=ModelSet(power=FixedPowerModel(name, 1.0)),
        category="other",
    )
    defaults.update(kwargs)
    return LibraryEntry(name, **defaults)


class TestEntries:
    def test_category_validated(self):
        with pytest.raises(LibraryError, match="category"):
            entry(category="nonsense")

    def test_add_get(self):
        library = Library("lib")
        library.add(entry("a"))
        assert library.get("a").name == "a"
        assert "a" in library
        assert len(library) == 1

    def test_duplicate_rejected_unless_replace(self):
        library = Library("lib")
        library.add(entry("a"))
        with pytest.raises(LibraryError, match="already"):
            library.add(entry("a"))
        library.add(entry("a"), replace=True)

    def test_missing_entry(self):
        with pytest.raises(LibraryError, match="no entry"):
            Library("lib").get("ghost")

    def test_remove(self):
        library = Library("lib")
        library.add(entry("a"))
        library.remove("a")
        assert "a" not in library
        with pytest.raises(LibraryError):
            library.remove("a")

    def test_by_category_and_categories(self):
        library = Library("lib")
        library.add(entry("a", category="storage"))
        library.add(entry("b", category="storage"))
        library.add(entry("c", category="analog"))
        assert [e.name for e in library.by_category("storage")] == ["a", "b"]
        assert library.categories() == {"storage": ["a", "b"], "analog": ["c"]}
        with pytest.raises(LibraryError):
            library.by_category("nonsense")

    def test_search(self):
        library = Library("lib")
        library.add(entry("sram_big", doc="a large memory"))
        library.add(entry("adder", doc="sums things"))
        assert [e.name for e in library.search("MEMORY")] == ["sram_big"]
        assert [e.name for e in library.search("sram")] == ["sram_big"]


class TestCodecs:
    def roundtrip(self, model):
        return decode_model(encode_model(model))

    def test_template_model(self):
        model = TemplatePowerModel(
            "m",
            capacitive=[
                CapacitiveTerm("c1", E("bitwidth * 68f"), activity=E("0.25")),
                CapacitiveTerm("c2", E("1p"), v_swing=E("0.3"), frequency=E("f / 2")),
            ],
            static=[StaticTerm("leak", E("1u"))],
            parameters=(Parameter("bitwidth", 16, "bits", "width", 1, 64, integer=True),),
            doc="test",
        )
        clone = self.roundtrip(model)
        env = dict(ENV, bitwidth=32)
        assert clone.power(env) == pytest.approx(model.power(env))
        assert clone.breakdown(env) == pytest.approx(model.breakdown(env))
        assert clone.parameters[0].maximum == 64

    def test_expression_model(self):
        model = ExpressionPowerModel("m", "a * VDD ^ 2", (Parameter("a", 1e-6),))
        clone = self.roundtrip(model)
        assert clone.power(dict(ENV, a=2e-6)) == pytest.approx(
            model.power(dict(ENV, a=2e-6))
        )

    def test_fixed_model(self):
        clone = self.roundtrip(FixedPowerModel("lcd", 0.75, doc="panel"))
        assert clone.average_power == 0.75
        assert clone.doc == "panel"

    def test_dcdc_with_curve(self):
        from repro.models.converter import DCDCConverterModel, EfficiencyCurve

        model = DCDCConverterModel(
            "conv", curve=EfficiencyCurve([(0.1, 0.6), (1.0, 0.9)])
        )
        clone = self.roundtrip(model)
        assert clone.power({"P_load": 0.5}) == pytest.approx(
            model.power({"P_load": 0.5})
        )

    def test_interconnect(self):
        from repro.models.interconnect import InterconnectModel, Technology

        model = InterconnectModel(rent_exponent=0.7, technology=Technology(gate_pitch=20e-6))
        clone = self.roundtrip(model)
        env = dict(ENV, active_area=1e-6, activity=0.25)
        assert clone.power(env) == pytest.approx(model.power(env))

    def test_svensson(self):
        from repro.models.svensson import svensson_ripple_adder

        model = svensson_ripple_adder(16)
        clone = self.roundtrip(model)
        env = dict(ENV, bitwidth=16, activity_scale=1.0)
        assert clone.power(env) == pytest.approx(model.power(env))

    def test_unregistered_type_rejected(self):
        class Weird(PowerModel):
            def power(self, env):
                return 0.0

        with pytest.raises(LibraryError, match="no JSON codec"):
            encode_model(Weird())

    def test_unknown_kind_rejected(self):
        with pytest.raises(LibraryError, match="unknown model kind"):
            decode_model({"kind": "martian"})

    def test_register_custom_codec(self):
        class Custom(PowerModel):
            def __init__(self, watts):
                self.watts = watts
                self.name = "custom"

            def power(self, env):
                return self.watts

        register_codec(
            "custom_test_model",
            Custom,
            lambda model: {"watts": model.watts, "name": "custom"},
            lambda payload: Custom(payload["watts"]),
        )
        clone = decode_model(encode_model(Custom(2.5)))
        assert clone.power({}) == 2.5


class TestLibraryJSON:
    def test_round_trip_preserves_evaluation(self):
        library = build_default_library()
        clone = Library.from_json(library.to_json(), origin="http://remote")
        env = dict(ENV, bitwidthA=16, bitwidthB=16)
        original = library.get("multiplier").models.power.power(env)
        copied = clone.get("multiplier").models.power.power(env)
        assert copied == pytest.approx(original)
        assert clone.get("multiplier").origin == "http://remote"
        assert len(clone) == len(library)

    def test_proprietary_withheld(self):
        library = Library("lib")
        library.add(entry("open"))
        library.add(entry("secret", proprietary=True))
        shared = Library.from_json(library.to_json())
        assert "open" in shared
        assert "secret" not in shared
        full = Library.from_json(library.to_json(include_proprietary=True))
        assert "secret" in full

    def test_malformed_json(self):
        with pytest.raises(LibraryError, match="malformed"):
            Library.from_json("{nope")

    def test_wrong_format(self):
        with pytest.raises(LibraryError, match="unsupported"):
            Library.from_json('{"format": "other/9"}')

    def test_payload_missing_power(self):
        with pytest.raises(LibraryError, match="power model"):
            LibraryEntry.from_payload({"name": "x"})


class TestMerge:
    def test_prefer_mine(self):
        mine = Library("mine")
        mine.add(entry("shared", models=ModelSet(power=FixedPowerModel("a", 1.0))))
        theirs = Library("theirs")
        theirs.add(entry("shared", models=ModelSet(power=FixedPowerModel("b", 2.0))))
        theirs.add(entry("extra"))
        adopted = mine.merge(theirs, prefer="mine")
        assert adopted == ["extra"]
        assert mine.get("shared").models.power.power({}) == 1.0

    def test_prefer_theirs(self):
        mine = Library("mine")
        mine.add(entry("shared", models=ModelSet(power=FixedPowerModel("a", 1.0))))
        theirs = Library("theirs")
        theirs.add(entry("shared", models=ModelSet(power=FixedPowerModel("b", 2.0))))
        mine.merge(theirs, prefer="theirs")
        assert mine.get("shared").models.power.power({}) == 2.0

    def test_bad_preference(self):
        with pytest.raises(LibraryError):
            Library("a").merge(Library("b"), prefer="whatever")


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=1, max_value=64),
    st.floats(min_value=0.8, max_value=5.0),
    st.floats(min_value=1e3, max_value=1e8),
)
def test_property_default_library_roundtrip(bitwidth, vdd, frequency):
    """Every multiplier evaluation survives serialization bit-exactly."""
    library = build_default_library()
    clone = Library.from_json(library.to_json())
    env = {"bitwidthA": bitwidth, "bitwidthB": bitwidth, "VDD": vdd, "f": frequency}
    assert clone.get("multiplier").models.power.power(env) == pytest.approx(
        library.get("multiplier").models.power.power(env)
    )
