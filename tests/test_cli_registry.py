"""The ``repro registry`` command family."""

import pytest

from repro.cli import main
from repro.web.server import PowerPlayServer


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


def registry_args(tmp_path, *rest):
    return ("registry", "--state", str(tmp_path / "state")) + rest


class TestPublishAndList:
    def test_empty_mirror(self, capsys, tmp_path):
        code, out, _ = run(capsys, *registry_args(tmp_path, "list"))
        assert code == 0
        assert "(mirror is empty)" in out

    def test_publish_entry_then_list(self, capsys, tmp_path):
        code, out, _ = run(
            capsys, *registry_args(tmp_path, "publish", "--entry", "sram")
        )
        assert code == 0
        assert "published entry:sram@v1 digest " in out
        code, out, _ = run(capsys, *registry_args(tmp_path, "list"))
        assert code == 0
        assert "entry:sram@v1" in out and "cli" in out

    def test_republish_bumps_version(self, capsys, tmp_path):
        run(capsys, *registry_args(tmp_path, "publish", "--entry", "sram"))
        code, out, _ = run(
            capsys, *registry_args(tmp_path, "publish", "--entry", "sram")
        )
        assert code == 0
        assert "entry:sram@v2" in out

    def test_publish_design(self, capsys, tmp_path):
        code, out, _ = run(
            capsys, *registry_args(tmp_path, "publish", "--design", "fig3")
        )
        assert code == 0
        assert "design:luminance_fig3@v1" in out

    def test_unknown_entry_fails(self, capsys, tmp_path):
        code, _out, err = run(
            capsys,
            *registry_args(tmp_path, "publish", "--entry", "warp_core"),
        )
        assert code != 0
        assert "warp_core" in err


class TestVerify:
    def test_clean_mirror(self, capsys, tmp_path):
        run(capsys, *registry_args(tmp_path, "publish", "--entry", "sram"))
        code, out, _ = run(capsys, *registry_args(tmp_path, "verify"))
        assert code == 0
        assert "ok      entry:sram@v1" in out

    def test_corrupt_artifact_flagged(self, capsys, tmp_path):
        run(capsys, *registry_args(tmp_path, "publish", "--entry", "sram"))
        target = tmp_path / "state" / "registry" / "entry--sram--v1.json"
        target.write_text("garbage")
        code, out, _ = run(capsys, *registry_args(tmp_path, "verify"))
        assert code == 1
        assert "CORRUPT entry:sram@v1" in out
        # quarantined aside, visible in list as well
        code, out, _ = run(capsys, *registry_args(tmp_path, "list"))
        assert "(mirror is empty)" in out


class TestPinGc:
    def _publish_versions(self, capsys, tmp_path, count):
        for _ in range(count):
            run(capsys, *registry_args(tmp_path, "publish", "--entry", "sram"))

    def test_pin_unpin(self, capsys, tmp_path):
        self._publish_versions(capsys, tmp_path, 2)
        code, out, _ = run(
            capsys, *registry_args(tmp_path, "pin", "entry", "sram", "1")
        )
        assert code == 0 and "pinned entry:sram@v1" in out
        code, out, _ = run(capsys, *registry_args(tmp_path, "list"))
        assert "[pinned]" in out
        code, out, _ = run(
            capsys, *registry_args(tmp_path, "unpin", "entry", "sram")
        )
        assert code == 0 and "unpinned" in out

    def test_gc_respects_pins_and_latest(self, capsys, tmp_path):
        self._publish_versions(capsys, tmp_path, 4)
        run(capsys, *registry_args(tmp_path, "pin", "entry", "sram", "1"))
        code, out, _ = run(
            capsys, *registry_args(tmp_path, "gc", "--max-artifacts", "2")
        )
        assert code == 0
        assert "evicted entry:sram@v2" in out
        assert "entry:sram@v1" not in out.replace("evicted entry:sram@v1", "")
        code, out, _ = run(capsys, *registry_args(tmp_path, "list"))
        assert "entry:sram@v1" in out  # pinned survivor
        assert "entry:sram@v4" in out  # latest survivor


class TestSync:
    def test_sync_from_live_peer(self, capsys, tmp_path):
        from repro.web.app import Application

        application = Application(tmp_path / "peer", server_name="peer")
        from repro.core.model import FixedPowerModel, ModelSet
        from repro.library.catalog import LibraryEntry

        application.models_registry.publish_entry(
            LibraryEntry("shared", ModelSet(power=FixedPowerModel("shared", 1.0)))
        )
        with PowerPlayServer(tmp_path / "peer", application=application) as peer:
            code, out, _ = run(
                capsys, *registry_args(tmp_path, "sync", peer.base_url)
            )
        assert code == 0
        assert "fetched=1" in out
        code, out, _ = run(capsys, *registry_args(tmp_path, "list"))
        assert "entry:shared@v1" in out

    def test_sync_unreachable_peer_fails(self, capsys, tmp_path):
        code, _out, err = run(
            capsys, *registry_args(tmp_path, "sync", "http://127.0.0.1:1")
        )
        assert code != 0
