"""Parameter-space declaration: axes, coupling, enumeration, payloads."""

import pytest

from repro.errors import ExploreError
from repro.explore import (
    Axis,
    DerivedObjective,
    ParameterSpace,
    coupled_from_spec,
    parse_axis_spec,
)


class TestAxisSpecs:
    def test_linear_range_inclusive_stop(self):
        axis = parse_axis_spec("VDD=1.0:2.0:0.5")
        assert axis.name == "VDD"
        assert list(axis.values) == [1.0, 1.5, 2.0]

    def test_linear_tolerates_float_accumulation(self):
        # 1.1 + 22 * 0.1 lands within 1e-9 of 3.3: the stop is included
        axis = parse_axis_spec("VDD2=1.1:3.3:0.1")
        assert len(axis.values) == 23
        assert axis.values[-1] == pytest.approx(3.3)

    def test_explicit_values(self):
        axis = parse_axis_spec("bw=8,12,16")
        assert list(axis.values) == [8.0, 12.0, 16.0]

    def test_log_spacing(self):
        axis = parse_axis_spec("f=log:1e6:1e9:4")
        assert len(axis.values) == 4
        assert axis.values[0] == pytest.approx(1e6)
        assert axis.values[-1] == pytest.approx(1e9)
        ratios = [
            axis.values[i + 1] / axis.values[i]
            for i in range(len(axis.values) - 1)
        ]
        assert all(r == pytest.approx(ratios[0]) for r in ratios)

    def test_dotted_target(self):
        axis = parse_axis_spec("bw@chip.bank.bits=8,16")
        assert axis.name == "bw"
        assert axis.target == "chip.bank.bits"

    @pytest.mark.parametrize(
        "spec",
        [
            "no_equals_sign",
            "VDD=",
            "VDD=1.0:zz:0.1",
            "VDD=1.0:2.0:0",
            "VDD=2.0:1.0:0.1",
            "bw=8,oops,16",
        ],
    )
    def test_malformed_specs_raise(self, spec):
        with pytest.raises(ExploreError):
            parse_axis_spec(spec)


class TestSpaceEnumeration:
    def space(self):
        return ParameterSpace(
            [Axis("a", (1.0, 2.0)), Axis("b", (10.0, 20.0, 30.0))]
        )

    def test_row_major_last_axis_fastest(self):
        space = self.space()
        assert len(space) == 6
        values = [space.point(i)["values"] for i in range(len(space))]
        assert values[0] == {"a": 1.0, "b": 10.0}
        assert values[1] == {"a": 1.0, "b": 20.0}
        assert values[3] == {"a": 2.0, "b": 10.0}
        # deterministic: a second enumeration is identical
        assert values == [space.point(i)["values"] for i in range(6)]

    def test_chunks_tile_the_space_exactly(self):
        space = self.space()
        chunks = space.chunks(4)
        assert chunks == [(0, 4), (4, 6)]
        covered = [i for start, stop in chunks for i in range(start, stop)]
        assert covered == list(range(len(space)))
        with pytest.raises(ExploreError):
            space.chunks(0)

    def test_point_cap_enforced(self):
        with pytest.raises(ExploreError, match="over the cap"):
            ParameterSpace(
                [Axis("a", tuple(range(100))), Axis("b", tuple(range(100)))],
                point_cap=1000,
            )

    def test_duplicate_names_rejected(self):
        with pytest.raises(ExploreError, match="duplicate"):
            ParameterSpace([Axis("a", (1.0,)), Axis("a", (2.0,))])

    def test_index_out_of_range(self):
        with pytest.raises(ExploreError):
            self.space().point(6)

    def test_payload_round_trip(self):
        space = ParameterSpace(
            [parse_axis_spec("VDD=1.0:2.0:0.5"),
             parse_axis_spec("bw@row.bits=8,16")],
            [coupled_from_spec("wb=bw / 2")],
            point_cap=500,
        )
        clone = ParameterSpace.from_payload(space.to_payload())
        assert len(clone) == len(space)
        assert clone.axis_names == space.axis_names
        assert [clone.point(i) for i in range(len(clone))] == [
            space.point(i) for i in range(len(space))
        ]


class TestCoupledAndDerived:
    def test_coupled_value_follows_axes(self):
        space = ParameterSpace(
            [Axis("bw", (8.0, 16.0))], [coupled_from_spec("wb=bw / 2")]
        )
        assert space.point(0)["overrides"] == {"bw": 8.0, "wb": 4.0}
        assert space.point(1)["overrides"] == {"bw": 16.0, "wb": 8.0}

    def test_coupled_target_collision_rejected(self):
        with pytest.raises(ExploreError, match="duplicate"):
            ParameterSpace(
                [Axis("bw", (8.0,))], [coupled_from_spec("bw=bw * 2")]
            )

    def test_bad_coupled_expression(self):
        with pytest.raises(ExploreError, match="bad expression"):
            coupled_from_spec("wb=bw +* 2")

    def test_derived_objective_evaluates(self):
        objective = DerivedObjective("speed", "1.0 / delay")
        assert objective.value({"delay": 0.5}) == 2.0

    def test_derived_bad_name(self):
        with pytest.raises(ExploreError, match="bad objective name"):
            DerivedObjective("no spaces!", "1.0")
