"""Sweep jobs: atomic checkpoints, resume, quarantine, lifecycle."""

import json

import pytest

from repro.core.design import Design
from repro.core.expressions import compile_expression as E
from repro.core.model import CapacitiveTerm, TemplatePowerModel
from repro.core.parameters import Parameter
from repro.errors import JobError
from repro.explore import Axis, JobStore, ParameterSpace, validate_job_id
from repro.explore.engine import run_job

ADDER = TemplatePowerModel(
    "adder",
    capacitive=[CapacitiveTerm("bits", E("bitwidth * 68f"))],
    parameters=(Parameter("bitwidth", 16),),
)


def make_design():
    design = Design("d")
    design.scope.set("VDD", 1.5)
    design.scope.set("f", 2e6)
    design.add("alu", ADDER)
    return design


def make_space(points=6):
    return ParameterSpace([Axis("VDD", tuple(1.0 + 0.1 * i
                                             for i in range(points)))])


class TestJobIds:
    def test_valid(self):
        assert validate_job_id("job-0001") == "job-0001"

    @pytest.mark.parametrize(
        "bad",
        ["job-1", "job-0001\n", "../etc", "job-abcd", "", "JOB-0001"],
    )
    def test_invalid(self, bad):
        with pytest.raises(JobError):
            validate_job_id(bad)


class TestStore:
    def test_create_persists_pending(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.create(make_design(), make_space(), chunk_size=2)
        assert job.state == "pending"
        assert (tmp_path / f"{job.job_id}.json").exists()
        assert store.job_ids() == [job.job_id]

    def test_ids_are_sequential(self, tmp_path):
        store = JobStore(tmp_path)
        first = store.create(make_design(), make_space())
        second = store.create(make_design(), make_space())
        assert [first.job_id, second.job_id] == ["job-0001", "job-0002"]

    def test_reload_from_disk_round_trips(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.create(
            make_design(), make_space(), owner="alice",
            workers=3, mode="thread", chunk_size=2, prune=True,
        )
        job.record_chunk(0, 2, [{"index": 0}, {"index": 1}], 0.5)
        # a fresh store simulates a process that crashed and restarted
        revived = JobStore(tmp_path).job(job.job_id)
        assert revived.owner == "alice"
        assert revived.mode == "thread"
        assert revived.done_points == 2
        assert revived.pending_chunks() == [(2, 4), (4, 6)]

    def test_corrupt_checkpoint_quarantined(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.create(make_design(), make_space())
        path = tmp_path / f"{job.job_id}.json"
        path.write_text('{"format": "powerplay-job/1", "truncated')
        fresh = JobStore(tmp_path)
        with pytest.raises(JobError, match="corrupt"):
            fresh.job(job.job_id)
        assert not path.exists()
        assert path.with_suffix(".json.corrupt").exists()
        assert fresh.quarantined

    def test_no_stray_temp_files_after_saves(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.create(make_design(), make_space(), chunk_size=2)
        for start, stop in job.pending_chunks():
            job.record_chunk(start, stop, [{"index": i}
                                           for i in range(start, stop)], 0.0)
        leftovers = [p for p in tmp_path.iterdir()
                     if p.suffix == ".saving"]
        assert leftovers == []

    def test_checkpoint_is_valid_json_after_every_save(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.create(make_design(), make_space(), chunk_size=2)
        path = tmp_path / f"{job.job_id}.json"
        for start, stop in job.pending_chunks():
            job.record_chunk(start, stop, [{"index": i}
                                           for i in range(start, stop)], 0.0)
            payload = json.loads(path.read_text())  # never torn
            assert payload["format"] == "powerplay-job/1"


class TestLifecycle:
    def test_terminal_states_cannot_rerun(self, tmp_path):
        job = JobStore(tmp_path).create(make_design(), make_space())
        job.set_state("running")
        job.set_state("done")
        with pytest.raises(JobError, match="only a"):
            job.set_state("running")

    def test_cancelled_jobs_can_resume(self, tmp_path):
        job = JobStore(tmp_path).create(make_design(), make_space())
        job.set_state("running")
        job.set_state("cancelled")
        job.set_state("running")  # allowed: resume
        assert job.cancel_requested is False

    def test_cancel_after_finish_rejected(self, tmp_path):
        job = JobStore(tmp_path).create(make_design(), make_space())
        job.set_state("done")
        with pytest.raises(JobError, match="already finished"):
            job.request_cancel()

    def test_result_rows_incomplete_raises(self, tmp_path):
        job = JobStore(tmp_path).create(make_design(), make_space())
        with pytest.raises(JobError, match="incomplete"):
            job.result_rows()

    def test_unknown_state_rejected(self, tmp_path):
        job = JobStore(tmp_path).create(make_design(), make_space())
        with pytest.raises(JobError, match="unknown job state"):
            job.set_state("paused")

    def test_run_job_reaches_done(self, tmp_path):
        job = JobStore(tmp_path).create(
            make_design(), make_space(), chunk_size=2
        )
        run_job(job)
        assert job.state == "done"
        assert job.done_points == job.total_points
        rows = job.result_rows()
        assert [row["index"] for row in rows] == list(range(6))
        assert all(row["objectives"]["power"] > 0 for row in rows)

    def test_run_job_honors_cancel_request(self, tmp_path):
        job = JobStore(tmp_path).create(
            make_design(), make_space(), chunk_size=1
        )
        calls = {"n": 0}

        def stop_after_two():
            calls["n"] += 1
            return calls["n"] > 2

        run_job(job, should_stop=stop_after_two)
        assert job.state == "cancelled"
        assert 0 < job.done_points < job.total_points
