"""The sweep engine: modes agree byte-for-byte, resume is exact."""

import pytest

from repro.core.design import Design
from repro.core.estimator import evaluate_power, scope_overrides
from repro.core.expressions import compile_expression as E
from repro.core.model import CapacitiveTerm, TemplatePowerModel
from repro.core.parameters import Parameter
from repro.explore import (
    Axis,
    DerivedObjective,
    JobStore,
    ParameterSpace,
    export_json,
    run_sweep,
)
from repro.explore.engine import run_job

ADDER = TemplatePowerModel(
    "adder",
    capacitive=[CapacitiveTerm("bits", E("bitwidth * 68f"))],
    parameters=(Parameter("bitwidth", 16),),
)

RAM = TemplatePowerModel(
    "ram",
    capacitive=[CapacitiveTerm("cells", E("words * bits * 1.2f"))],
    parameters=(Parameter("words", 256), Parameter("bits", 16)),
)


def make_design():
    design = Design("d")
    design.scope.set("VDD", 1.5)
    design.scope.set("f", 2e6)
    design.add("alu", ADDER)
    design.add("mem", RAM)
    return design


def make_space():
    return ParameterSpace(
        [
            Axis("VDD", (1.1, 1.5, 2.0, 3.3)),
            Axis("bitwidth", (8.0, 16.0, 32.0)),
        ]
    )


def outcome_bytes(outcome):
    return export_json(
        outcome.rows, outcome.axis_names, outcome.objective_names
    )


class TestSweepCorrectness:
    def test_rows_match_serial_estimator(self):
        design = make_design()
        outcome = run_sweep(design, make_space(), chunk_size=5)
        assert len(outcome.rows) == 12
        for row in outcome.rows:
            with scope_overrides(design.scope, row["overrides"]):
                assert row["objectives"]["power"] == \
                    evaluate_power(design).power

    def test_rows_in_point_order(self):
        outcome = run_sweep(make_design(), make_space(), chunk_size=5)
        assert [row["index"] for row in outcome.rows] == list(range(12))

    def test_derived_objectives_computed(self):
        outcome = run_sweep(
            make_design(),
            make_space(),
            derived=[DerivedObjective("pw_mw", "power * 1000")],
        )
        for row in outcome.rows:
            assert row["objectives"]["pw_mw"] == \
                row["objectives"]["power"] * 1000

    def test_failing_point_recorded_not_raised(self):
        outcome = run_sweep(
            make_design(),
            ParameterSpace([Axis("VDD", (1.0, 2.0, 3.0))]),
            derived=[DerivedObjective("bad", "1.0 / (VDD - 2.0)")],
        )
        errors = [row for row in outcome.rows if row["error"]]
        good = [row for row in outcome.rows if not row["error"]]
        assert len(errors) == 1 and errors[0]["values"]["VDD"] == 2.0
        assert len(good) == 2
        assert outcome.report.errors == 1

    def test_prune_keeps_only_the_front(self):
        full = run_sweep(
            make_design(), make_space(), objectives=("power", "delay")
        )
        pruned = run_sweep(
            make_design(), make_space(), objectives=("power", "delay"),
            prune=True,
        )
        assert 0 < len(pruned.rows) < len(full.rows)
        assert [r["index"] for r in pruned.rows] == \
            [r["index"] for r in full.pareto()]


class TestModeEquivalence:
    def test_thread_mode_byte_identical(self):
        serial = run_sweep(make_design(), make_space(), chunk_size=3)
        threaded = run_sweep(
            make_design(), make_space(), chunk_size=3,
            workers=4, mode="thread",
        )
        assert outcome_bytes(serial) == outcome_bytes(threaded)

    def test_process_mode_byte_identical(self):
        serial = run_sweep(make_design(), make_space(), chunk_size=4)
        forked = run_sweep(
            make_design(), make_space(), chunk_size=4,
            workers=2, mode="process",
        )
        assert outcome_bytes(serial) == outcome_bytes(forked)


class TestResumeEquivalence:
    def test_interrupted_job_resumes_byte_identical(self, tmp_path):
        baseline = run_sweep(make_design(), make_space(), chunk_size=3)
        expected = outcome_bytes(baseline)

        store = JobStore(tmp_path)
        job = store.create(make_design(), make_space(), chunk_size=3)
        calls = {"n": 0}

        def stop_after_two():
            calls["n"] += 1
            return calls["n"] > 2

        run_job(job, should_stop=stop_after_two)
        assert job.state == "cancelled"
        assert 0 < job.done_points < job.total_points

        # a different process picks the checkpoint up from disk
        revived = JobStore(tmp_path).job(job.job_id)
        run_job(revived)
        assert revived.state == "done"
        resumed = export_json(
            revived.result_rows(),
            revived.space.axis_names,
            revived.objective_names,
        )
        assert resumed == expected

    def test_resume_skips_finished_chunks(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.create(make_design(), make_space(), chunk_size=3)
        run_job(job, should_stop=lambda: len(job.chunks) >= 2)
        done_before = dict(job.chunks)
        revived = JobStore(tmp_path).job(job.job_id)
        run_job(revived)
        # the chunks finished before the interruption were not re-run:
        # their recorded rows are the exact same payloads
        for start, chunk in done_before.items():
            assert revived.chunks[start]["rows"] == chunk["rows"]


class TestIndexChunks:
    """Scattered-index evaluation: the surrogate engine's exact phases."""

    def records(self, mode="serial", workers=1, **kwargs):
        from repro.explore.engine import run_index_chunks

        space = make_space()
        chunks = [(0, [0, 3, 7]), (1, [1, 11]), (2, [5])]
        records, report = run_index_chunks(
            make_design(), space, chunks, mode=mode, workers=workers,
            **kwargs,
        )
        return space, records, report

    def test_rows_match_exact_estimator(self):
        space, records, report = self.records()
        assert sorted(records) == [0, 1, 2]
        assert report.points == 6
        design = make_design()
        for record in records.values():
            for row, index in zip(record["rows"], record["indices"]):
                assert row["index"] == index
                point = space.point(index)
                assert row["values"] == point["values"]
                with scope_overrides(design.scope, point["overrides"]):
                    expected = evaluate_power(design).power
                assert row["objectives"]["power"] == expected

    @staticmethod
    def stable(records):
        """Everything but wall-clock timing."""
        return {
            ordinal: {
                "indices": record["indices"], "rows": record["rows"]
            }
            for ordinal, record in records.items()
        }

    def test_thread_mode_identical_to_serial(self):
        _, serial, _ = self.records()
        _, threaded, _ = self.records(mode="thread", workers=3)
        assert self.stable(threaded) == self.stable(serial)

    def test_process_mode_identical_to_serial(self):
        _, serial, _ = self.records()
        _, procs, _ = self.records(mode="process", workers=2)
        assert self.stable(procs) == self.stable(serial)

    def test_on_chunk_fires_per_ordinal(self):
        seen = []
        self.records(
            on_chunk=lambda ordinal, indices, rows, seconds:
                seen.append((ordinal, tuple(indices), len(rows)))
        )
        assert sorted(seen) == [(0, (0, 3, 7), 3), (1, (1, 11), 2),
                                (2, (5,), 1)]

    def test_should_stop_halts_between_chunks(self):
        from repro.explore.engine import run_index_chunks

        calls = {"n": 0}

        def stop():
            calls["n"] += 1
            return calls["n"] > 1

        records, _ = run_index_chunks(
            make_design(), make_space(),
            [(0, [0]), (1, [1]), (2, [2])], should_stop=stop,
        )
        assert len(records) < 3
