"""Result post-processing: Pareto rows, sensitivity, exports."""

import json

from repro.explore import (
    export_csv,
    export_json,
    pareto_rows,
    sensitivity_ranking,
)


def row(index, values, objectives, error=""):
    return {
        "index": index,
        "values": values,
        "overrides": dict(values),
        "objectives": objectives,
        "error": error,
    }


class TestParetoRows:
    def test_dominated_rows_drop(self):
        rows = [
            row(0, {"a": 1.0}, {"power": 1.0, "delay": 9.0}),
            row(1, {"a": 2.0}, {"power": 2.0, "delay": 4.0}),
            row(2, {"a": 3.0}, {"power": 3.0, "delay": 5.0}),  # dominated
            row(3, {"a": 4.0}, {"power": 4.0, "delay": 2.0}),
        ]
        front = pareto_rows(rows, ("power", "delay"))
        assert [r["index"] for r in front] == [0, 1, 3]

    def test_ties_all_survive(self):
        rows = [
            row(0, {"a": 1.0}, {"power": 1.0, "delay": 1.0}),
            row(1, {"a": 2.0}, {"power": 1.0, "delay": 1.0}),
        ]
        assert len(pareto_rows(rows, ("power", "delay"))) == 2

    def test_failed_rows_excluded(self):
        rows = [
            row(0, {"a": 1.0}, {}, error="boom"),
            row(1, {"a": 2.0}, {"power": 5.0}),
        ]
        assert [r["index"] for r in pareto_rows(rows, ("power",))] == [1]

    def test_single_objective_is_the_minimum(self):
        rows = [
            row(0, {"a": 1.0}, {"power": 3.0}),
            row(1, {"a": 2.0}, {"power": 1.0}),
            row(2, {"a": 3.0}, {"power": 2.0}),
        ]
        assert [r["index"] for r in pareto_rows(rows, ("power",))] == [1]

    def test_output_preserves_point_order(self):
        rows = [
            row(0, {"a": 1.0}, {"power": 4.0, "delay": 1.0}),
            row(1, {"a": 2.0}, {"power": 1.0, "delay": 4.0}),
        ]
        assert [r["index"] for r in pareto_rows(rows, ("power", "delay"))] \
            == [0, 1]


class TestSensitivity:
    def rows(self):
        # power = 10*a + b: axis a moves the objective 10x harder
        out = []
        index = 0
        for a in (1.0, 2.0):
            for b in (1.0, 2.0):
                out.append(
                    row(index, {"a": a, "b": b}, {"power": 10 * a + b})
                )
                index += 1
        return out

    def test_ranking_orders_by_impact(self):
        ranking = sensitivity_ranking(self.rows(), ["a", "b"])
        assert [item["axis"] for item in ranking] == ["a", "b"]
        assert ranking[0]["spread"] == 10.0
        assert ranking[1]["spread"] == 1.0

    def test_no_usable_rows(self):
        failed = [row(0, {"a": 1.0}, {}, error="x")]
        assert sensitivity_ranking(failed, ["a"]) == []


class TestExports:
    def rows(self):
        return [
            row(0, {"a": 1.25}, {"power": 0.1 + 0.2}),
            row(1, {"a": 2.0}, {}, error='bad "corner"'),
        ]

    def test_csv_shape_and_float_fidelity(self):
        text = export_csv(self.rows(), ["a"], ["power"])
        lines = text.splitlines()
        assert lines[0] == "index,a,power,error"
        # repr floats round-trip exactly, including 0.30000000000000004
        assert lines[1].split(",")[2] == repr(0.1 + 0.2)
        assert "bad 'corner'" in lines[2]

    def test_json_is_canonical_and_stable(self):
        first = export_json(self.rows(), ["a"], ["power"])
        second = export_json(self.rows(), ["a"], ["power"])
        assert first == second
        payload = json.loads(first)
        assert payload["format"] == "powerplay-sweep-results/1"
        assert payload["axes"] == ["a"]
        assert len(payload["rows"]) == 2

    def test_json_meta_included(self):
        text = export_json(self.rows(), ["a"], ["power"], meta={"job": "x"})
        assert json.loads(text)["meta"] == {"job": "x"}


class TestNonFiniteHardening:
    """Predicted values can go non-finite; analysis must drop, not
    propagate."""

    def rows(self):
        return [
            row(0, {"a": 1.0}, {"power": 1.0, "delay": 2.0}),
            row(1, {"a": 2.0}, {"power": float("nan"), "delay": 1.0}),
            row(2, {"a": 3.0}, {"power": float("inf"), "delay": 0.5}),
            row(3, {"a": 4.0}, {"power": 2.0, "delay": 1.0}),
            row(4, {"a": 5.0}, {}, error="boom"),
        ]

    def test_pareto_drops_non_finite(self):
        front = pareto_rows(self.rows(), ("power", "delay"))
        assert [r["index"] for r in front] == [0, 3]

    def test_pareto_stats_count_drops(self):
        stats = {}
        pareto_rows(self.rows(), ("power", "delay"), stats=stats)
        assert stats == {"dropped_failed": 1, "dropped_non_finite": 2}

    def test_nan_never_wins_single_objective(self):
        front = pareto_rows(self.rows(), ("power",))
        assert [r["index"] for r in front] == [0]

    def test_sensitivity_skips_non_finite(self):
        import math

        ranking = sensitivity_ranking(self.rows(), ["a"], "power")
        for entry in ranking:
            assert math.isfinite(entry["spread"])
            assert math.isfinite(entry["relative"])


class TestSourceColumn:
    def rows(self):
        marked = row(0, {"a": 1.0}, {"power": 1.0})
        marked["source"] = "predicted"
        return [marked, row(1, {"a": 2.0}, {"power": 2.0})]

    def test_csv_adds_source_column_when_present(self):
        lines = export_csv(self.rows(), ["a"], ["power"]).splitlines()
        assert lines[0] == "index,a,power,source,error"
        assert lines[1].split(",")[3] == "predicted"
        # rows without the key in a mixed set default to exact
        assert lines[2].split(",")[3] == "exact"

    def test_csv_unmarked_rows_keep_legacy_header(self):
        plain = [row(0, {"a": 1.0}, {"power": 1.0})]
        lines = export_csv(plain, ["a"], ["power"]).splitlines()
        assert lines[0] == "index,a,power,error"

    def test_json_carries_source_only_when_marked(self):
        payload = json.loads(export_json(self.rows(), ["a"], ["power"]))
        assert payload["rows"][0]["source"] == "predicted"
        plain = [row(0, {"a": 1.0}, {"power": 1.0})]
        payload = json.loads(export_json(plain, ["a"], ["power"]))
        assert "source" not in payload["rows"][0]
