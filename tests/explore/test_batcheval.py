"""BatchEvaluator: bit-identical to the estimator, memoized, restorable."""

import pytest

from repro.core.design import Design
from repro.core.estimator import evaluate_power, scope_overrides
from repro.core.expressions import compile_expression as E
from repro.core.model import (
    CallablePowerModel,
    CapacitiveTerm,
    TemplatePowerModel,
)
from repro.core.parameters import Parameter
from repro.designs.infopad import build_infopad
from repro.errors import ExploreError
from repro.explore import BatchEvaluator, resolve_target

ADDER = TemplatePowerModel(
    "adder",
    capacitive=[CapacitiveTerm("bits", E("bitwidth * 68f"))],
    parameters=(Parameter("bitwidth", 16),),
)

RAM = TemplatePowerModel(
    "ram",
    capacitive=[CapacitiveTerm("cells", E("words * bits * 1.2f"))],
    parameters=(Parameter("words", 256), Parameter("bits", 16)),
)


def make_design():
    design = Design("d")
    design.scope.set("VDD", 1.5)
    design.scope.set("f", 2e6)
    design.add("alu", ADDER, params={"bitwidth": 16})
    design.add("mem", RAM, params={"words": 512})
    return design


class TestEquivalence:
    def test_bit_identical_to_estimator(self):
        design = make_design()
        evaluator = BatchEvaluator(design)
        for vdd in (1.1, 1.5, 2.0, 3.3):
            for bits in (8.0, 16.0, 32.0):
                overrides = {"VDD": vdd, "bitwidth": bits}
                batch = evaluator.evaluate(overrides)["power"]
                with scope_overrides(design.scope, overrides):
                    serial = evaluate_power(design).power
                assert batch == serial  # exact: not approx

    def test_memo_hits_accumulate(self):
        design = make_design()
        evaluator = BatchEvaluator(design)
        # only the alu reads bitwidth: sweeping it must leave the mem
        # row's memo valid, so hits grow past the first point
        for bits in (8.0, 12.0, 16.0, 24.0):
            evaluator.evaluate({"bitwidth": bits})
        stats = evaluator.stats()
        assert stats["hits"] >= 3
        assert stats["hits"] + stats["misses"] >= 8

    def test_infopad_dotted_target(self):
        design = build_infopad()
        evaluator = BatchEvaluator(design)
        target = "custom_hardware.luminance_chip.read_bank.bits"
        low = evaluator.evaluate({target: 8.0})["power"]
        high = evaluator.evaluate({target: 16.0})["power"]
        assert low < high

    def test_multiple_objectives(self):
        design = build_infopad()
        evaluator = BatchEvaluator(design, ("power", "area", "delay"))
        result = evaluator.evaluate({"VDD2": 1.5})
        assert set(result) == {"power", "area", "delay"}
        assert result["power"] > 0


class TestStateDiscipline:
    def test_scope_restored_after_evaluate(self):
        design = make_design()
        evaluator = BatchEvaluator(design)
        evaluator.evaluate({"VDD": 9.9, "bitwidth": 64.0})
        assert design.scope["VDD"] == 1.5
        assert design.row("alu").scope["bitwidth"] == 16

    def test_new_global_name_removed_again(self):
        design = make_design()
        evaluator = BatchEvaluator(design)
        evaluator.evaluate({"brand_new": 1.0})
        assert "brand_new" not in design.scope.local_names()

    def test_unknown_objective_rejected(self):
        with pytest.raises(ExploreError, match="unknown objective"):
            BatchEvaluator(make_design(), ("power", "speed"))

    def test_unreplayable_model_still_correct(self):
        # a model that iterates its env cannot be memoized; it must be
        # re-evaluated every point, never served a stale value
        def snooping(env):
            seen = dict(env)  # iteration marks the row unstable
            return seen["VDD"] * 1e-3

        design = Design("d")
        design.scope.set("VDD", 1.5)
        design.scope.set("f", 2e6)
        design.add("spy", CallablePowerModel("spy", snooping))
        evaluator = BatchEvaluator(design)
        for vdd in (1.0, 2.0, 3.0, 2.0):
            got = evaluator.evaluate({"VDD": vdd})["power"]
            assert got == vdd * 1e-3


class TestResolveTarget:
    def test_plain_name_is_global(self):
        design = make_design()
        scope, name = resolve_target(design, "VDD")
        assert scope is design.scope and name == "VDD"

    def test_dotted_path_reaches_row_scope(self):
        design = make_design()
        scope, name = resolve_target(design, "alu.bitwidth")
        assert scope is design.row("alu").scope and name == "bitwidth"

    def test_missing_row_rejected(self):
        with pytest.raises(ExploreError, match="names no row"):
            resolve_target(make_design(), "nope.bitwidth")

    def test_missing_parameter_rejected(self):
        with pytest.raises(ExploreError):
            resolve_target(make_design(), "alu.nope")
