"""Structured logging: levels, formats, sinks, and the quiet default."""

import json

import pytest

from repro import obs
from repro.obs.logs import MemorySink, NullSink, StructuredLogger, format_kv


@pytest.fixture
def sink():
    """An enabled observability scope capturing into a MemorySink."""
    memory = MemorySink()
    with obs.overridden(enabled=True, log_level=obs.DEBUG,
                        json_logs=False, sink=memory,
                        clock=lambda: 42.0):
        yield memory


class TestQuietDefault:
    def test_disabled_logger_emits_nothing(self, capsys):
        log = obs.get_logger("quiet")
        log.error("boom", detail="should not appear")
        captured = capsys.readouterr()
        assert captured.out == ""
        assert captured.err == ""

    def test_enabled_without_sink_stays_silent_when_disabled(self):
        memory = MemorySink()
        with obs.overridden(enabled=False, sink=memory):
            obs.get_logger("quiet").error("boom")
        assert len(memory) == 0


class TestLevels:
    def test_below_threshold_dropped(self, sink):
        with obs.overridden(log_level=obs.WARNING):
            log = obs.get_logger("lvl")
            log.debug("d")
            log.info("i")
            log.warning("w")
            log.error("e")
        events = [record["event"] for record in sink.records]
        assert events == ["w", "e"]

    def test_level_names_round_trip(self):
        assert obs.parse_level("debug") == obs.DEBUG
        assert obs.parse_level("INFO") == obs.INFO
        assert obs.parse_level("off") == obs.OFF
        with pytest.raises(ValueError):
            obs.parse_level("loud")


class TestKvFormat:
    def test_line_shape(self, sink):
        obs.get_logger("web.access").info("request", path="/menu", status=200)
        (line,) = sink.lines
        assert line.startswith("ts=")
        assert "level=info" in line
        assert "component=web.access" in line
        assert "event=request" in line
        assert "path=/menu" in line
        assert "status=200" in line

    def test_values_with_spaces_are_quoted(self):
        record = {"msg": "two words", "eq": "a=b", "plain": "ok"}
        text = format_kv(record)
        assert 'msg="two words"' in text
        assert 'eq="a=b"' in text
        assert "plain=ok" in text

    def test_injected_clock_used_for_timestamps(self, sink):
        obs.get_logger("clock").info("tick")
        assert sink.records[0]["ts"].startswith("1970-01-01T00:00:42")


class TestJsonFormat:
    def test_json_lines_parse(self, sink):
        with obs.overridden(json_logs=True):
            obs.get_logger("api").warning("retry", attempt=2, delay_s=0.05)
        record = json.loads(sink.lines[-1])
        assert record["level"] == "warning"
        assert record["component"] == "api"
        assert record["event"] == "retry"
        assert record["attempt"] == 2


class TestSinks:
    def test_memory_sink_event_filter(self, sink):
        log = obs.get_logger("filter")
        log.info("alpha", n=1)
        log.info("beta", n=2)
        log.info("alpha", n=3)
        assert [r["n"] for r in sink.events("alpha")] == [1, 3]
        assert len(sink.events()) == 3

    def test_null_sink_swallows(self):
        with obs.overridden(enabled=True, sink=NullSink()):
            obs.get_logger("void").error("boom")  # nothing to assert: no crash

    def test_get_logger_is_cached_per_component(self):
        assert obs.get_logger("same") is obs.get_logger("same")
        assert obs.get_logger("same") is not obs.get_logger("other")

    def test_child_logger_extends_component(self, sink):
        child = StructuredLogger("web").child("session")
        child.info("noted")
        assert sink.records[0]["component"] == "web.session"
