"""Process self-metrics: uptime, RSS and open fds on /metrics."""

import pytest

from repro import obs
from repro.obs.metrics import MetricsRegistry
from repro.obs.process import refresh_process_metrics


@pytest.fixture(autouse=True)
def _fresh_registry():
    obs.get_registry().reset()
    yield
    obs.get_registry().reset()


def test_sets_the_three_gauges_on_linux(tmp_path):
    registry = MetricsRegistry()
    values = refresh_process_metrics(registry)
    # uptime is always measurable; rss/fds depend on the platform but
    # both /proc and the fallbacks exist on the CI targets
    assert values["powerplay_process_uptime_seconds"] >= 0.0
    assert values.get("powerplay_process_rss_bytes", 1.0) > 0.0
    assert values.get("powerplay_process_open_fds", 1.0) > 0.0
    rendered = registry.render()
    assert "powerplay_process_uptime_seconds" in rendered


def test_uptime_advances_with_the_clock():
    from repro.obs import process

    registry = MetricsRegistry()
    first = refresh_process_metrics(
        registry, clock=lambda: process._STARTED + 10.0
    )
    second = refresh_process_metrics(
        registry, clock=lambda: process._STARTED + 70.0
    )
    assert first["powerplay_process_uptime_seconds"] == pytest.approx(10.0)
    assert second["powerplay_process_uptime_seconds"] == pytest.approx(70.0)


def test_refresh_is_idempotent_on_one_registry():
    registry = MetricsRegistry()
    refresh_process_metrics(registry)
    refresh_process_metrics(registry)  # second call must not re-register
    rendered = registry.render()
    assert rendered.count(
        "# TYPE powerplay_process_uptime_seconds gauge"
    ) == 1


def test_default_registry_is_the_global_one():
    values = refresh_process_metrics()
    assert "powerplay_process_uptime_seconds" in values
    assert "powerplay_process_uptime_seconds" in obs.get_registry().render()
