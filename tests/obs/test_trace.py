"""Trace spans: nesting, attributes, the no-op default, rendering."""

import threading

import pytest

from repro import obs
from repro.obs.trace import _NULL_SPAN


class FakePerf:
    """A monotonic clock advanced by hand."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def perf():
    clock = FakePerf()
    with obs.overridden(enabled=True, perf=clock):
        obs.clear_traces()
        yield clock
        obs.clear_traces()


class TestNoOpMode:
    def test_disabled_span_is_the_shared_null(self):
        with obs.overridden(enabled=False):
            assert obs.span("anything") is _NULL_SPAN
            assert obs.span("other", key="value") is _NULL_SPAN

    def test_null_span_supports_the_protocol(self):
        with obs.overridden(enabled=False):
            with obs.span("quiet", design="x") as sp:
                sp.set(rows=5)  # silently ignored

    def test_disabled_spans_record_nothing(self):
        with obs.overridden(enabled=False):
            with obs.span("quiet"):
                pass
        with obs.overridden(enabled=True):
            assert obs.last_trace() is None or obs.last_trace().name != "quiet"


class TestNesting:
    def test_children_attach_to_the_open_parent(self, perf):
        with obs.span("root") as root:
            with obs.span("child_a"):
                with obs.span("grandchild"):
                    pass
            with obs.span("child_b"):
                pass
        assert [node.name for node in root.walk()] == [
            "root", "child_a", "grandchild", "child_b",
        ]
        assert root.find("grandchild") is not None
        assert root.find("ghost") is None

    def test_durations_use_the_injected_clock(self, perf):
        with obs.span("outer"):
            perf.advance(0.5)
            with obs.span("inner"):
                perf.advance(0.25)
        root = obs.last_trace()
        assert root.duration == pytest.approx(0.75)
        assert root.children[0].duration == pytest.approx(0.25)

    def test_attributes_at_open_and_mid_span(self, perf):
        with obs.span("work", design="infopad") as sp:
            sp.set(rows=12, watts=0.5)
        root = obs.last_trace()
        assert root.attributes == {"design": "infopad", "rows": 12,
                                   "watts": 0.5}

    def test_exception_marks_the_span_and_propagates(self, perf):
        with pytest.raises(RuntimeError):
            with obs.span("doomed"):
                raise RuntimeError("boom")
        root = obs.last_trace()
        assert root.name == "doomed"
        assert root.attributes["error"] == "RuntimeError"

    def test_span_ids_are_sequential_hex(self, perf):
        with obs.span("a"):
            pass
        with obs.span("b"):
            pass
        ids = [trace.span_id for trace in obs.recent_traces()[-2:]]
        assert all(len(span_id) == 4 for span_id in ids)
        assert int(ids[1], 16) == int(ids[0], 16) + 1

    def test_name_attribute_does_not_collide_with_positional(self, perf):
        # regression: span("design", name=...) must bind name= as an
        # attribute, not as the positional span name
        with obs.span("design", name="infopad"):
            pass
        root = obs.last_trace()
        assert root.name == "design"
        assert root.attributes["name"] == "infopad"


class TestRingAndThreads:
    def test_recent_traces_keeps_roots_only(self, perf):
        with obs.span("first"):
            with obs.span("nested"):
                pass
        with obs.span("second"):
            pass
        names = [trace.name for trace in obs.recent_traces()]
        assert names == ["first", "second"]

    def test_ring_is_bounded(self, perf):
        for index in range(40):
            with obs.span(f"s{index}"):
                pass
        recent = obs.recent_traces()
        assert len(recent) == 32
        assert recent[-1].name == "s39"

    def test_threads_trace_independently(self, perf):
        seen = {}

        def worker():
            with obs.span("thread_root"):
                with obs.span("thread_child"):
                    pass
            seen["last"] = obs.last_trace()

        with obs.span("main_root"):
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen["last"].name == "thread_root"
        assert obs.last_trace().name == "main_root"
        # the worker's root never attached under main_root
        assert obs.last_trace().find("thread_root") is None


class TestRendering:
    def test_tree_layout_with_shares(self, perf):
        with obs.span("evaluate_power", design="fig3") as sp:
            perf.advance(0.002)
            with obs.span("design", name="fig3"):
                perf.advance(0.008)
            sp.set(watts=1.5e-4)
        text = obs.render_trace(obs.last_trace())
        lines = text.splitlines()
        assert lines[0].startswith("evaluate_power [")
        assert "100.0%" in lines[0]
        assert "design=fig3" in lines[0]
        assert lines[1].startswith("  design [")
        assert " 80.0%" in lines[1]

    def test_payload_round_trip(self, perf):
        with obs.span("root", k=1):
            with obs.span("leaf"):
                pass
        payload = obs.last_trace().to_payload()
        assert payload["name"] == "root"
        assert payload["attributes"] == {"k": 1}
        assert payload["children"][0]["name"] == "leaf"

    def test_zero_duration_root_renders_without_dividing(self, perf):
        # every span finishes inside one clock tick: the % column must
        # degrade to a placeholder, not raise ZeroDivisionError
        with obs.span("instant"):
            with obs.span("inner"):
                pass
        root = obs.last_trace()
        assert root.duration == 0.0
        text = obs.render_trace(root)
        assert "--%" in text
        assert "%" not in text.replace("--%", "")

    def test_remote_spans_are_marked(self, perf):
        from repro.obs.trace import Span

        with obs.span("fetch"):
            remote = Span("http_request", "ffff", {})
            remote.remote = True
            assert obs.graft_remote(remote) is True
        text = obs.render_trace(obs.last_trace())
        assert "http_request [ffff] ~remote" in text


class TestAnnotateAndGraft:
    def test_annotate_drops_an_instant_child(self, perf):
        with obs.span("fetch") as sp:
            perf.advance(0.5)
            note = obs.annotate("retry", attempt=1, delay_s=0.1)
            perf.advance(0.5)
        assert note in sp.children
        assert note.duration == 0.0
        assert note.attributes == {"attempt": 1, "delay_s": 0.1}
        assert note.trace_id == sp.trace_id

    def test_annotate_without_open_span_is_none(self, perf):
        assert obs.annotate("orphan") is None

    def test_annotate_disabled_is_none(self):
        with obs.overridden(enabled=False):
            assert obs.annotate("quiet") is None

    def test_graft_requires_open_span_and_tree(self, perf):
        from repro.obs.trace import Span

        assert obs.graft_remote(None) is False
        orphan = Span("x", "1", {})
        assert obs.graft_remote(orphan) is False  # no span open
        with obs.span("fetch") as sp:
            assert obs.graft_remote(orphan) is True
        assert orphan in sp.children

    def test_current_span_tracks_the_stack(self, perf):
        assert obs.current_span() is None
        with obs.span("outer") as outer:
            assert obs.current_span() is outer
            with obs.span("inner") as inner:
                assert obs.current_span() is inner
            assert obs.current_span() is outer
        assert obs.current_span() is None

    def test_roots_get_distinct_trace_ids(self, perf):
        with obs.span("first"):
            pass
        with obs.span("second"):
            pass
        first, second = obs.recent_traces()[-2:]
        assert len(first.trace_id) == 32
        assert first.trace_id != second.trace_id
