"""SLO math edge cases — the hard parts of burn-rate alerting.

Everything runs against a private registry with an injected clock:
windows advance by arithmetic, never ``time.sleep``, so each scenario
is exact and repeatable.  Covers the acceptance list from the fleet
telemetry PR: empty windows, zero-traffic burn rates, counter resets
after a restart, and deterministic window advance.
"""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    DEFAULT_SLOS,
    SLO,
    SLOStatus,
    SLOTracker,
    route_class,
    worst_state,
)


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def registry():
    return MetricsRegistry()


@pytest.fixture
def clock():
    return FakeClock()


def make_tracker(registry, clock, slos=DEFAULT_SLOS) -> SLOTracker:
    return SLOTracker(slos=slos, registry=registry, clock=clock)


def by_name(statuses, name) -> SLOStatus:
    return next(s for s in statuses if s.slo.name == name)


# -- declaration validation ------------------------------------------------


def test_slo_declarations_are_validated():
    with pytest.raises(ValueError):
        SLO(name="x", kind="throughput", objective=0.9)
    with pytest.raises(ValueError):
        SLO(name="x", kind="availability", objective=1.0)
    with pytest.raises(ValueError):
        SLO(name="x", kind="availability", objective=0.0)
    with pytest.raises(ValueError):
        SLO(name="x", kind="latency", objective=0.99)  # no class/threshold
    slo = SLO(name="x", kind="availability", objective=0.995)
    assert slo.budget == pytest.approx(0.005)


def test_duplicate_slo_names_are_rejected(registry, clock):
    duplicated = (DEFAULT_SLOS[0], DEFAULT_SLOS[0])
    with pytest.raises(ValueError):
        make_tracker(registry, clock, slos=duplicated)


def test_route_class_mapping():
    assert route_class("/metrics") == "ops"
    assert route_class("/debug/flight") == "ops"
    assert route_class("/fleet") == "ops"
    assert route_class("/api/ping") == "api"
    assert route_class("/agent/estimate") == "api"
    assert route_class("/export/design") == "api"
    assert route_class("/menu") == "ui"
    assert route_class("/") == "ui"


def test_worst_state_of_nothing_is_ok():
    assert worst_state([]) == "ok"


# -- empty windows and zero traffic ----------------------------------------


def test_empty_window_is_ok_not_an_outage(registry, clock):
    """No counters at all: burn 0 everywhere, full budget, state ok."""
    tracker = make_tracker(registry, clock)
    statuses = tracker.evaluate()
    assert [s.state for s in statuses] == ["ok"] * len(DEFAULT_SLOS)
    for status in statuses:
        assert all(rate == 0.0 for rate in status.burn_rates.values())
        assert status.window_total == 0.0
        assert status.budget_remaining == 1.0


def test_zero_traffic_after_errors_decays_to_ok(registry, clock):
    """An idle fleet must not page: once windows age out, burn is 0."""
    responses = registry.counter(
        "powerplay_http_responses_total", "", ("status_class",)
    )
    tracker = make_tracker(registry, clock)
    responses.inc(amount=50, status_class="5xx")
    for _ in range(3):  # populate both page windows
        clock.advance(60)
        tracker.evaluate()
    assert tracker.states()["availability"] == "page"

    # no further traffic; advance past every alert window
    clock.advance(22000)
    statuses = tracker.evaluate()
    availability = by_name(statuses, "availability")
    assert availability.state == "ok"
    assert all(rate == 0.0 for rate in availability.burn_rates.values())
    assert availability.previous == "page"
    assert availability.changed


# -- burn-rate math --------------------------------------------------------


def test_error_storm_pages_then_de_escalates(registry, clock):
    """page needs BOTH 5m and 1h burning; recovery steps down via warn."""
    responses = registry.counter(
        "powerplay_http_responses_total", "", ("status_class",)
    )
    tracker = make_tracker(registry, clock)

    responses.inc(amount=100, status_class="2xx")
    statuses = tracker.evaluate()
    assert by_name(statuses, "availability").state == "ok"

    # 100% errors: burn = 1 / 0.005 = 200 in every window
    responses.inc(amount=300, status_class="5xx")
    clock.advance(60)
    tracker.evaluate()
    clock.advance(60)
    statuses = tracker.evaluate()
    availability = by_name(statuses, "availability")
    assert availability.state == "page"
    assert availability.burn_rates["page_short"] > 14.4
    assert availability.burn_rates["page_long"] > 14.4
    assert availability.window_bad == 300.0

    # bleeding stops: good traffic only.  Once the 5m window clears,
    # the page disarms — but the 30m/6h windows still remember, so the
    # alert steps down to warn instead of snapping to ok.
    responses.inc(amount=100, status_class="2xx")
    clock.advance(301)
    statuses = tracker.evaluate()
    availability = by_name(statuses, "availability")
    assert availability.state == "warn"
    assert availability.burn_rates["page_short"] == 0.0
    assert availability.burn_rates["warn_long"] >= 6.0

    # and to ok once the warn windows age out too
    clock.advance(21600)
    statuses = tracker.evaluate()
    assert by_name(statuses, "availability").state == "ok"


def test_one_bad_request_at_low_traffic_does_not_page(registry, clock):
    """The long window suppresses single-request blips."""
    responses = registry.counter(
        "powerplay_http_responses_total", "", ("status_class",)
    )
    tracker = make_tracker(registry, clock)
    responses.inc(amount=1000, status_class="2xx")
    tracker.evaluate()
    clock.advance(3000)
    tracker.evaluate()

    # one 5xx in the last five minutes, 1000 good in the last hour:
    # short burn is high, long burn is tiny -> no page
    responses.inc(amount=1, status_class="5xx")
    clock.advance(60)
    statuses = tracker.evaluate()
    availability = by_name(statuses, "availability")
    assert availability.state == "ok"
    assert availability.burn_rates["page_short"] >= 14.4
    assert availability.burn_rates["page_long"] < 14.4


def test_counter_reset_rebaselines_instead_of_spiking(registry, clock):
    """A restart (counter reset) must not look like an error spike."""
    responses = registry.counter(
        "powerplay_http_responses_total", "", ("status_class",)
    )
    tracker = make_tracker(registry, clock)
    responses.inc(amount=500, status_class="2xx")
    tracker.evaluate()

    registry.reset()  # the restart: cumulative drops 500 -> 0
    responses.inc(amount=10, status_class="2xx")
    clock.advance(60)
    statuses = tracker.evaluate()
    availability = by_name(statuses, "availability")
    assert availability.state == "ok"
    assert availability.window_bad == 0.0
    # the post-reset cumulative counts as one fresh increment
    assert availability.window_total == 510.0
    assert all(
        rate == 0.0 for rate in availability.burn_rates.values()
    )


def test_window_advance_is_deterministic(registry, clock):
    """Same pushes at the same fake times -> identical burn rates."""
    def run() -> dict:
        local_registry = MetricsRegistry()
        local_clock = FakeClock()
        responses = local_registry.counter(
            "powerplay_http_responses_total", "", ("status_class",)
        )
        tracker = make_tracker(local_registry, local_clock)
        rates = {}
        for step in range(10):
            responses.inc(amount=90, status_class="2xx")
            responses.inc(amount=10, status_class="5xx")
            local_clock.advance(45)
            statuses = tracker.evaluate()
            rates[step] = by_name(statuses, "availability").burn_rates
        return rates

    assert run() == run()


# -- latency SLOs ----------------------------------------------------------


def test_latency_slo_reads_good_count_off_the_bucket(registry, clock):
    latency = registry.histogram(
        "powerplay_http_request_seconds", "", ("route",)
    )
    tracker = make_tracker(registry, clock)
    # 80 fast + 20 slow API requests: 20% over 25ms against a 1%
    # budget is burn 20 — past the 14.4 page threshold
    for _ in range(80):
        latency.observe(0.001, route="/api/ping")
    for _ in range(20):
        latency.observe(0.9, route="/api/ping")
    clock.advance(60)
    tracker.evaluate()
    clock.advance(60)
    statuses = tracker.evaluate()
    api = by_name(statuses, "latency-api")
    assert api.state == "page"
    assert api.window_bad == 20.0
    assert api.window_total == 100.0


def test_latency_slo_is_scoped_to_its_route_class(registry, clock):
    """Slow UI pages must not page the API latency SLO."""
    latency = registry.histogram(
        "powerplay_http_request_seconds", "", ("route",)
    )
    tracker = make_tracker(registry, clock)
    for _ in range(50):
        latency.observe(2.0, route="/menu")      # ui: terrible
        latency.observe(0.001, route="/api/ping")  # api: great
    clock.advance(60)
    tracker.evaluate()
    clock.advance(60)
    statuses = tracker.evaluate()
    assert by_name(statuses, "latency-api").state == "ok"
    assert by_name(statuses, "latency-ui").state == "page"


# -- exported gauges and payload -------------------------------------------


def test_evaluate_exports_slo_gauges(registry, clock):
    responses = registry.counter(
        "powerplay_http_responses_total", "", ("status_class",)
    )
    tracker = make_tracker(registry, clock)
    responses.inc(amount=10, status_class="2xx")
    clock.advance(1)
    tracker.evaluate()
    state_gauge = registry.get("powerplay_slo_state")
    assert state_gauge is not None
    assert state_gauge.value(slo="availability") == 0.0
    burn_gauge = registry.get("powerplay_slo_burn_rate")
    assert burn_gauge.value(slo="availability", window="page_short") == 0.0
    budget_gauge = registry.get("powerplay_slo_budget_remaining")
    assert budget_gauge.value(slo="availability") == 1.0


def test_payload_shape(registry, clock):
    tracker = make_tracker(registry, clock)
    payload = SLOTracker.payload(tracker.evaluate())
    assert payload["state"] == "ok"
    names = [entry["name"] for entry in payload["objectives"]]
    assert names == [slo.name for slo in DEFAULT_SLOS]
    for entry in payload["objectives"]:
        assert set(entry) >= {
            "name", "kind", "objective", "state", "previous",
            "burn_rates", "window_total", "window_bad",
            "budget_remaining",
        }


# -- rehydration from telemetry history ------------------------------------


def flat_availability(good: float, bad: float) -> dict:
    return {
        'powerplay_http_responses_total{status_class="2xx"}': good,
        'powerplay_http_responses_total{status_class="5xx"}': bad,
    }


def test_good_total_from_flat_availability():
    from repro.obs.slo import good_total_from_flat

    slo = next(s for s in DEFAULT_SLOS if s.kind == "availability")
    good, total = good_total_from_flat(slo, flat_availability(90.0, 10.0))
    assert (good, total) == (90.0, 100.0)


def test_good_total_from_flat_latency_uses_qualifying_buckets():
    from repro.obs.slo import good_total_from_flat

    slo = next(
        s for s in DEFAULT_SLOS
        if s.kind == "latency" and s.route_class == "api"
    )
    threshold = slo.threshold_s
    flat = {
        'powerplay_http_request_seconds_count{route="/api/ping"}': 100.0,
        # cumulative buckets: 80 under half the threshold, 95 under it
        "powerplay_http_request_seconds_bucket"
        f'{{le="{threshold / 2}",route="/api/ping"}}': 80.0,
        "powerplay_http_request_seconds_bucket"
        f'{{le="{threshold}",route="/api/ping"}}': 95.0,
        'powerplay_http_request_seconds_bucket'
        '{le="+Inf",route="/api/ping"}': 100.0,
        # a ui route must not leak into the api SLO
        'powerplay_http_request_seconds_count{route="/menu"}': 50.0,
    }
    good, total = good_total_from_flat(slo, flat)
    assert (good, total) == (95.0, 100.0)


def test_rehydrate_restores_a_burning_window(registry, clock):
    """kill -9 scenario: a paging error burn is still paging after
    restart, reconstructed purely from recorded flat samples."""
    tracker = make_tracker(registry, clock)
    clock.advance(10_000)

    # recorded history: error storm over the 10 minutes before "now"
    wall_now = 50_000.0
    samples = [
        (wall_now - 600 + i * 60, flat_availability(100.0, 50.0 + i * 50))
        for i in range(10)
    ]
    statuses = tracker.rehydrate(samples, wall_now=wall_now)
    availability = by_name(statuses, "availability")
    assert availability.state == "page"
    assert tracker.states()["availability"] == "page"


def test_rehydrate_then_live_traffic_counts_once(registry, clock):
    """The freshly reset registry is one more counter reset: the next
    live evaluation re-baselines instead of double counting."""
    tracker = make_tracker(registry, clock)
    clock.advance(10_000)
    samples = [
        (1000.0 + i * 60, flat_availability(1000.0 + i, 0.0))
        for i in range(5)
    ]
    tracker.rehydrate(samples, wall_now=1000.0 + 5 * 60)

    responses = registry.counter(
        "powerplay_http_responses_total", "", ("status_class",)
    )
    responses.inc(amount=10, status_class="2xx")
    clock.advance(60)
    statuses = tracker.evaluate()
    availability = by_name(statuses, "availability")
    # 5 recorded good increments + the 10 live ones, nothing doubled
    assert availability.window_total == pytest.approx(1014.0)
    assert availability.state == "ok"


def test_rehydrate_skips_samples_from_the_future(registry, clock):
    tracker = make_tracker(registry, clock)
    clock.advance(100)
    statuses = tracker.rehydrate(
        [(2000.0, flat_availability(0.0, 500.0))], wall_now=1000.0
    )
    availability = by_name(statuses, "availability")
    assert availability.window_total == 0.0
