"""Capacity fitting: Little's-law worker counts from recorded history.

Synthetic stores with exactly known traffic shapes, so every fitted
number (rps, trend, quantile, worker count) has a hand-computable
expected value.
"""

import math

import pytest

from repro import obs
from repro.obs.capacity import (
    _histogram_quantile,
    _increase,
    _slope_per_second,
    _sum_aligned,
    build_capacity_report,
)
from repro.obs.history import HistoryConfig, HistoryStore


@pytest.fixture(autouse=True)
def _fresh_registry():
    obs.get_registry().reset()
    yield
    obs.get_registry().reset()


def store_with(tmp_path, rounds):
    """rounds: [(t, {route: (requests, lat_sum, lat_count, buckets)})]"""
    store = HistoryStore(
        tmp_path,
        HistoryConfig(seal_every=10_000, fsync_journal=False),
        clock=lambda: 0.0,
    )
    for when, per_route in rounds:
        state = {
            "powerplay_http_requests_total": {
                "kind": "counter", "series": {},
            },
            "powerplay_http_request_seconds_sum": {
                "kind": "histogram", "series": {},
            },
            "powerplay_http_request_seconds_count": {
                "kind": "histogram", "series": {},
            },
            "powerplay_http_request_seconds_bucket": {
                "kind": "histogram", "series": {},
            },
        }
        for route, (req, lsum, lcount, buckets) in per_route.items():
            state["powerplay_http_requests_total"]["series"][
                f'powerplay_http_requests_total{{route="{route}"}}'
            ] = req
            state["powerplay_http_request_seconds_sum"]["series"][
                f'powerplay_http_request_seconds_sum{{route="{route}"}}'
            ] = lsum
            state["powerplay_http_request_seconds_count"]["series"][
                f'powerplay_http_request_seconds_count{{route="{route}"}}'
            ] = lcount
            for le, value in buckets.items():
                state["powerplay_http_request_seconds_bucket"]["series"][
                    "powerplay_http_request_seconds_bucket"
                    f'{{le="{le}",route="{route}"}}'
                ] = value
        store.append(state, when=when)
    return store


# -- numeric helpers -------------------------------------------------------


def test_increase_is_counter_reset_safe():
    assert _increase([(0, 10.0), (1, 14.0), (2, 2.0)]) == 6.0


def test_slope_fits_a_clean_line():
    points = [(t, 2.0 * t + 5.0) for t in range(10)]
    assert _slope_per_second(points) == pytest.approx(2.0)
    assert _slope_per_second(points[:1]) == 0.0


def test_sum_aligned_only_uses_shared_timestamps():
    series = {
        "a": [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)],
        "b": [(1.0, 10.0), (2.0, 20.0)],
    }
    assert _sum_aligned(series) == [(1.0, 12.0), (2.0, 23.0)]
    assert _sum_aligned({}) == []


def test_histogram_quantile_interpolates():
    occupancy = [(0.1, 50.0), (0.5, 50.0), (math.inf, 0.0)]
    assert _histogram_quantile(occupancy, 0.5) == pytest.approx(0.1)
    assert _histogram_quantile(occupancy, 0.75) == pytest.approx(0.3)
    # everything in +Inf: report the last finite bound
    assert _histogram_quantile([(0.1, 0.0), (math.inf, 5.0)], 0.95) \
        == pytest.approx(0.1)
    assert _histogram_quantile([], 0.5) is None


# -- the report ------------------------------------------------------------


class TestCapacityReport:
    def steady(self, tmp_path, rps=10.0, latency=0.2, rounds=13,
               step=5.0):
        """Steady traffic: ``rps`` req/s, constant ``latency`` seconds."""
        data = []
        for index in range(rounds):
            t = index * step
            requests = rps * t
            data.append((t, {"/api/ping": (
                requests,
                requests * latency,
                requests,
                {"0.1": 0.0, "0.5": requests, "+Inf": requests},
            )}))
        return store_with(tmp_path, data)

    def test_steady_load_fits_exactly(self, tmp_path):
        store = self.steady(tmp_path)
        report = build_capacity_report(store)
        (route,) = report.routes
        assert route.route == "/api/ping"
        assert route.rps_mean == pytest.approx(10.0)
        assert route.rps_peak == pytest.approx(10.0)
        assert route.trend_per_hour == pytest.approx(0.0, abs=1e-6)
        assert route.mean_latency_s == pytest.approx(0.2)
        # 10 rps x 0.2 s = 2 in flight; 8 threads x 0.6 = 4.8/worker
        assert route.concurrency == pytest.approx(2.0)
        assert route.workers == 1
        assert report.total_workers == 1

    def test_growth_trend_raises_projected_workers(self, tmp_path):
        # rate itself grows 1 rps per second: integral is quadratic
        data = []
        for index in range(13):
            t = index * 5.0
            data.append((t, {"/api/ping": (
                0.5 * t * t,           # d/dt = t rps
                0.05 * t * t,          # constant 0.1 s per request
                0.5 * t * t,
                {},
            )}))
        store = store_with(tmp_path, data)
        report = build_capacity_report(store, horizon_s=3600.0)
        (route,) = report.routes
        assert route.trend_per_hour == pytest.approx(3600.0, rel=0.01)
        assert route.rps_projected > route.rps_peak
        assert route.workers > 1

    def test_quantile_read_from_buckets(self, tmp_path):
        store = self.steady(tmp_path)
        report = build_capacity_report(store, quantile=0.95)
        (route,) = report.routes
        # all observations fall in the (0.1, 0.5] bucket
        assert 0.1 < route.quantile_latency_s <= 0.5

    def test_rendering_and_payload_are_consistent(self, tmp_path):
        store = self.steady(tmp_path)
        report = build_capacity_report(store)
        text = report.render_text()
        assert "/api/ping" in text
        assert "provision 1 worker(s)" in text
        payload = report.payload()
        assert payload["total_workers"] == 1
        assert payload["routes"][0]["route"] == "/api/ping"
        # to_json is deterministic
        assert report.to_json() == build_capacity_report(store).to_json()

    def test_empty_store_yields_empty_report(self, tmp_path):
        store = HistoryStore(
            tmp_path, HistoryConfig(fsync_journal=False),
            clock=lambda: 0.0,
        )
        report = build_capacity_report(store)
        assert report.routes == []
        assert report.total_workers == 1  # never provision zero workers

    def test_knob_validation(self, tmp_path):
        store = self.steady(tmp_path)
        with pytest.raises(ValueError):
            build_capacity_report(store, threads_per_worker=0)
        with pytest.raises(ValueError):
            build_capacity_report(store, utilization=0.0)
        with pytest.raises(ValueError):
            build_capacity_report(store, horizon_s=-1.0)
