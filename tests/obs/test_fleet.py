"""Fleet scrape/merge determinism and the exposition round-trip.

The merge contract: any arrival order of node states produces
byte-identical aggregate JSON, counters/histograms sum, gauges take the
worst (max), and families that refuse to merge are *named*, never
silently wrong.  ``parse_exposition`` must read a peer's rendered
``/metrics`` back into exactly the shape ``export_state`` produces —
one merge code path for local and remote nodes.
"""

import json
from itertools import permutations

import pytest

from repro.obs.fleet import (
    FleetNode,
    FleetReport,
    FleetScraper,
    family_quantile,
    parse_exposition,
)
from repro.obs.metrics import MetricsRegistry, merge_states


def build_registry(scale: int = 1) -> MetricsRegistry:
    registry = MetricsRegistry()
    requests = registry.counter(
        "powerplay_http_requests_total", "requests", ("method", "route")
    )
    requests.inc(amount=10 * scale, method="GET", route="/menu")
    requests.inc(amount=3 * scale, method="POST", route="/design")
    health = registry.gauge("powerplay_health_state", "health")
    health.set(float(scale % 3))
    latency = registry.histogram(
        "powerplay_http_request_seconds", "latency", ("route",)
    )
    for index in range(5 * scale):
        latency.observe(0.001 * (index + 1), route="/menu")
    return registry


# -- exposition round-trip -------------------------------------------------


def test_parse_exposition_round_trips_export_state():
    registry = build_registry(scale=2)
    parsed = parse_exposition(registry.render())
    assert parsed == registry.export_state()


def test_parse_exposition_unescapes_label_values():
    registry = MetricsRegistry()
    counter = registry.counter("weird_total", "", ("path",))
    counter.inc(path='a"b\\c\nd')
    parsed = parse_exposition(registry.render())
    assert parsed == registry.export_state()
    (key,) = parsed["weird_total"]["series"]
    assert '\\"' in key  # the canonical key keeps exposition escaping


def test_parse_exposition_skips_garbage_lines():
    text = (
        "# TYPE good_total counter\n"
        "good_total 4\n"
        "!! not a sample line !!\n"
        "bad_value{x=\"y\"} notanumber\n"
    )
    parsed = parse_exposition(text)
    assert parsed["good_total"]["series"] == {"good_total": 4.0}
    assert "bad_value" not in parsed


# -- merge semantics -------------------------------------------------------


def test_merge_sums_counters_and_histograms_takes_max_of_gauges():
    states = [
        build_registry(scale=1).export_state(),
        build_registry(scale=2).export_state(),
    ]
    merged = merge_states(states)
    requests = merged["powerplay_http_requests_total"]["series"]
    assert requests[
        'powerplay_http_requests_total{method="GET",route="/menu"}'
    ] == 30.0
    # gauge: worst (max) state wins, not the sum
    assert merged["powerplay_health_state"]["series"][
        "powerplay_health_state"
    ] == 2.0
    # histogram counts sum
    latency = merged["powerplay_http_request_seconds"]["series"]
    assert latency[
        'powerplay_http_request_seconds_count{route="/menu"}'
    ] == 15.0


def test_merge_is_arrival_order_independent():
    states = [build_registry(scale=s).export_state() for s in (1, 2, 3, 4)]
    reference = json.dumps(merge_states(states), sort_keys=True)
    for ordering in permutations(states):
        assert json.dumps(
            merge_states(list(ordering)), sort_keys=True
        ) == reference


def test_merge_refuses_kind_conflicts():
    a = MetricsRegistry()
    a.counter("thing_total", "").inc()
    b = MetricsRegistry()
    b.gauge("thing_total", "").set(1)
    with pytest.raises(ValueError):
        merge_states([a.export_state(), b.export_state()])


def test_merge_refuses_bucket_misalignment():
    a = MetricsRegistry()
    a.histogram("lat_seconds", "", buckets=(0.1, 1.0)).observe(0.05)
    b = MetricsRegistry()
    b.histogram("lat_seconds", "", buckets=(0.2, 2.0)).observe(0.05)
    with pytest.raises(ValueError):
        merge_states([a.export_state(), b.export_state()])


def test_scraper_merge_skips_and_names_unmergeable_families():
    a = MetricsRegistry()
    a.counter("ok_total", "").inc(amount=2)
    a.histogram("lat_seconds", "", buckets=(0.1, 1.0)).observe(0.05)
    b = MetricsRegistry()
    b.counter("ok_total", "").inc(amount=3)
    b.histogram("lat_seconds", "", buckets=(0.2, 2.0)).observe(0.05)
    nodes = [
        FleetNode(name="a", url="(a)", ok=True, metrics=a.export_state()),
        FleetNode(name="b", url="(b)", ok=True, metrics=b.export_state()),
    ]
    merged, skipped = FleetScraper._merge(nodes)
    assert skipped == ["lat_seconds"]
    assert merged["ok_total"]["series"]["ok_total"] == 5.0
    assert "lat_seconds" not in merged


# -- report shape ----------------------------------------------------------


def test_report_json_is_deterministic_for_any_node_list_order():
    node_a = FleetNode(
        name="a", url="http://a", ok=True,
        health={"status": "ok", "slo": {"state": "ok"}},
        metrics=build_registry(1).export_state(),
    )
    node_b = FleetNode(
        name="b", url="http://b", ok=True,
        health={"status": "ok", "slo": {"state": "warn"}},
        metrics=build_registry(2).export_state(),
    )

    def report_for(nodes):
        ordered = sorted(nodes, key=lambda node: node.name)
        merged, skipped = FleetScraper._merge(ordered)
        return FleetReport(
            nodes=ordered, aggregate=merged, skipped=skipped
        ).to_json()

    assert report_for([node_a, node_b]) == report_for([node_b, node_a])
    report = json.loads(report_for([node_a, node_b]))
    assert report["fleet"]["state"] == "warn"  # worst node wins
    assert report["fleet"]["reachable"] == 2


def test_unreachable_node_is_a_finding_not_a_failure():
    dead = FleetNode(name="dead", url="http://dead", error="boom")
    live = FleetNode(
        name="live", url="http://live", ok=True,
        health={"status": "ok", "slo": {"state": "ok"}},
        metrics=build_registry(1).export_state(),
    )
    merged, skipped = FleetScraper._merge([dead, live])
    report = FleetReport(nodes=[dead, live], aggregate=merged,
                         skipped=skipped)
    assert report.reachable == 1
    assert dead.health_state == "unreachable"
    assert dead.slo_state == "unknown"
    assert report.fleet_state == "ok"  # only reachable nodes vote
    assert report.aggregate_requests_total() == 13.0


def test_scraper_rejects_duplicate_and_colliding_names():
    with pytest.raises(ValueError):
        FleetScraper([("a", "http://x"), ("a", "http://y")])
    with pytest.raises(ValueError):
        FleetScraper(
            [("self", "http://x")],
            local=lambda: ({}, {}),
            local_name="self",
        )


# -- quantiles over merged families ----------------------------------------


def test_family_quantile_interpolates_and_clamps():
    registry = MetricsRegistry()
    latency = registry.histogram(
        "lat_seconds", "", ("route",), buckets=(0.01, 0.1, 1.0)
    )
    for _ in range(90):
        latency.observe(0.005, route="/a")
    for _ in range(10):
        latency.observe(5.0, route="/a")  # lands in +Inf
    family = registry.export_state()["lat_seconds"]
    p50 = family_quantile(family, 0.50)
    assert p50 is not None and p50 <= 0.01
    # p99 falls in the +Inf bucket: clamp to the highest finite bound
    assert family_quantile(family, 0.99) == 1.0


def test_family_quantile_empty_and_non_histogram():
    registry = MetricsRegistry()
    registry.histogram("lat_seconds", "", ("route",))
    family = registry.export_state()["lat_seconds"]
    assert family_quantile(family, 0.5) is None
    registry.counter("c_total", "").inc()
    assert family_quantile(registry.export_state()["c_total"], 0.5) is None


# -- peer URL validation ---------------------------------------------------


class TestValidatePeerUrl:
    """Regression: a malformed --peer used to surface only as a breaker
    trip on the first scrape; now it is rejected at configuration time
    with a message naming the problem."""

    def test_good_urls_normalize(self):
        from repro.obs.fleet import validate_peer_url

        assert validate_peer_url("http://h:8080") == "http://h:8080"
        assert validate_peer_url("https://h:8080/") == "https://h:8080"
        assert validate_peer_url("http://10.0.0.2") == "http://10.0.0.2"

    @pytest.mark.parametrize("bad, fragment", [
        ("localhost:9090", "scheme"),          # no scheme at all
        ("ftp://h:21", "scheme"),              # wrong scheme
        ("http://", "host"),                   # scheme without a host
        ("http:///metrics", "host"),           # path but no host
        ("http://h:notaport", "port"),         # unparseable port
    ])
    def test_bad_urls_name_the_problem(self, bad, fragment):
        from repro.obs.fleet import validate_peer_url

        with pytest.raises(ValueError) as excinfo:
            validate_peer_url(bad)
        assert fragment in str(excinfo.value)

    def test_scraper_rejects_bad_peers_at_construction(self):
        with pytest.raises(ValueError):
            FleetScraper([("alpha", "127.0.0.1:9090")])
