"""Durability contract of the telemetry history store.

Every scenario here is a crash the store must survive byte-exactly:
torn journal tails, a kill between segment write and journal
truncation, a kill between rollup write and raw unlink, and corrupt
segments planted on disk.  Clocks are injected everywhere — nothing
sleeps, every replay is deterministic.
"""

import json
import math
import shutil

import pytest

from repro import obs
from repro.obs.history import (
    HistoryConfig,
    HistoryError,
    HistoryRecorder,
    HistoryStore,
    _decode_deltas,
    _encode_deltas,
    _quantile,
    render_sparkline,
)


class FakeClock:
    def __init__(self, now: float = 1000.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(autouse=True)
def _fresh_registry():
    obs.get_registry().reset()
    yield
    obs.get_registry().reset()


@pytest.fixture
def clock():
    return FakeClock()


def counter_state(value: float, route: str = "/api/ping") -> dict:
    return {
        "powerplay_http_requests_total": {
            "kind": "counter",
            "series": {
                f'powerplay_http_requests_total{{route="{route}"}}': value,
            },
        },
    }


def config(**overrides) -> HistoryConfig:
    defaults = dict(interval_s=5.0, seal_every=4, fsync_journal=False)
    defaults.update(overrides)
    return HistoryConfig(**defaults)


def fill(store: HistoryStore, clock: FakeClock, rounds: int,
         start_value: float = 0.0) -> None:
    for index in range(rounds):
        store.append(counter_state(start_value + index), when=clock.now)
        clock.advance(store.config.interval_s)


def range_json(store: HistoryStore) -> str:
    return store.query("powerplay_http_requests_total").to_json()


# -- config / encoding primitives ------------------------------------------


def test_config_validation_rejects_nonsense():
    with pytest.raises(HistoryError):
        HistoryConfig(interval_s=0).validated()
    with pytest.raises(HistoryError):
        HistoryConfig(seal_every=0).validated()
    with pytest.raises(HistoryError):
        HistoryConfig(raw_retention_s=-1).validated()


def test_delta_codec_round_trips_exactly():
    values = [0.0, 1.5, 1.5, 100.25, 3.0, 3.0000001]
    assert _decode_deltas(_encode_deltas(values)) == [
        round(v, 12) for v in values
    ]


def test_quantile_interpolates():
    values = sorted([1.0, 2.0, 3.0, 4.0])
    assert _quantile(values, 0.0) == 1.0
    assert _quantile(values, 1.0) == 4.0
    assert _quantile(values, 0.5) == 2.5
    assert math.isnan(_quantile([], 0.5))


# -- append / seal / recovery ----------------------------------------------


class TestJournal:
    def test_append_journals_then_seals_every_n_rounds(self, tmp_path,
                                                       clock):
        store = HistoryStore(tmp_path, config(), clock=clock)
        fill(store, clock, 3)
        assert store.journal_path.exists()
        assert len(list(store.segments_dir.iterdir())) == 0
        fill(store, clock, 1, start_value=3)  # 4th round: auto-seal
        assert not store.journal_path.exists()
        (segment,) = store.segments_dir.iterdir()
        assert segment.name.startswith("raw-")

    def test_unsealed_rounds_survive_reopen(self, tmp_path, clock):
        store = HistoryStore(tmp_path, config(seal_every=100), clock=clock)
        fill(store, clock, 3)
        store.close()  # crash without sealing

        reopened = HistoryStore(tmp_path, config(seal_every=100),
                                clock=clock)
        points = reopened.query("powerplay_http_requests_total")
        assert points.series[0]["points"] == [
            [1000.0, 0.0], [1005.0, 1.0], [1010.0, 2.0],
        ]

    def test_torn_journal_tail_is_dropped_precisely(self, tmp_path, clock):
        store = HistoryStore(tmp_path, config(seal_every=100), clock=clock)
        fill(store, clock, 3)
        store.close()
        with open(store.journal_path, "ab") as handle:
            handle.write(b'{"t": 1015.0, "f": {"x": "co')  # torn mid-write

        reopened = HistoryStore(tmp_path, config(seal_every=100),
                                clock=clock)
        (series,) = reopened.query("powerplay_http_requests_total").series
        assert [p[0] for p in series["points"]] == [1000.0, 1005.0, 1010.0]

    def test_crash_after_seal_before_truncate_never_double_counts(
            self, tmp_path, clock):
        store = HistoryStore(tmp_path, config(seal_every=100), clock=clock)
        fill(store, clock, 4)
        journal_bytes = store.journal_path.read_bytes()
        store.seal()
        # crash window: segment renamed in, journal not yet unlinked
        store.journal_path.write_bytes(journal_bytes)
        store.close()

        reopened = HistoryStore(tmp_path, config(seal_every=100),
                                clock=clock)
        (series,) = reopened.query("powerplay_http_requests_total").series
        assert len(series["points"]) == 4  # not 8

    def test_backwards_clock_keeps_rounds_monotonic(self, tmp_path, clock):
        store = HistoryStore(tmp_path, config(seal_every=100), clock=clock)
        store.append(counter_state(1.0), when=1000.0)
        store.append(counter_state(2.0), when=900.0)  # clock stepped back
        (series,) = store.query("powerplay_http_requests_total").series
        times = [p[0] for p in series["points"]]
        assert times == sorted(times)
        # both rounds kept, in append order (the second nudged forward)
        assert [p[1] for p in series["points"]] == [1.0, 2.0]


class TestQuarantine:
    def build(self, tmp_path, clock) -> HistoryStore:
        store = HistoryStore(tmp_path, config(), clock=clock)
        fill(store, clock, 8)  # two sealed segments
        return store

    def test_truncated_segment_quarantined_without_hiding_the_rest(
            self, tmp_path, clock):
        store = self.build(tmp_path, clock)
        first, second = sorted(store.segments_dir.iterdir())
        blob = first.read_bytes()
        first.write_bytes(blob[: len(blob) // 2])  # torn segment write

        reopened = HistoryStore(tmp_path, config(), clock=clock)
        (series,) = reopened.query("powerplay_http_requests_total").series
        # the second segment's 4 rounds are all still there
        assert [p[1] for p in series["points"]] == [4.0, 5.0, 6.0, 7.0]
        assert any(".corrupt" in p.name
                   for p in store.segments_dir.iterdir())
        assert reopened.quarantined
        assert first.name in {name for name, _ in reopened.quarantined}

    def test_misaligned_columns_quarantined_at_query_time(self, tmp_path,
                                                          clock):
        store = self.build(tmp_path, clock)
        first = sorted(store.segments_dir.iterdir())[0]
        payload = json.loads(first.read_text())
        payload["times"] = "not-a-list"
        first.write_text(json.dumps(payload))

        reopened = HistoryStore(tmp_path, config(), clock=clock)
        (series,) = reopened.query("powerplay_http_requests_total").series
        assert len(series["points"]) == 4
        assert reopened.quarantined

    def test_stray_file_with_segment_suffix_is_quarantined(self, tmp_path,
                                                           clock):
        store = self.build(tmp_path, clock)
        (store.segments_dir / "raw-bogus.json").write_text("{}")
        reopened = HistoryStore(tmp_path, config(), clock=clock)
        assert ("raw-bogus.json", "unrecognized segment name") in \
            reopened.quarantined


# -- compaction ------------------------------------------------------------


class TestCompaction:
    def seeded(self, root, clock, rounds=24) -> HistoryStore:
        store = HistoryStore(root, config(), clock=clock)
        fill(store, clock, rounds)
        store.seal()
        return store

    def test_raw_rolls_into_m1_past_retention(self, tmp_path, clock):
        store = self.seeded(tmp_path, clock)
        clock.advance(store.config.raw_retention_s + 1)
        done = store.compact()
        assert done["m1"] == 6  # one per raw segment
        levels = {p.name.split("-")[0]
                  for p in store.segments_dir.iterdir()}
        assert levels == {"m1"}

    def test_rate_survives_compaction_across_segment_boundaries(
            self, tmp_path, clock):
        """Counter increase stays exact across per-segment rollups.

        24 rounds, +1 every 5 s (a steady 0.2/s), sealed into six
        4-round segments.  Rolled up, the rate between bucket-end
        points must still be 0.2/s — per-segment compaction with
        baseline chaining must not double-count or drop increments at
        segment boundaries.
        """
        store = self.seeded(tmp_path, clock)
        clock.advance(store.config.raw_retention_s + 1)
        store.compact()
        (series,) = store.query(
            "powerplay_http_requests_total", op="rate"
        ).series
        assert series["points"], "rollups answered nothing"
        # every full bucket keeps the exact rate; the final bucket is
        # partial (data stops mid-bucket) so it reads proportionally low
        for _, value in series["points"][:-1]:
            assert value == pytest.approx(0.2)
        assert 0 < series["points"][-1][1] <= 0.2 + 1e-9
        # and the closing value itself survived into the last bucket
        (rng,) = store.query("powerplay_http_requests_total").series
        assert rng["points"][-1][1] == 23.0

    def test_crash_between_rollup_write_and_raw_unlink_resumes(
            self, tmp_path, clock):
        """The documented crash window: target written, source kept."""
        a_root, b_root = tmp_path / "a", tmp_path / "b"
        store_a = self.seeded(a_root, clock)
        store_a.close()
        shutil.copytree(a_root, b_root)

        # clean pass on the copy: this is the converged ground truth
        done_clock = FakeClock(clock.now + 7201)
        store_b = HistoryStore(b_root, config(), clock=done_clock)
        store_b.compact()

        # crash simulation in a: the first m1 output landed on disk but
        # the raw source was never unlinked
        first_m1 = sorted(
            p for p in store_b.segments_dir.iterdir()
            if p.name.startswith("m1-")
        )[0]
        shutil.copy(first_m1, a_root / "segments" / first_m1.name)
        planted = (a_root / "segments" / first_m1.name).read_bytes()

        reopened = HistoryStore(a_root, config(), clock=done_clock)
        reopened.compact()
        # existing output never rewritten — byte-identical to the plant
        assert (a_root / "segments" / first_m1.name).read_bytes() \
            == planted
        # and the directory converged to exactly the clean pass
        assert sorted(p.name for p in store_b.segments_dir.iterdir()) \
            == sorted(p.name
                      for p in (a_root / "segments").iterdir())
        assert range_json(reopened) == range_json(store_b)

    def test_m1_folds_into_m15_and_expires(self, tmp_path, clock):
        store = self.seeded(tmp_path, clock, rounds=24)
        clock.advance(store.config.m1_retention_s + 21600 * 2)
        done = store.compact()
        assert done["m1"] == 6 and done["m15"] == 1
        (only,) = store.segments_dir.iterdir()
        assert only.name.startswith("m15-")
        # ...and far enough in the future the m15 file expires too
        clock.advance(store.config.m15_retention_s + 21600 * 2)
        assert store.compact()["expired"] == 1
        assert list(store.segments_dir.iterdir()) == []

    def test_compaction_is_deterministic_across_replicas(self, tmp_path,
                                                         clock):
        a_root, b_root = tmp_path / "a", tmp_path / "b"
        store_a = self.seeded(a_root, clock)
        store_a.close()
        shutil.copytree(a_root, b_root)
        when = clock.now + 7201
        for root in (a_root, b_root):
            HistoryStore(root, config(),
                         clock=FakeClock(when)).compact()
        for name in sorted(p.name for p in (a_root / "segments").iterdir()):
            assert (a_root / "segments" / name).read_bytes() \
                == (b_root / "segments" / name).read_bytes()


# -- queries ---------------------------------------------------------------


class TestQuery:
    def test_replay_is_byte_identical_across_reopen(self, tmp_path, clock):
        store = HistoryStore(tmp_path, config(), clock=clock)
        fill(store, clock, 10)
        first = range_json(store)
        store.close()
        later = FakeClock(clock.now + 12345)  # wall clock must not leak
        reopened = HistoryStore(tmp_path, config(), clock=later)
        assert range_json(reopened) == first

    def test_rate_is_counter_reset_safe(self, tmp_path, clock):
        store = HistoryStore(tmp_path, config(seal_every=100), clock=clock)
        for value, when in ((10.0, 1000.0), (20.0, 1010.0),
                            (3.0, 1020.0)):  # restart between samples
            store.append(counter_state(value), when=when)
        (series,) = store.query(
            "powerplay_http_requests_total", op="rate"
        ).series
        assert series["points"] == [[1010.0, 1.0], [1020.0, 0.3]]

    def test_label_filter_selects_one_series(self, tmp_path, clock):
        store = HistoryStore(tmp_path, config(seal_every=100), clock=clock)
        state = {
            "powerplay_http_requests_total": {
                "kind": "counter",
                "series": {
                    'powerplay_http_requests_total{route="/a"}': 1.0,
                    'powerplay_http_requests_total{route="/b"}': 2.0,
                },
            },
        }
        store.append(state, when=1000.0)
        result = store.query("powerplay_http_requests_total",
                             labels={"route": "/b"})
        (series,) = result.series
        assert series["points"] == [[1000.0, 2.0]]

    def test_quantile_op_reports_value_and_samples(self, tmp_path, clock):
        store = HistoryStore(tmp_path, config(seal_every=100), clock=clock)
        for index in range(5):
            store.append({
                "g": {"kind": "gauge", "series": {"g": float(index)}},
            }, when=1000.0 + index)
        (series,) = store.query("g", op="quantile", q=0.5).series
        assert series["value"] == 2.0 and series["samples"] == 5

    def test_invalid_queries_raise_history_error(self, tmp_path, clock):
        store = HistoryStore(tmp_path, config(), clock=clock)
        with pytest.raises(HistoryError):
            store.query("x", op="median")
        with pytest.raises(HistoryError):
            store.query("")
        with pytest.raises(HistoryError):
            store.query("x", op="quantile", q=1.5)

    def test_flat_recent_merges_rollups_and_raw(self, tmp_path, clock):
        store = HistoryStore(tmp_path, config(), clock=clock)
        fill(store, clock, 8)
        store.seal()
        clock.advance(store.config.raw_retention_s + 1)
        store.compact()
        fill(store, clock, 2, start_value=8)
        samples = store.flat_recent(0.0)
        times = [t for t, _ in samples]
        assert times == sorted(times)
        key = 'powerplay_http_requests_total{route="/api/ping"}'
        # newest raw sample is verbatim; older ones come from buckets
        assert samples[-1][1][key] == 9.0
        assert any(flat.get(key) == 7.0 for _, flat in samples[:-2])


# -- recorder --------------------------------------------------------------


class TestRecorder:
    def test_sample_once_appends_and_compacts_on_cadence(self, tmp_path,
                                                         clock):
        store = HistoryStore(tmp_path, config(seal_every=2), clock=clock)
        compactions = []
        original = store.compact
        store.compact = lambda now=None: compactions.append(now) \
            or original(now)
        recorder = HistoryRecorder(store, lambda: counter_state(1.0),
                                   compact_every=3, clock=clock)
        for _ in range(6):
            recorder.sample_once()
            clock.advance(5.0)
        assert len(compactions) == 2

    def test_source_errors_do_not_append(self, tmp_path, clock):
        store = HistoryStore(tmp_path, config(), clock=clock)

        def broken():
            raise RuntimeError("scrape exploded")

        recorder = HistoryRecorder(store, broken, clock=clock)
        assert recorder.sample_once() == 0.0
        assert store.stats()["active_rounds"] == 0

    def test_background_thread_starts_and_stops(self, tmp_path):
        store = HistoryStore(tmp_path, config(seal_every=1000))
        recorder = HistoryRecorder(store, lambda: counter_state(1.0),
                                   interval_s=0.01)
        recorder.start()
        recorder.start()  # idempotent
        import time as _time
        deadline = _time.time() + 5.0
        while _time.time() < deadline:
            if store.stats()["active_rounds"] >= 2:
                break
            _time.sleep(0.01)
        recorder.stop()
        assert store.stats()["active_rounds"] >= 2 \
            or sum(store.stats()["segments"].values()) > 0

    def test_invalid_interval_rejected(self, tmp_path):
        store = HistoryStore(tmp_path, config())
        with pytest.raises(HistoryError):
            HistoryRecorder(store, dict, interval_s=0.0)


# -- sparklines ------------------------------------------------------------


def test_sparkline_shapes():
    assert render_sparkline([]) == ""
    assert render_sparkline([1.0, 1.0, 1.0]) == "▁▁▁"
    line = render_sparkline([0.0, 1.0, 2.0, 3.0])
    assert line[0] == "▁" and line[-1] == "█"
    assert " " in render_sparkline([0.0, math.nan, 1.0])
    assert len(render_sparkline(list(range(100)), width=10)) == 10
