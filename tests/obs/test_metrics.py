"""Metrics registry: counters, gauges, histograms, Prometheus text."""

import pytest

from repro.obs.metrics import (
    Counter,
    DEFAULT_LATENCY_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
)


@pytest.fixture
def registry():
    return MetricsRegistry(namespace="test")


class TestCounter:
    def test_counts_with_and_without_labels(self, registry):
        plain = registry.counter("events_total", "Events.")
        plain.inc()
        plain.inc(2)
        assert plain.value() == 3

        routed = registry.counter("hits_total", "Hits.", ("route",))
        routed.inc(route="/menu")
        routed.inc(route="/menu")
        routed.inc(route="/play")
        assert routed.value(route="/menu") == 2
        assert routed.value(route="/play") == 1
        assert routed.total() == 3

    def test_negative_increment_rejected(self, registry):
        counter = registry.counter("ups_total", "Only up.")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_render(self, registry):
        counter = registry.counter("hits_total", "Hits.", ("route",))
        counter.inc(route="/menu")
        text = "\n".join(counter.render())
        assert "# HELP hits_total Hits." in text
        assert "# TYPE hits_total counter" in text
        assert 'hits_total{route="/menu"} 1' in text


class TestGauge:
    def test_set_inc_dec(self, registry):
        gauge = registry.gauge("depth", "Current depth.")
        gauge.set(5)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value() == 4

    def test_labelled_series_are_independent(self, registry):
        gauge = registry.gauge("state", "Per-name state.", ("name",))
        gauge.set(2, name="remote")
        gauge.set(0, name="hub")
        assert gauge.value(name="remote") == 2
        assert gauge.value(name="hub") == 0


class TestHistogram:
    def test_counts_and_sum(self, registry):
        histogram = registry.histogram(
            "latency_seconds", "Latency.", buckets=(0.01, 0.1, 1.0)
        )
        for value in (0.005, 0.05, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.count() == 4
        assert histogram.sum() == pytest.approx(5.555)

    def test_buckets_render_cumulative(self, registry):
        histogram = registry.histogram(
            "latency_seconds", "Latency.", buckets=(0.01, 0.1, 1.0)
        )
        for value in (0.005, 0.05, 0.5, 5.0):
            histogram.observe(value)
        text = "\n".join(histogram.render())
        assert 'latency_seconds_bucket{le="0.01"} 1' in text
        assert 'latency_seconds_bucket{le="0.1"} 2' in text
        assert 'latency_seconds_bucket{le="1"} 3' in text
        assert 'latency_seconds_bucket{le="+Inf"} 4' in text
        assert "latency_seconds_count 4" in text

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_LATENCY_BUCKETS) == sorted(DEFAULT_LATENCY_BUCKETS)


class TestRegistry:
    def test_get_or_create_is_idempotent(self, registry):
        first = registry.counter("hits_total", "Hits.", ("route",))
        again = registry.counter("hits_total", "Hits.", ("route",))
        assert first is again

    def test_type_conflict_rejected(self, registry):
        registry.counter("thing", "A counter.")
        with pytest.raises(ValueError):
            registry.gauge("thing", "Now a gauge?")

    def test_label_conflict_rejected(self, registry):
        registry.counter("hits_total", "Hits.", ("route",))
        with pytest.raises(ValueError):
            registry.counter("hits_total", "Hits.", ("path",))

    def test_render_is_valid_exposition(self, registry):
        registry.counter("hits_total", "Hits.", ("route",)).inc(route="/menu")
        registry.gauge("depth", "Depth.").set(3)
        text = registry.render()
        for line in text.splitlines():
            assert line == "" or line.startswith("#") or " " in line
        assert text.endswith("\n")
        assert "# TYPE hits_total counter" in text
        assert "# TYPE depth gauge" in text

    def test_label_values_escaped(self, registry):
        counter = registry.counter("odd_total", "Odd labels.", ("what",))
        counter.inc(what='say "hi"\nthere\\')
        rendered = registry.render()
        assert r'what="say \"hi\"\nthere\\"' in rendered

    def test_snapshot(self, registry):
        registry.counter("hits_total", "Hits.", ("route",)).inc(route="/menu")
        registry.histogram("lat", "Latency.", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["hits_total"][("/menu",)] == 1
        assert snap["lat_count"][()] == 1
        assert snap["lat_sum"][()] == pytest.approx(0.5)

    def test_reset_zeroes_samples_but_keeps_definitions(self, registry):
        counter = registry.counter("hits_total", "Hits.", ("route",))
        counter.inc(route="/menu")
        registry.reset()
        assert counter.total() == 0
        assert registry.counter("hits_total", "Hits.", ("route",)) is counter
        # HELP/TYPE survive a reset so /metrics keeps advertising families
        assert "# TYPE hits_total counter" in registry.render()

    def test_global_registry_is_shared(self):
        assert get_registry() is get_registry()
