"""RotatingFileSink: size-bounded, atomic-rename rotation."""

import pytest

from repro.obs.logs import RotatingFileSink


def emit_line(sink: RotatingFileSink, text: str) -> None:
    sink.emit(text, {"event": "test"})


def test_rotation_bounds_total_files(tmp_path):
    path = tmp_path / "access.log"
    sink = RotatingFileSink(path, max_bytes=100, keep=2)
    for index in range(40):
        emit_line(sink, f"line-{index:04d} " + "x" * 20)
    sink.close()

    files = sink.files()
    assert [f.name for f in files] == [
        "access.log", "access.log.1", "access.log.2"
    ]
    assert all(f.exists() for f in files)
    assert sink.rotations > 0
    # nothing beyond the keep bound survives
    assert not (tmp_path / "access.log.3").exists()
    # each file respects the size bound (plus one line of overshoot)
    for f in files:
        assert f.stat().st_size <= 100 + 40


def test_rotation_shifts_contents_in_order(tmp_path):
    path = tmp_path / "a.log"
    sink = RotatingFileSink(path, max_bytes=20, keep=3)
    for index in range(6):
        emit_line(sink, f"line-{index}-padding-0123456")  # 1 line per file
    sink.close()
    # newest line lives in the live file, older ones shifted down
    assert "line-5" in path.read_text()
    assert "line-4" in (tmp_path / "a.log.1").read_text()
    assert "line-3" in (tmp_path / "a.log.2").read_text()


def test_triggering_line_is_written_whole_to_the_new_file(tmp_path):
    path = tmp_path / "a.log"
    sink = RotatingFileSink(path, max_bytes=30, keep=1)
    emit_line(sink, "first-line-under-the-bound")
    emit_line(sink, "second-line-that-triggers-rotation")
    sink.close()
    assert path.read_text() == "second-line-that-triggers-rotation\n"
    assert "first-line" in (tmp_path / "a.log.1").read_text()


def test_keep_zero_truncates_instead_of_archiving(tmp_path):
    path = tmp_path / "a.log"
    sink = RotatingFileSink(path, max_bytes=25, keep=0)
    emit_line(sink, "aaaaaaaaaaaaaaaaaaaa")
    emit_line(sink, "bbbbbbbbbbbbbbbbbbbb")
    sink.close()
    assert "bbbb" in path.read_text()
    assert "aaaa" not in path.read_text()
    assert not (tmp_path / "a.log.1").exists()


def test_validation():
    with pytest.raises(ValueError):
        RotatingFileSink("x.log", max_bytes=0)
    with pytest.raises(ValueError):
        RotatingFileSink("x.log", keep=-1)


def test_append_resumes_existing_file_size(tmp_path):
    path = tmp_path / "a.log"
    path.write_text("x" * 90 + "\n")
    sink = RotatingFileSink(path, max_bytes=100, keep=1)
    emit_line(sink, "this line pushes the existing file over the bound")
    sink.close()
    assert (tmp_path / "a.log.1").exists()  # pre-existing bytes counted


def test_emit_survives_disk_errors(tmp_path):
    sink = RotatingFileSink(tmp_path / "a.log", max_bytes=1000, keep=1)
    emit_line(sink, "hello")
    sink._handle.close()  # simulate the handle dying under the sink
    emit_line(sink, "world")  # must not raise
    sink.close()
