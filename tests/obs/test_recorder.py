"""Flight recorder: ring semantics, snapshots, quarantine, trace stash."""

import json

import pytest

from repro import obs
from repro.obs.recorder import (
    FlightRecorder,
    consume_root,
    install_trace_hook,
    load_snapshots,
)


class FakeMonotonic:
    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture(autouse=True)
def _fresh_registry():
    obs.get_registry().reset()
    yield
    obs.get_registry().reset()


def record_n(recorder: FlightRecorder, count: int, status: int = 200):
    for index in range(count):
        recorder.record(
            route="/menu", method="GET", status=status,
            duration_ms=float(index),
        )


# -- ring ------------------------------------------------------------------


def test_ring_keeps_only_the_newest_capacity_records():
    recorder = FlightRecorder(capacity=4)
    record_n(recorder, 10)
    records = recorder.records()
    assert len(records) == len(recorder) == 4
    assert [record.seq for record in records] == [7, 8, 9, 10]
    assert recorder.to_payload()["recorded_total"] == 10


def test_records_limit_returns_newest():
    recorder = FlightRecorder(capacity=8)
    record_n(recorder, 5)
    assert [r.seq for r in recorder.records(limit=2)] == [4, 5]


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        FlightRecorder(capacity=0)


# -- snapshots -------------------------------------------------------------


def test_5xx_auto_snapshots_and_rate_limits(tmp_path):
    mono = FakeMonotonic()
    recorder = FlightRecorder(
        snapshot_dir=tmp_path, snapshot_interval_s=2.0, monotonic=mono
    )
    record_n(recorder, 3)
    record_n(recorder, 1, status=500)  # first 5xx: snapshot
    record_n(recorder, 1, status=503)  # inside the interval: suppressed
    assert len(list(tmp_path.glob("flight-*.json"))) == 1
    mono.advance(3)
    record_n(recorder, 1, status=500)  # interval passed: snapshot again
    assert len(list(tmp_path.glob("flight-*.json"))) == 2
    # the rate limiter must never suppress a forced (SLO page) snapshot
    path = recorder.snapshot(
        reason="slo", trigger="slo_page",
        slo_payload={"state": "page"}, force=True,
    )
    assert path is not None
    payload = json.loads(path.read_text())
    assert payload["trigger"] == "slo_page"
    assert payload["slo"] == {"state": "page"}
    assert payload["records"][-1]["status"] == 500


def test_snapshot_without_directory_is_a_noop():
    recorder = FlightRecorder()
    assert recorder.snapshot(reason="x", force=True) is None


def test_snapshots_are_pruned_to_the_bound(tmp_path):
    mono = FakeMonotonic()
    recorder = FlightRecorder(
        snapshot_dir=tmp_path, max_snapshots=3, monotonic=mono
    )
    record_n(recorder, 2)
    for index in range(6):
        assert recorder.snapshot(reason=f"s{index}", force=True)
    files = sorted(path.name for path in tmp_path.glob("flight-*.json"))
    assert len(files) == 3
    assert files[0].startswith("flight-0004")  # oldest three deleted


def test_load_snapshots_quarantines_corrupt_files(tmp_path):
    recorder = FlightRecorder(snapshot_dir=tmp_path)
    record_n(recorder, 2)
    assert recorder.snapshot(reason="good", force=True)
    (tmp_path / "flight-9999-bad.json").write_text("{not json")
    (tmp_path / "flight-9998-hollow.json").write_text('{"no": "records"}')

    snapshots = load_snapshots(tmp_path)
    assert len(snapshots) == 1
    assert snapshots[0].reason == "good"
    assert len(snapshots[0].records) == 2
    quarantined = sorted(
        path.name for path in tmp_path.glob("*.corrupt*")
    )
    assert len(quarantined) == 2
    # quarantined files no longer match the snapshot glob
    assert len(list(tmp_path.glob("flight-*.json"))) == 1


def test_load_snapshots_of_missing_directory_is_empty(tmp_path):
    assert load_snapshots(tmp_path / "nowhere") == []


# -- trace stash -----------------------------------------------------------


def test_trace_hook_stashes_root_and_consume_clears():
    install_trace_hook()
    consume_root()  # drop anything a previous test left behind
    with obs.overridden(enabled=True):
        with obs.span("request_root"):
            with obs.span("inner"):
                pass
        root = consume_root()
    assert root is not None
    assert root.name == "request_root"
    assert consume_root() is None  # consume-once: the stash is cleared
    obs.clear_traces()


def test_consume_root_without_tracing_returns_none():
    consume_root()
    with obs.overridden(enabled=False):
        pass
    assert consume_root() is None
