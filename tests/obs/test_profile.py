"""Span profiling: self time, call-path aggregation, rendering."""

import math

import pytest

from repro import obs
from repro.obs.profile import (
    ProfileNode,
    aggregate,
    hot_paths,
    profile_payload,
    render_flamegraph,
    render_profile,
    self_seconds,
)
from repro.obs.trace import Span


def make_span(name, duration, *children, remote=False, span_id="0001"):
    node = Span(name, span_id, {})
    node.duration = duration
    node.remote = remote
    node.children.extend(children)
    return node


class TestSelfTime:
    def test_self_is_duration_minus_children(self):
        root = make_span("root", 1.0, make_span("a", 0.3), make_span("b", 0.5))
        assert self_seconds(root) == pytest.approx(0.2)

    def test_leaf_self_is_its_duration(self):
        assert self_seconds(make_span("leaf", 0.25)) == pytest.approx(0.25)

    def test_clock_skew_floors_at_zero(self):
        # remote children measured on another clock can sum past the
        # parent; self time must never go negative
        root = make_span("root", 0.1, make_span("r", 0.4, remote=True))
        assert self_seconds(root) == 0.0


class TestAggregation:
    def _roots(self):
        return [
            make_span("evaluate", 1.0,
                      make_span("design", 0.8, make_span("row", 0.5))),
            make_span("evaluate", 3.0,
                      make_span("design", 2.0, make_span("row", 1.5))),
        ]

    def test_counts_totals_min_max(self):
        top = aggregate(self._roots())
        assert top.count == 2
        assert top.total_s == pytest.approx(4.0)
        evaluate = top.children["evaluate"]
        assert evaluate.count == 2
        assert evaluate.min_s == pytest.approx(1.0)
        assert evaluate.max_s == pytest.approx(3.0)
        row = evaluate.children["design"].children["row"]
        assert row.count == 2
        assert row.total_s == pytest.approx(2.0)

    def test_same_name_different_paths_stay_separate(self):
        roots = [
            make_span("a", 1.0, make_span("x", 0.5)),
            make_span("b", 1.0, make_span("x", 0.25)),
        ]
        top = aggregate(roots)
        assert top.children["a"].children["x"].total_s == pytest.approx(0.5)
        assert top.children["b"].children["x"].total_s == pytest.approx(0.25)

    def test_self_total_equals_root_total(self):
        # the invariant the ISSUE names: self times sum back to the
        # total (the zero-floor can only *lose* skewed time, and these
        # trees have none)
        top = aggregate(self._roots())
        assert top.self_total == pytest.approx(top.total_s)

    def test_empty_ring_aggregates_cleanly(self):
        top = aggregate([])
        assert top.count == 0
        assert top.min_s == 0.0
        assert render_profile(top).startswith("(no traces")
        assert render_flamegraph(top).startswith("(no traced")

    def test_remote_flag_propagates(self):
        top = aggregate([
            make_span("fetch", 1.0, make_span("http_request", 0.4, remote=True)),
        ])
        assert top.children["fetch"].children["http_request"].remote is True
        assert top.children["fetch"].remote is False


class TestHotPaths:
    def test_sorted_by_self_time_then_path(self):
        roots = [
            make_span("root", 1.0,
                      make_span("b", 0.3), make_span("a", 0.3)),
        ]
        rows = hot_paths(aggregate(roots))
        paths = [path for path, _node in rows]
        # root self = 0.4 beats the 0.3 ties; ties break alphabetically
        assert paths == ["root", "root/a", "root/b"]

    def test_top_n_truncates(self):
        roots = [make_span("root", 1.0,
                           *[make_span(f"c{i}", 0.01 * (i + 1))
                             for i in range(20)])]
        assert len(hot_paths(aggregate(roots), top=5)) == 5

    def test_deterministic_across_runs(self):
        roots = self_roots = [
            make_span("r", 2.0, make_span("x", 1.0), make_span("y", 1.0)),
        ]
        first = [p for p, _ in hot_paths(aggregate(roots))]
        second = [p for p, _ in hot_paths(aggregate(self_roots))]
        assert first == second


class TestRendering:
    def _profile(self):
        return aggregate([
            make_span("evaluate", 0.004,
                      make_span("design", 0.003,
                                make_span("row", 0.002, remote=True))),
        ])

    def test_table_has_all_columns_and_footer(self):
        text = render_profile(self._profile())
        header = text.splitlines()[0]
        for column in ("path", "count", "total ms", "self ms",
                       "self %", "min ms", "max ms"):
            assert column in header
        assert "1 trace(s), 4.000 ms total" in text.splitlines()[-1]

    def test_remote_paths_are_marked(self):
        text = render_profile(self._profile())
        row_line = next(line for line in text.splitlines()
                        if line.startswith("evaluate/design/row"))
        assert "~" in row_line

    def test_flamegraph_bars_scale_with_total(self):
        lines = render_flamegraph(self._profile(), width=40).splitlines()
        bars = [line.count("#") for line in lines]
        assert bars[0] == 40                 # the root spans all time
        assert bars == sorted(bars, reverse=True)
        assert "~" in lines[2]               # remote marker on the row

    def test_payload_shape(self):
        payload = profile_payload(self._profile(), top=2)
        assert payload["traces"] == 1
        assert payload["total_s"] == pytest.approx(0.004)
        assert payload["self_total_s"] == pytest.approx(0.004)
        assert len(payload["hot_paths"]) == 2
        first = payload["hot_paths"][0]
        assert set(first) == {"path", "count", "total_s", "self_s",
                              "min_s", "max_s"}
        assert payload["tree"]["name"] == "(traces)"
        assert not math.isinf(payload["tree"]["min_s"])

    def test_zero_count_nodes_render_zero_min(self):
        node = ProfileNode("idle")
        payload = profile_payload(aggregate([]))
        assert payload["tree"]["min_s"] == 0.0
        assert node.min_s == math.inf  # internal sentinel, never exported


class TestEndToEndWithTracer:
    def test_live_spans_profile_cleanly(self):
        with obs.overridden(enabled=True):
            obs.clear_traces()
            for _ in range(3):
                with obs.span("evaluate_power"):
                    with obs.span("design"):
                        with obs.span("row"):
                            pass
            top = aggregate(obs.recent_traces())
            assert top.count == 3
            paths = [p for p, _ in hot_paths(top, top=10)]
            assert "evaluate_power/design/row" in paths
            assert top.self_total <= top.total_s + 1e-9
            obs.clear_traces()
