"""Trace-context propagation: wire format, defensive parsing, caps.

The federation headers are parsed from untrusted peers, so every test
here doubles as a security property: malformed input is *ignored*,
never an error, and IDs can never smuggle header-injection bytes.
"""

import json

import pytest

from repro import obs
from repro.obs import propagate
from repro.obs.propagate import (
    MAX_SPAN_HEADER_BYTES,
    MAX_SPAN_NODES,
    MAX_TRACE_HEADER_BYTES,
    TraceContext,
    decode_span_header,
    encode_span_header,
    extract_context,
    outbound_headers,
    parse_trace_header,
    span_from_payload,
)
from repro.obs.trace import Span

VALID_TRACE = "0" * 31 + "7"
VALID_HEADER = f"00-{VALID_TRACE}-00ab"


@pytest.fixture
def tracing():
    with obs.overridden(enabled=True):
        obs.clear_traces()
        yield
        obs.clear_traces()


class TestParseTraceHeader:
    def test_round_trip(self):
        context = TraceContext(VALID_TRACE, "00ab")
        assert parse_trace_header(context.header_value()) == context

    def test_valid_header_parses(self):
        context = parse_trace_header(VALID_HEADER)
        assert context.trace_id == VALID_TRACE
        assert context.span_id == "00ab"

    @pytest.mark.parametrize("bad", [
        None,
        "",
        42,
        "garbage",
        "00-short-00ab",                        # trace id not 32 chars
        f"01-{VALID_TRACE}-00ab",               # unknown version
        f"00-{VALID_TRACE.upper()}-00AB",       # uppercase hex rejected
        f"00-{VALID_TRACE}-",                   # empty span id
        f"00-{VALID_TRACE}-00ab-extra",         # too many fields
        f"00-{VALID_TRACE}-0123456789abcdef0",  # span id > 16 chars
        f"00-{'g' * 32}-00ab",                  # non-hex trace id
    ])
    def test_malformed_headers_ignored(self, bad):
        assert parse_trace_header(bad) is None

    def test_oversized_header_ignored(self):
        assert parse_trace_header("0" * (MAX_TRACE_HEADER_BYTES + 1)) is None

    def test_header_injection_is_structurally_impossible(self):
        # CR/LF (and anything outside lowercase hex) fails the charset
        # check, so a crafted ID can never become a header separator
        evil = "00-" + "a" * 30 + "\r\n" + "-00ab"
        assert parse_trace_header(evil) is None
        assert parse_trace_header(f"00-{VALID_TRACE}-ab\r\nX: y") is None

    def test_extract_context_reads_the_mapping(self):
        headers = {propagate.TRACE_HEADER: VALID_HEADER}
        assert extract_context(headers) == TraceContext(VALID_TRACE, "00ab")
        assert extract_context(None) is None
        assert extract_context({}) is None


class TestOutboundHeaders:
    def test_untraced_fetch_carries_nothing(self):
        with obs.overridden(enabled=False):
            assert outbound_headers() == {}

    def test_no_open_span_carries_nothing(self, tracing):
        assert outbound_headers() == {}

    def test_open_span_is_injected(self, tracing):
        with obs.span("fetch") as sp:
            headers = outbound_headers()
            context = parse_trace_header(headers[propagate.TRACE_HEADER])
            assert context.span_id == sp.span_id
            assert context.trace_id == sp.trace_id
            assert len(context.trace_id) == 32

    def test_injection_counted_in_metrics(self, tracing):
        registry = obs.get_registry()
        before = registry.counter(
            "powerplay_trace_propagation_total", "", ("op",)
        ).value(op="inject")
        with obs.span("fetch"):
            outbound_headers()
        after = registry.counter(
            "powerplay_trace_propagation_total", "", ("op",)
        ).value(op="inject")
        assert after == before + 1


class TestSpanHeaderRoundTrip:
    def _tree(self):
        root = Span("http_request", "0a01", {"route": "/api/model"})
        root.duration = 0.004
        root.trace_id = VALID_TRACE
        child = Span("design", "0a02", {"name": "fig3"})
        child.duration = 0.003
        root.children.append(child)
        return root

    def test_encode_decode_round_trip(self):
        decoded = decode_span_header(encode_span_header(self._tree()))
        assert decoded.name == "http_request"
        assert decoded.remote is True
        assert decoded.duration == pytest.approx(0.004)
        assert decoded.trace_id == VALID_TRACE
        assert decoded.children[0].name == "design"
        assert decoded.children[0].remote is True
        assert decoded.children[0].attributes == {"name": "fig3"}

    def test_encoded_header_is_single_line(self):
        root = self._tree()
        root.set(note="line one\nline two")
        encoded = encode_span_header(root)
        assert "\n" not in encoded and "\r" not in encoded

    def test_oversized_tree_truncates_to_root_stub(self):
        root = self._tree()
        for index in range(2000):
            leaf = Span("leaf", f"{index:04x}", {"payload": "x" * 64})
            leaf.duration = 0.001
            root.children.append(leaf)
        encoded = encode_span_header(root)
        assert 0 < len(encoded) <= MAX_SPAN_HEADER_BYTES
        decoded = decode_span_header(encoded)
        assert decoded.children == []
        assert decoded.attributes["truncated"] is True

    @pytest.mark.parametrize("bad", [
        None,
        "",
        "not json",
        "[1,2,3]",
        '{"name": "x"}',                               # missing fields
        '{"name": "", "span_id": "a", "duration_s": 1}',
        '{"name": "x", "span_id": "a", "duration_s": -1}',
        '{"name": "x", "span_id": "a", "duration_s": "soon"}',
    ])
    def test_malformed_span_headers_ignored(self, bad):
        assert decode_span_header(bad) is None

    def test_oversized_span_header_ignored(self):
        assert decode_span_header("x" * (MAX_SPAN_HEADER_BYTES + 1)) is None

    def test_node_budget_rejects_bushy_trees(self):
        payload = {
            "name": "root", "span_id": "01", "duration_s": 1.0,
            "attributes": {},
            "children": [
                {"name": f"c{i}", "span_id": f"{i:x}", "duration_s": 0.0,
                 "attributes": {}, "children": []}
                for i in range(MAX_SPAN_NODES + 1)
            ],
        }
        assert span_from_payload(payload) is None

    def test_depth_cap_rejects_deep_trees(self):
        payload = {"name": "n0", "span_id": "0", "duration_s": 0.0,
                   "attributes": {}, "children": []}
        node = payload
        for index in range(40):
            child = {"name": f"n{index + 1}", "span_id": f"{index:x}",
                     "duration_s": 0.0, "attributes": {}, "children": []}
            node["children"] = [child]
            node = child
        assert span_from_payload(payload) is None

    def test_attribute_values_are_stringified_and_clipped(self):
        payload = {
            "name": "x", "span_id": "a", "duration_s": 0.0,
            "attributes": {"blob": ["a"] * 500, "n": 3, "ok": True},
            "children": [],
        }
        node = span_from_payload(payload)
        assert isinstance(node.attributes["blob"], str)
        assert len(node.attributes["blob"]) <= 256
        assert node.attributes["n"] == 3
        assert node.attributes["ok"] is True

    def test_forged_ids_in_payload_are_dropped(self):
        # trace/parent IDs failing the hex charset are silently omitted
        payload = {
            "name": "x", "span_id": "a", "duration_s": 0.0,
            "attributes": {}, "children": [],
            "trace_id": "EVIL\r\n" + "0" * 26, "parent_id": "nope!",
        }
        node = span_from_payload(payload)
        assert node.trace_id == ""
        assert node.parent_id == ""

    def test_decode_metrics_count_both_outcomes(self):
        with obs.overridden(enabled=True):
            counter = obs.get_registry().counter(
                "powerplay_trace_propagation_total", "", ("op",)
            )
            ok_before = counter.value(op="graft")
            bad_before = counter.value(op="graft_ignored")
            decode_span_header(encode_span_header(self._tree()))
            decode_span_header("not json")
            assert counter.value(op="graft") == ok_before + 1
            assert counter.value(op="graft_ignored") == bad_before + 1


class TestContextAdoption:
    def test_root_span_adopts_the_remote_context(self, tracing):
        context = TraceContext(VALID_TRACE, "00ab")
        with obs.traced("http_request", context) as sp:
            assert sp.trace_id == VALID_TRACE
            assert sp.parent_id == "00ab"
            # nested spans inherit the adopted trace id
            with obs.span("inner") as inner:
                assert inner.trace_id == VALID_TRACE
                assert inner.parent_id == ""

    def test_nested_span_never_adopts(self, tracing):
        context = TraceContext(VALID_TRACE, "00ab")
        with obs.span("local_root") as root:
            with obs.traced("nested", context) as sp:
                assert sp.trace_id == root.trace_id
                assert sp.trace_id != VALID_TRACE
                assert sp.parent_id == ""

    def test_traced_without_context_matches_span(self, tracing):
        with obs.traced("plain", None) as sp:
            assert len(sp.trace_id) == 32

    def test_payload_carries_adopted_identity(self, tracing):
        context = TraceContext(VALID_TRACE, "00ab")
        with obs.traced("http_request", context):
            pass
        payload = obs.last_trace().to_payload()
        assert payload["trace_id"] == VALID_TRACE
        assert payload["parent_id"] == "00ab"
        # and it survives the full wire round trip
        decoded = decode_span_header(json.dumps(payload))
        assert decoded.trace_id == VALID_TRACE
        assert decoded.parent_id == "00ab"
