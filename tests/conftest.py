"""Suite-wide pytest configuration.

Adds ``--update-golden``: regenerate the byte-for-byte golden report
files under ``tests/golden/`` instead of comparing against them.  Run it
after an *intentional* change to report rendering or to the luminance /
InfoPad reference designs, then review the diff like any other code
change::

    PYTHONPATH=src python -m pytest tests/test_golden_reports.py --update-golden
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/* from current output instead of comparing",
    )


@pytest.fixture
def update_golden(request):
    return request.config.getoption("--update-golden")
