"""Robustness: the application must degrade with 4xx pages, never crash.

Property-style fuzzing of routes, form fields and expressions: whatever
a browser (or a hostile client) sends, the server answers with a status
code and an HTML/JSON body — no unhandled exceptions, no 5xx-equivalent
tracebacks, no markup injection.
"""

import string

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.expressions import parse
from repro.errors import ParseError, PowerPlayError
from repro.web.app import Application


@pytest.fixture(scope="module")
def app(tmp_path_factory):
    application = Application(tmp_path_factory.mktemp("fuzz_state"))
    application.handle("POST", "/login", {"user": "fuzz"})
    application.handle("POST", "/design/new", {"user": "fuzz", "name": "d"})
    return application


_path_chars = st.text(
    alphabet=string.ascii_letters + string.digits + "/?&=._-%:",
    min_size=0, max_size=40,
)


class TestRouteFuzz:
    @given(path=_path_chars)
    @settings(max_examples=60, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_any_get_path_returns_a_response(self, app, path):
        response = app.handle("GET", "/" + path)
        assert response.status in (200, 303, 400, 404, 422)
        assert isinstance(response.body, str)

    @given(
        fields=st.dictionaries(
            st.text(alphabet=string.printable, min_size=1, max_size=20),
            st.text(alphabet=string.printable, max_size=20),
            max_size=5,
        )
    )
    @settings(max_examples=60, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_any_form_to_cell_returns_a_response(self, app, fields):
        form = {"user": "fuzz", "name": "multiplier"}
        form.update(fields)
        response = app.handle("POST", "/cell", form)
        assert response.status in (200, 400, 422)

    @given(
        value=st.text(alphabet=string.printable, min_size=1, max_size=30)
    )
    @settings(max_examples=60, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_any_play_value_is_handled(self, app, value):
        response = app.handle(
            "POST", "/design",
            {"user": "fuzz", "name": "d", "g:VDD": value},
        )
        assert response.status in (200, 400, 422)

    @given(
        equation=st.text(alphabet=string.printable, min_size=1, max_size=50),
        name=st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=10),
    )
    @settings(max_examples=40, suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_any_model_definition_is_handled(self, app, equation, name):
        response = app.handle(
            "POST", "/define",
            {"user": "fuzz", "name": "zz_" + name, "equation": equation,
             "parameters": "", "doc": "", "category": "other",
             "proprietary": "no"},
        )
        assert response.status in (200, 400, 422)


class TestInjection:
    def test_script_in_design_name_escaped(self, app):
        hostile = "<script>alert(1)</script>"
        response = app.handle(
            "POST", "/design/new", {"user": "fuzz", "name": hostile}
        )
        # either rejected outright or escaped in the follow-up page
        if response.status == 303:
            page = app.handle(
                "GET", f"/design?user=fuzz&name={hostile}"
            )
            assert "<script>" not in page.body

    def test_script_in_model_doc_escaped(self, app):
        app.handle(
            "POST", "/define",
            {"user": "fuzz", "name": "xssmodel",
             "equation": "1u * VDD", "parameters": "",
             "doc": "<script>alert(1)</script>", "category": "other",
             "proprietary": "no"},
        )
        page = app.handle("GET", "/cell?user=fuzz&name=xssmodel")
        assert "<script>alert" not in page.body

    def test_path_traversal_username_rejected(self, app):
        response = app.handle("POST", "/login", {"user": "../../etc/passwd"})
        assert response.status == 400


class TestExpressionFuzz:
    @given(st.text(max_size=60))
    @settings(max_examples=150)
    def test_parser_never_raises_foreign_exceptions(self, source):
        """Arbitrary input either parses or raises ParseError — nothing
        else (no RecursionError, no ValueError escaping)."""
        try:
            parse(source)
        except ParseError:
            pass

    @given(st.text(alphabet="()+-*/^?:.,0123456789abc ", max_size=80))
    @settings(max_examples=150)
    def test_operator_soup(self, source):
        try:
            tree = parse(source)
        except ParseError:
            return
        # if it parsed, evaluation fails only with EvaluationError
        from repro.core.expressions import evaluate
        from repro.errors import EvaluationError

        try:
            evaluate(tree, {"a": 1.0, "b": 2.0, "c": 3.0})
        except EvaluationError:
            pass
