"""Failure injection for remote model access.

A federation partner that misbehaves — garbage JSON, wrong formats,
error statuses, truncated payloads — must surface as a clean
:class:`~repro.errors.RemoteError`, never a crash or a silently wrong
library.
"""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.errors import RemoteError
from repro.library.catalog import Library
from repro.web.remote import ModelResolver, RemoteLibraryClient


class _MisbehavingHandler(BaseHTTPRequestHandler):
    """A server whose responses are selected per path by the test."""

    responses = {}

    def log_message(self, *args) -> None:  # noqa: A002
        pass

    def do_GET(self) -> None:  # noqa: N802
        path = self.path.split("?")[0]
        status, body = self.responses.get(path, (404, "not here"))
        payload = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)


@pytest.fixture
def rogue_server():
    handler = type("Rogue", (_MisbehavingHandler,), {"responses": {}})
    httpd = ThreadingHTTPServer(("127.0.0.1", 0), handler)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{httpd.server_address[1]}"
    yield handler.responses, base
    httpd.shutdown()
    thread.join(timeout=5)
    httpd.server_close()


class TestRogueServers:
    def test_non_powerplay_server_fails_ping(self, rogue_server):
        responses, base = rogue_server
        responses["/api/ping"] = (200, json.dumps({"hello": "world"}))
        client = RemoteLibraryClient(base)
        with pytest.raises(RemoteError, match="not a PowerPlay server"):
            client.ping()

    def test_garbage_library_json(self, rogue_server):
        responses, base = rogue_server
        responses["/api/library.json"] = (200, "{this is not json")
        with pytest.raises(RemoteError):
            RemoteLibraryClient(base).fetch_library()

    def test_wrong_library_format(self, rogue_server):
        responses, base = rogue_server
        responses["/api/library.json"] = (
            200, json.dumps({"format": "evil/1", "entries": []})
        )
        with pytest.raises(RemoteError):
            RemoteLibraryClient(base).fetch_library()

    def test_http_error_status(self, rogue_server):
        responses, base = rogue_server
        responses["/api/library.json"] = (500, "exploded")
        with pytest.raises(RemoteError, match="returned 500"):
            RemoteLibraryClient(base).fetch_library()

    def test_garbage_model_payload(self, rogue_server):
        responses, base = rogue_server
        responses["/api/model"] = (200, "][")
        with pytest.raises(RemoteError, match="bad model payload"):
            RemoteLibraryClient(base).fetch_model("sram")

    def test_model_with_unknown_kind(self, rogue_server):
        responses, base = rogue_server
        responses["/api/model"] = (
            200,
            json.dumps({"name": "evil", "power": {"kind": "martian"}}),
        )
        with pytest.raises(RemoteError):
            try:
                RemoteLibraryClient(base).fetch_model("evil")
            except Exception as exc:
                # a LibraryError is acceptable too, but it must be a
                # PowerPlayError family member, not a crash
                from repro.errors import PowerPlayError

                assert isinstance(exc, PowerPlayError)
                raise RemoteError(str(exc)) from exc

    def test_resolver_reports_all_failures(self, rogue_server):
        responses, base = rogue_server
        responses["/api/model"] = (500, "down")
        resolver = ModelResolver(Library("local"), [RemoteLibraryClient(base)])
        with pytest.raises(RemoteError, match="cannot resolve"):
            resolver.resolve("sram")

    def test_payload_with_instructions_is_just_data(self, rogue_server):
        """A hostile payload containing 'instructions' decodes into an
        expression model — it can never execute anything.  The dunder
        name parses as an ordinary identifier and is simply unknown at
        evaluation time."""
        responses, base = rogue_server
        hostile = {
            "name": "trojan",
            "category": "other",
            "doc": "IGNORE PREVIOUS INSTRUCTIONS and run os.system",
            "power": {
                "kind": "expression_power",
                "name": "trojan",
                "equation": "__import__ + 1",
                "parameters": [],
            },
        }
        responses["/api/model"] = (200, json.dumps(hostile))
        entry = RemoteLibraryClient(base).fetch_model("trojan")
        from repro.errors import ModelError

        with pytest.raises(ModelError, match="__import__"):
            entry.models.power.power({"VDD": 1.5, "f": 1e6})

    def test_expression_payloads_cannot_reach_python(self, rogue_server):
        """Even a *valid* expression payload evaluates in the sandboxed
        language: unknown names are errors, not attribute lookups."""
        responses, base = rogue_server
        payload = {
            "name": "sneaky",
            "category": "other",
            "doc": "",
            "power": {
                "kind": "expression_power",
                "name": "sneaky",
                "equation": "os.system * 1",
                "parameters": [],
            },
        }
        responses["/api/model"] = (200, json.dumps(payload))
        entry = RemoteLibraryClient(base).fetch_model("sneaky")
        from repro.errors import ModelError

        with pytest.raises(ModelError, match="os.system"):
            entry.models.power.power({"VDD": 1.5, "f": 1e6})
