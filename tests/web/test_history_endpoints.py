"""The telemetry-history web surface: /history and /api/history/query.

Covers the wiring over :mod:`repro.obs.history` (unit-tested in
tests/obs/): attaching a store to the app, the dashboard render, the
query API's JSON shape and error handling, and SLO rehydration on
attach after a simulated kill.
"""

import json
import time

import pytest

from repro import obs
from repro.obs.history import HistoryConfig
from repro.web.app import Application


@pytest.fixture
def app(tmp_path):
    obs.get_registry().reset()
    application = Application(tmp_path / "state", server_name="unit")
    yield application
    obs.get_registry().reset()


def attach(app, tmp_path, interval_s=1.0):
    return app.attach_history(
        tmp_path / "history",
        config=HistoryConfig(interval_s=interval_s, seal_every=4,
                             fsync_journal=False),
    )


def get_json(app, path):
    response = app.handle("GET", path)
    assert response.status == 200, response.body
    return json.loads(response.body)


# -- endpoints without a store ---------------------------------------------


def test_history_404s_when_not_recording(app):
    assert app.handle("GET", "/history").status == 404
    response = app.handle("GET", "/api/history/query?name=x")
    assert response.status == 404
    assert "history" in json.loads(response.body)["error"]


# -- the dashboard ---------------------------------------------------------


class TestHistoryPage:
    def record(self, app, rounds=5):
        for _ in range(rounds):
            app.handle("GET", "/api/ping")
            app.history_recorder.sample_once()

    def test_html_dashboard_renders(self, app, tmp_path):
        attach(app, tmp_path)
        self.record(app)
        response = app.handle("GET", "/history")
        assert response.status == 200
        body = response.body
        assert "Telemetry history" in body
        assert "powerplay_http_requests_total" in body
        assert "Capacity fit" in body

    def test_json_stats_shape(self, app, tmp_path):
        attach(app, tmp_path)
        self.record(app)
        payload = get_json(app, "/history?fmt=json")
        assert payload["server"] == "unit"
        assert payload["recording"] is True  # a recorder is attached
        assert payload["stats"]["active_rounds"] >= 1
        assert any(
            "powerplay_http_requests_total" in key
            for key in payload["series"]
        )

    def test_process_gauges_ride_along(self, app, tmp_path):
        attach(app, tmp_path)
        self.record(app)
        keys = app.history.series_keys()
        assert "powerplay_process_uptime_seconds" in keys
        assert "powerplay_process_rss_bytes" in keys


# -- the query API ---------------------------------------------------------


class TestQueryApi:
    def test_range_query_round_trips(self, app, tmp_path):
        attach(app, tmp_path)
        for _ in range(3):
            app.handle("GET", "/api/ping")
            app.history_recorder.sample_once()
        payload = get_json(
            app, "/api/history/query?name=powerplay_http_requests_total"
        )
        assert payload["name"] == "powerplay_http_requests_total"
        assert payload["op"] == "range"
        points = {
            entry["key"]: entry["points"] for entry in payload["series"]
        }
        (ping_key,) = [k for k in points if "/api/ping" in k]
        assert [v for _, v in points[ping_key]] == [1.0, 2.0, 3.0]

    def test_label_filter_param(self, app, tmp_path):
        attach(app, tmp_path)
        app.handle("GET", "/api/ping")
        app.handle("GET", "/healthz")
        app.history_recorder.sample_once()
        payload = get_json(
            app,
            "/api/history/query?name=powerplay_http_requests_total"
            "&l:route=/api/ping",
        )
        assert len(payload["series"]) == 1
        assert '/api/ping' in payload["series"][0]["key"]

    def test_rate_and_quantile_ops(self, app, tmp_path):
        attach(app, tmp_path)
        for _ in range(3):
            app.handle("GET", "/api/ping")
            app.history_recorder.sample_once()
        rate = get_json(
            app, "/api/history/query?"
            "name=powerplay_http_requests_total&op=rate"
        )
        assert rate["op"] == "rate"
        quantile = get_json(
            app, "/api/history/query?"
            "name=powerplay_process_uptime_seconds&op=quantile&q=0.5"
        )
        assert quantile["series"][0]["samples"] == 3

    def test_bad_queries_are_400s(self, app, tmp_path):
        attach(app, tmp_path)
        response = app.handle(
            "GET", "/api/history/query?name=x&op=bogus"
        )
        assert response.status == 400
        assert "op" in json.loads(response.body)["error"]
        response = app.handle("GET", "/api/history/query")
        assert response.status == 400


# -- restart / rehydration -------------------------------------------------


class TestRestartRehydration:
    def test_slo_burn_state_survives_reattach(self, tmp_path):
        """Record an error storm, drop the app (kill), re-attach: the
        availability page state is rebuilt from disk before the first
        live evaluation."""
        obs.get_registry().reset()
        app = Application(tmp_path / "state", server_name="alpha")
        attach(app, tmp_path)
        responses = app.registry.counter(
            "powerplay_http_responses_total", "", ("status_class",)
        )
        now = time.time()
        for index in range(10):
            responses.inc(amount=50, status_class="5xx")
            app.history.append(app._history_sample(),
                               when=now - 600 + index * 60)
        app.history.seal()
        app.slo_tracker.evaluate()
        before = app.slo_tracker.states()["availability"]
        assert before == "page"
        app.history.close()  # kill -9: nothing else shuts down cleanly

        obs.get_registry().reset()  # fresh process: counters at zero
        restarted = Application(tmp_path / "state2", server_name="alpha")
        attach(restarted, tmp_path)
        assert restarted.slo_tracker.states()["availability"] == "page"
        obs.get_registry().reset()

    def test_attach_without_prior_data_is_clean(self, app, tmp_path):
        attach(app, tmp_path)
        states = app.slo_tracker.states()
        assert all(state == "ok" for state in states.values())
        payload = get_json(app, "/history?fmt=json")
        assert payload["stats"]["active_rounds"] == 0
