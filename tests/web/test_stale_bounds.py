"""ModelCache max-stale-age: stale serves are bounded, counted, explicit."""

import pytest

from repro import obs
from repro.web.resilience import ModelCache


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture(autouse=True)
def clean_metrics():
    obs.get_registry().reset()


def stale_served_total():
    return obs.get_registry().counter("powerplay_stale_served_total").total()


class TestMaxStaleAge:
    def test_within_bound_serves_and_counts(self):
        clock = FakeClock()
        cache = ModelCache(ttl=10.0, max_stale_age=30.0, clock=clock)
        cache.put("sram", "entry")
        clock.advance(15.0)  # past TTL, inside the stale bound
        assert cache.get_fresh("sram") is None
        assert cache.get_stale("sram") == "entry"
        assert cache.stale_serves == 1
        assert stale_served_total() == 1

    def test_beyond_bound_evicts_and_misses(self):
        clock = FakeClock()
        cache = ModelCache(ttl=10.0, max_stale_age=30.0, clock=clock)
        cache.put("sram", "entry")
        clock.advance(30.1)
        assert cache.get_stale("sram") is None
        assert cache.stale_expired == 1
        assert "sram" not in cache  # evicted, not lingering
        assert stale_served_total() == 0

    def test_exactly_at_bound_still_serves(self):
        clock = FakeClock()
        cache = ModelCache(ttl=10.0, max_stale_age=30.0, clock=clock)
        cache.put("sram", "entry")
        clock.advance(30.0)  # age == bound: the boundary is inclusive
        assert cache.get_stale("sram") == "entry"

    def test_unbounded_default_serves_forever(self):
        clock = FakeClock()
        cache = ModelCache(ttl=10.0, clock=clock)
        cache.put("sram", "entry")
        clock.advance(1e9)
        assert cache.get_stale("sram") == "entry"
        assert stale_served_total() == 1

    def test_bound_below_ttl_rejected(self):
        with pytest.raises(ValueError, match="must be >= ttl"):
            ModelCache(ttl=60.0, max_stale_age=10.0)

    def test_bound_with_no_ttl_allowed(self):
        # ttl=None means "never stale", so any bound is consistent
        clock = FakeClock()
        cache = ModelCache(ttl=None, max_stale_age=5.0, clock=clock)
        cache.put("sram", "entry")
        clock.advance(10.0)
        assert cache.get_stale("sram") is None
        assert cache.stale_expired == 1

    def test_expired_then_refilled_serves_again(self):
        clock = FakeClock()
        cache = ModelCache(ttl=1.0, max_stale_age=5.0, clock=clock)
        cache.put("sram", "old")
        clock.advance(6.0)
        assert cache.get_stale("sram") is None
        cache.put("sram", "new")
        clock.advance(2.0)
        assert cache.get_stale("sram") == "new"

    def test_stale_expired_metric_label(self):
        clock = FakeClock()
        cache = ModelCache(ttl=1.0, max_stale_age=2.0, clock=clock)
        cache.put("sram", "entry")
        clock.advance(3.0)
        cache.get_stale("sram")
        counter = obs.get_registry().counter(
            "powerplay_model_cache_total", "", ("result",)
        )
        assert counter.value(result="stale_expired") == 1
