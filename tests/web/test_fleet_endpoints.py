"""The fleet telemetry endpoints: /fleet, /debug/flight, SLOs in
/healthz and /status.

Covers the wiring layer over the obs primitives (which have their own
unit tests in tests/obs/): the endpoints render, the JSON shapes are
canonical, telemetry can be stripped, a dead peer is a visible finding,
and an SLO page degrades /healthz without draining the node.
"""

import json

import pytest

from repro import obs
from repro.obs.slo import SLOTracker
from repro.web.app import Application
from repro.web.client import Browser
from repro.web.server import PowerPlayServer


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


@pytest.fixture
def app(tmp_path):
    obs.get_registry().reset()  # the registry is process-wide; isolate
    application = Application(tmp_path / "state", server_name="unit")
    yield application
    obs.get_registry().reset()


def get_json(app, path):
    response = app.handle("GET", path)
    assert response.status == 200, response.body
    return json.loads(response.body)


# -- /healthz carries the SLO verdict --------------------------------------


def test_healthz_includes_slo_state(app):
    app.handle("GET", "/api/ping")
    payload = get_json(app, "/healthz")
    assert payload["status"] == "ok"
    assert payload["slo"]["state"] == "ok"
    names = [entry["name"] for entry in payload["slo"]["objectives"]]
    assert names == [
        "availability", "latency-api", "latency-ui", "latency-ops",
    ]


def test_healthz_without_telemetry_has_no_slo_key(tmp_path):
    obs.get_registry().reset()
    app = Application(tmp_path / "bare", server_name="bare",
                      telemetry=False)
    payload = get_json(app, "/healthz")
    assert payload["status"] == "ok"
    assert "slo" not in payload
    obs.get_registry().reset()


def test_slo_page_degrades_healthz_but_keeps_serving(app):
    """An SLO page is a service problem, not a storage one: /healthz
    admits 'degraded' yet stays 200 so load balancers don't drain."""
    clock = FakeClock()
    app.slo_tracker = SLOTracker(clock=clock)

    def _broken(data):
        raise RuntimeError("injected storm")

    app._menu = _broken
    for _ in range(30):
        assert app.handle("GET", "/menu").status == 500
    clock.advance(60)
    app._maybe_evaluate_slos(force=True)
    clock.advance(60)

    response = app.handle("GET", "/healthz")
    assert response.status == 200
    payload = json.loads(response.body)
    assert payload["status"] == "degraded"
    assert payload["slo"]["state"] == "page"
    # the page transition forced a flight snapshot to disk
    flight = get_json(app, "/debug/flight?fmt=json")
    assert any("slo-page" in name for name in flight["snapshots"])


# -- /status quantiles and SLO table ---------------------------------------


def test_status_page_shows_route_quantiles_and_slo_table(app):
    for _ in range(5):
        app.handle("GET", "/api/ping")
    body = app.handle("GET", "/status").body
    assert "Service-level objectives" in body
    for column in ("p50", "p95", "p99"):
        assert column in body
    assert "availability" in body
    assert "Fleet dashboard" in body and "Flight recorder" in body
    # a route with traffic renders measured quantiles, not the dash
    assert " ms" in body


def test_status_page_without_telemetry_says_so(tmp_path):
    obs.get_registry().reset()
    app = Application(tmp_path / "bare", server_name="bare",
                      telemetry=False)
    body = app.handle("GET", "/status").body
    assert "(SLO tracking disabled)" in body
    obs.get_registry().reset()


# -- /fleet ----------------------------------------------------------------


def test_fleet_endpoint_serves_local_node_without_peers(app):
    app.handle("GET", "/api/ping")
    payload = get_json(app, "/fleet?fmt=json")["fleet"]
    assert payload["state"] == "ok"
    assert payload["reachable"] == 1
    (node,) = payload["nodes"]
    assert node["name"] == "unit"
    assert node["url"] == "(local)"
    assert node["ok"] is True
    assert payload["aggregate"]["powerplay_http_requests_total"]["series"]
    assert payload["skipped_families"] == []

    html = app.handle("GET", "/fleet").body
    assert "unit" in html and "Aggregate" in html


def test_fleet_endpoint_scrapes_a_live_peer(app, tmp_path):
    with PowerPlayServer(tmp_path / "peer", server_name="peer") as server:
        browser = Browser(server.base_url)
        for _ in range(3):
            assert browser.get("/api/ping").status == 200
        app.configure_fleet([("peer", server.base_url)])
        payload = get_json(app, "/fleet?fmt=json")["fleet"]
    assert payload["reachable"] == 2
    names = [node["name"] for node in payload["nodes"]]
    assert names == sorted(names) == ["peer", "unit"]
    assert all(node["ok"] for node in payload["nodes"])
    # the aggregate accounts for every node's counters
    total = sum(node["requests_total"] for node in payload["nodes"])
    aggregate = sum(
        payload["aggregate"]["powerplay_http_requests_total"][
            "series"
        ].values()
    )
    assert aggregate == total > 0


def test_fleet_endpoint_shows_a_dead_peer_as_down(app):
    app.configure_fleet([("ghost", "http://127.0.0.1:9")], timeout=0.2)
    payload = get_json(app, "/fleet?fmt=json")["fleet"]
    assert payload["reachable"] == 1
    ghost = next(n for n in payload["nodes"] if n["name"] == "ghost")
    assert ghost["ok"] is False
    assert ghost["health"] == "unreachable"
    assert ghost["error"]
    html = app.handle("GET", "/fleet").body
    assert "down" in html


# -- /debug/flight ---------------------------------------------------------


def test_flight_endpoint_records_requests(app):
    for _ in range(4):
        app.handle("GET", "/api/ping")
    payload = get_json(app, "/debug/flight?fmt=json")
    assert payload["server"] == "unit"
    assert payload["recorded_total"] >= 4
    routes = [record["route"] for record in payload["records"]]
    assert "/api/ping" in routes
    # ?limit bounds the records returned
    limited = get_json(app, "/debug/flight?fmt=json&limit=2")
    assert len(limited["records"]) == 2

    html = app.handle("GET", "/debug/flight").body
    assert "/api/ping" in html and "Flight recorder" in html


def test_flight_endpoint_404s_without_telemetry(tmp_path):
    obs.get_registry().reset()
    app = Application(tmp_path / "bare", server_name="bare",
                      telemetry=False)
    assert app.handle("GET", "/debug/flight").status == 404
    obs.get_registry().reset()


def test_flight_records_carry_trace_ids_when_tracing_is_on(app):
    with obs.overridden(enabled=True, sink=obs.NullSink()):
        app.handle("GET", "/api/ping")
        payload = get_json(app, "/debug/flight?fmt=json")
    obs.clear_traces()
    ping_records = [
        record for record in payload["records"]
        if record["route"] == "/api/ping"
    ]
    assert ping_records and all(
        record["trace_id"] for record in ping_records
    )


def test_metrics_exposition_includes_fleet_families(app):
    app.handle("GET", "/api/ping")
    text = app.handle("GET", "/metrics").body
    assert "powerplay_slo_state" in text
    assert "powerplay_slo_burn_rate" in text
    assert "powerplay_flight_records_total" in text
