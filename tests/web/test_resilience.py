"""Unit tests for the resilience primitives (retry, breaker, cache).

Everything here is deterministic: clocks and sleeps are injected, and
the retry jitter is a fixed function of the attempt number — the same
schedule on every run, on every machine.
"""

import pytest

from repro.errors import CircuitOpenError, RemoteError, TransientRemoteError
from repro.web.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    ModelCache,
    ResolutionReport,
    RetryPolicy,
)


class FakeClock:
    def __init__(self, start: float = 0.0):
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class Flaky:
    """Fails ``failures`` times, then succeeds forever."""

    def __init__(self, failures: int, exc: type = TransientRemoteError):
        self.failures = failures
        self.exc = exc
        self.calls = 0

    def __call__(self) -> str:
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc(f"boom #{self.calls}")
        return "ok"


class TestRetryPolicy:
    def test_succeeds_after_transient_failures(self):
        slept = []
        policy = RetryPolicy(max_attempts=3, sleep=slept.append)
        flaky = Flaky(2)
        assert policy.call(flaky) == "ok"
        assert flaky.calls == 3
        assert len(slept) == 2
        assert policy.retries_issued == 2

    def test_gives_up_after_max_attempts(self):
        slept = []
        policy = RetryPolicy(max_attempts=3, sleep=slept.append)
        flaky = Flaky(99)
        with pytest.raises(TransientRemoteError, match="boom #3"):
            policy.call(flaky)
        assert flaky.calls == 3
        assert len(slept) == 2  # no sleep after the final failure

    def test_permanent_errors_are_not_retried(self):
        policy = RetryPolicy(max_attempts=5, sleep=lambda s: None)
        flaky = Flaky(99, exc=RemoteError)
        with pytest.raises(RemoteError, match="boom #1"):
            policy.call(flaky)
        assert flaky.calls == 1

    def test_open_circuit_is_never_retried(self):
        """CircuitOpenError subclasses RemoteError/TransientRemoteError's
        family but must abort the retry loop immediately."""
        policy = RetryPolicy(
            max_attempts=5, sleep=lambda s: None,
            retry_on=(RemoteError,),  # would catch CircuitOpenError
        )
        flaky = Flaky(99, exc=CircuitOpenError)
        with pytest.raises(CircuitOpenError):
            policy.call(flaky)
        assert flaky.calls == 1
        assert policy.retries_issued == 0

    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            base_delay=0.1, multiplier=2.0, max_delay=0.5, jitter=0.0,
        )
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(2) == pytest.approx(0.4)
        assert policy.delay(3) == pytest.approx(0.5)  # capped
        assert policy.delay(10) == pytest.approx(0.5)

    def test_jitter_is_deterministic(self):
        a = RetryPolicy(jitter=0.25)
        b = RetryPolicy(jitter=0.25)
        schedule_a = [a.delay(n) for n in range(6)]
        schedule_b = [b.delay(n) for n in range(6)]
        assert schedule_a == schedule_b  # no RNG anywhere
        # and the jitter actually varies between attempts
        ratios = [
            schedule_a[n] / RetryPolicy(jitter=0.0).delay(n) for n in range(6)
        ]
        assert len(set(round(r, 9) for r in ratios)) > 1

    def test_on_retry_callback_sees_each_failure(self):
        seen = []
        policy = RetryPolicy(max_attempts=3, sleep=lambda s: None)
        policy.call(Flaky(2), on_retry=lambda n, exc: seen.append((n, str(exc))))
        assert [n for n, _ in seen] == [0, 1]
        assert "boom #1" in seen[0][1]

    def test_rejects_zero_attempts(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, cooldown=30, clock=clock)
        flaky = Flaky(99)
        for _ in range(3):
            with pytest.raises(TransientRemoteError):
                breaker.call(flaky)
        assert breaker.state == OPEN
        assert breaker.times_tripped == 1

    def test_open_circuit_rejects_without_calling(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=30, clock=clock)
        flaky = Flaky(99)
        with pytest.raises(TransientRemoteError):
            breaker.call(flaky)
        calls_before = flaky.calls
        with pytest.raises(CircuitOpenError) as info:
            breaker.call(flaky)
        assert flaky.calls == calls_before  # zero calls to a tripped circuit
        assert breaker.calls_rejected == 1
        assert info.value.retry_after == pytest.approx(30.0)

    def test_success_resets_the_failure_streak(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=3, cooldown=30, clock=clock)
        for _ in range(2):
            with pytest.raises(TransientRemoteError):
                breaker.call(Flaky(99))
        breaker.call(lambda: "ok")
        for _ in range(2):
            with pytest.raises(TransientRemoteError):
                breaker.call(Flaky(99))
        assert breaker.state == CLOSED  # streak restarted after success

    def test_half_open_probe_after_cooldown_success_closes(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=30, clock=clock)
        with pytest.raises(TransientRemoteError):
            breaker.call(Flaky(99))
        assert breaker.state == OPEN
        clock.advance(31)
        assert breaker.state == HALF_OPEN
        assert breaker.call(lambda: "ok") == "ok"
        assert breaker.state == CLOSED

    def test_half_open_probe_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=30, clock=clock)
        with pytest.raises(TransientRemoteError):
            breaker.call(Flaky(99))
        clock.advance(31)
        with pytest.raises(TransientRemoteError):
            breaker.call(Flaky(99))  # the probe fails
        assert breaker.state == OPEN
        with pytest.raises(CircuitOpenError):
            breaker.call(lambda: "ok")  # full cooldown again
        clock.advance(31)
        assert breaker.call(lambda: "ok") == "ok"

    def test_non_failure_exceptions_count_as_alive(self):
        """A clean 400 refusal proves the host is up — it must not trip
        the breaker."""
        clock = FakeClock()
        breaker = CircuitBreaker(failure_threshold=1, cooldown=30, clock=clock)

        def refused():
            raise RemoteError("400 refused")

        for _ in range(5):
            with pytest.raises(RemoteError):
                breaker.call(refused, failure_types=(TransientRemoteError,))
        assert breaker.state == CLOSED

    def test_rejects_zero_threshold(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)


class TestModelCache:
    def test_fresh_within_ttl(self):
        clock = FakeClock()
        cache = ModelCache(ttl=10.0, clock=clock)
        cache.put("sram", "entry")
        clock.advance(9)
        assert cache.get_fresh("sram") == "entry"
        assert cache.fresh_hits == 1

    def test_stale_after_ttl_but_still_servable(self):
        clock = FakeClock()
        cache = ModelCache(ttl=10.0, clock=clock)
        cache.put("sram", "entry")
        clock.advance(11)
        assert cache.get_fresh("sram") is None
        value, fresh = cache.lookup("sram")
        assert value == "entry" and not fresh
        assert cache.get_stale("sram") == "entry"
        assert cache.stale_serves == 1

    def test_refresh_restores_freshness(self):
        clock = FakeClock()
        cache = ModelCache(ttl=10.0, clock=clock)
        cache.put("sram", "v1")
        clock.advance(11)
        cache.put("sram", "v2")
        assert cache.get_fresh("sram") == "v2"

    def test_none_ttl_caches_forever(self):
        clock = FakeClock()
        cache = ModelCache(ttl=None, clock=clock)
        cache.put("sram", "entry")
        clock.advance(1e9)
        assert cache.get_fresh("sram") == "entry"

    def test_miss_and_clear(self):
        cache = ModelCache(ttl=10.0, clock=FakeClock())
        assert cache.lookup("ghost") == (None, False)
        assert cache.get_stale("ghost") is None
        cache.put("a", 1)
        assert "a" in cache and len(cache) == 1
        cache.clear()
        assert "a" not in cache


class TestResolutionReport:
    def test_records_and_counts(self):
        report = ResolutionReport()
        report.record("retry", "http://mit", "sram", "attempt 1")
        report.record("retry", "http://mit", "sram", "attempt 2")
        report.record("stale_served", "http://mit", "sram")
        report.record("fetched", "http://berkeley", "mult")
        assert report.retries == 2
        assert report.stale_serves == 1
        assert report.circuit_skips == 0
        assert report.summary() == {
            "retry": 2, "stale_served": 1, "fetched": 1,
        }

    def test_degraded_flag(self):
        clean = ResolutionReport()
        clean.record("local_hit", "local", "sram")
        clean.record("fetched", "http://mit", "mult")
        clean.record("cache_hit", "http://mit", "mult")
        assert not clean.degraded
        clean.record("retry", "http://mit", "mult")
        assert clean.degraded

    def test_merged_into_accumulates(self):
        per_call = ResolutionReport()
        per_call.record("fetched", "http://mit", "sram")
        total = ResolutionReport()
        per_call.merged_into(total)
        per_call2 = ResolutionReport()
        per_call2.record("retry", "http://mit", "mult")
        per_call2.merged_into(total)
        assert len(total.events) == 2
