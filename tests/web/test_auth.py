"""Password-restricted access (the paper's security section).

"Proprietary designs can be protected in a number of ways.  PowerPlay
can provide password-restricted access..."  Users without a password
keep the paper's default identify-by-name flow; protected users need
the password at login and a token on every subsequent request.
"""

import re

import pytest

from repro.web.app import Application
from repro.web.session import UserStore
from repro.errors import SessionError


@pytest.fixture
def app(tmp_path):
    return Application(tmp_path / "state")


def protect(app, user="alice", password="s3cret"):
    """Login, set a password, return the fresh auth token."""
    app.handle("POST", "/login", {"user": user})
    response = app.handle(
        "POST", "/password", {"user": user, "password": password}
    )
    assert response.status == 303
    match = re.search(r"auth=([0-9a-f]+)", response.headers["Location"])
    assert match
    return match.group(1)


class TestSessionLayer:
    def test_set_check_clear(self, tmp_path):
        store = UserStore(tmp_path / "users")
        session = store.session("bob")
        assert session.check_password("")  # unprotected
        session.set_password("hunter2")
        assert session.check_password("hunter2")
        assert not session.check_password("wrong")
        session.clear_password("hunter2")
        assert not session.has_password

    def test_clear_needs_current_password(self, tmp_path):
        store = UserStore(tmp_path / "users")
        session = store.session("bob")
        session.set_password("hunter2")
        with pytest.raises(SessionError, match="wrong password"):
            session.clear_password("nope")

    def test_short_password_rejected(self, tmp_path):
        store = UserStore(tmp_path / "users")
        with pytest.raises(SessionError, match="at least 4"):
            store.session("bob").set_password("ab")

    def test_hash_persists_not_plaintext(self, tmp_path):
        store = UserStore(tmp_path / "users")
        store.session("bob").set_password("hunter2")
        on_disk = (tmp_path / "users" / "bob.json").read_text()
        assert "hunter2" not in on_disk
        fresh = UserStore(tmp_path / "users")
        assert fresh.session("bob").check_password("hunter2")


class TestWebFlow:
    def test_unprotected_user_flow_unchanged(self, app):
        response = app.handle("POST", "/login", {"user": "open"})
        assert response.headers["Location"] == "/menu?user=open"
        assert app.handle("GET", "/menu?user=open").status == 200

    def test_protected_user_needs_token(self, app):
        protect(app)
        response = app.handle("GET", "/menu?user=alice")
        assert response.status == 400
        assert "password-protected" in response.body

    def test_token_grants_access(self, app):
        token = protect(app)
        response = app.handle("GET", f"/menu?user=alice&auth={token}")
        assert response.status == 200
        assert "Main Menu" in response.body

    def test_wrong_token_rejected(self, app):
        protect(app)
        response = app.handle("GET", "/menu?user=alice&auth=deadbeef")
        assert response.status == 400

    def test_login_with_password_issues_token(self, app):
        protect(app, password="s3cret")
        response = app.handle(
            "POST", "/login", {"user": "alice", "password": "s3cret"}
        )
        assert response.status == 303
        assert "auth=" in response.headers["Location"]

    def test_login_with_wrong_password_refused(self, app):
        protect(app, password="s3cret")
        response = app.handle(
            "POST", "/login", {"user": "alice", "password": "nope"}
        )
        assert response.status == 403
        assert "wrong password" in response.body

    def test_designs_inaccessible_without_token(self, app):
        token = protect(app)
        app.handle(
            "POST", "/design/load_example",
            {"user": "alice", "auth": token, "example": "luminance_fig3"},
        )
        # with the token: fine; without: refused; exports too
        assert app.handle(
            "GET", f"/design?user=alice&auth={token}&name=luminance_fig3"
        ).status == 200
        assert app.handle(
            "GET", "/design?user=alice&name=luminance_fig3"
        ).status == 400
        assert app.handle(
            "GET", "/export/design?user=alice&name=luminance_fig3"
        ).status == 400

    def test_token_survives_navigation(self, app):
        """Every link and form on a protected user's pages carries the
        credential — the cookie-less propagation actually works."""
        token = protect(app)
        menu = app.handle("GET", f"/menu?user=alice&auth={token}")
        assert f"auth={token}" in menu.body          # links
        assert 'name="auth"' in menu.body            # forms
        library = app.handle("GET", f"/library?user=alice&auth={token}")
        assert f"auth={token}" in library.body

    def test_restart_requires_fresh_login(self, app, tmp_path):
        token = protect(app)
        fresh = Application(tmp_path / "state")
        response = fresh.handle("GET", f"/menu?user=alice&auth={token}")
        assert response.status == 400  # token store is in-memory
        again = fresh.handle(
            "POST", "/login", {"user": "alice", "password": "s3cret"}
        )
        assert again.status == 303

    def test_shared_api_unaffected(self, app):
        """Model sharing stays public — protection covers *designs*."""
        protect(app)
        assert app.handle("GET", "/api/library.json").status == 200


class TestHostRestriction:
    """'WWW programs enable file access to be restricted to specific
    machines.'"""

    def test_host_allowed_rules(self):
        from repro.web.server import host_allowed

        assert host_allowed("10.0.0.7", None)                 # open server
        assert host_allowed("10.0.0.7", ["10.0.0.7"])
        assert host_allowed("10.0.0.9", ["10.0.0.0/24"])
        assert not host_allowed("10.0.1.9", ["10.0.0.0/24"])
        assert not host_allowed("10.0.0.7", [])               # lockdown
        assert not host_allowed("garbage", ["10.0.0.0/24"])
        assert host_allowed("10.0.0.7", ["bad entry", "10.0.0.7"])

    def test_restricted_server_refuses(self, tmp_path):
        from repro.web.client import Browser
        from repro.web.server import PowerPlayServer

        with PowerPlayServer(
            tmp_path / "state", allowed_hosts=["203.0.113.5"]
        ) as server:
            browser = Browser(server.base_url)
            page = browser.get("/")
            assert page.status == 403
            assert "restricted" in page.body

    def test_allowed_server_serves(self, tmp_path):
        from repro.web.client import Browser
        from repro.web.server import PowerPlayServer

        with PowerPlayServer(
            tmp_path / "state", allowed_hosts=["127.0.0.0/8"]
        ) as server:
            browser = Browser(server.base_url)
            assert browser.get("/").status == 200
