"""The Figure 7 protocol comparison: SMTP hubs vs HTTP URLs."""

import pytest

from repro.library.catalog import Library, LibraryEntry
from repro.library.cells import build_default_library
from repro.core.model import FixedPowerModel, ModelSet
from repro.web.hub import (
    HTTPDirect,
    HUB_QUEUE_DELAY,
    MailHub,
    TransferStats,
    WIRE_LATENCY,
    compare_protocols,
)
from repro.errors import RemoteError


@pytest.fixture
def library():
    return build_default_library()


def make_hubs(library):
    local = MailHub("mit", Library("mit"))
    remote = MailHub("berkeley", library)
    local.connect(remote)
    return local, remote


class TestMailHub:
    def test_round_trip_delivers_model(self, library):
        local, _remote = make_hubs(library)
        entry, stats = local.request_model("berkeley", "sram")
        assert entry.name == "sram"
        assert entry.origin == "smtp://berkeley"
        assert stats.protocol == "smtp_hub"

    def test_message_and_hop_accounting(self, library):
        local, remote = make_hubs(library)
        _entry, stats = local.request_model("berkeley", "sram")
        assert stats.messages == 4       # user->hub, hub->hub, hub->hub, hub->user
        assert stats.hub_hops == 3
        assert stats.latency == pytest.approx(
            3 * (WIRE_LATENCY + HUB_QUEUE_DELAY) + WIRE_LATENCY
        )
        assert local.messages_seen == 2
        assert remote.messages_seen == 1

    def test_no_route(self, library):
        local, _remote = make_hubs(library)
        with pytest.raises(RemoteError, match="no route"):
            local.request_model("stanford", "sram")

    def test_unknown_model(self, library):
        local, _remote = make_hubs(library)
        with pytest.raises(RemoteError, match="no model"):
            local.request_model("berkeley", "ghost")

    def test_proprietary_refused(self):
        secret_library = Library("secret_site")
        secret_library.add(
            LibraryEntry(
                "secret",
                ModelSet(power=FixedPowerModel("secret", 1.0)),
                proprietary=True,
            )
        )
        local = MailHub("mit", Library("mit"))
        remote = MailHub("secret_site", secret_library)
        local.connect(remote)
        with pytest.raises(RemoteError, match="proprietary"):
            local.request_model("secret_site", "secret")


class TestHTTPDirect:
    def test_fetch(self, library):
        endpoint = HTTPDirect("berkeley", library)
        entry, stats = endpoint.request_model("sram")
        assert entry.name == "sram"
        assert entry.origin == "http://berkeley"
        assert stats.messages == 2
        assert stats.hub_hops == 0

    def test_payload_identical_to_hub_route(self, library):
        local, _remote = make_hubs(library)
        via_mail, _stats = local.request_model("berkeley", "multiplier")
        via_http, _stats = HTTPDirect("berkeley", library).request_model(
            "multiplier"
        )
        env = {"bitwidthA": 16, "bitwidthB": 16, "VDD": 1.5, "f": 2e6}
        assert via_mail.models.power.power(env) == pytest.approx(
            via_http.models.power.power(env)
        )


class TestComparison:
    def test_http_strictly_cheaper(self, library):
        stats = compare_protocols(library, ["sram", "multiplier", "register"])
        smtp, http = stats["smtp_hub"], stats["http_direct"]
        assert http.messages < smtp.messages
        assert http.hub_hops == 0 < smtp.hub_hops
        assert http.latency < smtp.latency / 5

    def test_scales_linearly_in_requests(self, library):
        one = compare_protocols(library, ["sram"])
        three = compare_protocols(library, ["sram", "multiplier", "register"])
        assert three["smtp_hub"].messages == 3 * one["smtp_hub"].messages
        assert three["http_direct"].latency == pytest.approx(
            3 * one["http_direct"].latency
        )

    def test_merge_guards_protocol(self):
        with pytest.raises(RemoteError):
            TransferStats("smtp_hub").merged(TransferStats("http_direct"))
