"""The two registry-era fault modes: reset-mid-body and flapping hosts.

``reset_mid_body`` is the nastiest transport fault this harness can
produce: the response has *no* Content-Length and ends with a clean
FIN, so the truncated body reads as a complete, successful response at
every layer below content verification.  The tests prove both halves:
the transport really cannot tell, and the artifact digest really does.
"""

import urllib.request

import pytest

from repro import obs
from repro.core.model import FixedPowerModel, ModelSet
from repro.errors import FaultInjected, IntegrityError
from repro.library.catalog import LibraryEntry
from repro.registry.artifacts import ModelArtifact
from repro.web.app import Application
from repro.web.faults import FAULT_KINDS, ChaosServer, FaultPlan, FaultyApplication


@pytest.fixture(autouse=True)
def clean_metrics():
    obs.get_registry().reset()


class TestFlapSchedule:
    def test_deterministic_updown_pattern(self):
        plan = FaultPlan(flap_up=2, flap_down=3)
        decisions = [plan.next_fault() for _ in range(10)]
        assert decisions == [
            None, None, "flap", "flap", "flap",
            None, None, "flap", "flap", "flap",
        ]
        assert plan.flap_outages == 6
        assert plan.faults_injected == 0  # the schedule is not a fault budget

    def test_flap_exempt_from_max_faults(self):
        plan = FaultPlan(flap_up=1, flap_down=1, max_faults=0)
        assert [plan.next_fault() for _ in range(4)] == [
            None, "flap", None, "flap",
        ]

    def test_flap_respects_exempt_paths(self):
        plan = FaultPlan(flap_up=1, flap_down=1, exempt_paths=("/ctl",))
        assert plan.next_fault("/ctl") is None
        assert plan.next_fault("/ctl") is None  # would have been down

    def test_flap_composes_with_rate_faults(self):
        plan = FaultPlan(
            flap_up=1, flap_down=1, rate=1.0, seed=3, kinds=("error_500",)
        )
        decisions = [plan.next_fault() for _ in range(4)]
        assert decisions == ["error_500", "flap", "error_500", "flap"]

    def test_validation(self):
        with pytest.raises(ValueError, match=">= 0"):
            FaultPlan(flap_up=-1)
        with pytest.raises(ValueError, match="flap_up must be > 0"):
            FaultPlan(flap_down=2)

    def test_reset_rewinds_flap_state(self):
        plan = FaultPlan(flap_up=1, flap_down=1)
        [plan.next_fault() for _ in range(4)]
        plan.reset()
        assert plan.flap_outages == 0
        assert plan.next_fault() is None  # back at the start of an up phase

    def test_both_kinds_registered(self):
        assert "reset_mid_body" in FAULT_KINDS
        assert "flap" in FAULT_KINDS


class TestInProcess:
    @pytest.fixture
    def app(self, tmp_path):
        return Application(tmp_path / "state")

    def test_flap_raises_like_a_refusal(self, app):
        faulty = FaultyApplication(app, FaultPlan(flap_up=1, flap_down=1))
        assert faulty.handle("GET", "/").status == 200
        with pytest.raises(FaultInjected, match="flap"):
            faulty.handle("GET", "/")

    def test_reset_mid_body_truncates_without_any_marker(self, app):
        faulty = FaultyApplication(
            app, FaultPlan(script=["reset_mid_body"])
        )
        whole = app.handle("GET", "/").body
        damaged = faulty.handle("GET", "/")
        assert damaged.status == 200  # looks successful...
        assert damaged.body == whole[: max(1, 2 * len(whole) // 3)]

    def test_truncated_artifact_never_parses(self, app):
        app.models_registry.publish_entry(
            LibraryEntry("sram", ModelSet(power=FixedPowerModel("sram", 2.0)))
        )
        faulty = FaultyApplication(
            app, FaultPlan(script=["reset_mid_body"])
        )
        damaged = faulty.handle(
            "GET", "/api/registry/artifact?kind=entry&name=sram"
        )
        assert damaged.status == 200
        with pytest.raises(IntegrityError, match="truncated or corrupt"):
            ModelArtifact.from_json(damaged.body)


class TestOnTheWire:
    def _serve(self, tmp_path, plan):
        application = Application(tmp_path / "state", server_name="chaos")
        application.models_registry.publish_entry(
            LibraryEntry("sram", ModelSet(power=FixedPowerModel("sram", 2.0)))
        )
        return ChaosServer(tmp_path / "state", plan, application=application)

    def test_reset_mid_body_reads_as_complete_response(self, tmp_path):
        """The transport-level half of the guarantee: urllib sees a 200
        with a body and no error — the truncation is invisible below
        the digest check."""
        plan = FaultPlan(script=[None, "reset_mid_body"])
        with self._serve(tmp_path, plan) as server:
            url = f"{server.base_url}/api/registry/artifact?kind=entry&name=sram"
            whole = urllib.request.urlopen(url, timeout=5).read()
            with urllib.request.urlopen(url, timeout=5) as damaged_response:
                assert damaged_response.status == 200
                assert damaged_response.headers.get("Content-Length") is None
                damaged = damaged_response.read()  # no exception: clean FIN
        assert 0 < len(damaged) < len(whole)
        ModelArtifact.from_json(whole.decode())  # the clean copy verifies
        with pytest.raises(IntegrityError):  # the damaged one cannot
            ModelArtifact.from_json(damaged.decode())

    def test_flap_severs_during_down_phases(self, tmp_path):
        plan = FaultPlan(flap_up=1, flap_down=1)
        with self._serve(tmp_path, plan) as server:
            url = f"{server.base_url}/healthz"
            assert urllib.request.urlopen(url, timeout=5).status == 200
            with pytest.raises(Exception):  # noqa: B017 - severed socket
                urllib.request.urlopen(url, timeout=5).read()
            assert urllib.request.urlopen(url, timeout=5).status == 200
        assert plan.flap_outages == 1
