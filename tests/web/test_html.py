"""HTML builder: escaping and structure."""

import pytest

from repro.web import html as H


class TestEscaping:
    def test_text_escaped(self):
        assert H.escape("<script>") == "&lt;script&gt;"
        assert H.escape('a"b') == "a&quot;b"

    def test_raw_passes_through(self):
        assert H.escape(H.Raw("<b>bold</b>")) == "<b>bold</b>"

    def test_attribute_values_escaped(self):
        markup = H.tag("td", "x", title='say "hi"')
        assert '&quot;hi&quot;' in markup

    def test_user_content_in_table_escaped(self):
        markup = H.table([["<img onerror=x>"]], header=["col"])
        assert "<img" not in markup
        assert "&lt;img" in markup

    def test_form_field_value_escaped(self):
        markup = H.text_input("name", '"><script>')
        assert "<script>" not in markup


class TestTags:
    def test_basic_tag(self):
        assert H.tag("td", "x", class_="num") == '<td class="num">x</td>'

    def test_void_elements(self):
        assert H.tag("input", type="text") == '<input type="text">'
        assert H.tag("br") == "<br>"

    def test_none_attribute_skipped(self):
        assert H.tag("td", "x", title=None) == "<td>x</td>"

    def test_true_attribute_bare(self):
        assert H.tag("option", "x", selected=True) == "<option selected>x</option>"

    def test_underscore_to_hyphen(self):
        assert 'data-id="3"' in H.tag("td", "x", data_id=3)

    def test_link(self):
        assert H.link("/menu?user=a", "Menu") == '<a href="/menu?user=a">Menu</a>'


class TestStructures:
    def test_table_with_header_and_caption(self):
        markup = H.table([["1", "2"]], header=["a", "b"], caption="cap")
        assert "<caption>cap</caption>" in markup
        assert "<th>a</th>" in markup
        assert "<td>1</td>" in markup

    def test_unordered_list(self):
        markup = H.unordered_list(["x", "y"])
        assert markup == "<ul><li>x</li><li>y</li></ul>"

    def test_select_with_selection(self):
        markup = H.select("kind", ["a", "b"], selected="b")
        assert '<option value="b" selected>b</option>' in markup

    def test_form(self):
        markup = H.form("/go", H.submit("Run"))
        assert markup.startswith('<form action="/go" method="post">')
        assert 'value="Run"' in markup

    def test_page_contains_nav_title_style(self):
        document = H.page("Title", H.paragraph("body"), nav=[("/x", "X")])
        assert "<!DOCTYPE html>" in document
        assert "<title>Title</title>" in document
        assert '<a href="/x">X</a>' in document
        assert "<p>body</p>" in document

    def test_error_page(self):
        document = H.error_page("Oops", "went wrong")
        assert 'class="error"' in document
