"""The Design Agent: planning and executing tool sequences."""

import pytest

from repro.core.model import CallablePowerModel
from repro.models.computation import multiplier
from repro.web.agent import DesignAgent, Tool, default_agent
from repro.errors import WebError


def make_tool(name, requires, produces, value=1.0, cost=1.0, contexts=("any",)):
    def func(data):
        return {key: value for key in produces}

    return Tool.make(name, requires, produces, func, cost=cost, contexts=contexts)


class TestPlanning:
    def test_single_step(self):
        agent = DesignAgent()
        agent.register(make_tool("t", ["a"], ["b"]))
        plan = agent.plan("b", {"a"})
        assert [tool.name for tool in plan] == ["t"]

    def test_chain(self):
        agent = DesignAgent()
        agent.register(make_tool("t2", ["b"], ["c"]))
        agent.register(make_tool("t1", ["a"], ["b"]))
        plan = agent.plan("c", {"a"})
        assert [tool.name for tool in plan] == ["t1", "t2"]

    def test_cheapest_alternative_preferred(self):
        agent = DesignAgent()
        agent.register(make_tool("expensive", ["a"], ["b"], cost=10))
        agent.register(make_tool("cheap", ["a"], ["b"], cost=1))
        plan = agent.plan("b", {"a"})
        assert plan[0].name == "cheap"

    def test_unreachable_target(self):
        agent = DesignAgent()
        agent.register(make_tool("t", ["missing_input"], ["b"]))
        with pytest.raises(WebError, match="cannot produce"):
            agent.plan("b", {"a"})

    def test_error_names_missing_requirements(self):
        agent = DesignAgent()
        agent.register(make_tool("t", ["netlist"], ["power"]))
        with pytest.raises(WebError, match="netlist"):
            agent.plan("power", set())

    def test_irrelevant_tools_pruned(self):
        agent = DesignAgent()
        agent.register(make_tool("detour", ["a"], ["x"], cost=0.1))
        agent.register(make_tool("direct", ["a"], ["b"], cost=1.0))
        plan = agent.plan("b", {"a"})
        assert [tool.name for tool in plan] == ["direct"]

    def test_duplicate_registration(self):
        agent = DesignAgent()
        agent.register(make_tool("t", ["a"], ["b"]))
        with pytest.raises(WebError, match="already registered"):
            agent.register(make_tool("t", ["a"], ["c"]))

    def test_tool_must_produce(self):
        with pytest.raises(WebError):
            Tool.make("t", ["a"], [], lambda data: {})

    def test_context_filtering(self):
        agent = DesignAgent("layout")
        agent.register(make_tool("early_only", ["a"], ["b"], contexts=("early",)))
        agent.register(make_tool("layout_only", ["a"], ["b"], contexts=("layout",)))
        plan = agent.plan("b", {"a"})
        assert plan[0].name == "layout_only"


class TestExecution:
    def test_fulfill_runs_chain(self):
        agent = DesignAgent()
        agent.register(
            Tool.make("double", ["x"], ["y"], lambda d: {"y": d["x"] * 2})
        )
        agent.register(
            Tool.make("inc", ["y"], ["z"], lambda d: {"z": d["y"] + 1})
        )
        value, invoked = agent.fulfill("z", {"x": 20})
        assert value == 41
        assert invoked == ["double", "inc"]

    def test_tool_returning_wrong_shape(self):
        agent = DesignAgent()
        agent.register(Tool.make("bad", ["a"], ["b"], lambda d: 42))
        with pytest.raises(WebError, match="expected a mapping"):
            agent.fulfill("b", {"a": 1})

    def test_tool_missing_promised_output(self):
        agent = DesignAgent()
        agent.register(Tool.make("liar", ["a"], ["b"], lambda d: {}))
        with pytest.raises(WebError, match="failed to produce"):
            agent.fulfill("b", {"a": 1})

    def test_target_already_available(self):
        agent = DesignAgent()
        value, invoked = agent.fulfill("a", {"a": 7})
        assert value == 7 and invoked == []


class TestDefaultAgent:
    OPERATING_POINT = {"VDD": 1.5, "f": 2e6}

    def context_data(self):
        return {
            "model": multiplier(16, 16),
            "parameters": {"bitwidthA": 16, "bitwidthB": 16},
            "operating_point": dict(self.OPERATING_POINT),
            "bitwidthA": 16,
            "bitwidthB": 16,
        }

    def test_early_context_uses_quick_model(self):
        agent = default_agent("early")
        data = self.context_data()
        data.update(data["parameters"])
        value, invoked = agent.fulfill("power", data)
        assert invoked[0] == "quick_model_capacitance"
        assert value == pytest.approx(291.456e-6, rel=1e-6)

    def test_layout_context_uses_simulation(self):
        from repro.sim.activity import operand_vectors
        from repro.sim.netlists import ripple_adder_netlist

        agent = default_agent("layout")
        netlist = ripple_adder_netlist(8)
        data = {
            "netlist": netlist,
            "stimulus": operand_vectors(100, 8, seed=3),
            "operating_point": dict(self.OPERATING_POINT),
        }
        value, invoked = agent.fulfill("power", data)
        assert invoked[0] == "gate_level_simulation"
        assert value > 0

    def test_layout_context_cannot_quick_estimate(self):
        agent = default_agent("layout")
        data = self.context_data()
        with pytest.raises(WebError):
            agent.fulfill("power", data)

    def test_wrapped_as_power_model(self):
        """'Paths to estimation tools in lieu of an equation.'"""
        agent = default_agent("early")
        model = multiplier(16, 16)

        def tool_path(env):
            data = {
                "model": model,
                "parameters": {},
                "operating_point": {"VDD": env["VDD"], "f": env["f"]},
                "bitwidthA": env["bitwidthA"],
                "bitwidthB": env["bitwidthB"],
            }
            data["parameters"] = {
                "bitwidthA": env["bitwidthA"], "bitwidthB": env["bitwidthB"]
            }
            value, _invoked = agent.fulfill("power", data)
            return value

        wrapped = CallablePowerModel("via_agent", tool_path)
        env = {"bitwidthA": 16, "bitwidthB": 16, "VDD": 1.5, "f": 2e6}
        assert wrapped.power(env) == pytest.approx(model.power(env))


class TestAgentRoute:
    """The Design Agent behind a hyperlink (the paper's description)."""

    def test_power_via_tool_sequence(self, tmp_path):
        import json

        from repro.web.app import Application

        app = Application(tmp_path / "state")
        app.handle("POST", "/login", {"user": "x"})
        response = app.handle(
            "GET",
            "/agent/estimate?user=x&name=multiplier&target=power"
            "&p:bitwidthA=16&p:bitwidthB=16&p:VDD=1.5&p:f=2M",
        )
        assert response.status == 200, response.body[:300]
        payload = json.loads(response.body)
        assert payload["value"] == pytest.approx(291.456e-6, rel=1e-6)
        assert payload["invoked_tools"] == [
            "quick_model_capacitance", "energy_calculator", "power_calculator",
        ]

    def test_intermediate_target(self, tmp_path):
        import json

        from repro.web.app import Application

        app = Application(tmp_path / "state")
        app.handle("POST", "/login", {"user": "x"})
        response = app.handle(
            "GET",
            "/agent/estimate?user=x&name=multiplier"
            "&target=switched_capacitance"
            "&p:bitwidthA=16&p:bitwidthB=16",
        )
        payload = json.loads(response.body)
        assert payload["value"] == pytest.approx(16 * 16 * 253e-15)
        assert payload["invoked_tools"] == ["quick_model_capacitance"]

    def test_layout_context_has_no_route_for_quick_estimate(self, tmp_path):
        from repro.web.app import Application

        app = Application(tmp_path / "state")
        app.handle("POST", "/login", {"user": "x"})
        response = app.handle(
            "GET",
            "/agent/estimate?user=x&name=multiplier&target=power"
            "&context=layout&p:bitwidthA=8&p:bitwidthB=8",
        )
        assert response.status == 400
        assert "cannot produce" in response.body

    def test_unknown_target_rejected(self, tmp_path):
        from repro.web.app import Application

        app = Application(tmp_path / "state")
        app.handle("POST", "/login", {"user": "x"})
        response = app.handle(
            "GET", "/agent/estimate?user=x&name=multiplier&target=magic"
        )
        assert response.status == 400
