"""Fault injection end-to-end: the resilience layer under deterministic
chaos.

These tests encode the PR's acceptance criteria directly:

* under a 30% injected transient-failure rate, every cacheable lookup
  through :class:`ModelResolver` still succeeds;
* once a circuit trips, zero further requests (and zero retries) are
  issued to the dead host;
* previously fetched models stay servable (stale) through an outage.
"""

import json

import pytest

from repro.errors import (
    CircuitOpenError,
    FaultInjected,
    RemoteError,
    TransientRemoteError,
)
from repro.library.catalog import Library
from repro.web.app import Application
from repro.web.client import Browser
from repro.web.faults import FAULT_KINDS, ChaosServer, FaultPlan, FaultyApplication
from repro.web.remote import ModelResolver, RemoteLibraryClient, federate
from repro.web.resilience import CircuitBreaker, RetryPolicy
from repro.web.server import PowerPlayServer


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def fast_retry(attempts=5):
    """A retry policy whose sleeps are instant (recorded, not slept)."""
    return RetryPolicy(max_attempts=attempts, sleep=lambda s: None)


class TestFaultPlan:
    def test_same_seed_same_schedule(self):
        plan_a = FaultPlan(rate=0.4, seed=11)
        plan_b = FaultPlan(rate=0.4, seed=11)
        decisions_a = [plan_a.next_fault() for _ in range(50)]
        decisions_b = [plan_b.next_fault() for _ in range(50)]
        assert decisions_a == decisions_b
        assert any(kind is not None for kind in decisions_a)
        assert any(kind is None for kind in decisions_a)

    def test_script_mode_is_explicit(self):
        plan = FaultPlan(script=[None, "refuse", None, "error_500"])
        assert [plan.next_fault() for _ in range(5)] == [
            None, "refuse", None, "error_500", None,
        ]
        assert plan.faults_injected == 2

    def test_max_faults_caps_the_damage(self):
        plan = FaultPlan(rate=1.0, seed=3, max_faults=4)
        decisions = [plan.next_fault() for _ in range(20)]
        assert sum(1 for kind in decisions if kind) == 4
        assert all(kind is None for kind in decisions[10:])

    def test_exempt_paths_stay_clean(self):
        plan = FaultPlan(rate=1.0, seed=0, exempt_paths=("/api/ping",))
        assert plan.next_fault("/api/ping?x=1") is None
        assert plan.next_fault("/api/model") is not None

    def test_reset_rewinds_the_schedule(self):
        plan = FaultPlan(rate=0.5, seed=9)
        first = [plan.next_fault() for _ in range(30)]
        plan.reset()
        again = [plan.next_fault() for _ in range(30)]
        assert first == again

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault"):
            FaultPlan(kinds=("meteor_strike",))
        with pytest.raises(ValueError, match="unknown scripted"):
            FaultPlan(script=["meteor_strike"])


class TestFaultyApplication:
    @pytest.fixture
    def app(self, tmp_path):
        application = Application(tmp_path / "state")
        application.handle("POST", "/login", {"user": "chaos"})
        return application

    def test_no_faults_is_transparent(self, app):
        wrapped = FaultyApplication(app, FaultPlan())
        response = wrapped.handle("GET", "/api/ping")
        assert response.status == 200
        assert json.loads(response.body)["protocol"] == "powerplay/1"
        # non-handle attributes delegate to the real application
        assert wrapped.users is app.users

    def test_refuse_and_disconnect_raise(self, app):
        wrapped = FaultyApplication(app, FaultPlan(script=["refuse", "disconnect"]))
        with pytest.raises(FaultInjected, match="refuse"):
            wrapped.handle("GET", "/api/ping")
        with pytest.raises(FaultInjected, match="disconnect"):
            wrapped.handle("GET", "/api/ping")

    def test_error_500(self, app):
        wrapped = FaultyApplication(app, FaultPlan(script=["error_500"]))
        assert wrapped.handle("GET", "/api/ping").status == 500

    def test_malformed_json(self, app):
        wrapped = FaultyApplication(app, FaultPlan(script=["malformed_json"]))
        body = wrapped.handle("GET", "/api/library.json").body
        with pytest.raises(json.JSONDecodeError):
            json.loads(body)

    def test_truncate_halves_the_body(self, app):
        clean = app.handle("GET", "/api/library.json")
        wrapped = FaultyApplication(app, FaultPlan(script=["truncate"]))
        cut = wrapped.handle("GET", "/api/library.json")
        assert cut.status == 200
        assert len(cut.body) < len(clean.body)
        assert clean.body.startswith(cut.body)

    def test_latency_uses_injected_sleep(self, app):
        slept = []
        wrapped = FaultyApplication(
            app, FaultPlan(script=["latency"], latency=0.25), sleep=slept.append
        )
        assert wrapped.handle("GET", "/api/ping").status == 200
        assert slept == [0.25]


@pytest.fixture
def chaos(tmp_path_factory):
    """A chaos server factory; servers are torn down per test."""
    servers = []

    def start(plan: FaultPlan) -> ChaosServer:
        state = tmp_path_factory.mktemp("chaos_state")
        server = ChaosServer(state, plan).start()
        servers.append(server)
        return server

    yield start
    for server in servers:
        server.stop()


class TestChaosServerWire:
    """Each fault kind as seen from a real client socket."""

    def test_refuse_surfaces_as_transient(self, chaos):
        server = chaos(FaultPlan(script=["refuse"]))
        browser = Browser(server.base_url, timeout=5.0)
        with pytest.raises(TransientRemoteError):
            browser.get("/api/ping")
        assert browser.get("/api/ping").status == 200  # next one is clean

    def test_disconnect_mid_body_surfaces_as_transient(self, chaos):
        server = chaos(FaultPlan(script=["disconnect"]))
        browser = Browser(server.base_url, timeout=5.0)
        with pytest.raises(TransientRemoteError):
            browser.get("/api/library.json")

    def test_error_500_and_truncate_yield_transient_remote_errors(self, chaos):
        server = chaos(FaultPlan(script=["error_500", "truncate"]))
        client = RemoteLibraryClient(
            server.base_url, retry_policy=RetryPolicy(max_attempts=1)
        )
        with pytest.raises(TransientRemoteError, match="500"):
            client.fetch_model("sram")
        with pytest.raises(TransientRemoteError, match="bad model payload"):
            client.fetch_model("sram")

    def test_latency_spike_still_succeeds(self, chaos):
        server = chaos(FaultPlan(script=["latency"], latency=0.05))
        browser = Browser(server.base_url, timeout=5.0)
        assert browser.get("/api/ping").status == 200


class TestResilienceUnderChaos:
    MODELS = ["sram", "multiplier", "register", "ripple_adder", "controller_rom"]

    def test_acceptance_100_percent_success_at_30_percent_faults(self, chaos):
        """The headline criterion: 30% transient-failure rate, every
        cacheable lookup resolves.  Deterministic via the plan seed.

        The cache TTL is driven by a fake clock that expires between
        rounds, so every round actually revalidates over the faulty
        wire — retries (and, if a round's retries are exhausted, the
        stale fallback) are what keep the success rate at 100%.
        """
        clock = FakeClock()
        server = chaos(FaultPlan(rate=0.30, seed=1996, latency=0.005))
        client = RemoteLibraryClient(
            server.base_url,
            retry_policy=fast_retry(attempts=6),
            breaker=CircuitBreaker(failure_threshold=100),
            cache_ttl=60.0,
            clock=clock,
        )
        resolver = ModelResolver(Library("local"), [client])

        resolved = 0
        lookups = 0
        for _round in range(4):
            for name in self.MODELS:
                lookups += 1
                entry = resolver.resolve(name)
                assert entry.name == name
                resolved += 1
            clock.advance(61)  # expire the cache: next round re-fetches
        assert resolved == lookups == 20  # 100% success
        # every round went to the wire (no free rides from a fresh cache)
        assert client.requests_made >= 20
        # the fault plan really did bite, and nothing was silent
        assert server.plan.faults_injected > 0
        assert resolver.report.retries > 0

    def test_acceptance_zero_requests_to_a_tripped_circuit(self):
        policy = fast_retry(attempts=3)
        breaker = CircuitBreaker(failure_threshold=2, cooldown=1000)
        client = RemoteLibraryClient(
            "http://127.0.0.1:1",  # nothing listens here
            timeout=0.25,
            retry_policy=policy,
            breaker=breaker,
        )
        resolver = ModelResolver(Library("local"), [client])
        with pytest.raises(RemoteError):
            resolver.resolve("sram")
        # the breaker tripped after 2 connection failures, mid-retry
        assert breaker.state == "open"
        requests_at_trip = client.requests_made
        retries_at_trip = policy.retries_issued
        assert requests_at_trip == 2

        for _ in range(10):
            with pytest.raises(RemoteError):
                resolver.resolve("multiplier")
        # zero wire requests and zero retries since the trip
        assert client.requests_made == requests_at_trip
        assert policy.retries_issued == retries_at_trip
        # 1 skip from the resolve that tripped it + 10 fast rejections
        assert resolver.report.circuit_skips == 11

    # a full outage: every kind here actually fails the request
    # ("latency" would merely slow it down and then succeed)
    OUTAGE_KINDS = ("refuse", "error_500", "malformed_json", "truncate", "disconnect")

    def test_stale_while_revalidate_keeps_designs_evaluable(self, chaos):
        clock = FakeClock()
        server = chaos(
            FaultPlan(script=[None], rate=1.0, seed=5, kinds=self.OUTAGE_KINDS)
        )
        client = RemoteLibraryClient(
            server.base_url,
            retry_policy=fast_retry(attempts=2),
            breaker=CircuitBreaker(failure_threshold=100),
            cache_ttl=60.0,
            clock=clock,
        )
        entry = client.fetch_model("sram")  # scripted: first request clean
        assert entry.name == "sram"

        clock.advance(61)  # TTL expired -> revalidation required
        again = client.fetch_model("sram")  # every wire attempt now faulted
        assert again.name == "sram"
        assert client.report.stale_serves == 1
        assert client.report.count("remote_failed") == 1  # not silent

        # the entry stays stale (a failed revalidation does not fake
        # freshness) — but it keeps the design evaluable, every time
        third = client.fetch_model("sram")
        assert third.name == "sram"
        assert client.report.stale_serves == 2
        assert client.report.count("remote_failed") == 2

    def test_stale_serves_on_open_circuit_too(self, chaos):
        clock = FakeClock()
        server = chaos(
            FaultPlan(script=[None], rate=1.0, seed=5, kinds=self.OUTAGE_KINDS)
        )
        breaker = CircuitBreaker(failure_threshold=1, cooldown=1000)
        client = RemoteLibraryClient(
            server.base_url,
            retry_policy=RetryPolicy(max_attempts=1),
            breaker=breaker,
            cache_ttl=60.0,
            clock=clock,
        )
        client.fetch_model("sram")
        clock.advance(61)
        with pytest.raises(RemoteError):
            client.fetch_model("multiplier")  # trips the breaker
        assert breaker.state == "open"
        requests = client.requests_made
        entry = client.fetch_model("sram")  # circuit open -> stale copy
        assert entry.name == "sram"
        assert client.requests_made == requests  # no wire traffic
        assert client.report.circuit_skips >= 1
        assert client.report.stale_serves == 1


class TestBestEffortFederation:
    def test_strict_mode_unchanged(self, tmp_path):
        with pytest.raises(RemoteError):
            federate(Library("x"), ["http://127.0.0.1:1"])

    def test_best_effort_reports_per_url(self, tmp_path):
        good = PowerPlayServer(tmp_path / "good", server_name="good").start()
        try:
            dead_url = "http://127.0.0.1:1"
            tripped_url = "http://127.0.0.1:2"
            tripped_breaker = CircuitBreaker(failure_threshold=1, cooldown=1000)
            tripped_breaker.record_failure()  # known-dead before we start

            def factory(url):
                if url == tripped_url:
                    return RemoteLibraryClient(url, breaker=tripped_breaker)
                return RemoteLibraryClient(
                    url, timeout=0.25, retry_policy=RetryPolicy(max_attempts=1)
                )

            local = Library("california")
            report = federate(
                local,
                [good.base_url, dead_url, tripped_url],
                best_effort=True,
                client_factory=factory,
            )
            assert not report.complete
            assert "sram" in local
            assert list(report.succeeded) == [good.base_url]
            assert len(report.succeeded[good.base_url]) == len(local)
            assert list(report.failed) == [dead_url]
            assert list(report.skipped) == [tripped_url]
            assert "open" in report.skipped[tripped_url]
            assert "1 succeeded, 1 failed, 1 skipped" == report.summary()
        finally:
            good.stop()

    def test_best_effort_all_good_is_complete(self, tmp_path):
        with PowerPlayServer(tmp_path / "srv") as server:
            report = federate(
                Library("local"), [server.base_url], best_effort=True
            )
            assert report.complete
            assert report.succeeded[server.base_url]


class TestAllFaultKindsCovered:
    def test_harness_knows_every_documented_kind(self):
        assert set(FAULT_KINDS) == {
            "refuse", "latency", "error_500", "malformed_json",
            "truncate", "disconnect", "reset_mid_body", "flap",
        }
