"""Graceful drain: stop() finishes in-flight work and flushes state."""

import threading
import time
import urllib.request

import pytest

from repro.web.app import Application
from repro.web.server import PowerPlayServer


@pytest.fixture
def slow_server(tmp_path):
    """A server whose /status handler blocks until released."""
    application = Application(tmp_path / "state")
    started = threading.Event()
    hold = threading.Event()
    inner = application.handle

    def handle(method, path, form=None, headers=None):
        if path.startswith("/status"):
            started.set()
            hold.wait(5)
        return inner(method, path, form, headers=headers)

    application.handle = handle
    server = PowerPlayServer(tmp_path / "state", application=application)
    server.start()
    yield server, started, hold
    hold.set()
    server.stop()


class TestDrain:
    def test_in_flight_request_completes_through_stop(self, slow_server):
        server, started, hold = slow_server
        result = {}

        def request():
            result["body"] = urllib.request.urlopen(
                server.base_url + "/status", timeout=10
            ).read()

        thread = threading.Thread(target=request)
        thread.start()
        assert started.wait(5)
        # release the handler *after* stop() has begun draining
        threading.Timer(0.3, hold.set).start()
        before = time.monotonic()
        server.stop()
        elapsed = time.monotonic() - before
        thread.join(5)
        assert elapsed >= 0.2  # stop() actually waited
        assert result.get("body"), "the in-flight response was lost"

    def test_drain_deadline_bounds_the_wait(self, slow_server):
        server, started, hold = slow_server
        server.drain_deadline = 0.2
        thread = threading.Thread(
            target=lambda: urllib.request.urlopen(
                server.base_url + "/status", timeout=10
            ).read(),
            daemon=True,
        )
        thread.start()
        assert started.wait(5)
        before = time.monotonic()
        server.stop()  # the handler is still held: deadline must fire
        assert time.monotonic() - before < 3.0
        hold.set()
        thread.join(5)

    def test_stop_flushes_application_state(self, tmp_path):
        application = Application(tmp_path / "state")
        flushed = []
        inner_flush = application.flush
        application.flush = lambda: flushed.append(inner_flush()) or flushed[-1]
        server = PowerPlayServer(tmp_path / "state", application=application)
        server.start()
        urllib.request.urlopen(server.base_url + "/", timeout=5).read()
        server.stop()
        assert flushed, "stop() must flush volatile state"
        assert "sessions" in flushed[0]

    def test_stop_is_idempotent(self, tmp_path):
        server = PowerPlayServer(tmp_path / "state")
        server.start()
        server.stop()
        server.stop()  # second call is a no-op

    def test_inflight_counter_settles_to_zero(self, tmp_path):
        server = PowerPlayServer(tmp_path / "state")
        server.start()
        for _ in range(3):
            urllib.request.urlopen(server.base_url + "/", timeout=5).read()
        assert server._httpd.drain(2.0) is True
        assert server._httpd.inflight == 0
        server.stop()
