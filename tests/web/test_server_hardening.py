"""Transport hardening: malformed requests, size limits, redirect
loops, access control edge cases.

A public PowerPlay server faces arbitrary bytes, not just well-behaved
Netscape sessions; every probe here must come back as a clean 4xx/5xx
HTML page — never a traceback, never a hung client.
"""

import http.client
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.errors import RemoteError, SessionError
from repro.web.client import Browser
from repro.web.server import PowerPlayServer, host_allowed
from repro.web.session import validate_username


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    state = tmp_path_factory.mktemp("hardening_state")
    with PowerPlayServer(state) as live:
        yield live


def _raw_post(server, headers, body=b""):
    host, port = server.address
    connection = http.client.HTTPConnection(host, port, timeout=5)
    try:
        connection.putrequest("POST", "/login")
        for key, value in headers.items():
            connection.putheader(key, value)
        connection.endheaders()
        if body:
            connection.send(body)
        response = connection.getresponse()
        return response.status, response.read().decode("utf-8", "replace")
    finally:
        connection.close()


class TestMalformedPosts:
    def test_non_integer_content_length_is_400(self, server):
        status, body = _raw_post(server, {"Content-Length": "banana"})
        assert status == 400
        assert "Content-Length" in body
        assert "Traceback" not in body

    def test_negative_content_length_is_400(self, server):
        status, body = _raw_post(server, {"Content-Length": "-5"})
        assert status == 400

    def test_missing_content_length_means_empty_form(self, server):
        # an empty login form is a routine 400 from the app, not a crash
        status, body = _raw_post(server, {})
        assert status == 400
        assert "Traceback" not in body

    def test_non_utf8_body_is_400(self, server):
        raw = b"\xff\xfe\xfauser=evil"
        status, body = _raw_post(
            server,
            {
                "Content-Length": str(len(raw)),
                "Content-Type": "application/x-www-form-urlencoded",
            },
            raw,
        )
        assert status == 400
        assert "UTF-8" in body

    def test_oversized_body_is_413_without_reading_it(self, server):
        # the header alone triggers the refusal; no 100MB transfer needed
        status, body = _raw_post(
            server, {"Content-Length": str(100 * 1024 * 1024)}
        )
        assert status == 413
        assert "limit" in body

    def test_configurable_limit(self, tmp_path):
        with PowerPlayServer(tmp_path / "tiny", max_body_bytes=16) as tiny:
            raw = b"user=" + b"a" * 64
            status, _ = _raw_post(
                tiny,
                {
                    "Content-Length": str(len(raw)),
                    "Content-Type": "application/x-www-form-urlencoded",
                },
                raw,
            )
            assert status == 413
            # and a small form still works
            page = Browser(tiny.base_url).login("ok")
            assert page.status == 200


class _Exploding:
    """An application whose handler is a bug."""

    def handle(self, method, path, form=None):
        raise RuntimeError("secret internal detail")


class TestNoTracebackLeaks:
    def test_unexpected_exception_yields_500_html(self, tmp_path):
        with PowerPlayServer(tmp_path / "s", application=_Exploding()) as server:
            browser = Browser(server.base_url)
            page = browser.get("/anything")
            assert page.status == 500
            assert "500" in page.body
            assert "<html>" in page.body
            # the bug's details must not reach the client
            assert "secret internal detail" not in page.body
            assert "Traceback" not in page.body
            assert "RuntimeError" not in page.body

    def test_application_level_catchall(self, tmp_path, monkeypatch):
        # a buggy route handler inside Application must still produce a
        # page, even for transports that call handle() directly
        from repro.web.app import Application

        app = Application(tmp_path / "s")

        def boom(data):
            raise RuntimeError("route bug detail")

        monkeypatch.setattr(app, "_menu", boom)
        response = app.handle("GET", "/menu?user=someone")
        assert response.status == 500
        assert "route bug detail" not in response.body
        assert "Traceback" not in response.body
        assert "<html>" in response.body


class _RedirectMaze(BaseHTTPRequestHandler):
    """/loop redirects to itself; /hop/N redirects down to /hop/0."""

    def log_message(self, *args):  # noqa: A002
        pass

    def do_GET(self):  # noqa: N802
        if self.path.startswith("/hop/"):
            n = int(self.path.rsplit("/", 1)[-1])
            if n == 0:
                body = b"<html><title>made it</title></html>"
                self.send_response(200)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)
                return
            location = f"/hop/{n - 1}"
        else:
            location = "/loop"
        self.send_response(302)
        self.send_header("Location", location)
        self.send_header("Content-Length", "0")
        self.end_headers()


@pytest.fixture
def maze():
    httpd = ThreadingHTTPServer(("127.0.0.1", 0), _RedirectMaze)
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{httpd.server_address[1]}"
    httpd.shutdown()
    thread.join(timeout=5)
    httpd.server_close()


class TestRedirectCap:
    def test_redirect_loop_raises_instead_of_hanging(self, maze):
        browser = Browser(maze, timeout=5)
        with pytest.raises(RemoteError, match="redirect loop"):
            browser.get("/loop")

    def test_five_hops_still_followed(self, maze):
        browser = Browser(maze, timeout=5)
        page = browser.get("/hop/5")
        assert page.status == 200
        assert page.title == "made it"

    def test_six_hops_is_too_many(self, maze):
        browser = Browser(maze, timeout=5)
        with pytest.raises(RemoteError, match="redirect loop"):
            browser.get("/hop/6")


class TestHostAllowed:
    def test_none_means_open(self):
        assert host_allowed("203.0.113.9", None)

    def test_empty_list_is_lockdown(self):
        assert not host_allowed("127.0.0.1", [])
        assert not host_allowed("::1", [])

    def test_literal_match(self):
        assert host_allowed("10.0.0.7", ["10.0.0.7"])
        assert not host_allowed("10.0.0.8", ["10.0.0.7"])

    def test_cidr_match(self):
        assert host_allowed("10.0.0.200", ["10.0.0.0/24"])
        assert not host_allowed("10.0.1.1", ["10.0.0.0/24"])

    def test_ipv6_literal(self):
        assert host_allowed("::1", ["::1"])
        assert host_allowed(
            "2001:db8::1", ["2001:0db8:0000:0000:0000:0000:0000:0001"]
        )
        assert not host_allowed("::2", ["::1"])

    def test_ipv6_network(self):
        assert host_allowed("2001:db8:dead::beef", ["2001:db8::/32"])
        assert not host_allowed("2001:db9::1", ["2001:db8::/32"])

    def test_mixed_families_do_not_crash(self):
        # an IPv6 client against IPv4 entries (and vice versa) is a
        # clean no-match, not a TypeError
        assert not host_allowed("::1", ["10.0.0.0/24", "10.0.0.7"])
        assert host_allowed("::1", ["10.0.0.0/24", "::1"])
        assert not host_allowed("10.0.0.7", ["2001:db8::/32"])

    @pytest.mark.parametrize(
        "entry",
        ["10.0.0.0/99", "banana", "banana/8", "", "/24", "10.0.0.256"],
    )
    def test_malformed_entries_are_skipped_not_fatal(self, entry):
        assert not host_allowed("10.0.0.7", [entry])
        # a malformed entry must not mask a later valid one
        assert host_allowed("10.0.0.7", [entry, "10.0.0.7"])

    def test_malformed_client_address_is_denied(self):
        assert not host_allowed("not-an-ip", ["10.0.0.0/8"])
        assert not host_allowed("", ["10.0.0.0/8"])


class TestUsernameRejectionPaths:
    @pytest.mark.parametrize(
        "bad",
        [
            "alice\n",          # trailing newline ($ would accept it!)
            "alice\r",
            "alice\x00",
            ".hidden",          # must start with a letter
            "-dash",
            "_under",
            "über",             # ASCII letters only — becomes a filename
            "名前",
            "a" * 33,           # too long
            " alice",
            "alice ",
            "al ice",
            "a\tb",
            "CON/PRN",
            "..",
            "a..b/../c",
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(SessionError, match="invalid username"):
            validate_username(bad)

    def test_boundary_lengths(self):
        assert validate_username("a") == "a"
        assert validate_username("a" * 32) == "a" * 32
        with pytest.raises(SessionError):
            validate_username("a" * 33)

    def test_non_strings_rejected(self):
        for bad in (None, 42, b"alice", ["a"]):
            with pytest.raises(SessionError):
                validate_username(bad)
