"""The web application, driven in-process (no sockets)."""

import json

import pytest

from repro.web.app import Application

USER = "lidsky"


@pytest.fixture
def app(tmp_path):
    application = Application(tmp_path / "state")
    response = application.handle("POST", "/login", {"user": USER})
    assert response.status == 303
    return application


def get(app, path):
    return app.handle("GET", path)


def post(app, path, **form):
    return app.handle("POST", path, form)


class TestLogin:
    def test_front_page(self, app):
        response = get(app, "/")
        assert response.status == 200
        assert "identify" in response.body

    def test_login_redirects_to_menu(self, app):
        response = post(app, "/login", user="newbie")
        assert response.status == 303
        assert response.headers["Location"] == "/menu?user=newbie"

    def test_bad_username_rejected(self, app):
        response = post(app, "/login", user="../etc")
        assert response.status == 400

    def test_menu_lists_libraries_designs_examples(self, app):
        response = get(app, f"/menu?user={USER}")
        assert "ucb_lowpower" in response.body
        assert "system_components" in response.body
        assert "luminance_fig3" in response.body


class TestLibraryAndCell:
    def test_library_page(self, app):
        response = get(app, f"/library?user={USER}")
        assert "multiplier" in response.body
        assert "sram" in response.body

    def test_single_library_filter(self, app):
        response = get(app, f"/library?user={USER}&library=system_components")
        assert "radio" in response.body
        assert "ucb_lowpower" not in response.body
        assert get(app, f"/library?user={USER}&library=ghost").status == 400

    def test_cell_form_shows_parameters(self, app):
        response = get(app, f"/cell?user={USER}&name=multiplier")
        assert "bitwidthA" in response.body
        assert "p:VDD" in response.body  # supply field injected
        assert "/doc/cell/multiplier" in response.body

    def test_unknown_cell(self, app):
        assert get(app, f"/cell?user={USER}&name=ghost").status == 400

    def test_compute_shows_figure4_result(self, app):
        response = post(
            app, "/cell",
            user=USER, name="multiplier",
            **{"p:bitwidthA": "16", "p:bitwidthB": "16",
               "p:VDD": "1.5", "p:f": "2M"},
        )
        assert "Result" in response.body
        assert "2.9146e-04 W" in response.body      # the EQ 20 anchor
        assert "Effective capacitance" in response.body
        assert "64.77 pF" in response.body          # 16*16*253fF

    def test_compute_remembers_defaults(self, app):
        post(
            app, "/cell",
            user=USER, name="multiplier",
            **{"p:bitwidthA": "24", "p:VDD": "1.5", "p:f": "2M",
               "p:bitwidthB": "24"},
        )
        response = get(app, f"/cell?user={USER}&name=multiplier")
        assert 'value="24.0"' in response.body

    def test_compute_error_shown_on_form(self, app):
        response = post(
            app, "/cell",
            user=USER, name="multiplier",
            **{"p:bitwidthA": "0", "p:bitwidthB": "16",
               "p:VDD": "1.5", "p:f": "2M"},
        )
        assert response.status == 200
        assert "error" in response.body


class TestDesigns:
    def make_design(self, app, name="demo"):
        assert post(app, "/design/new", user=USER, name=name).status == 303

    def test_new_design(self, app):
        self.make_design(app)
        response = get(app, f"/design?user={USER}&name=demo")
        assert "demo summary" in response.body

    def test_duplicate_design_name(self, app):
        self.make_design(app)
        assert post(app, "/design/new", user=USER, name="demo").status == 400

    def test_empty_design_name(self, app):
        assert post(app, "/design/new", user=USER, name="  ").status == 400

    def save_multiplier(self, app, row="mult16"):
        return post(
            app, "/cell/save",
            user=USER, name="multiplier", design="demo", row=row,
            **{"p:bitwidthA": "16", "p:bitwidthB": "16",
               "p:VDD": "1.5", "p:f": "2M"},
        )

    def test_save_to_design_and_sheet(self, app):
        self.make_design(app)
        assert self.save_multiplier(app).status == 303
        response = get(app, f"/design?user={USER}&name=demo")
        assert "mult16" in response.body
        assert "2.9146e-04 W" in response.body
        assert "100.0%" in response.body

    def test_duplicate_row_rejected(self, app):
        self.make_design(app)
        self.save_multiplier(app)
        assert self.save_multiplier(app).status == 400

    def test_play_updates_parameters(self, app):
        self.make_design(app)
        self.save_multiplier(app)
        response = post(
            app, "/design",
            user=USER, name="demo", **{"p:mult16:VDD": "1.0"},
        )
        assert "1.2954e-04 W" in response.body

    def test_play_with_bad_value_reports_error(self, app):
        self.make_design(app)
        self.save_multiplier(app)
        response = post(
            app, "/design",
            user=USER, name="demo", **{"p:mult16:bitwidthA": "-3"},
        )
        assert "error" in response.body

    def test_unknown_design(self, app):
        assert get(app, f"/design?user={USER}&name=ghost").status == 400


class TestExamples:
    def load(self, app, example):
        return post(app, "/design/load_example", user=USER, example=example)

    def test_load_infopad_and_navigate(self, app):
        assert self.load(app, "infopad").status == 303
        top = get(app, f"/design?user={USER}&name=infopad")
        assert "custom_hardware" in top.body
        assert "voltage_converters" in top.body
        sub = get(
            app, f"/design?user={USER}&name=infopad&path=custom_hardware"
        )
        assert "luminance_chip" in sub.body
        leaf = get(
            app,
            f"/design?user={USER}&name=infopad"
            "&path=custom_hardware/luminance_chip",
        )
        assert "read_bank" in leaf.body

    def test_example_names_deduplicated(self, app):
        self.load(app, "luminance_fig1")
        self.load(app, "luminance_fig1")
        menu = get(app, f"/menu?user={USER}")
        assert "luminance_fig1_1" in menu.body

    def test_unknown_example(self, app):
        assert self.load(app, "warp_core").status == 400

    def test_path_through_non_subdesign(self, app):
        self.load(app, "luminance_fig1")
        response = get(
            app, f"/design?user={USER}&name=luminance_fig1&path=lut"
        )
        assert response.status == 400

    def test_play_on_subdesign_page(self, app):
        self.load(app, "infopad")
        response = app.handle(
            "POST", "/design",
            {"user": USER, "name": "infopad", "path": "custom_hardware",
             "g:VDD2": "0.9"},
        )
        # VDD2 isn't local to custom_hardware; setting it there shadows.
        assert response.status == 200


class TestDefineModel:
    def define(self, app, **over):
        fields = dict(
            user=USER, name="fir_filter",
            equation="taps * 12f * VDD^2 * f",
            parameters="taps=64", doc="FIR", category="computation",
            proprietary="no",
        )
        fields.update(over)
        return post(app, "/define", **fields)

    def test_define_and_use(self, app):
        response = self.define(app)
        assert "fir_filter" in response.body and "created" in response.body
        form = get(app, f"/cell?user={USER}&name=fir_filter")
        assert "taps" in form.body
        computed = post(
            app, "/cell", user=USER, name="fir_filter",
            **{"p:taps": "64", "p:VDD": "1.5", "p:f": "2M"},
        )
        assert "Result" in computed.body

    def test_bad_equation_rejected_on_form(self, app):
        response = self.define(app, equation="taps * oops(")
        assert "error" in response.body

    def test_equation_with_unknown_name_rejected(self, app):
        response = self.define(app, equation="bogus_name * 2")
        assert "error" in response.body

    def test_duplicate_name_rejected(self, app):
        self.define(app)
        response = self.define(app)
        assert "already defined" in response.body

    def test_bad_parameter_spec(self, app):
        response = self.define(app, parameters="taps")
        assert "error" in response.body

    def test_persisted_across_restart(self, app, tmp_path):
        self.define(app)
        fresh = Application(tmp_path / "state")
        response = fresh.handle("GET", f"/cell?user={USER}&name=fir_filter")
        assert response.status == 200

    def test_proprietary_model_not_in_api(self, app):
        self.define(app, proprietary="yes")
        # user still sees it
        assert get(app, f"/cell?user={USER}&name=fir_filter").status == 200
        # but it is not shared (user library is not in the public API at all)
        response = get(app, "/api/model?name=fir_filter")
        assert response.status == 400


class TestAPI:
    def test_ping(self, app):
        payload = json.loads(get(app, "/api/ping").body)
        assert payload["protocol"] == "powerplay/1"

    def test_library_json(self, app):
        payload = json.loads(get(app, "/api/library.json").body)
        assert payload["format"] == "powerplay-library/1"
        names = {entry["name"] for entry in payload["entries"]}
        assert {"multiplier", "sram", "radio"} <= names

    def test_model_json(self, app):
        payload = json.loads(get(app, "/api/model?name=sram").body)
        assert payload["name"] == "sram"
        assert payload["power"]["kind"] == "template"

    def test_unknown_model(self, app):
        assert get(app, "/api/model?name=ghost").status == 400

    def test_design_export(self, app):
        post(app, "/design/load_example", user=USER, example="luminance_fig3")
        response = get(app, f"/export/design?user={USER}&name=luminance_fig3")
        payload = json.loads(response.body)
        assert payload["format"] == "powerplay-design/1"
        names = [row["name"] for row in payload["rows"]]
        assert "lut" in names

    def test_export_library(self, app):
        response = get(app, "/export/library?library=ucb_lowpower")
        assert json.loads(response.body)["name"] == "ucb_lowpower"
        assert get(app, "/export/library?library=ghost").status == 400


class TestDocsAndMisc:
    def test_doc_page(self, app):
        response = get(app, "/doc/cell/sram")
        assert "words" in response.body and "Parameters" in response.body

    def test_doc_for_user_model(self, app):
        post(
            app, "/define",
            user=USER, name="mine", equation="1u * VDD", parameters="",
            doc="", category="other", proprietary="no",
        )
        assert get(app, f"/doc/cell/mine?user={USER}").status == 200

    def test_tutorial_and_help(self, app):
        assert "PLAY" in get(app, "/tutorial").body
        assert "engineering notation" in get(app, "/help").body

    def test_unknown_route_404(self, app):
        assert get(app, "/warp").status == 404

    def test_injection_escaped_in_sheet(self, app):
        post(app, "/design/new", user=USER, name="xss")
        post(
            app, "/cell/save",
            user=USER, name="register", design="xss",
            row="r1", **{"p:bits": "8", "p:VDD": "1.5", "p:f": "1M"},
        )
        # a hostile global parameter name would arrive via the form; the
        # sheet page must escape whatever it echoes
        response = post(
            app, "/design", user=USER, name="xss",
            **{"g:VDD": "1.5"},
        )
        assert "<script>" not in response.body


class TestDefineWithAreaTiming:
    """'Parameterized models are also used for area and timing analysis.'"""

    def define_full(self, app):
        return post(
            app, "/define",
            user=USER, name="alu_block",
            equation="bitwidth * 68f * VDD^2 * f",
            parameters="bitwidth=16",
            area_equation="bitwidth * 2.3n",
            delay_equation="bitwidth * 1.1n * (1.5 / VDD)",
            doc="ALU with full PAT models", category="computation",
            proprietary="no",
        )

    def test_all_three_quantities_computed(self, app):
        response = self.define_full(app)
        assert "created" in response.body, response.body[:500]
        computed = post(
            app, "/cell", user=USER, name="alu_block",
            **{"p:bitwidth": "16", "p:VDD": "1.5", "p:f": "2M"},
        )
        assert "Power" in computed.body
        assert "Active area" in computed.body
        assert "Max frequency" in computed.body

    def test_bad_area_equation_rejected_on_form(self, app):
        response = post(
            app, "/define",
            user=USER, name="bad_area",
            equation="1u * VDD", parameters="",
            area_equation="nonsense(", delay_equation="",
            doc="", category="other", proprietary="no",
        )
        assert "error" in response.body

    def test_area_timing_survive_persistence(self, app, tmp_path):
        self.define_full(app)
        fresh = Application(tmp_path / "state")
        computed = fresh.handle(
            "POST", "/cell",
            {"user": USER, "name": "alu_block",
             "p:bitwidth": "8", "p:VDD": "1.5", "p:f": "2M"},
        )
        assert "Active area" in computed.body
        assert "Delay" in computed.body
