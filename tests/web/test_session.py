"""Per-user sessions and file-backed persistence."""

import json

import pytest

from repro.core.design import Design
from repro.core.model import FixedPowerModel, ModelSet
from repro.library.catalog import LibraryEntry
from repro.web.session import UserStore, validate_username
from repro.errors import SessionError


@pytest.fixture
def store(tmp_path):
    return UserStore(tmp_path / "users")


class TestUsernames:
    @pytest.mark.parametrize("good", ["dl", "alice", "j.doe", "a_b-c", "X9"])
    def test_accepted(self, good):
        assert validate_username(good) == good

    @pytest.mark.parametrize(
        "bad", ["", "9lives", "a/b", "../etc", "a" * 40, "sp ace", None, "a\nb"]
    )
    def test_rejected(self, bad):
        with pytest.raises(SessionError):
            validate_username(bad)


class TestSessions:
    def test_lazy_creation(self, store):
        session = store.session("alice")
        assert session.username == "alice"
        assert session.designs == {}

    def test_same_object_within_store(self, store):
        assert store.session("alice") is store.session("alice")

    def test_defaults_remembered(self, store):
        session = store.session("alice")
        session.remember_defaults("multiplier", {"bitwidthA": 16})
        session.remember_defaults("multiplier", {"bitwidthB": 8})
        assert session.defaults_for("multiplier") == {
            "bitwidthA": 16.0, "bitwidthB": 8.0,
        }
        assert session.defaults_for("unknown") == {}

    def test_design_crud(self, store):
        session = store.session("alice")
        design = Design("d")
        design.add("row", FixedPowerModel("x", 1.0))
        session.put_design(design)
        assert session.design("d") is design
        session.delete_design("d")
        with pytest.raises(SessionError):
            session.design("d")
        with pytest.raises(SessionError):
            session.delete_design("d")


class TestPersistence:
    def test_round_trip_across_store_instances(self, store, tmp_path):
        session = store.session("bob")
        session.remember_defaults("sram", {"words": 2048})
        design = Design("chip")
        design.scope.set("VDD", 1.5)
        design.add("mem", FixedPowerModel("mem", 0.5))
        session.put_design(design)
        session.user_library.add(
            LibraryEntry("mine", ModelSet(power=FixedPowerModel("mine", 2.0)))
        )
        session.save()

        fresh = UserStore(tmp_path / "users")
        restored = fresh.session("bob")
        assert restored.defaults_for("sram") == {"words": 2048.0}
        assert "chip" in restored.designs
        assert restored.designs["chip"].scope["VDD"] == 1.5
        assert restored.user_library.get("mine").models.power.power({}) == 2.0

    def test_known_users(self, store):
        store.session("alice").save()
        store.session("bob").save()
        assert store.known_users() == ["alice", "bob"]

    def test_corrupt_state_file_is_quarantined(self, store, tmp_path):
        """Damage is set aside and the user gets a fresh session —
        the service keeps running, nothing fails silently."""
        store.session("eve").save()
        (tmp_path / "users" / "eve.json").write_text("{broken")
        fresh = UserStore(tmp_path / "users")
        session = fresh.session("eve")
        assert session.designs == {}
        # the damaged bytes are preserved for inspection
        quarantine = tmp_path / "users" / "eve.json.corrupt"
        assert quarantine.read_text() == "{broken"
        assert not (tmp_path / "users" / "eve.json").exists()
        (username, path, reason) = fresh.quarantined[0]
        assert username == "eve" and path == quarantine and reason

    def test_wrong_format_quarantined_too(self, store, tmp_path):
        path = tmp_path / "users" / "mallory.json"
        path.write_text(json.dumps({"format": "evil/1"}))
        session = store.session("mallory")
        assert session.designs == {}
        assert (tmp_path / "users" / "mallory.json.corrupt").exists()
        assert store.quarantined and "format" in store.quarantined[0][2]

    def test_quarantine_names_never_collide(self, store, tmp_path):
        for _ in range(3):
            (tmp_path / "users" / "eve.json").write_text("{broken")
            store.session("eve")
            store.forget("eve")
        names = sorted(p.name for p in (tmp_path / "users").iterdir())
        assert names == [
            "eve.json.corrupt", "eve.json.corrupt-1", "eve.json.corrupt-2",
        ]

    def test_save_survives_a_crash_mid_save(self, store, tmp_path, monkeypatch):
        """A kill at the worst instant (before the atomic rename) must
        leave the previous complete state file, not a torn one."""
        import os as _os

        session = store.session("dora")
        session.remember_defaults("sram", {"words": 1024})

        def exploding_replace(src, dst):
            raise OSError("simulated kill mid-save")

        monkeypatch.setattr(_os, "replace", exploding_replace)
        session.defaults["sram"]["words"] = 4096.0
        with pytest.raises(OSError, match="simulated kill"):
            session.save()
        monkeypatch.undo()

        # on-disk state is the previous complete save, still valid JSON
        fresh = UserStore(tmp_path / "users")
        assert fresh.session("dora").defaults_for("sram") == {"words": 1024.0}
        assert not fresh.quarantined
        # and no temp litter that known_users would mistake for a user
        leftovers = [p.name for p in (tmp_path / "users").glob("*.saving")]
        assert leftovers == []

    def test_concurrent_saves_never_tear_the_file(self, store, tmp_path):
        """Regression: two threads saving the same user used to share
        one .json.tmp path outside the lock and could interleave."""
        import json as _json
        import threading

        session = store.session("race")
        errors = []

        def hammer(tag):
            try:
                for i in range(25):
                    session.remember_defaults("m", {tag: float(i)})
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(f"p{n}",)) for n in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        payload = _json.loads((tmp_path / "users" / "race.json").read_text())
        assert payload["format"] == "powerplay-user/1"

    def test_forget_drops_memory_not_disk(self, store):
        session = store.session("carol")
        session.remember_defaults("x", {"a": 1})
        store.forget("carol")
        again = store.session("carol")
        assert again is not session
        assert again.defaults_for("x") == {"a": 1.0}
