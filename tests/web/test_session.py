"""Per-user sessions and file-backed persistence."""

import json

import pytest

from repro.core.design import Design
from repro.core.model import FixedPowerModel, ModelSet
from repro.library.catalog import LibraryEntry
from repro.web.session import UserStore, validate_username
from repro.errors import SessionError


@pytest.fixture
def store(tmp_path):
    return UserStore(tmp_path / "users")


class TestUsernames:
    @pytest.mark.parametrize("good", ["dl", "alice", "j.doe", "a_b-c", "X9"])
    def test_accepted(self, good):
        assert validate_username(good) == good

    @pytest.mark.parametrize(
        "bad", ["", "9lives", "a/b", "../etc", "a" * 40, "sp ace", None, "a\nb"]
    )
    def test_rejected(self, bad):
        with pytest.raises(SessionError):
            validate_username(bad)


class TestSessions:
    def test_lazy_creation(self, store):
        session = store.session("alice")
        assert session.username == "alice"
        assert session.designs == {}

    def test_same_object_within_store(self, store):
        assert store.session("alice") is store.session("alice")

    def test_defaults_remembered(self, store):
        session = store.session("alice")
        session.remember_defaults("multiplier", {"bitwidthA": 16})
        session.remember_defaults("multiplier", {"bitwidthB": 8})
        assert session.defaults_for("multiplier") == {
            "bitwidthA": 16.0, "bitwidthB": 8.0,
        }
        assert session.defaults_for("unknown") == {}

    def test_design_crud(self, store):
        session = store.session("alice")
        design = Design("d")
        design.add("row", FixedPowerModel("x", 1.0))
        session.put_design(design)
        assert session.design("d") is design
        session.delete_design("d")
        with pytest.raises(SessionError):
            session.design("d")
        with pytest.raises(SessionError):
            session.delete_design("d")


class TestPersistence:
    def test_round_trip_across_store_instances(self, store, tmp_path):
        session = store.session("bob")
        session.remember_defaults("sram", {"words": 2048})
        design = Design("chip")
        design.scope.set("VDD", 1.5)
        design.add("mem", FixedPowerModel("mem", 0.5))
        session.put_design(design)
        session.user_library.add(
            LibraryEntry("mine", ModelSet(power=FixedPowerModel("mine", 2.0)))
        )
        session.save()

        fresh = UserStore(tmp_path / "users")
        restored = fresh.session("bob")
        assert restored.defaults_for("sram") == {"words": 2048.0}
        assert "chip" in restored.designs
        assert restored.designs["chip"].scope["VDD"] == 1.5
        assert restored.user_library.get("mine").models.power.power({}) == 2.0

    def test_known_users(self, store):
        store.session("alice").save()
        store.session("bob").save()
        assert store.known_users() == ["alice", "bob"]

    def test_corrupt_state_file(self, store, tmp_path):
        store.session("eve").save()
        (tmp_path / "users" / "eve.json").write_text("{broken")
        fresh = UserStore(tmp_path / "users")
        with pytest.raises(SessionError, match="corrupt"):
            fresh.session("eve")

    def test_wrong_format_rejected(self, store, tmp_path):
        path = tmp_path / "users" / "mallory.json"
        path.write_text(json.dumps({"format": "evil/1"}))
        with pytest.raises(SessionError, match="format"):
            store.session("mallory")

    def test_forget_drops_memory_not_disk(self, store):
        session = store.session("carol")
        session.remember_defaults("x", {"a": 1})
        store.forget("carol")
        again = store.session("carol")
        assert again is not session
        assert again.defaults_for("x") == {"a": 1.0}
