"""The registry web surface: /registry, /healthz, and the sync API."""

import json

import pytest

from repro import obs
from repro.core.model import FixedPowerModel, ModelSet
from repro.library.catalog import Library, LibraryEntry
from repro.registry.artifacts import ModelArtifact
from repro.registry.resolve import RegistryResolver
from repro.registry.sync import MAX_ARTIFACT_BYTES
from repro.web.app import Application


@pytest.fixture
def app(tmp_path):
    obs.get_registry().reset()
    return Application(tmp_path / "state", server_name="mass")


def entry(name="sram", watts=2.0):
    return LibraryEntry(name, ModelSet(power=FixedPowerModel(name, watts)))


def publish(app, name="sram", watts=2.0):
    return app.models_registry.publish_entry(entry(name, watts))


class TestCatalogEndpoint:
    def test_format(self, app):
        publish(app)
        response = app.handle("GET", "/api/registry/catalog.json")
        payload = json.loads(response.body)
        assert payload["format"] == "powerplay-registry-catalog/1"
        assert payload["server"] == "mass"
        (row,) = payload["artifacts"]
        assert row["name"] == "sram" and len(row["digest"]) == 40

    def test_corrupt_rows_filtered_from_the_wire(self, app):
        artifact = publish(app)
        store = app.models_registry.store
        store._path("entry", "sram", 1).write_text("garbage")
        payload = json.loads(
            app.handle("GET", "/api/registry/catalog.json").body
        )
        assert payload["artifacts"] == []  # a peer never syncs a corpse
        assert len(store.quarantined) == 1
        assert artifact.digest  # silence unused warning


class TestArtifactEndpoint:
    def test_fetch_verifies_roundtrip(self, app):
        published = publish(app)
        response = app.handle(
            "GET", "/api/registry/artifact?kind=entry&name=sram"
        )
        assert response.status == 200
        fetched = ModelArtifact.from_json(response.body)  # digest-verified
        assert fetched.digest == published.digest

    def test_bad_identity_is_400(self, app):
        assert app.handle(
            "GET", "/api/registry/artifact?kind=plugin&name=sram"
        ).status == 400
        assert app.handle(
            "GET", "/api/registry/artifact?kind=entry&name=../etc"
        ).status == 400
        assert app.handle(
            "GET", "/api/registry/artifact?kind=entry&name=sram&version=x"
        ).status == 400

    def test_missing_is_404(self, app):
        assert app.handle(
            "GET", "/api/registry/artifact?kind=entry&name=ghost"
        ).status == 404


class TestPublishEndpoint:
    def test_push_then_duplicate(self, app):
        artifact = ModelArtifact.create(
            "entry", "pushed", entry("pushed", 3.0).to_payload(),
            publisher="calif",
        )
        first = app.handle(
            "POST", "/api/registry/publish", {"artifact": artifact.to_json()}
        )
        assert first.status == 200
        assert json.loads(first.body)["ingested"] is True
        again = app.handle(
            "POST", "/api/registry/publish", {"artifact": artifact.to_json()}
        )
        assert json.loads(again.body)["ingested"] is False

    def test_tampered_push_rejected_and_counted(self, app):
        artifact = ModelArtifact.create("entry", "evil", {"x": 1})
        text = artifact.to_json().replace('"x":1', '"x":2')
        response = app.handle(
            "POST", "/api/registry/publish", {"artifact": text}
        )
        assert response.status == 400
        assert "integrity" in json.loads(response.body)["error"]
        assert len(app.models_registry.store) == 0
        counter = obs.get_registry().counter(
            "powerplay_registry_integrity_total", "", ("event",)
        )
        assert counter.value(event="rejected_push") == 1

    def test_truncated_push_rejected(self, app):
        text = ModelArtifact.create("entry", "cut", {"x": 1}).to_json()
        response = app.handle(
            "POST", "/api/registry/publish", {"artifact": text[: len(text) // 2]}
        )
        assert response.status == 400
        assert len(app.models_registry.store) == 0

    def test_oversized_push_is_413(self, app):
        response = app.handle(
            "POST", "/api/registry/publish",
            {"artifact": "x" * (MAX_ARTIFACT_BYTES + 1)},
        )
        assert response.status == 413

    def test_missing_field_is_400(self, app):
        assert app.handle("POST", "/api/registry/publish", {}).status == 400

    def test_version_conflict_is_409(self, app):
        publish(app, watts=1.0)
        conflicting = ModelArtifact.create(
            "entry", "sram", entry("sram", 9.0).to_payload(),
            publisher="impostor",
        )
        response = app.handle(
            "POST", "/api/registry/publish",
            {"artifact": conflicting.to_json()},
        )
        assert response.status == 409
        assert (
            app.models_registry.get_entry("sram").models.power.power({}) == 1.0
        )


class TestSyncEndpoint:
    def test_bad_peer_is_400(self, app):
        assert app.handle(
            "POST", "/api/registry/sync", {"peer": "ftp://x"}
        ).status == 400
        assert app.handle("POST", "/api/registry/sync", {}).status == 400

    def test_unreachable_peer_is_502(self, app):
        response = app.handle(
            "POST", "/api/registry/sync", {"peer": "http://127.0.0.1:1"}
        )
        assert response.status == 502


class TestHealthz:
    def _health(self, app):
        response = app.handle("GET", "/healthz")
        return response.status, json.loads(response.body)

    def _gauge(self):
        return obs.get_registry().gauge("powerplay_health_state").value()

    def test_fresh_server_is_ok(self, app):
        status, payload = self._health(app)
        assert status == 200
        assert payload["status"] == "ok" and payload["code"] == 0
        assert payload["checks"]["mirror_writable"] is True
        assert self._gauge() == 0

    def test_degraded_on_mirror_serves_still_200(self, app):
        publish(app, "mirrored_only", 4.0)
        resolver = RegistryResolver(
            Library("local"), registry=app.models_registry
        )
        app.model_resolver = resolver
        resolver.resolve("mirrored_only")
        status, payload = self._health(app)
        assert status == 200  # mirrors working IS the design working
        assert payload["status"] == "degraded" and payload["code"] == 1
        assert payload["checks"]["resolutions_degraded"] == 1
        assert self._gauge() == 1

    def test_degraded_on_quarantine(self, app):
        publish(app)
        store = app.models_registry.store
        store._path("entry", "sram", 1).write_text("garbage")
        store.verify_all()  # quarantines the corpse
        status, payload = self._health(app)
        assert status == 200
        assert payload["status"] == "degraded"
        assert payload["checks"]["quarantined"] == 1

    def test_failing_when_every_resolution_fails(self, app):
        resolver = RegistryResolver(
            Library("local"), registry=app.models_registry
        )
        app.model_resolver = resolver
        resolver.resolve("ghost")
        status, payload = self._health(app)
        assert status == 503
        assert payload["status"] == "failing" and payload["code"] == 2
        assert self._gauge() == 2

    def test_health_state_in_metrics_exposition(self, app):
        app.handle("GET", "/healthz")
        body = app.handle("GET", "/metrics").body
        assert "powerplay_health_state 0" in body


class TestRegistryPage:
    def test_catalog_rendered(self, app):
        publish(app)
        app.models_registry.store.pin("entry", "sram", 1)
        body = app.handle("GET", "/registry").body
        assert "Federated registry" in body or "registry" in body.lower()
        assert "sram" in body
        assert publish(app, "dram").digest[:16] in app.handle(
            "GET", "/registry"
        ).body

    def test_quarantine_ledger_rendered(self, app):
        publish(app)
        store = app.models_registry.store
        store._path("entry", "sram", 1).write_text("garbage")
        store.verify_all()
        body = app.handle("GET", "/registry").body
        assert "quarantine" in body.lower()

    def test_status_page_shows_registry_and_health(self, app):
        publish(app)
        body = app.handle("GET", "/status").body
        assert "Federated registry" in body
        assert "artifacts mirrored" in body
        assert "health" in body.lower()


class TestFlush:
    def test_flush_saves_loaded_sessions(self, app):
        app.handle("POST", "/login", {"user": "lidsky"})
        flushed = app.flush()
        assert flushed == {"sessions": 1}
