"""Cross-server trace propagation, end to end.

The PR's acceptance criteria, as tests: a federated fetch between two
live servers yields ONE hierarchical trace (the provider's handler span
a child of the requester's fetch span), retries and breaker waits are
visible as annotated spans, ``/trace?fmt=json`` round-trips, and the
``X-PowerPlay-Request`` ID rides every response — including the error
pages.
"""

import http.client
import json

import pytest

from repro import obs
from repro.obs import propagate
from repro.obs.propagate import span_from_payload
from repro.web.client import Browser
from repro.web.faults import ChaosServer, FaultPlan
from repro.web.remote import RemoteLibraryClient
from repro.web.resilience import CircuitBreaker, RetryPolicy
from repro.web.server import PowerPlayServer


@pytest.fixture
def tracing():
    with obs.overridden(enabled=True):
        obs.clear_traces()
        yield
        obs.clear_traces()


@pytest.fixture
def provider(tmp_path):
    with PowerPlayServer(tmp_path / "provider", server_name="berkeley") as server:
        yield server


def fast_retry(attempts=5):
    return RetryPolicy(max_attempts=attempts, sleep=lambda s: None)


def raw_get(server, path, headers=None):
    """A GET outside the Browser, for hand-crafted request headers."""
    host, port = server.address
    connection = http.client.HTTPConnection(host, port, timeout=10)
    try:
        connection.request("GET", path, headers=headers or {})
        response = connection.getresponse()
        body = response.read().decode("utf-8", errors="replace")
        return response.status, body, dict(response.getheaders())
    finally:
        connection.close()


class TestFederatedTrace:
    def test_one_trace_spans_both_servers(self, tracing, provider):
        client = RemoteLibraryClient(provider.base_url)
        with obs.span("user_workflow"):
            client.fetch_model("ripple_adder")
        root = obs.last_trace()
        assert root.name == "user_workflow"

        fetch = root.find("remote_fetch")
        assert fetch.attributes["outcome"] == "fetched"
        attempt = fetch.find("remote_attempt")
        handler = attempt.find("http_request")

        # the provider's handler span was grafted under the requester's
        # attempt span — one tree across the federation
        assert handler is not None
        assert handler.remote is True
        assert handler.attributes["route"] == "/api/model"
        # identity is shared: the provider adopted the requester's
        # trace ID and recorded the attempt span as its parent
        assert handler.trace_id == root.trace_id
        assert handler.parent_id == attempt.span_id
        # and the provider's ring kept the same span as a local root
        provider_roots = [
            node for node in obs.recent_traces()
            if node.name == "http_request"
            and node.trace_id == root.trace_id
        ]
        assert provider_roots, "provider did not record the adopted trace"

    def test_untraced_fetch_gets_no_span_header(self, tracing, provider):
        # no open span at the requester -> no trace header -> the
        # provider must not bloat the response with a span payload
        browser = Browser(provider.base_url)
        page = browser.get("/api/model?name=ripple_adder")
        assert page.status == 200
        assert page.header(propagate.SPAN_HEADER) is None
        assert page.header(propagate.REQUEST_HEADER) is not None

    def test_traced_request_returns_decodable_span(self, tracing, provider):
        context_header = f"00-{'ab' * 16}-beef"
        status, _body, headers = raw_get(
            provider, "/api/model?name=ripple_adder",
            {propagate.TRACE_HEADER: context_header},
        )
        assert status == 200
        value = next(v for k, v in headers.items()
                     if k.lower() == propagate.SPAN_HEADER.lower())
        node = propagate.decode_span_header(value)
        assert node.name == "http_request"
        assert node.trace_id == "ab" * 16
        assert node.parent_id == "beef"
        assert node.remote is True


class TestChaosFederation:
    def test_retries_visible_one_annotation_per_failed_attempt(
        self, tracing, tmp_path
    ):
        plan = FaultPlan(script=["error_500", "error_500", None])
        with ChaosServer(tmp_path / "chaos", plan) as chaotic:
            client = RemoteLibraryClient(
                chaotic.base_url, retry_policy=fast_retry(5)
            )
            with obs.span("user_workflow"):
                entry = client.fetch_model("ripple_adder")
        assert entry.name == "ripple_adder"

        fetch = obs.last_trace().find("remote_fetch")
        attempts = [n for n in fetch.children if n.name == "remote_attempt"]
        retries = [n for n in fetch.children if n.name == "retry"]
        assert len(attempts) == 3
        assert len(retries) == 2           # one per *failed* attempt
        assert [r.attributes["attempt"] for r in retries] == [1, 2]
        assert all(r.duration == 0.0 for r in retries)
        assert all("delay_s" in r.attributes for r in retries)
        # the mangled 500s carried no span header; only the clean final
        # attempt grafted the provider's handler span
        grafted = [a for a in attempts if a.find("http_request")]
        assert len(grafted) == 1
        assert grafted[0] is attempts[-1]

    def test_breaker_wait_is_annotated(self, tracing, tmp_path):
        plan = FaultPlan(script=["error_500"] * 10)
        with ChaosServer(tmp_path / "chaos", plan) as chaotic:
            breaker = CircuitBreaker(
                failure_threshold=2, cooldown=60.0, name=chaotic.base_url
            )
            client = RemoteLibraryClient(
                chaotic.base_url, retry_policy=fast_retry(2), breaker=breaker,
            )
            with obs.span("user_workflow"):
                with pytest.raises(Exception):
                    client.fetch_model("ripple_adder")   # trips the breaker
                with pytest.raises(Exception):
                    client.fetch_model("cla_adder")      # rejected, no I/O
        root = obs.last_trace()
        waits = [n for n in root.walk() if n.name == "circuit_wait"]
        assert waits, "breaker rejection left no circuit_wait annotation"
        assert waits[0].attributes["retry_after_s"] > 0
        # the rejected fetch recorded its outcome without any attempt
        rejected = [
            n for n in root.walk()
            if n.name == "remote_fetch"
            and n.attributes.get("outcome") == "circuit_open"
        ]
        assert len(rejected) == 1
        # the rejected attempt never reached the network: no provider
        # span was grafted, and the wait annotation sits inside it
        assert rejected[0].find("http_request") is None
        assert rejected[0].find("circuit_wait") is not None


class TestTraceEndpoint:
    def test_json_round_trips_through_the_decoder(self, tracing, provider):
        client = RemoteLibraryClient(provider.base_url)
        with obs.span("user_workflow"):
            client.fetch_model("ripple_adder")
        browser = Browser(provider.base_url)
        payload = browser.get_json("/trace?fmt=json")
        assert payload["tracing_enabled"] is True
        assert payload["server"] == "berkeley"
        names = set()
        for trace in payload["traces"]:
            rebuilt = span_from_payload(trace)
            assert rebuilt is not None, f"unparseable trace {trace['name']}"
            names.update(node.name for node in rebuilt.walk())
        # the federated workflow root, its fetch, and the grafted
        # handler span all survive the export
        assert {"user_workflow", "remote_fetch", "http_request"} <= names

    def test_html_dashboard_renders_remote_spans(self, tracing, provider):
        client = RemoteLibraryClient(provider.base_url)
        with obs.span("user_workflow"):
            client.fetch_model("ripple_adder")
        page = Browser(provider.base_url).get("/trace")
        assert page.status == 200
        assert "user_workflow" in page.body
        assert "~remote" in page.body

    def test_disabled_tracing_renders_the_hint(self, tmp_path):
        with obs.overridden(enabled=False):
            with PowerPlayServer(tmp_path / "plain") as server:
                page = Browser(server.base_url).get("/trace")
                assert page.status == 200
                assert "disabled" in page.body


class TestProfileEndpoint:
    def test_profile_shows_hot_paths_with_consistent_self_time(
        self, tracing, provider
    ):
        browser = Browser(provider.base_url)
        for _ in range(3):
            assert browser.get("/api/model?name=ripple_adder").status == 200
        payload = browser.get_json("/profile?fmt=json")
        assert payload["traces"] >= 3
        assert payload["hot_paths"], "no hot paths from live traffic"
        for row in payload["hot_paths"]:
            assert row["self_s"] >= 0.0
            assert row["self_s"] <= row["total_s"] + 1e-9
        # self times sum back to the total (the floor only loses time)
        assert payload["self_total_s"] <= payload["total_s"] + 1e-9
        assert payload["self_total_s"] == pytest.approx(
            payload["total_s"], rel=0.05
        )

    def test_top_parameter_caps_the_table(self, tracing, provider):
        browser = Browser(provider.base_url)
        browser.get("/api/model?name=ripple_adder")
        payload = browser.get_json("/profile?fmt=json&top=1")
        assert len(payload["hot_paths"]) == 1
        page = browser.get("/profile?top=1")
        assert page.status == 200
        assert "Hot paths" in page.body


class TestRequestIdEcho:
    def test_success_and_404_echo_an_id(self, provider):
        browser = Browser(provider.base_url)
        ok = browser.get("/")
        missing = browser.get("/no/such/route")
        assert ok.header(propagate.REQUEST_HEADER).startswith("req-")
        assert missing.status == 404
        assert missing.header(propagate.REQUEST_HEADER).startswith("req-")
        assert (ok.header(propagate.REQUEST_HEADER)
                != missing.header(propagate.REQUEST_HEADER))

    def test_transport_level_errors_echo_an_id(self, tmp_path):
        with PowerPlayServer(tmp_path / "locked", allowed_hosts=[]) as server:
            status, _body, headers = raw_get(server, "/")
            assert status == 403
            ids = [v for k, v in headers.items()
                   if k.lower() == propagate.REQUEST_HEADER.lower()]
            assert ids and ids[0].startswith("req-t")

    def test_payload_too_large_echoes_an_id(self, provider):
        host, port = provider.address
        connection = http.client.HTTPConnection(host, port, timeout=10)
        try:
            connection.request(
                "POST", "/login", body="",
                headers={"Content-Length": str(1 << 30)},
            )
            response = connection.getresponse()
            assert response.status == 413
            assert response.getheader(
                propagate.REQUEST_HEADER, ""
            ).startswith("req-t")
        finally:
            connection.close()


class TestHostileTraceHeaders:
    @pytest.mark.parametrize("evil", [
        "garbage",
        "00-zz-11",
        "00-" + "0" * 32,                       # missing span id field
        "00-" + "0" * 32 + "-" + "f" * 64,      # span id too long
        "0" * 200,                              # oversized
        "01-" + "0" * 32 + "-ab",               # wrong version
    ])
    def test_malformed_trace_header_never_errors(self, tracing, provider, evil):
        status, _body, headers = raw_get(
            provider, "/api/model?name=ripple_adder",
            {propagate.TRACE_HEADER: evil},
        )
        assert status == 200
        # an ignored context also means no span payload comes back
        assert not any(
            k.lower() == propagate.SPAN_HEADER.lower() for k in headers
        )

    def test_ignored_contexts_are_counted(self, tracing, provider):
        counter = obs.get_registry().counter(
            "powerplay_trace_propagation_total", "", ("op",)
        )
        before = counter.value(op="extract_ignored")
        raw_get(provider, "/", {propagate.TRACE_HEADER: "not-a-context"})
        assert counter.value(op="extract_ignored") == before + 1

    def test_forged_span_header_cannot_break_the_client(self, tracing, tmp_path):
        # a provider returning a hostile X-PowerPlay-Span must not
        # corrupt the requester's trace: the junk decodes to None and
        # the graft is skipped
        assert obs.graft_remote(
            propagate.decode_span_header('{"name": 13}')
        ) is False
        with obs.span("fetch") as sp:
            ok = obs.graft_remote(
                propagate.decode_span_header("[not json")
            )
            assert ok is False
        assert sp.children == []
