"""Live HTTP: server, scriptable browser, remote model access."""

import pytest

from repro.library.catalog import Library
from repro.web.client import Browser, Page
from repro.web.remote import ModelResolver, RemoteLibraryClient, federate
from repro.web.server import PowerPlayServer
from repro.errors import RemoteError


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    state = tmp_path_factory.mktemp("server_state")
    with PowerPlayServer(state, server_name="berkeley") as live:
        yield live


@pytest.fixture
def browser(server):
    return Browser(server.base_url)


class TestBrowserWorkflow:
    def test_login_follows_redirect(self, browser):
        page = browser.login("mituser")
        assert page.status == 200
        assert "Main Menu" in page.title

    def test_link_navigation(self, browser):
        browser.login("mituser")
        menu = browser.get("/menu?user=mituser")
        library_href = menu.link_by_text("Library")
        library = browser.get(library_href)
        assert library.contains("multiplier")

    def test_missing_link(self, browser):
        page = browser.get("/help")
        with pytest.raises(RemoteError, match="no link"):
            page.link_by_text("nonexistent label")

    def test_figure4_form_over_http(self, browser):
        browser.login("mituser")
        page = browser.compute_cell(
            "mituser", "multiplier",
            {"bitwidthA": 16, "bitwidthB": 16, "VDD": 1.5, "f": "2M"},
        )
        assert page.contains("2.9146e-04 W")

    def test_full_design_flow(self, browser):
        browser.login("flowuser")
        browser.new_design("flowuser", "chip")
        browser.save_cell_to_design(
            "flowuser", "sram", "chip", "lut",
            {"words": 4096, "bits": 6, "VDD": 1.5, "f": "1.966M"},
        )
        sheet = browser.open_design("flowuser", "chip")
        assert sheet.contains("lut")
        played = browser.play(
            "flowuser", "chip", row_params={("lut", "VDD"): 1.1}
        )
        assert played.status == 200
        assert played.error is None

    def test_error_extraction(self, browser):
        page = browser.get("/design?user=flowuser&name=ghost")
        assert page.status == 400
        assert page.error is not None

    def test_bad_base_url(self):
        with pytest.raises(RemoteError):
            Browser("ftp://weird")

    def test_unreachable_server(self):
        dead = Browser("http://127.0.0.1:1", timeout=0.3)
        with pytest.raises(RemoteError, match="cannot reach"):
            dead.get("/")


class TestRemoteAccess:
    def test_ping(self, server):
        client = RemoteLibraryClient(server.base_url)
        payload = client.ping()
        assert payload == {"server": "berkeley", "protocol": "powerplay/1"}

    def test_fetch_library_tags_origin(self, server):
        client = RemoteLibraryClient(server.base_url)
        library = client.fetch_library()
        assert len(library) >= 20
        assert library.get("sram").origin == server.base_url

    def test_fetch_model_on_demand_with_cache(self, server):
        client = RemoteLibraryClient(server.base_url)
        entry = client.fetch_model("multiplier")
        first_count = client.requests_made
        again = client.fetch_model("multiplier")
        assert client.requests_made == first_count  # cached
        env = {"bitwidthA": 16, "bitwidthB": 16, "VDD": 1.5, "f": 2e6}
        assert entry.models.power.power(env) == pytest.approx(
            again.models.power.power(env)
        )

    def test_fetch_unknown_model(self, server):
        client = RemoteLibraryClient(server.base_url)
        with pytest.raises(RemoteError, match="refused"):
            client.fetch_model("ghost")

    def test_federate(self, server):
        local = Library("california", "empty local site")
        adopted = federate(local, [server.base_url])
        assert len(adopted[server.base_url]) == len(local)
        assert "sram" in local

    def test_federate_prefers_mine(self, server):
        from repro.core.model import FixedPowerModel, ModelSet
        from repro.library.catalog import LibraryEntry

        local = Library("california")
        local.add(
            LibraryEntry("sram", ModelSet(power=FixedPowerModel("sram", 9.0)))
        )
        federate(local, [server.base_url], prefer="mine")
        assert local.get("sram").models.power.power({}) == 9.0

    def test_federate_unreachable_raises(self):
        with pytest.raises(RemoteError):
            federate(Library("x"), ["http://127.0.0.1:1"])


class TestResolver:
    def test_local_first(self, server):
        from repro.core.model import FixedPowerModel, ModelSet
        from repro.library.catalog import LibraryEntry

        local = Library("local")
        local.add(
            LibraryEntry("sram", ModelSet(power=FixedPowerModel("sram", 5.0)))
        )
        resolver = ModelResolver(local, [RemoteLibraryClient(server.base_url)])
        assert resolver.resolve("sram").models.power.power({}) == 5.0

    def test_falls_back_to_remote(self, server):
        resolver = ModelResolver(
            Library("local"), [RemoteLibraryClient(server.base_url)]
        )
        entry = resolver.resolve("multiplier")
        assert entry.origin == server.base_url
        assert resolver.total_remote_requests() >= 1

    def test_unresolvable(self, server):
        resolver = ModelResolver(
            Library("local"), [RemoteLibraryClient(server.base_url)]
        )
        with pytest.raises(RemoteError, match="cannot resolve"):
            resolver.resolve("ghost")

    def test_no_remotes(self):
        resolver = ModelResolver(Library("local"))
        with pytest.raises(RemoteError, match="no remotes"):
            resolver.resolve("anything")


class TestTwoServers:
    def test_cross_site_library_use(self, server, tmp_path):
        """Characterized in 'Berkeley', used in 'MIT' (Figure 6)."""
        with PowerPlayServer(tmp_path / "mit", server_name="mit") as mit:
            client = RemoteLibraryClient(server.base_url)
            berkeley_models = client.fetch_library()
            # the MIT application merges the Berkeley models
            mit.application.libraries[0].merge(berkeley_models, prefer="mine")
            browser = Browser(mit.base_url)
            browser.login("visitor")
            page = browser.compute_cell(
                "visitor", "multiplier",
                {"bitwidthA": 16, "bitwidthB": 16, "VDD": 1.5, "f": "2M"},
            )
            assert page.contains("2.9146e-04 W")
