"""Sweep jobs over HTTP: submit, poll, results, cancel — and the
regression gate that malformed axis specs are 4xx, never 500."""

import json
import time

import pytest

from repro.web.app import Application

USER = "lidsky"

GOOD_FORM = {
    "user": USER,
    "design": "example:luminance_fig1",
    "axes": "VDD=1.1:3.3:0.4",
    "objectives": "power",
    "workers": "1",
    "mode": "serial",
    "chunk_size": "4",
}


@pytest.fixture
def app(tmp_path):
    application = Application(tmp_path / "state")
    response = application.handle("POST", "/login", {"user": USER})
    assert response.status == 303
    return application


def get(app, path):
    return app.handle("GET", path)


def post(app, path, **form):
    return app.handle("POST", path, form)


def submit_and_finish(app, deadline=30.0, **overrides):
    form = dict(GOOD_FORM)
    form.update(overrides)
    response = app.handle("POST", "/sweep", form)
    assert response.status == 303, response.body
    job_id = response.headers["Location"].rsplit("job=", 1)[1]
    started = time.monotonic()
    while app.jobs.job(job_id).state not in ("done", "failed"):
        assert time.monotonic() - started < deadline, "job never finished"
        time.sleep(0.05)
    assert app.jobs.job(job_id).state == "done"
    return job_id


class TestSweepForm:
    def test_form_renders(self, app):
        response = get(app, f"/sweep?user={USER}")
        assert response.status == 200
        assert "Launch sweep" in response.body

    def test_requires_user(self, app):
        assert get(app, "/sweep").status == 400


class TestValidationNever500:
    """Satellite gate: server-side axis validation over HTTP."""

    @pytest.mark.parametrize(
        "field,value,expect",
        [
            ("axes", "VDD=1.1:zz:0.1", "not a number"),
            ("axes", "VDD=1.1:3.3:0", "step"),
            ("axes", "VDD=3.3:1.1:0.1", ""),
            ("axes", "no_equals", "must look like"),
            ("axes", "", "at least one axis"),
            ("workers", "many", "whole number"),
            ("chunk_size", "1.5", "whole number"),
            ("objectives", "power,speed", "unknown objective"),
            ("derive", "broken spec", "name=expression"),
            ("couple", "wb=bw +* 2", "bad expression"),
        ],
    )
    def test_bad_field_rerenders_form_as_400(self, app, field, value, expect):
        form = dict(GOOD_FORM)
        form[field] = value
        response = app.handle("POST", "/sweep", form)
        assert response.status == 400
        # the form comes back, refilled, with the error called out
        assert "Launch sweep" in response.body
        if expect:
            assert expect in response.body

    def test_point_cap_breach_is_400(self, app):
        response = post(
            app, "/sweep", **{
                **GOOD_FORM,
                "axes": "VDD=0:1:0.001\nf=log:1e6:1e9:200",
                "point_cap": "1000",
            }
        )
        assert response.status == 400
        assert "over the cap" in response.body

    def test_no_design_is_400(self, app):
        response = post(app, "/sweep", **{**GOOD_FORM, "design": ""})
        assert response.status == 400

    def test_bad_job_id_is_4xx(self, app):
        for probe in ("../../etc/passwd", "job-1;rm", "job-99999999"):
            response = get(app, f"/sweep/job?user={USER}&job={probe}")
            assert 400 <= response.status < 500


class TestSweepLifecycle:
    def test_submit_poll_results(self, app):
        job_id = submit_and_finish(app)
        status = get(app, f"/sweep/job?user={USER}&job={job_id}")
        assert status.status == 200 and "done" in status.body

        html = get(app, f"/sweep/result?user={USER}&job={job_id}")
        assert html.status == 200 and "Pareto frontier" in html.body

        csv = get(app, f"/sweep/result?user={USER}&job={job_id}&fmt=csv")
        assert csv.status == 200
        assert csv.content_type.startswith("text/csv")
        assert csv.body.splitlines()[0] == "index,VDD,power,error"
        assert len(csv.body.splitlines()) == 1 + 6  # header + points

        exported = get(
            app, f"/sweep/result?user={USER}&job={job_id}&fmt=json"
        )
        payload = json.loads(exported.body)
        assert payload["format"] == "powerplay-sweep-results/1"
        assert payload["meta"]["job"] == job_id
        assert len(payload["rows"]) == 6

    def test_results_before_done_is_400(self, app):
        # a pending job created directly in the shared store
        from repro.explore import Axis, ParameterSpace
        from repro.designs.luminance import build_figure1_design

        job = app.jobs.create(
            build_figure1_design(),
            ParameterSpace([Axis("VDD", (1.0, 2.0))]),
            owner=USER,
        )
        response = get(app, f"/sweep/result?user={USER}&job={job.job_id}")
        assert response.status == 400
        assert "once it is done" in response.body

    def test_cancel_route(self, app):
        from repro.explore import Axis, ParameterSpace
        from repro.designs.luminance import build_figure1_design

        job = app.jobs.create(
            build_figure1_design(),
            ParameterSpace([Axis("VDD", (1.0, 2.0))]),
            owner=USER,
        )
        response = post(app, "/sweep/cancel", user=USER, job=job.job_id)
        assert response.status == 303
        assert app.jobs.job(job.job_id).cancel_requested

    def test_jobs_visible_on_sweep_page_and_status(self, app):
        job_id = submit_and_finish(app)
        sweeps = get(app, f"/sweep?user={USER}")
        assert job_id in sweeps.body
        status = get(app, "/status")
        assert "Sweep jobs" in status.body and job_id in status.body

    def test_other_users_jobs_hidden_and_denied(self, app):
        job_id = submit_and_finish(app)
        post(app, "/login", user="rival")
        listing = get(app, "/sweep?user=rival")
        assert job_id not in listing.body
        for route in ("/sweep/job", "/sweep/result"):
            response = get(app, f"{route}?user=rival&job={job_id}")
            assert response.status == 400
            assert "belongs to" in response.body

    def test_dotted_target_sweep_on_example(self, app):
        job_id = submit_and_finish(
            app,
            design="example:infopad",
            axes=(
                "VDD2=1.1:3.3:1.0\n"
                "bw@custom_hardware.luminance_chip.read_bank.bits=8,16"
            ),
            mode="thread",
            workers="2",
        )
        exported = get(
            app, f"/sweep/result?user={USER}&job={job_id}&fmt=json"
        )
        payload = json.loads(exported.body)
        assert payload["axes"] == ["VDD2", "bw"]
        assert len(payload["rows"]) == 6


SURROGATE_FORM = {
    "design": "example:luminance_fig1",
    "axes": "VDD=1.0:3.0:0.1\nf=1e6:3e6:1e5",
    "objectives": "power",
    "surrogate": "yes",
    "train_frac": "0.3",
    "train_seed": "7",
    "verify_top": "10",
    "mode": "serial",
    "workers": "1",
    "chunk_size": "64",
}


class TestSurrogateSweep:
    def test_submit_poll_results(self, app):
        job_id = submit_and_finish(app, **SURROGATE_FORM)
        job = app.jobs.job(job_id)
        assert job.surrogate is not None
        # exact evaluations stay well under the full enumeration
        assert job.done_points < job.total_points

        status = get(app, f"/sweep/job?user={USER}&job={job_id}")
        assert "fit-predict-verify" in status.body

        result = get(app, f"/sweep/result?user={USER}&job={job_id}")
        assert result.status == 200
        assert "Surrogate fit-predict-verify" in result.body
        assert "Error bound" in result.body

    def test_exports_mark_sources(self, app):
        job_id = submit_and_finish(app, **SURROGATE_FORM)
        csv = get(app, f"/sweep/result?user={USER}&job={job_id}&fmt=csv")
        assert "source" in csv.body.splitlines()[0]
        exported = get(
            app, f"/sweep/result?user={USER}&job={job_id}&fmt=json"
        )
        payload = json.loads(exported.body)
        assert {r["source"] for r in payload["rows"]} <= {
            "exact", "predicted"
        }
        assert any(r["source"] == "exact" for r in payload["rows"])

    def test_bad_train_frac_is_400(self, app):
        form = dict(GOOD_FORM)
        form.update(SURROGATE_FORM, train_frac="1.5")
        response = post(app, "/sweep", **form)
        assert response.status == 400
        assert "train fraction" in response.body

    def test_non_numeric_surrogate_field_is_400(self, app):
        form = dict(GOOD_FORM)
        form.update(SURROGATE_FORM, verify_top="lots")
        response = post(app, "/sweep", **form)
        assert response.status == 400
        assert "verify_top" in response.body

    def test_exhaustive_form_unaffected(self, app):
        """surrogate=no (the default) keeps the legacy exact pipeline."""
        job_id = submit_and_finish(app)
        job = app.jobs.job(job_id)
        assert job.surrogate is None
        csv = get(app, f"/sweep/result?user={USER}&job={job_id}&fmt=csv")
        assert "source" not in csv.body.splitlines()[0]
