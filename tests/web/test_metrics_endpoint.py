"""The observability endpoints: /metrics exposition and /status page.

Covers the PR's acceptance criteria directly:

* ``GET /metrics`` is valid Prometheus text exposition including the
  request-latency histogram, per-route counters, circuit-breaker state
  and model-cache outcome counters;
* ``GET /status`` renders an HTML dashboard over the same registry;
* a deterministic chaos run (scripted faults through the resilience
  layer) leaves its retry / breaker-trip / stale-serve marks visible in
  both views.
"""

import re

import pytest

from repro import obs
from repro.errors import FaultInjected
from repro.web.app import Application, route_label
from repro.web.faults import FaultPlan, FaultyApplication
from repro.web.resilience import CircuitBreaker, ModelCache, RetryPolicy

USER = "lidsky"


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


@pytest.fixture
def app(tmp_path):
    obs.get_registry().reset()  # the registry is process-wide; isolate
    application = Application(tmp_path / "state")
    application.handle("POST", "/login", {"user": USER})
    return application


def get(app, path):
    return app.handle("GET", path)


class TestMetricsExposition:
    def test_content_type_is_prometheus_text(self, app):
        response = get(app, "/metrics")
        assert response.status == 200
        assert response.content_type.startswith("text/plain")
        assert "version=0.0.4" in response.content_type

    def test_every_line_is_well_formed(self, app):
        get(app, f"/menu?user={USER}")
        body = get(app, "/metrics").body
        name_and_labels = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*'
            r'(\{[a-zA-Z_]+="[^"]*"(,[a-zA-Z_]+="[^"]*")*\})?$'
        )
        assert body.endswith("\n")
        for line in body.splitlines():
            if not line or line.startswith("#"):
                continue
            series, value = line.rsplit(" ", 1)
            assert name_and_labels.match(series), f"bad series: {line!r}"
            float(value)  # raises if the sample value isn't a number

    def test_help_and_type_precede_series(self, app):
        body = get(app, "/metrics").body
        lines = body.splitlines()
        for name in (
            "powerplay_http_requests_total",
            "powerplay_http_request_seconds",
            "powerplay_circuit_state",
            "powerplay_model_cache_total",
        ):
            assert f"# HELP {name} " in body
            type_at = lines.index(
                next(l for l in lines if l.startswith(f"# TYPE {name} "))
            )
            help_at = lines.index(
                next(l for l in lines if l.startswith(f"# HELP {name} "))
            )
            assert help_at < type_at

    def test_per_route_counters(self, app):
        get(app, f"/menu?user={USER}")
        get(app, f"/menu?user={USER}")
        get(app, f"/library?user={USER}")
        body = get(app, "/metrics").body
        assert (
            'powerplay_http_requests_total{method="GET",route="/menu"} 2'
            in body
        )
        assert (
            'powerplay_http_requests_total{method="GET",route="/library"} 1'
            in body
        )
        assert (
            'powerplay_http_requests_total{method="POST",route="/login"} 1'
            in body
        )

    def test_latency_histogram_rendered(self, app):
        get(app, f"/menu?user={USER}")
        body = get(app, "/metrics").body
        assert "# TYPE powerplay_http_request_seconds histogram" in body
        assert re.search(
            r'powerplay_http_request_seconds_bucket'
            r'\{le="\+Inf",route="/menu"\} 1',
            body,
        )
        assert 'powerplay_http_request_seconds_count{route="/menu"} 1' in body
        assert 'powerplay_http_request_seconds_sum{route="/menu"} ' in body

    def test_status_class_counters(self, app):
        get(app, f"/menu?user={USER}")
        assert get(app, "/doc/cell/ghost").status == 400
        body = get(app, "/metrics").body
        assert 'powerplay_http_responses_total{status_class="2xx"}' in body
        assert 'powerplay_http_responses_total{status_class="4xx"} 1' in body

    def test_unknown_paths_share_one_route_label(self, app):
        get(app, "/nowhere/one")
        get(app, "/nowhere/two?x=1")
        body = get(app, "/metrics").body
        assert 'route="(unmatched)"} 2' in body
        assert "/nowhere" not in body  # no per-path label explosion

    def test_route_label_normalizes(self):
        assert route_label("/menu") == "/menu"
        assert route_label("/doc/cell/sram") == "/doc/cell/:name"
        assert route_label("/totally/made/up") == "(unmatched)"

    def test_families_present_before_any_degradation(self, app):
        body = get(app, "/metrics").body
        for name in (
            "powerplay_retries_total",
            "powerplay_circuit_transitions_total",
            "powerplay_faults_injected_total",
            "powerplay_session_ops_total",
        ):
            assert f"# TYPE {name} counter" in body


class TestStatusPage:
    def test_renders_html_dashboard(self, app):
        get(app, f"/menu?user={USER}")
        response = get(app, "/status")
        assert response.status == 200
        assert response.content_type.startswith("text/html")
        assert "Requests by route" in response.body
        assert "Circuit breakers" in response.body
        assert "Model cache" in response.body
        assert "/menu" in response.body
        assert 'href="/metrics"' in response.body

    def test_request_and_status_tables_reflect_traffic(self, app):
        get(app, f"/menu?user={USER}")
        get(app, f"/menu?user={USER}")
        body = get(app, "/status").body
        assert "2xx" in body
        assert "3xx" in body  # the login redirect

    def test_status_counts_itself(self, app):
        get(app, "/status")
        body = get(app, "/metrics").body
        assert 'route="/status"} 1' in body


class TestChaosVisibility:
    """Scripted faults leave their marks in /metrics and /status."""

    @pytest.fixture
    def after_chaos(self, app):
        # 1. retries: two injected refusals, then success
        chaotic = FaultyApplication(
            app, FaultPlan(script=["refuse", "refuse", None])
        )
        retry = RetryPolicy(
            max_attempts=3, sleep=lambda s: None, retry_on=(FaultInjected,)
        )
        response = retry.call(
            lambda: chaotic.handle("GET", f"/menu?user={USER}")
        )
        assert response.status == 200

        # 2. breaker: hammer a permanently-refusing endpoint until open
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=3, cooldown=30.0, clock=clock,
            name="chaos_remote",
        )
        always_down = FaultyApplication(app, FaultPlan(script=["refuse"] * 3))
        for _ in range(3):
            with pytest.raises(FaultInjected):
                breaker.call(
                    lambda: always_down.handle("GET", f"/menu?user={USER}"),
                    failure_types=(FaultInjected,),
                )
        assert breaker.state == "open"

        # 3. stale serve: a cached model outliving its TTL
        cache = ModelCache(ttl=10.0, clock=clock)
        cache.put("sram", object())
        clock.advance(60.0)
        assert cache.get_fresh("sram") is None      # miss (expired)
        assert cache.get_stale("sram") is not None  # degraded fallback
        return app

    def test_chaos_marks_in_metrics(self, after_chaos):
        body = get(after_chaos, "/metrics").body
        assert "powerplay_retries_total 2" in body
        assert 'powerplay_circuit_state{name="chaos_remote"} 2' in body
        assert (
            'powerplay_circuit_transitions_total'
            '{name="chaos_remote",to="open"} 1' in body
        )
        assert 'powerplay_faults_injected_total{kind="refuse"}' in body
        assert 'powerplay_model_cache_total{result="miss"} 1' in body
        assert 'powerplay_model_cache_total{result="stale"} 1' in body

    def test_chaos_marks_in_status(self, after_chaos):
        body = get(after_chaos, "/status").body
        assert "chaos_remote" in body
        assert "open" in body
        assert "stale" in body

    def test_chaos_events_logged_when_enabled(self, app):
        sink = obs.MemorySink()
        with obs.overridden(enabled=True, log_level=obs.DEBUG, sink=sink):
            chaotic = FaultyApplication(
                app, FaultPlan(script=["refuse", None])
            )
            retry = RetryPolicy(
                max_attempts=2, sleep=lambda s: None,
                retry_on=(FaultInjected,),
            )
            retry.call(lambda: chaotic.handle("GET", f"/menu?user={USER}"))
        events = {record["event"] for record in sink.records}
        assert "inject" in events   # the fault layer announced itself
        assert "retry" in events    # the retry layer covered for it
        assert "request" in events  # the access log saw the request
