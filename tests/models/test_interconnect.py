"""Rent's-rule interconnect estimation (Donath / Feuer)."""

import pytest

from repro.models.interconnect import (
    InterconnectModel,
    Technology,
    donath_average_length,
    rent_terminals,
    total_wire_length,
    wiring_capacitance,
)
from repro.errors import ModelError

ENV = {"VDD": 1.5, "f": 2e6, "activity": 0.25, "active_area": 1e-6}


class TestRentsRule:
    def test_power_law(self):
        assert rent_terminals(1, 0.6, 3.0) == pytest.approx(3.0)
        assert rent_terminals(100, 0.5, 2.0) == pytest.approx(20.0)

    def test_exponent_bounds(self):
        with pytest.raises(ModelError):
            rent_terminals(10, 1.5)
        with pytest.raises(ModelError):
            rent_terminals(0, 0.6)


class TestDonath:
    def test_small_regions_unit_length(self):
        assert donath_average_length(1) == 1.0
        assert donath_average_length(3) == 1.0

    def test_grows_with_block_count(self):
        lengths = [donath_average_length(b, 0.65) for b in (16, 256, 4096, 65536)]
        assert lengths == sorted(lengths)

    def test_grows_with_rent_exponent(self):
        low = donath_average_length(4096, 0.45)
        high = donath_average_length(4096, 0.75)
        assert high > low

    def test_p_half_singularity_handled(self):
        value = donath_average_length(1024, 0.5)
        near = donath_average_length(1024, 0.5001)
        assert value == pytest.approx(near, rel=1e-2)


class TestWiring:
    def test_total_length_scales(self):
        short = total_wire_length(100)
        long = total_wire_length(10000)
        assert long > 50 * short

    def test_capacitance_from_area(self):
        assert wiring_capacitance(0.0) == 0.0
        small = wiring_capacitance(1e-8)
        large = wiring_capacitance(1e-6)
        assert large > small > 0

    def test_negative_area(self):
        with pytest.raises(ModelError):
            wiring_capacitance(-1.0)

    def test_technology_scaling(self):
        base = Technology()
        scaled = base.scaled(0.6e-6)
        assert scaled.gate_pitch == pytest.approx(base.gate_pitch / 2)
        with pytest.raises(ModelError):
            base.scaled(0)


class TestInterconnectModel:
    def test_power_from_active_area(self):
        model = InterconnectModel()
        assert model.power(ENV) > 0

    def test_missing_area_raises(self):
        model = InterconnectModel()
        with pytest.raises(ModelError, match="active_area"):
            model.power({"VDD": 1.5, "f": 2e6})

    def test_activity_scales(self):
        model = InterconnectModel()
        quiet = model.power(dict(ENV, activity=0.1))
        busy = model.power(dict(ENV, activity=0.5))
        assert busy == pytest.approx(5 * quiet)

    def test_back_annotation(self):
        model = InterconnectModel()
        estimated = model.power(ENV)
        model.back_annotate(1e-9)
        annotated = model.power(ENV)
        assert annotated == pytest.approx(0.25 * 1e-9 * 1.5**2 * 2e6)
        assert annotated != pytest.approx(estimated)
        assert "annotated" in next(iter(model.breakdown(ENV)))
        model.clear_annotation()
        assert model.power(ENV) == pytest.approx(estimated)

    def test_negative_annotation(self):
        with pytest.raises(ModelError):
            InterconnectModel().back_annotate(-1e-12)

    def test_in_design_with_area_feeds(self):
        from repro.core.design import Design
        from repro.core.estimator import evaluate_power
        from repro.core.expressions import compile_expression as E
        from repro.core.model import (
            CapacitiveTerm,
            ExpressionAreaModel,
            ModelSet,
            TemplatePowerModel,
        )
        from repro.core.parameters import Parameter

        block = ModelSet(
            power=TemplatePowerModel(
                "blk", capacitive=[CapacitiveTerm("c", E("1p"))]
            ),
            area=ExpressionAreaModel("a", "1e-7"),
        )
        design = Design("d")
        design.scope.set("VDD", 1.5)
        design.scope.set("f", 2e6)
        design.add("logic", block)
        design.add(
            "wiring", InterconnectModel(), params={"activity": 0.25},
            area_feeds=["logic"],
        )
        report = evaluate_power(design)
        direct = InterconnectModel().power(
            {"VDD": 1.5, "f": 2e6, "activity": 0.25, "active_area": 1e-7}
        )
        assert report["wiring"].power == pytest.approx(direct)
