"""DC-DC converter models (EQ 18/19) and inter-model interaction."""

import pytest
from hypothesis import given, strategies as st

from repro.models.converter import (
    DCDCConverterModel,
    DEFAULT_BUCK_CURVE,
    EfficiencyCurve,
    converter_dissipation,
    converter_input_power,
)
from repro.errors import ModelError


class TestEQ19:
    def test_textbook_value(self):
        # 9 W load at 90% efficiency dissipates 1 W
        assert converter_dissipation(9.0, 0.9) == pytest.approx(1.0)

    def test_perfect_converter(self):
        assert converter_dissipation(5.0, 1.0) == 0.0

    def test_eq18_consistency(self):
        """eta == P_load / (P_load + P_diss) must hold by construction."""
        p_load, eta = 3.0, 0.82
        p_diss = converter_dissipation(p_load, eta)
        assert p_load / (p_load + p_diss) == pytest.approx(eta)

    def test_input_power(self):
        assert converter_input_power(9.0, 0.9) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ModelError):
            converter_dissipation(-1.0, 0.9)
        with pytest.raises(ModelError):
            converter_dissipation(1.0, 0.0)
        with pytest.raises(ModelError):
            converter_dissipation(1.0, 1.1)


class TestEfficiencyCurve:
    def test_interpolation(self):
        curve = EfficiencyCurve([(0.0, 0.5), (1.0, 0.9)])
        assert curve(0.5) == pytest.approx(0.7)

    def test_clamping(self):
        curve = EfficiencyCurve([(0.1, 0.6), (1.0, 0.9)])
        assert curve(0.0) == 0.6
        assert curve(100.0) == 0.9

    def test_light_load_falloff_in_default(self):
        assert DEFAULT_BUCK_CURVE(0.001) < DEFAULT_BUCK_CURVE(1.0)

    def test_validation(self):
        with pytest.raises(ModelError):
            EfficiencyCurve([(0.0, 0.5)])
        with pytest.raises(ModelError):
            EfficiencyCurve([(0.0, 0.5), (0.0, 0.6)])
        with pytest.raises(ModelError):
            EfficiencyCurve([(0.0, 0.5), (1.0, 1.5)])
        with pytest.raises(ModelError):
            EfficiencyCurve([(-1.0, 0.5), (1.0, 0.9)])
        curve = EfficiencyCurve([(0.0, 0.5), (1.0, 0.9)])
        with pytest.raises(ModelError):
            curve(-1.0)


class TestConverterModel:
    def test_constant_eta(self):
        model = DCDCConverterModel(efficiency=0.9)
        env = {"P_load": 9.0, "eta": 0.9}
        assert model.power(env) == pytest.approx(1.0)
        assert model.input_power(env) == pytest.approx(10.0)

    def test_curve_mode(self):
        model = DCDCConverterModel(curve=DEFAULT_BUCK_CURVE)
        heavy = model.power({"P_load": 1.0})
        light = model.power({"P_load": 0.001})
        # light load: lower efficiency -> loss is a larger share of load
        assert light / 0.001 > heavy / 1.0

    def test_requires_load(self):
        model = DCDCConverterModel()
        with pytest.raises(ModelError, match="P_load"):
            model.power({"eta": 0.9})

    def test_bad_efficiency(self):
        with pytest.raises(ModelError):
            DCDCConverterModel(efficiency=0.0)

    def test_intermodel_interaction_in_design(self):
        """The paper's example: converter loss from connected modules."""
        from repro.core.design import Design
        from repro.core.estimator import evaluate_power
        from repro.core.model import FixedPowerModel

        design = Design("board")
        design.add("cpu", FixedPowerModel("cpu", 2.0))
        design.add("radio", FixedPowerModel("radio", 1.0))
        design.add(
            "regulator",
            DCDCConverterModel(efficiency=0.75),
            params={"eta": 0.75},
            power_feeds=["cpu", "radio"],
        )
        report = evaluate_power(design)
        assert report["regulator"].power == pytest.approx(
            converter_dissipation(3.0, 0.75)
        )
        # design total = battery input power
        assert report.power == pytest.approx(converter_input_power(3.0, 0.75))

    def test_loss_tracks_load_changes(self):
        from repro.core.design import Design
        from repro.core.estimator import evaluate_power
        from repro.core.model import FixedPowerModel

        design = Design("board")
        design.add("cpu", FixedPowerModel("cpu", 2.0))
        design.add(
            "regulator",
            DCDCConverterModel(efficiency=0.8),
            params={"eta": 0.8},
            power_feeds=["cpu"],
        )
        full = evaluate_power(design)["regulator"].power
        design.row("cpu").set("alpha", 0.5)
        halved = evaluate_power(design)["regulator"].power
        assert halved == pytest.approx(full / 2)


@given(
    st.one_of(st.just(0.0), st.floats(min_value=1e-9, max_value=100.0)),
    st.floats(min_value=0.05, max_value=1.0),
)
def test_property_eq18_eq19_inverse(p_load, eta):
    """EQ 18 recovers eta from EQ 19's dissipation."""
    p_diss = converter_dissipation(p_load, eta)
    if p_load > 0:
        assert p_load / (p_load + p_diss) == pytest.approx(eta)
    assert p_diss >= 0
