"""Landman computational-block models (EQ 2, 3, 20)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.models.computation import (
    CORRELATION_CLASSES,
    CapacitiveCoefficients,
    MULTIPLIER_C_UNCORRELATED,
    adder_model_set,
    cla_adder,
    comparator,
    linear_model,
    logarithmic_shifter,
    multiplexer,
    multiplier,
    multiplier_model_set,
    output_buffer,
    ripple_adder,
)
from repro.errors import ModelError

ENV = {"VDD": 1.5, "f": 2e6}


class TestEQ20Multiplier:
    def test_paper_number(self):
        """Figure 4: 16x16, uncorrelated, 253 fF/bit-pair."""
        model = multiplier(16, 16)
        env = dict(ENV, bitwidthA=16, bitwidthB=16)
        assert model.effective_capacitance(env) == pytest.approx(
            16 * 16 * 253e-15
        )
        assert model.power(env) * 1e6 == pytest.approx(291.456)

    def test_bilinear_scaling(self):
        model = multiplier()
        base = model.power(dict(ENV, bitwidthA=8, bitwidthB=8))
        assert model.power(dict(ENV, bitwidthA=16, bitwidthB=8)) == pytest.approx(2 * base)
        assert model.power(dict(ENV, bitwidthA=16, bitwidthB=16)) == pytest.approx(4 * base)

    def test_correlated_coefficient_smaller(self):
        env = dict(ENV, bitwidthA=16, bitwidthB=16)
        uncorrelated = multiplier(correlation="uncorrelated").power(env)
        correlated = multiplier(correlation="correlated").power(env)
        sign_mag = multiplier(correlation="sign_magnitude").power(env)
        assert correlated < sign_mag < uncorrelated

    def test_unknown_correlation(self):
        with pytest.raises(ModelError, match="correlation"):
            multiplier(correlation="psychic")

    def test_asymmetric_defaults(self):
        model = multiplier(8, 24)
        defaults = {p.name: p.default for p in model.parameters}
        assert defaults == {"bitwidthA": 8, "bitwidthB": 24}


class TestLinearModels:
    def test_eq3_proportionality(self):
        model = ripple_adder()
        base = model.power(dict(ENV, bitwidth=8))
        assert model.power(dict(ENV, bitwidth=32)) == pytest.approx(4 * base)

    def test_cla_burns_more_than_ripple(self):
        env = dict(ENV, bitwidth=16)
        assert cla_adder().power(env) > ripple_adder().power(env)

    def test_comparator(self):
        env = dict(ENV, bitwidth=16)
        assert comparator().power(env) > 0

    def test_negative_coefficient_rejected(self):
        with pytest.raises(ModelError):
            linear_model("bad", -1e-15)

    def test_activity_separates(self):
        quiet = linear_model("q", 68e-15, activity=0.1)
        loud = linear_model("l", 68e-15, activity=1.0)
        env = dict(ENV, bitwidth=16)
        assert quiet.power(env) == pytest.approx(0.1 * loud.power(env))


class TestShifterMuxBuffer:
    def test_shifter_log_term(self):
        env16 = dict(ENV, bitwidth=16, max_shift=16)
        env4 = dict(ENV, bitwidth=16, max_shift=4)
        model = logarithmic_shifter()
        assert model.power(env16) == pytest.approx(2 * model.power(env4))

    def test_shifter_min_shift(self):
        with pytest.raises(ModelError):
            logarithmic_shifter(max_shift=1)

    def test_mux_grows_with_fanin(self):
        model = multiplexer()
        two = model.power(dict(ENV, bitwidth=8, inputs=2))
        four = model.power(dict(ENV, bitwidth=8, inputs=4))
        assert four == pytest.approx(3 * two)

    def test_mux_needs_two_inputs(self):
        with pytest.raises(ModelError):
            multiplexer(inputs=1)

    def test_buffer_fanout(self):
        model = output_buffer()
        light = model.power(dict(ENV, bitwidth=8, fanout=1.0))
        heavy = model.power(dict(ENV, bitwidth=8, fanout=8.0))
        assert heavy == pytest.approx(8 * light)
        with pytest.raises(ModelError):
            output_buffer(fanout=0)


class TestCoefficients:
    def test_fallback_to_uncorrelated(self):
        coefficients = CapacitiveCoefficients("x", {"uncorrelated": 1e-15})
        assert coefficients.get("correlated") == 1e-15

    def test_all_classes_accepted(self):
        coefficients = CapacitiveCoefficients(
            "x", {name: 1e-15 for name in CORRELATION_CLASSES}
        )
        for name in CORRELATION_CLASSES:
            coefficients.get(name)


class TestModelSets:
    def test_adder_set_complete(self):
        model_set = adder_model_set("ripple", 16)
        env = dict(ENV, bitwidth=16)
        assert model_set.power.power(env) > 0
        assert model_set.area.area(env) > 0
        assert model_set.timing.delay(env) > 0

    def test_ripple_slower_than_cla_at_width(self):
        env = dict(ENV, bitwidth=32)
        ripple = adder_model_set("ripple", 32).timing.delay(env)
        cla = adder_model_set("cla", 32).timing.delay(env)
        assert ripple > cla

    def test_unknown_kind(self):
        with pytest.raises(ModelError):
            adder_model_set("quantum")

    def test_multiplier_set(self):
        model_set = multiplier_model_set(16)
        env = dict(ENV, bitwidthA=16, bitwidthB=16)
        assert model_set.area.area(env) == pytest.approx(16 * 16 * 1.1e-9)


@given(
    st.integers(min_value=1, max_value=64),
    st.integers(min_value=1, max_value=64),
)
def test_property_eq20_exact(bits_a, bits_b):
    """C_T = bwA * bwB * 253 fF for any widths."""
    model = multiplier()
    env = dict(ENV, bitwidthA=bits_a, bitwidthB=bits_b)
    assert model.effective_capacitance(env) == pytest.approx(
        bits_a * bits_b * MULTIPLIER_C_UNCORRELATED
    )


class TestBoothMultiplier:
    def test_beats_array_at_width(self):
        from repro.models.computation import booth_multiplier

        env = dict(ENV, bitwidthA=16, bitwidthB=16)
        assert booth_multiplier().power(env) < multiplier().power(env)

    def test_recoder_term_is_linear(self):
        from repro.models.computation import booth_multiplier

        model = booth_multiplier()
        narrow = model.breakdown(dict(ENV, bitwidthA=16, bitwidthB=8))
        wide = model.breakdown(dict(ENV, bitwidthA=16, bitwidthB=16))
        assert wide["recoders"] == pytest.approx(2 * narrow["recoders"])
        assert wide["array"] == pytest.approx(2 * narrow["array"])

    def test_correlated_variant(self):
        from repro.models.computation import booth_multiplier

        env = dict(ENV, bitwidthA=16, bitwidthB=16)
        assert booth_multiplier(correlation="correlated").power(env) < (
            booth_multiplier().power(env)
        )

    def test_in_default_library(self):
        from repro.library.cells import build_default_library

        library = build_default_library()
        assert "booth_multiplier" in library
        env = dict(ENV, bitwidthA=16, bitwidthB=16)
        watts = library.get("booth_multiplier").models.power.power(env)
        assert watts > 0
