"""Storage models: EQ 7 SRAM, EQ 8 reduced swing, registers, DRAM."""

import pytest
from hypothesis import given, strategies as st

from repro.models.storage import (
    DEFAULT_SRAM,
    SRAMCoefficients,
    dram,
    reduced_swing_sram,
    register,
    register_file,
    sram,
    sram_model_set,
)
from repro.errors import ModelError

ENV = {"VDD": 1.5, "f": 125e3}


def sram_env(words, bits, **extra):
    env = dict(ENV, words=words, bits=bits)
    env.update(extra)
    return env


class TestEQ7:
    def test_structured_capacitance(self):
        model = sram()
        c = DEFAULT_SRAM
        words, bits = 2048, 8
        expected = c.total(words, bits)
        assert model.effective_capacitance(sram_env(words, bits)) == pytest.approx(
            expected
        )

    def test_term_breakdown(self):
        breakdown = sram().breakdown(sram_env(256, 8))
        assert set(breakdown) == {"overhead", "decoder", "sense_io", "cell_array"}

    def test_monotonic_in_words_and_bits(self):
        model = sram()
        base = model.power(sram_env(256, 8))
        assert model.power(sram_env(512, 8)) > base
        assert model.power(sram_env(256, 16)) > base

    def test_cross_term(self):
        """The words*bits term makes doubling both more than additive."""
        model = sram()
        c = model.effective_capacitance
        gain_words = c(sram_env(512, 8)) - c(sram_env(256, 8))
        gain_words_wide = c(sram_env(512, 16)) - c(sram_env(256, 16))
        assert gain_words_wide > gain_words

    def test_size_validation(self):
        with pytest.raises(ModelError):
            sram(words=0)
        with pytest.raises(ModelError):
            sram(bits=0)

    def test_paper_luminance_lut(self):
        """The Figure 2 LUT row: 4096x6 at f=2 MHz, 1.5 V -> ~750 uW."""
        model = sram(4096, 6)
        watts = model.power(sram_env(4096, 6, f=1.966e6))
        assert watts == pytest.approx(747e-6, rel=0.05)


class TestEQ8ReducedSwing:
    def test_lower_power_than_full_swing(self):
        full = sram().power(sram_env(2048, 8))
        low = reduced_swing_sram().power(
            sram_env(2048, 8, V_swing=0.3)
        )
        assert low < full

    def test_voltage_dependence_is_not_pure_quadratic(self):
        """E(V) = Cf V^2 + Cp Vs V — the linear term must show."""
        model = reduced_swing_sram()
        env1 = sram_env(2048, 8, V_swing=0.3, VDD=1.0)
        env2 = sram_env(2048, 8, V_swing=0.3, VDD=2.0)
        e1 = model.energy_per_access(env1)
        e2 = model.energy_per_access(env2)
        assert e2 / e1 < 4.0  # pure quadratic would give exactly 4
        assert e2 / e1 > 2.0  # pure linear would give exactly 2

    def test_swing_parameter(self):
        model = reduced_swing_sram()
        gentle = model.power(sram_env(2048, 8, V_swing=0.1))
        harsh = model.power(sram_env(2048, 8, V_swing=1.0))
        assert gentle < harsh

    def test_validation(self):
        with pytest.raises(ModelError):
            reduced_swing_sram(v_swing=0)
        with pytest.raises(ModelError):
            reduced_swing_sram(fullswing_fraction=1.5)


class TestRegister:
    def test_clock_switches_even_with_quiet_data(self):
        """'The clock capacitance is included in the model of each block.'"""
        model = register(8)
        env = dict(ENV, f=2e6, bits=8, data_activity=0.0)
        breakdown = model.breakdown(env)
        assert breakdown["data"] == 0.0
        assert breakdown["clock"] > 0.0

    def test_data_activity_scales_data_term(self):
        model = register(8)
        half = model.breakdown(dict(ENV, bits=8, data_activity=0.5))["data"]
        full = model.breakdown(dict(ENV, bits=8, data_activity=1.0))["data"]
        assert half == pytest.approx(full / 2)

    def test_linear_in_bits(self):
        model = register()
        assert model.power(dict(ENV, bits=32, data_activity=1.0)) == pytest.approx(
            4 * model.power(dict(ENV, bits=8, data_activity=1.0))
        )


class TestRegisterFile:
    def test_ports_scale(self):
        env = dict(ENV, words=16, bits=16)
        small = register_file(read_ports=1, write_ports=1).power(env)
        big = register_file(read_ports=4, write_ports=2).power(env)
        assert big > small

    def test_needs_a_port(self):
        with pytest.raises(ModelError):
            register_file(read_ports=0, write_ports=0)


class TestDRAM:
    def test_refresh_is_frequency_independent(self):
        """Refresh burns power even at access rate ~0."""
        model = dram(4096, 16)
        idle = model.power(sram_env(4096, 16, f=1.0))
        refresh = model.breakdown(sram_env(4096, 16, f=1.0))["refresh"]
        assert refresh > 0.5 * idle

    def test_refresh_scales_with_array(self):
        model = dram()
        small = model.breakdown(sram_env(1024, 16, f=1e6))["refresh"]
        large = model.breakdown(sram_env(8192, 16, f=1e6))["refresh"]
        assert large > small


class TestModelSet:
    def test_complete(self):
        model_set = sram_model_set(2048, 8)
        env = sram_env(2048, 8)
        assert model_set.power.power(env) > 0
        assert model_set.area.area(env) > 0
        assert model_set.timing.delay(env) > 0

    def test_area_dominated_by_cells(self):
        big = sram_model_set(8192, 16).area.area(sram_env(8192, 16))
        small = sram_model_set(256, 8).area.area(sram_env(256, 8))
        assert big > 10 * small


@given(
    st.integers(min_value=1, max_value=65536),
    st.integers(min_value=1, max_value=128),
)
def test_property_eq7_exact(words, bits):
    model = sram()
    assert model.effective_capacitance(sram_env(words, bits)) == pytest.approx(
        DEFAULT_SRAM.total(words, bits)
    )


class TestROMMemory:
    def test_cheaper_than_sram_for_fixed_contents(self):
        """The VQ codebook never changes — a ROM LUT beats the SRAM LUT.
        (The fabricated chip's obvious follow-on optimization.)"""
        from repro.models.storage import rom_memory

        env = dict(ENV, words=4096, bits=6, f=1.966e6, P_O=0.5)
        rom_watts = rom_memory(4096, 6).power(env)
        sram_watts = sram(4096, 6).power(sram_env(4096, 6, f=1.966e6))
        assert rom_watts < sram_watts

    def test_precharge_statistics(self):
        from repro.models.storage import rom_memory

        model = rom_memory()
        env = dict(ENV, words=4096, bits=8)
        assert model.power(dict(env, P_O=0.9)) > model.power(dict(env, P_O=0.1))

    def test_decode_term_superlinear_in_words(self):
        from repro.models.storage import rom_memory

        model = rom_memory()
        env = dict(ENV, bits=8, P_O=0.5)
        small = model.breakdown(dict(env, words=256))["decode"]
        large = model.breakdown(dict(env, words=1024))["decode"]
        assert large > 4 * small  # words * log2(words) growth

    def test_validation(self):
        from repro.models.storage import rom_memory

        with pytest.raises(ModelError):
            rom_memory(words=1)
        with pytest.raises(ModelError):
            rom_memory(p_low=1.5)

    def test_in_library_and_serializable(self):
        from repro.library.catalog import Library
        from repro.library.cells import build_default_library

        library = build_default_library()
        assert "rom" in library
        clone = Library.from_json(library.to_json())
        env = dict(ENV, words=4096, bits=6, P_O=0.5)
        assert clone.get("rom").models.power.power(env) == pytest.approx(
            library.get("rom").models.power.power(env)
        )
