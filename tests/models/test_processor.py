"""Processor models: EQ 11 duty-cycle, EQ 12 instruction-level."""

import pytest

from repro.core.model import FixedPowerModel
from repro.models.processor import (
    DEFAULT_ISA,
    InstructionEnergy,
    InstructionProfile,
    InstructionSetEnergy,
    MemorySystemCorrection,
    ProcessorModel,
    algorithm_cycles,
    algorithm_energy,
    algorithm_power,
)
from repro.errors import ModelError


def profile(**counts):
    return InstructionProfile("test", counts)


class TestEQ11:
    def test_duty_cycle(self):
        model = FixedPowerModel("dsp", 2.0)
        assert model.power({"alpha": 0.25}) == pytest.approx(0.5)

    def test_no_powerdown_means_alpha_one(self):
        model = FixedPowerModel("dsp", 2.0)
        assert model.power({}) == pytest.approx(2.0)


class TestISA:
    def test_energy_lookup_includes_overhead(self):
        isa = InstructionSetEnergy(
            "t", [InstructionEnergy("alu", 1e-9)], overhead=0.5e-9
        )
        assert isa.energy_of("alu") == pytest.approx(1.5e-9)

    def test_voltage_scaling_quadratic(self):
        base = DEFAULT_ISA.energy_of("alu", vdd=3.3)
        half = DEFAULT_ISA.energy_of("alu", vdd=1.65)
        assert half == pytest.approx(base / 4)

    def test_unknown_instruction(self):
        with pytest.raises(ModelError, match="no instruction"):
            DEFAULT_ISA.energy_of("teleport")

    def test_memory_costs_more_than_alu(self):
        assert DEFAULT_ISA.energy_of("load") > DEFAULT_ISA.energy_of("alu")

    def test_validation(self):
        with pytest.raises(ModelError):
            InstructionSetEnergy("t", [])
        with pytest.raises(ModelError):
            InstructionSetEnergy("t", [InstructionEnergy("x", -1.0)])
        with pytest.raises(ModelError):
            InstructionSetEnergy("t", [InstructionEnergy("x", 1e-9)], v_ref=0)


class TestProfile:
    def test_record_and_total(self):
        p = InstructionProfile("p")
        p.record("alu", 10)
        p.record("alu", 5)
        p.record("load")
        assert p.counts == {"alu": 15, "load": 1}
        assert p.total_instructions == 16

    def test_addition(self):
        combined = profile(alu=10) + profile(alu=5, load=2)
        assert combined.counts == {"alu": 15, "load": 2}

    def test_scaling(self):
        assert profile(alu=3).scaled(4).counts == {"alu": 12}
        with pytest.raises(ModelError):
            profile(alu=1).scaled(-1)

    def test_negative_counts_rejected(self):
        with pytest.raises(ModelError):
            InstructionProfile("p", {"alu": -1})
        with pytest.raises(ModelError):
            profile().record("alu", -1)


class TestEQ12:
    def test_energy_is_weighted_sum(self):
        p = profile(alu=100, load=50)
        expected = 100 * DEFAULT_ISA.energy_of("alu") + 50 * DEFAULT_ISA.energy_of("load")
        assert algorithm_energy(p) == pytest.approx(expected)

    def test_cycles(self):
        p = profile(alu=100, load=50)
        expected = 100 * 1 + 50 * 2
        assert algorithm_cycles(p) == pytest.approx(expected)

    def test_power_is_energy_over_time(self):
        p = profile(alu=1000)
        clock = 25e6
        runtime = algorithm_cycles(p) / clock
        assert algorithm_power(p, clock) == pytest.approx(
            algorithm_energy(p) / runtime
        )

    def test_power_needs_positive_clock(self):
        with pytest.raises(ModelError):
            algorithm_power(profile(alu=1), 0)

    def test_empty_profile_power(self):
        assert algorithm_power(profile(), 1e6) == 0.0

    def test_voltage_scaled_energy(self):
        p = profile(alu=100)
        assert algorithm_energy(p, vdd=1.65) == pytest.approx(
            algorithm_energy(p, vdd=3.3) / 4
        )


class TestCorrection:
    def test_misses_add_energy_and_cycles(self):
        correction = MemorySystemCorrection(miss_rate=0.1, miss_energy=10e-9, miss_cycles=10)
        extra_energy, extra_cycles = correction.apply(profile(load=100, store=100, alu=500))
        assert extra_energy == pytest.approx(20 * 10e-9)
        assert extra_cycles == pytest.approx(200)

    def test_naive_estimate_is_lower(self):
        """'These models tend to underestimate power because factors such
        as cache and branch misses are neglected.'"""
        p = profile(alu=1000, load=400, store=200)
        naive = algorithm_energy(p)
        extra, _cycles = MemorySystemCorrection().apply(p)
        assert naive + extra > naive

    def test_bad_rate(self):
        with pytest.raises(ModelError):
            MemorySystemCorrection(miss_rate=2.0).apply(profile(load=1))


class TestProcessorModel:
    def test_power_matches_direct_computation(self):
        p = profile(alu=1000, load=400)
        model = ProcessorModel("cpu", p)
        env = {"f": 25e6, "alpha": 1.0}
        assert model.power(env) == pytest.approx(algorithm_power(p, 25e6))

    def test_duty_factor(self):
        p = profile(alu=1000)
        model = ProcessorModel("cpu", p)
        full = model.power({"f": 25e6, "alpha": 1.0})
        half = model.power({"f": 25e6, "alpha": 0.5})
        assert half == pytest.approx(full / 2)

    def test_vdd_rescale(self):
        p = profile(alu=1000)
        model = ProcessorModel("cpu", p)
        base = model.power({"f": 25e6, "VDD": 3.3})
        low = model.power({"f": 25e6, "VDD": 1.65})
        assert low == pytest.approx(base / 4)

    def test_correction_raises_power(self):
        p = profile(alu=1000, load=500)
        plain = ProcessorModel("cpu", p)
        corrected = ProcessorModel("cpu", p, correction=MemorySystemCorrection())
        env = {"f": 25e6}
        # energy rises faster than cycles here, so power goes up
        assert corrected.power(env) != plain.power(env)

    def test_breakdown_sums_to_power(self):
        p = profile(alu=1000, load=400, mul=50)
        model = ProcessorModel("cpu", p)
        env = {"f": 25e6}
        breakdown = model.breakdown(env)
        assert sum(breakdown.values()) == pytest.approx(model.power(env))
        assert set(breakdown) == {"alu", "load", "mul"}
