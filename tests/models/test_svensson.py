"""Svensson analytical stage models (EQ 4-6)."""

import pytest

from repro.models.svensson import (
    Stage,
    SvenssonModel,
    gate_output_probability,
    propagate_chain,
    signal_to_transition,
    stages_from_chain,
    svensson_ripple_adder,
)
from repro.errors import ModelError

ENV = {"VDD": 1.5, "f": 2e6, "bitwidth": 16, "activity_scale": 1.0}


class TestProbability:
    def test_transition_peak_at_half(self):
        assert signal_to_transition(0.5) == pytest.approx(0.5)
        assert signal_to_transition(0.0) == 0.0
        assert signal_to_transition(1.0) == 0.0
        assert signal_to_transition(0.1) == pytest.approx(0.18)

    def test_bounds(self):
        with pytest.raises(ModelError):
            signal_to_transition(1.5)

    def test_gate_probabilities(self):
        assert gate_output_probability("inv", [0.3]) == pytest.approx(0.7)
        assert gate_output_probability("and", [0.5, 0.5]) == pytest.approx(0.25)
        assert gate_output_probability("nand", [0.5, 0.5]) == pytest.approx(0.75)
        assert gate_output_probability("or", [0.5, 0.5]) == pytest.approx(0.75)
        assert gate_output_probability("nor", [0.5, 0.5]) == pytest.approx(0.25)
        assert gate_output_probability("xor", [0.5, 0.5]) == pytest.approx(0.5)
        assert gate_output_probability("xnor", [0.3, 0.3]) == pytest.approx(
            1 - (0.3 * 0.7 + 0.7 * 0.3)
        )

    def test_inverter_arity(self):
        with pytest.raises(ModelError):
            gate_output_probability("inv", [0.5, 0.5])

    def test_unknown_gate(self):
        with pytest.raises(ModelError):
            gate_output_probability("quantum", [0.5])

    def test_chain_propagation(self):
        levels = propagate_chain([("nand", 2), ("inv", 1)], 0.5)
        assert levels[0] == pytest.approx(0.75)
        assert levels[1] == pytest.approx(0.25)


class TestStage:
    def test_eq4(self):
        stage = Stage("s", c_in=10e-15, c_out=20e-15, alpha_in=0.5, alpha_out=0.25)
        assert stage.capacitance() == pytest.approx(0.5 * 10e-15 + 0.25 * 20e-15)

    def test_validation(self):
        with pytest.raises(ModelError):
            Stage("s", c_in=-1e-15, c_out=1e-15)
        with pytest.raises(ModelError):
            Stage("s", c_in=1e-15, c_out=1e-15, alpha_in=1.5)


class TestModel:
    def make(self):
        stages = [
            Stage("g1", 10e-15, 15e-15, 0.5, 0.4),
            Stage("g2", 12e-15, 18e-15, 0.4, 0.3),
        ]
        return SvenssonModel("blk", stages)

    def test_eq5_slice_sum(self):
        model = self.make()
        expected = sum(stage.capacitance() for stage in model.stages)
        assert model.slice_capacitance() == pytest.approx(expected)

    def test_eq6_bitwidth_scaling(self):
        model = self.make()
        c8 = model.total_capacitance(dict(ENV, bitwidth=8))
        c32 = model.total_capacitance(dict(ENV, bitwidth=32))
        assert c32 == pytest.approx(4 * c8)

    def test_power_consistent_with_energy(self):
        model = self.make()
        assert model.power(ENV) == pytest.approx(
            model.energy_per_access(ENV) * ENV["f"]
        )

    def test_breakdown_per_stage(self):
        model = self.make()
        breakdown = model.breakdown(ENV)
        assert set(breakdown) == {"g1", "g2"}
        assert sum(breakdown.values()) == pytest.approx(model.power(ENV))

    def test_activity_scale(self):
        model = self.make()
        half = model.power(dict(ENV, activity_scale=0.5))
        assert half == pytest.approx(0.5 * model.power(ENV))

    def test_empty_stages_rejected(self):
        with pytest.raises(ModelError):
            SvenssonModel("empty", [])

    def test_bad_bitwidth(self):
        with pytest.raises(ModelError):
            self.make().total_capacitance(dict(ENV, bitwidth=0))

    def test_with_input_probability(self):
        model = self.make()
        quieter = model.with_input_probability(0.1)
        assert quieter.power(ENV) < model.power(ENV)
        # physical capacitances unchanged
        assert [s.c_in for s in quieter.stages] == [s.c_in for s in model.stages]


class TestStagesFromChain:
    def test_activities_follow_levels(self):
        stages = stages_from_chain([("nand", 2), ("inv", 1)], 10e-15, 15e-15, 0.5)
        # first stage input activity is the primary input's (p=0.5 -> 0.5)
        assert stages[0].alpha_in == pytest.approx(0.5)
        # its output is the nand output (p=0.75 -> 2*0.75*0.25)
        assert stages[0].alpha_out == pytest.approx(0.375)
        # the inverter input activity equals the nand output activity
        assert stages[1].alpha_in == pytest.approx(stages[0].alpha_out)

    def test_fanin_scales_input_capacitance(self):
        stages = stages_from_chain([("nand", 3)], 10e-15, 15e-15)
        assert stages[0].c_in == pytest.approx(30e-15)

    def test_bad_fanin(self):
        with pytest.raises(ModelError):
            stages_from_chain([("nand", 0)], 1e-15, 1e-15)


class TestRippleAdderModel:
    def test_white_box_adder(self):
        model = svensson_ripple_adder(16)
        power = model.power(dict(ENV, bitwidth=16, activity_scale=1.0))
        assert power > 0
        # same order of magnitude as the black-box library coefficient:
        # the two characterizations describe the same circuit family
        from repro.models.computation import ripple_adder

        black_box = ripple_adder().power(dict(ENV, bitwidth=16))
        ratio = power / black_box
        assert 0.05 < ratio < 20
