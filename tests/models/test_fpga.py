"""FPGA macro-models (the paper's stated further-research item)."""

import pytest

from repro.models.fpga import (
    DEFAULT_FPGA,
    FPGACoefficients,
    clbs_required,
    custom_vs_fpga,
    fpga_macro,
    fpga_model_set,
)
from repro.errors import ModelError

ENV = {"VDD": 5.0, "f": 2e6, "gates": 5000, "utilization": 0.7, "toggle": 0.125}


class TestMapping:
    def test_clb_count(self):
        assert clbs_required(12) == 1
        assert clbs_required(13) == 2
        assert clbs_required(1200) == 100

    def test_validation(self):
        with pytest.raises(ModelError):
            clbs_required(0)
        with pytest.raises(ModelError):
            FPGACoefficients(c_clb=-1e-12)


class TestMacro:
    def test_power_positive_and_structured(self):
        model = fpga_macro()
        breakdown = model.breakdown(ENV)
        assert set(breakdown) == {
            "clb_logic", "interconnect", "clock_network", "configuration",
        }
        assert model.power(ENV) == pytest.approx(sum(breakdown.values()))

    def test_interconnect_dominates_logic(self):
        """The defining FPGA power property."""
        breakdown = fpga_macro().breakdown(ENV)
        assert breakdown["interconnect"] > 2 * breakdown["clb_logic"]

    def test_clock_network_ignores_toggle(self):
        model = fpga_macro()
        quiet = model.breakdown(dict(ENV, toggle=0.0))
        assert quiet["clb_logic"] == 0.0
        assert quiet["interconnect"] == 0.0
        assert quiet["clock_network"] > 0.0

    def test_clock_scales_with_array_not_occupancy(self):
        """Half utilization -> same design in a bigger array -> more
        clock load, same logic/interconnect."""
        model = fpga_macro()
        tight = model.breakdown(dict(ENV, utilization=1.0))
        loose = model.breakdown(dict(ENV, utilization=0.5))
        assert loose["clock_network"] > 1.8 * tight["clock_network"]
        assert loose["interconnect"] == pytest.approx(tight["interconnect"])

    def test_static_term_frequency_independent(self):
        model = fpga_macro()
        slow = model.breakdown(dict(ENV, f=1.0))
        assert slow["configuration"] == pytest.approx(
            DEFAULT_FPGA.i_static * 5.0
        )

    def test_scales_with_gate_count(self):
        """Dynamic terms scale with the mapped design; the configuration
        current is a fixed floor that masks this at slow clocks."""
        model = fpga_macro()

        def dynamic(gates):
            breakdown = model.breakdown(dict(ENV, gates=gates))
            return sum(
                watts for name, watts in breakdown.items()
                if name != "configuration"
            )

        assert dynamic(12000) > 5 * dynamic(1200)

    def test_validation(self):
        with pytest.raises(ModelError):
            fpga_macro(utilization=0.0)
        with pytest.raises(ModelError):
            fpga_macro(toggle_rate=1.5)


class TestModelSet:
    def test_complete_triple(self):
        model_set = fpga_model_set()
        assert model_set.power.power(ENV) > 0
        assert model_set.area.area(ENV) > 0
        assert model_set.timing.delay(ENV) > 0

    def test_area_grows_when_underutilized(self):
        model_set = fpga_model_set()
        tight = model_set.area.area(dict(ENV, utilization=1.0))
        loose = model_set.area.area(dict(ENV, utilization=0.5))
        assert loose > 1.8 * tight

    def test_timing_scales_with_depth(self):
        shallow = fpga_model_set(logic_depth=4).timing.delay(ENV)
        deep = fpga_model_set(logic_depth=12).timing.delay(ENV)
        assert deep == pytest.approx(3 * shallow)

    def test_depth_validation(self):
        with pytest.raises(ModelError):
            fpga_model_set(logic_depth=0)


class TestPlatformComparison:
    def test_fpga_costs_an_order_of_magnitude_or_more(self):
        result = custom_vs_fpga(5000)
        assert result["ratio"] > 10

    def test_same_supply_ratio_in_literature_band(self):
        """At equal supplies the energy gap is capacitance-only:
        the classic 10-40x FPGA-vs-custom band."""
        result = custom_vs_fpga(5000, vdd_custom=5.0, vdd_fpga=5.0)
        # remove the fixed clock/static floor by using a big design
        big = custom_vs_fpga(100_000, vdd_custom=5.0, vdd_fpga=5.0)
        assert 8 < big["ratio"] < 60

    def test_in_a_design_row(self):
        from repro.core.design import Design
        from repro.core.estimator import evaluate_power

        design = Design("platform_study")
        design.scope.set("f", 2e6)
        design.add(
            "video_on_fpga",
            fpga_model_set(gate_count=8000),
            params={"gates": 8000, "utilization": 0.7, "toggle": 0.125,
                    "VDD": 5.0},
        )
        report = evaluate_power(design)
        assert report.power > 0

    def test_validation(self):
        with pytest.raises(ModelError):
            custom_vs_fpga(0)
