"""Analog models: EQ 13 bias sums, EQ 14-17 diff-pair parameterization."""

import pytest
from hypothesis import given, strategies as st

from repro.models.analog import (
    BipolarPair,
    TransconductanceAmplifier,
    amplifier_power_from_gm,
    bias_current_model,
    thermal_voltage,
)
from repro.errors import ModelError


class TestThermalVoltage:
    def test_room_temperature(self):
        assert thermal_voltage(300.0) == pytest.approx(25.85e-3, rel=1e-3)

    def test_positive_temperature(self):
        with pytest.raises(ModelError):
            thermal_voltage(0)


class TestEQ13:
    def test_sum_of_branches(self):
        model = bias_current_model(
            "opamp", {"input_pair": 1e-3, "output_stage": 4e-3}
        )
        assert model.power({"VDD": 3.0}) == pytest.approx(3.0 * 5e-3)

    def test_linear_in_supply(self):
        """Analog power scales *linearly* with supply, unlike digital."""
        model = bias_current_model("a", {"tail": 2e-3})
        assert model.power({"VDD": 6.0}) == pytest.approx(
            2 * model.power({"VDD": 3.0})
        )

    def test_breakdown_per_branch(self):
        model = bias_current_model("a", {"x": 1e-3, "y": 2e-3})
        breakdown = model.breakdown({"VDD": 3.0})
        assert set(breakdown) == {"x", "y"}

    def test_validation(self):
        with pytest.raises(ModelError):
            bias_current_model("a", {})
        with pytest.raises(ModelError):
            bias_current_model("a", {"bad": -1e-3})


class TestBipolarPair:
    def test_eq14_inversion(self):
        pair = BipolarPair()
        i = 1e-3
        assert pair.bias_for_gm(pair.gm(i)) == pytest.approx(i)

    def test_eq15_inversion(self):
        pair = BipolarPair()
        i = 1e-3
        assert pair.bias_for_rid(pair.rid(i)) == pytest.approx(i)

    def test_eq16_inversion(self):
        pair = BipolarPair()
        i = 1e-3
        assert pair.bias_for_ro(pair.ro(i)) == pytest.approx(i)

    def test_eq14_value(self):
        # G_m = (q/kT) I -> I = (kT/q) G_m; 1 mS at 300 K needs ~25.9 uA
        pair = BipolarPair()
        assert pair.bias_for_gm(1e-3) == pytest.approx(25.85e-6, rel=1e-3)

    def test_constants_validated(self):
        with pytest.raises(ModelError):
            BipolarPair(beta0=-1)


class TestAmplifier:
    def test_gm_only(self):
        amp = TransconductanceAmplifier()
        env = {"VDD": 3.0, "G_m": 1e-3, "R_id": 0.0, "R_o": 0.0}
        bias = amp.bias_current(env)
        assert bias == pytest.approx(BipolarPair().bias_for_gm(1e-3))
        assert amp.power(env) == pytest.approx(3.0 * bias)

    def test_impedance_only_runs_at_limit(self):
        amp = TransconductanceAmplifier()
        env = {"VDD": 3.0, "G_m": 0.0, "R_id": 1e6, "R_o": 0.0}
        assert amp.bias_current(env) == pytest.approx(
            BipolarPair().bias_for_rid(1e6)
        )

    def test_infeasible_specs(self):
        """High G_m needs a big current; high R_id forbids one."""
        amp = TransconductanceAmplifier()
        env = {"VDD": 3.0, "G_m": 1.0, "R_id": 1e9, "R_o": 0.0}
        with pytest.raises(ModelError, match="infeasible"):
            amp.power(env)

    def test_no_specs(self):
        amp = TransconductanceAmplifier()
        with pytest.raises(ModelError, match="at least one"):
            amp.power({"VDD": 3.0, "G_m": 0.0, "R_id": 0.0, "R_o": 0.0})

    def test_achieved_specs_consistent(self):
        amp = TransconductanceAmplifier()
        env = {"VDD": 3.0, "G_m": 1e-3, "R_id": 0.0, "R_o": 0.0}
        achieved = amp.achieved_specs(env)
        assert achieved["G_m"] == pytest.approx(1e-3)
        assert achieved["R_id"] > 0
        assert achieved["R_o"] > 0

    def test_parameterized_like_an_adder(self):
        """'This differential pair may be parametrized by G_m ... much
        like a digital adder is parameterized by bit-width.'"""
        amp = TransconductanceAmplifier()
        base = amp.power({"VDD": 3.0, "G_m": 1e-3, "R_id": 0.0, "R_o": 0.0})
        doubled = amp.power({"VDD": 3.0, "G_m": 2e-3, "R_id": 0.0, "R_o": 0.0})
        assert doubled == pytest.approx(2 * base)


class TestEQ17ClosedForm:
    def test_formula(self):
        power = amplifier_power_from_gm(1e-3, 3.0)
        assert power == pytest.approx(2 * 3.0 * thermal_voltage() * 1e-3)

    def test_validation(self):
        with pytest.raises(ModelError):
            amplifier_power_from_gm(0, 3.0)


@given(st.floats(min_value=1e-6, max_value=1.0))
def test_property_gm_round_trip(g_m):
    pair = BipolarPair()
    assert pair.gm(pair.bias_for_gm(g_m)) == pytest.approx(g_m, rel=1e-9)
