"""Battery-life estimation for the portable-terminal motivation."""

import math

import pytest

from repro.models.battery import (
    Battery,
    NICD_6V,
    NIMH_6V,
    battery_life,
    required_capacity_ah,
)
from repro.errors import ModelError


def ideal_pack(**over):
    defaults = dict(
        name="ideal", voltage=6.0, capacity_ah=2.0, peukert=1.0,
        rated_hours=5.0, usable_fraction=1.0,
    )
    defaults.update(over)
    return Battery(**defaults)


class TestBattery:
    def test_ideal_runtime(self):
        pack = ideal_pack()
        # 6 W at 6 V = 1 A; 2 Ah -> 2 hours
        assert pack.runtime_hours(6.0) == pytest.approx(2.0)

    def test_energy_rating(self):
        assert ideal_pack().energy_wh == pytest.approx(12.0)

    def test_peukert_penalizes_heavy_loads(self):
        real = ideal_pack(peukert=1.2)
        ideal = ideal_pack()
        heavy_load = 18.0  # 3 A, well above the 0.4 A rated rate
        assert real.runtime_hours(heavy_load) < ideal.runtime_hours(heavy_load)

    def test_light_loads_capped_at_ideal(self):
        """Peukert must not *grant* capacity below the rated rate."""
        real = ideal_pack(peukert=1.2)
        light_load = 0.6  # 0.1 A, below the 0.4 A rated current
        assert real.runtime_hours(light_load) <= ideal_pack().runtime_hours(
            light_load
        )

    def test_usable_fraction(self):
        pack = ideal_pack(usable_fraction=0.5)
        assert pack.runtime_hours(6.0) == pytest.approx(1.0)

    def test_zero_load(self):
        assert ideal_pack().runtime_hours(0.0) == math.inf

    def test_current_draw(self):
        assert ideal_pack().current_draw(12.0) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ModelError):
            Battery(voltage=0)
        with pytest.raises(ModelError):
            Battery(peukert=0.9)
        with pytest.raises(ModelError):
            Battery(usable_fraction=0)
        with pytest.raises(ModelError):
            ideal_pack().runtime_hours(-1.0)


class TestSystemIntegration:
    def test_infopad_runtime_plausible(self):
        """A ~3.7 W terminal on a mid-90s pack: a couple of hours."""
        from repro.core.estimator import evaluate_power
        from repro.designs.infopad import build_infopad

        watts = evaluate_power(build_infopad()).power
        hours = battery_life(watts, NIMH_6V)
        assert 1.0 < hours < 8.0

    def test_bigger_pack_lasts_longer(self):
        assert battery_life(3.7, NIMH_6V) > battery_life(3.7, NICD_6V)

    def test_power_saving_extends_life_superlinearly(self):
        """Peukert makes savings worth more than linear at high draw."""
        pack = ideal_pack(peukert=1.2, capacity_ah=1.0, rated_hours=5.0)
        heavy = pack.runtime_hours(24.0)
        halved = pack.runtime_hours(12.0)
        assert halved > 2.0 * heavy


class TestInverseSizing:
    def test_round_trip(self):
        pack = NIMH_6V
        watts = 3.7
        target = 5.0
        capacity = required_capacity_ah(watts, target, pack)
        sized = Battery(
            name="sized",
            voltage=pack.voltage,
            capacity_ah=capacity,
            peukert=pack.peukert,
            rated_hours=pack.rated_hours,
            usable_fraction=pack.usable_fraction,
        )
        # the ideal-capacity cap near the rated rate costs a percent or two
        assert sized.runtime_hours(watts) == pytest.approx(target, rel=0.05)

    def test_validation(self):
        with pytest.raises(ModelError):
            required_capacity_ah(3.7, 0.0)
        with pytest.raises(ModelError):
            required_capacity_ah(0.0, 5.0)
