"""Veendrick short-circuit dissipation and its EQ 1 mapping."""

import pytest
from hypothesis import given, strategies as st

from repro.core.model import TemplatePowerModel
from repro.models.shortcircuit import (
    ShortCircuitModel,
    effective_capacitance,
    veendrick_power,
)
from repro.errors import ModelError

BETA = 1.2e-4
TAU = 2e-9
VT = 0.7


class TestVeendrickLaw:
    def test_cubic_headroom(self):
        base = veendrick_power(2.4, VT, BETA, TAU, 1e6)  # headroom 1.0
        taller = veendrick_power(3.4, VT, BETA, TAU, 1e6)  # headroom 2.0
        assert taller == pytest.approx(8 * base)

    def test_vanishes_below_twice_threshold(self):
        """VDD <= 2 V_T -> no direct path; the low-voltage argument."""
        assert veendrick_power(1.4, VT, BETA, TAU, 1e6) == 0.0
        assert veendrick_power(1.39, VT, BETA, TAU, 1e6) == 0.0
        assert veendrick_power(1.41, VT, BETA, TAU, 1e6) > 0.0

    def test_linear_in_tau_and_f(self):
        base = veendrick_power(3.3, VT, BETA, TAU, 1e6)
        assert veendrick_power(3.3, VT, BETA, 2 * TAU, 1e6) == pytest.approx(2 * base)
        assert veendrick_power(3.3, VT, BETA, TAU, 2e6) == pytest.approx(2 * base)

    def test_activity(self):
        full = veendrick_power(3.3, VT, BETA, TAU, 1e6, activity=1.0)
        quarter = veendrick_power(3.3, VT, BETA, TAU, 1e6, activity=0.25)
        assert quarter == pytest.approx(full / 4)

    def test_validation(self):
        with pytest.raises(ModelError):
            veendrick_power(0, VT, BETA, TAU, 1e6)
        with pytest.raises(ModelError):
            veendrick_power(3.3, 0, BETA, TAU, 1e6)
        with pytest.raises(ModelError):
            veendrick_power(3.3, VT, BETA, TAU, 1e6, activity=2.0)


class TestEffectiveCapacitance:
    def test_reproduces_power_at_extraction_point(self):
        vdd, f = 3.3, 2e6
        c_eff = effective_capacitance(vdd, VT, BETA, TAU)
        assert c_eff * vdd * vdd * f == pytest.approx(
            veendrick_power(vdd, VT, BETA, TAU, f)
        )

    def test_only_locally_valid(self):
        """The cubic law means C_eff at 3.3 V overestimates at 2 V."""
        c_eff = effective_capacitance(3.3, VT, BETA, TAU)
        frozen = c_eff * 2.0 * 2.0 * 1e6
        true = veendrick_power(2.0, VT, BETA, TAU, 1e6)
        assert frozen > true


class TestModel:
    def test_gates_scale(self):
        model = ShortCircuitModel()
        env = {"VDD": 3.3, "f": 2e6, "gates": 100, "activity": 0.25}
        base = model.power(env)
        assert model.power(dict(env, gates=200)) == pytest.approx(2 * base)

    def test_sweep_shows_cutoff(self):
        model = ShortCircuitModel(v_threshold=0.7)
        env = {"f": 2e6, "gates": 100, "activity": 0.25}
        assert model.power(dict(env, VDD=1.2)) == 0.0
        assert model.power(dict(env, VDD=3.3)) > 0.0

    def test_capacitive_term_rides_in_template(self):
        """The paper's mapping: short-circuit charge as a C in EQ 1."""
        sc = ShortCircuitModel()
        term = sc.capacitive_term(vdd=3.3, activity=0.25)
        model = TemplatePowerModel("with_sc", capacitive=[term])
        env = {"VDD": 3.3, "f": 2e6, "gates": 100}
        assert model.power(env) == pytest.approx(
            sc.power(dict(env, activity=0.25))
        )

    def test_constructor_validation(self):
        with pytest.raises(ModelError):
            ShortCircuitModel(v_threshold=0)


@given(st.floats(min_value=0.2, max_value=10.0))
def test_property_nonnegative(vdd):
    assert veendrick_power(vdd, VT, BETA, TAU, 1e6) >= 0.0
