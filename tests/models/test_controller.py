"""Controller models (EQ 9 random logic, EQ 10 ROM, PLA)."""

import pytest

from repro.models.controller import (
    DEFAULT_ALPHA,
    ROMCoefficients,
    RandomLogicCoefficients,
    compare_platforms,
    estimate_minterms,
    pla_controller,
    random_logic_controller,
    rom_controller,
)
from repro.errors import ModelError

ENV = {"VDD": 1.5, "f": 1e6}


class TestEQ9:
    def test_hand_computation(self):
        c = RandomLogicCoefficients()
        model = random_logic_controller(8, 12, n_minterms=40)
        env = dict(ENV, N_I=8, N_O=12, N_M=40, alpha0=0.25, alpha1=0.25)
        expected_c = 0.25 * c.c0 * 8 * 40 + 0.25 * c.c1 * 40 * 12
        assert model.effective_capacitance(env) == pytest.approx(expected_c)

    def test_default_alpha_is_quarter(self):
        assert DEFAULT_ALPHA == 0.25

    def test_plane_breakdown(self):
        model = random_logic_controller()
        env = dict(ENV, N_I=8, N_O=12, N_M=64, alpha0=0.25, alpha1=0.25)
        assert set(model.breakdown(env)) == {"input_plane", "output_plane"}

    def test_validation(self):
        with pytest.raises(ModelError):
            random_logic_controller(0, 4)
        with pytest.raises(ModelError):
            random_logic_controller(4, 4, alpha0=2.0)


class TestEQ10:
    def test_hand_computation(self):
        c = ROMCoefficients()
        model = rom_controller(6, 16)
        env = dict(ENV, N_I=6, N_O=16, P_O=0.5)
        expected = (
            c.c0
            + c.c1 * 6 * 2**6
            + c.c2 * 0.5 * 16 * 2**6
            + c.c3 * 0.5 * 16
            + c.c4 * 16
        )
        assert model.effective_capacitance(env) == pytest.approx(expected)

    def test_precharge_statistics(self):
        """Only low outputs are re-precharged: power grows with P_O."""
        model = rom_controller()
        low = model.power(dict(ENV, N_I=6, N_O=16, P_O=0.1))
        high = model.power(dict(ENV, N_I=6, N_O=16, P_O=0.9))
        assert high > low

    def test_exponential_decode_cost(self):
        model = rom_controller()
        narrow = model.power(dict(ENV, N_I=6, N_O=16, P_O=0.5))
        wide = model.power(dict(ENV, N_I=16, N_O=16, P_O=0.5))
        assert wide > 10 * narrow

    def test_ni_cap(self):
        with pytest.raises(ModelError, match="credible"):
            rom_controller(24, 16)

    def test_po_bounds(self):
        with pytest.raises(ModelError):
            rom_controller(p_low=1.5)


class TestPLA:
    def test_power_positive(self):
        model = pla_controller(8, 12, 40)
        env = dict(ENV, N_I=8, N_O=12, N_M=40, alpha=0.25, p_product=0.25)
        assert model.power(env) > 0

    def test_or_plane_follows_fire_probability(self):
        model = pla_controller(8, 12, 40)
        env = dict(ENV, N_I=8, N_O=12, N_M=40, alpha=0.25)
        quiet = model.breakdown(dict(env, p_product=0.1))["or_plane"]
        busy = model.breakdown(dict(env, p_product=0.9))["or_plane"]
        assert busy == pytest.approx(9 * quiet)


class TestMinterms:
    def test_density(self):
        assert estimate_minterms(8, density=0.25) == 64

    def test_state_floor(self):
        assert estimate_minterms(3, n_states=10) == 10

    def test_space_cap(self):
        # astronomically wide controllers don't overflow
        assert estimate_minterms(60, density=0.25) == estimate_minterms(24, density=0.25)

    def test_validation(self):
        with pytest.raises(ModelError):
            estimate_minterms(0)
        with pytest.raises(ModelError):
            estimate_minterms(8, density=0.0)


class TestPlatformComparison:
    def test_all_platforms_reported(self):
        results = compare_platforms(8, 12, 1.5, 1e6)
        assert set(results) == {"random_logic", "rom", "pla"}
        assert all(watts > 0 for watts in results.values())

    def test_rom_skipped_when_too_wide(self):
        results = compare_platforms(21, 12, 1.5, 1e6, n_minterms=64)
        assert "rom" not in results

    def test_rom_wins_small_loses_big(self):
        """The exploration insight: ROM decode cost is exponential in N_I."""
        small = compare_platforms(5, 16, 1.5, 1e6, n_minterms=16)
        large = compare_platforms(14, 16, 1.5, 1e6, n_minterms=16)
        assert small["rom"] < small["random_logic"] * 5
        assert large["rom"] > large["random_logic"]
