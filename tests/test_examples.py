"""Smoke tests: the shipped examples must run cleanly end to end.

The heavy studies (full sorting sweep, characterization) are exercised
piecewise elsewhere; here the fast examples run whole, as a user would.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "infopad_breakdown.py",
    "platform_explorer.py",
    "web_demo.py",
    "sheet_playground.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"


def test_quickstart_shows_the_spreadsheet():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py")],
        capture_output=True, text=True, timeout=120,
    )
    assert "mac_datapath summary" in result.stdout
    assert "Supply sweep" in result.stdout


def test_web_demo_hits_the_paper_numbers():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "web_demo.py")],
        capture_output=True, text=True, timeout=120,
    )
    assert "Figure 4 form computed: True" in result.stdout  # EQ 20 over HTTP
    assert "federated" in result.stdout          # Figure 6 scenario
    assert "smtp_hub" in result.stdout           # Figure 7 comparison
