"""Shareable macro cells (hierarchical macro-modeling over the wire)."""

import pytest

from repro.core.design import Design
from repro.core.estimator import evaluate_power
from repro.designs.luminance import build_figure3_design
from repro.designs.macros import (
    build_macro_library,
    custom_chipset_macro,
    video_decompression_macro,
)
from repro.library.catalog import Library


class TestVideoMacro:
    def test_matches_the_unlumped_design(self):
        macro = video_decompression_macro()
        reference = evaluate_power(build_figure3_design()).power
        assert macro.power({"VDD": 1.5, "f_pixel": 1.966e6}) == pytest.approx(
            reference, rel=1e-4
        )

    def test_exported_parameters_work(self):
        macro = video_decompression_macro()
        base = macro.power({"VDD": 1.5, "f_pixel": 1.966e6})
        low_v = macro.power({"VDD": 1.1, "f_pixel": 1.966e6})
        slow = macro.power({"VDD": 1.5, "f_pixel": 0.983e6})
        assert low_v == pytest.approx(base * (1.1 / 1.5) ** 2, rel=1e-6)
        assert slow == pytest.approx(base / 2, rel=1e-6)

    def test_breakdown_exposes_rows(self):
        macro = video_decompression_macro()
        breakdown = macro.breakdown({"VDD": 1.5, "f_pixel": 1.966e6})
        assert "lut" in breakdown and "read_bank" in breakdown


class TestChipsetMacro:
    def test_supply_scaling_through_two_levels(self):
        macro = custom_chipset_macro()
        base = macro.power({"VDD_core": 1.5})
        low = macro.power({"VDD_core": 1.1})
        assert low == pytest.approx(base * (1.1 / 1.5) ** 2, rel=1e-6)


class TestSharing:
    def test_macro_library_round_trips(self):
        library = build_macro_library()
        clone = Library.from_json(library.to_json(), origin="http://berkeley")
        original = library.get("video_decompression").models.power
        copied = clone.get("video_decompression").models.power
        env = {"VDD": 1.3, "f_pixel": 1.5e6}
        assert copied.power(env) == pytest.approx(original.power(env))
        assert clone.get("video_decompression").origin == "http://berkeley"

    def test_fetched_macro_usable_in_new_design(self):
        """'Re-used in other designs' — the whole point of macros."""
        library = build_macro_library()
        clone = Library.from_json(library.to_json())
        macro = clone.get("video_decompression").models.power
        terminal = Design("new_terminal")
        terminal.scope.set("VDD", 1.2)
        terminal.scope.set("f", 1e6)
        terminal.add(
            "video", macro, params={"VDD": 1.2, "f_pixel": 1.966e6}
        )
        report = evaluate_power(terminal)
        direct = macro.power({"VDD": 1.2, "f_pixel": 1.966e6})
        assert report["video"].power == pytest.approx(direct)

    def test_macros_served_by_the_web_api(self, tmp_path):
        import json

        from repro.web.app import Application

        app = Application(tmp_path / "state")
        response = app.handle("GET", "/api/model?name=video_decompression")
        assert response.status == 200
        payload = json.loads(response.body)
        assert payload["power"]["kind"] == "macro"

    def test_macro_form_computes_in_browser_flow(self, tmp_path):
        from repro.web.app import Application

        app = Application(tmp_path / "state")
        app.handle("POST", "/login", {"user": "x"})
        response = app.handle(
            "POST", "/cell",
            {"user": "x", "name": "video_decompression",
             "p:VDD": "1.5", "p:f_pixel": "1.966M", "p:f": "1"},
        )
        assert "1.4261e-04 W" in response.body


class TestAnalysisPage:
    def test_area_timing_page(self, tmp_path):
        from repro.web.app import Application

        app = Application(tmp_path / "state")
        app.handle("POST", "/login", {"user": "x"})
        app.handle(
            "POST", "/design/load_example",
            {"user": "x", "example": "luminance_fig3"},
        )
        response = app.handle(
            "GET", "/design/analysis?user=x&name=luminance_fig3"
        )
        assert response.status == 200
        assert "Active area" in response.body
        assert "Max frequency" in response.body
        # rows without area models show '-', not zero
        assert ">-<" in response.body
        # the sheet links to the analysis and back
        sheet = app.handle("GET", "/design?user=x&name=luminance_fig3")
        assert "Area / timing analysis" in sheet.body
        assert "Back to the power spreadsheet" in response.body
