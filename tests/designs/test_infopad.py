"""The InfoPad system design (Figure 5)."""

import pytest

from repro.core.estimator import (
    consumers_for_fraction,
    evaluate_power,
    top_consumers,
)
from repro.designs.infopad import (
    CONVERTER_EFFICIENCY,
    build_custom_hardware,
    build_infopad,
)
from repro.models.converter import converter_dissipation


@pytest.fixture
def system():
    return build_infopad()


@pytest.fixture
def report(system):
    return evaluate_power(system)


class TestStructure:
    def test_figure5_rows_present(self, system):
        assert system.row_names() == [
            "custom_hardware",
            "radio_subsystem",
            "display_lcds",
            "microprocessor_subsystem",
            "support_electronics",
            "other_io_devices",
            "voltage_converters",
        ]

    def test_three_level_hierarchy(self, system):
        custom = system.row("custom_hardware")
        assert custom.is_subdesign
        luminance = custom.design.row("luminance_chip")
        assert luminance.is_subdesign
        assert "lut" in luminance.design

    def test_totals_sum(self, report):
        assert report.power == pytest.approx(
            sum(child.power for child in report.children)
        )
        custom = report["custom_hardware"]
        assert custom.power == pytest.approx(
            sum(child.power for child in custom.children)
        )


class TestConverterInteraction:
    def test_converter_loss_is_eq19_of_load(self, report):
        load = sum(
            child.power
            for child in report.children
            if child.name != "voltage_converters"
        )
        assert report["voltage_converters"].power == pytest.approx(
            converter_dissipation(load, CONVERTER_EFFICIENCY)
        )

    def test_total_is_battery_input_power(self, report):
        load = report.power - report["voltage_converters"].power
        assert report.power == pytest.approx(load / CONVERTER_EFFICIENCY)

    def test_converter_tracks_subsystem_changes(self, system):
        base = evaluate_power(system)["voltage_converters"].power
        system.row("display_lcds").set("backlight_duty", 0.0)
        lighter = evaluate_power(system)["voltage_converters"].power
        assert lighter < base


class TestSupplyInheritance:
    def test_vdd2_reaches_the_luminance_leaves(self, system):
        base = evaluate_power(system)["custom_hardware"].power
        boosted = evaluate_power(system, overrides={"VDD2": 3.0})[
            "custom_hardware"
        ].power
        assert boosted == pytest.approx(4 * base, rel=1e-6)

    def test_vdd1_scales_processor_not_custom(self, system):
        base = evaluate_power(system)
        boosted = evaluate_power(system, overrides={"VDD1": 4.0})
        assert boosted["microprocessor_subsystem"].power < base[
            "microprocessor_subsystem"
        ].power
        assert boosted["custom_hardware"].power == pytest.approx(
            base["custom_hardware"].power
        )

    def test_supplies_validated(self):
        from repro.errors import DesignError

        with pytest.raises(DesignError):
            build_infopad(vdd1=-1)


class TestPowerShape:
    def test_custom_hardware_is_a_tiny_fraction(self, report):
        """The paper's system lesson: the optimized chipset is a
        vanishing share of the budget."""
        fraction = report["custom_hardware"].power / report.power
        assert fraction < 0.01

    def test_display_radio_processor_dominate(self, report):
        heavy = {
            "infopad/display_lcds",
            "infopad/microprocessor_subsystem",
            "infopad/radio_subsystem",
        }
        ranked = {path for path, _w in top_consumers(report, 4)}
        assert len(heavy & ranked) >= 2

    def test_total_in_portable_terminal_band(self, report):
        assert 2.0 < report.power < 8.0  # watts — a 1990s portable terminal

    def test_diminishing_returns_selects_few_leaves(self, report):
        selected = consumers_for_fraction(report, 0.8)
        assert len(selected) <= 6
        leaves = len(list(report.leaves()))
        assert leaves > len(selected)


class TestCustomHardware:
    def test_standalone_build(self):
        custom = build_custom_hardware(vdd_expression="1.5")
        report = evaluate_power(custom)
        assert {"luminance_chip", "chroma_chips", "protocol_controller"} == {
            child.name for child in report.children
        }

    def test_luminance_dominates_chroma(self):
        custom = build_custom_hardware(vdd_expression="1.5")
        report = evaluate_power(custom)
        assert report["luminance_chip"].power > report["chroma_chips"].power
