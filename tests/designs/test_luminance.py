"""The luminance chip designs vs the paper's published numbers."""

import pytest

from repro.core.estimator import evaluate_power, sweep
from repro.designs.luminance import (
    NOMINAL_PIXEL_RATE,
    build_figure1_design,
    build_figure3_design,
    build_luminance_design,
    build_luminance_from_chip,
)
from repro.sim.traces import VideoConfig, VideoSource
from repro.sim.vq import Codebook, LuminanceChip
from repro.errors import DesignError


class TestOperatingPoint:
    def test_pixel_rate_is_the_papers_2mhz(self):
        assert NOMINAL_PIXEL_RATE == pytest.approx(1.966e6, rel=1e-3)

    def test_access_rate_relations(self):
        design = build_figure1_design()
        f = design.scope["f_pixel"]
        assert design.row("read_bank").scope["f"] == pytest.approx(f / 16)
        assert design.row("write_bank").scope["f"] == pytest.approx(f / 32)
        assert design.row("lut").scope["f"] == pytest.approx(f)

    def test_figure3_lut_at_quarter_rate(self):
        design = build_figure3_design()
        f = design.scope["f_pixel"]
        assert design.row("lut").scope["f"] == pytest.approx(f / 4)
        assert design.row("output_mux").scope["f"] == pytest.approx(f)

    def test_memory_organizations(self):
        fig1 = build_figure1_design()
        fig3 = build_figure3_design()
        assert fig1.row("lut").scope["words"] == 4096
        assert fig1.row("lut").scope["bits"] == 6
        assert fig3.row("lut").scope["words"] == 1024
        assert fig3.row("lut").scope["bits"] == 24
        assert fig1.row("read_bank").scope["words"] == 2048


class TestPaperNumbers:
    def test_figure3_about_150_microwatts(self):
        """'PowerPlay estimated the power dissipation of the second
        implementation to be ~150 uW' (measured chip: 100 uW)."""
        watts = evaluate_power(build_figure3_design()).power
        assert 100e-6 < watts < 200e-6

    def test_ratio_about_one_fifth(self):
        """'...or 1/5 that of the original design.'"""
        fig1 = evaluate_power(build_figure1_design()).power
        fig3 = evaluate_power(build_figure3_design()).power
        ratio = fig3 / fig1
        assert 1 / 8 < ratio < 1 / 3.5

    def test_figure2_total_band(self):
        """Figure 2's visible total is ~8.8e-04 W for implementation 1."""
        watts = evaluate_power(build_figure1_design()).power
        assert 5e-4 < watts < 1.2e-3

    def test_lut_dominates_figure1(self):
        report = evaluate_power(build_figure1_design())
        assert report["lut"].power / report.power > 0.8

    def test_only_mux_and_register_at_full_rate_in_figure3(self):
        design = build_figure3_design()
        f = design.scope["f_pixel"]
        full_rate_rows = [
            row.name for row in design if row.scope["f"] == pytest.approx(f)
        ]
        assert sorted(full_rate_rows) == ["output_mux", "output_register"]


class TestGeneralization:
    def test_partition_sweep_shape(self):
        """Wider accesses keep helping across the block, but with sharply
        diminishing returns: the decoder amortizes while the mux cost
        grows — the generalized Figure 1 -> Figure 3 trade-off."""
        totals = {
            words: evaluate_power(
                build_luminance_design(words_per_access=words)
            ).power
            for words in (1, 2, 4, 8, 16)
        }
        assert totals[4] < totals[1] / 4      # the paper's headline (~1/5)
        # monotone improvement with diminishing marginal gains
        gains = [
            totals[a] - totals[b] for a, b in ((1, 2), (2, 4), (4, 8), (8, 16))
        ]
        assert all(gain > 0 for gain in gains)
        assert gains == sorted(gains, reverse=True)
        # while the full-rate mux cost grows with fan-in
        mux4 = evaluate_power(build_luminance_design(words_per_access=4))
        mux16 = evaluate_power(build_luminance_design(words_per_access=16))
        assert mux16["output_mux"].power > mux4["output_mux"].power

    def test_voltage_sweep_quadratic_shape(self):
        design = build_figure3_design()
        results = dict(sweep(design, "VDD", [1.0, 2.0]))
        assert results[2.0] == pytest.approx(4 * results[1.0], rel=1e-6)

    def test_invalid_words_per_access(self):
        with pytest.raises(DesignError):
            build_luminance_design(words_per_access=3)

    def test_invalid_geometry(self):
        with pytest.raises(DesignError):
            build_luminance_design(width=100)
        with pytest.raises(DesignError):
            build_luminance_design(display_fps=50, source_fps=30)


class TestFromChip:
    def make_chip(self, words_per_access):
        chip = LuminanceChip(
            Codebook.uniform(), words_per_access=words_per_access,
            width=64, height=32,
        )
        source = VideoSource(VideoConfig(width=64, height=32, seed=5))
        chip.run(source.frames(2))
        return chip

    def test_measured_rates_match_parameterized_design(self):
        """The workload-simulated design agrees with the closed-form one
        (same geometry), validating the access-count derivation."""
        chip = self.make_chip(4)
        from_chip = evaluate_power(build_luminance_from_chip(chip))
        parameterized = evaluate_power(
            build_luminance_design(words_per_access=4, width=64, height=32)
        )
        assert from_chip.power == pytest.approx(parameterized.power, rel=1e-6)

    def test_expected_rates_fallback(self):
        chip = LuminanceChip(
            Codebook.uniform(), words_per_access=1, width=64, height=32
        )
        design = build_luminance_from_chip(chip, use_measured_rates=False)
        assert evaluate_power(design).power > 0

    def test_chip_design_row_structure(self):
        chip = self.make_chip(1)
        design = build_luminance_from_chip(chip)
        assert design.row_names() == [
            "read_bank", "write_bank", "lut", "output_register"
        ]
        chip4 = self.make_chip(4)
        design4 = build_luminance_from_chip(chip4)
        assert "output_mux" in design4
