"""Instrumented sorting algorithms (the Ong & Yan study's subjects)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.models.processor import algorithm_energy
from repro.sim.sorting import ALGORITHMS, profile_sort, random_data
from repro.errors import SimulationError


class TestCorrectness:
    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_sorts(self, algorithm):
        data = random_data(60, seed=3)
        result, profile = profile_sort(algorithm, data)
        assert result == sorted(data)
        assert profile.total_instructions > 0

    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_handles_duplicates_and_sorted_input(self, algorithm):
        for data in ([5, 5, 5, 5], list(range(20)), list(range(20, 0, -1)), [1]):
            result, _profile = profile_sort(algorithm, data)
            assert result == sorted(data)

    def test_unknown_algorithm(self):
        with pytest.raises(SimulationError, match="unknown algorithm"):
            profile_sort("bogo", [1, 2])

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            profile_sort("quick", [])

    @given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=40))
    @settings(max_examples=25, deadline=None)
    def test_property_all_algorithms_agree(self, data):
        expected = sorted(data)
        for algorithm in ALGORITHMS:
            result, _profile = profile_sort(algorithm, data)
            assert result == expected


class TestComplexityShape:
    def test_quadratic_vs_nlogn_separation(self):
        """The Ong & Yan effect: quadratic sorts cost orders of magnitude
        more energy at realistic sizes."""
        data = random_data(512, seed=7)
        _out, bubble = profile_sort("bubble", data)
        _out, quick = profile_sort("quick", data)
        assert algorithm_energy(bubble) > 20 * algorithm_energy(quick)

    def test_energy_grows_superlinearly_for_bubble(self):
        small = random_data(64, seed=1)
        large = random_data(256, seed=1)
        _o, profile_small = profile_sort("bubble", small)
        _o, profile_large = profile_sort("bubble", large)
        ratio = (
            profile_large.total_instructions / profile_small.total_instructions
        )
        assert ratio > 10  # ~16x for a quadratic algorithm

    def test_nlogn_sorts_cluster(self):
        data = random_data(512, seed=7)
        energies = []
        for algorithm in ("quick", "merge", "heap"):
            _out, profile = profile_sort(algorithm, data)
            energies.append(algorithm_energy(profile))
        assert max(energies) < 6 * min(energies)

    def test_insertion_adapts_to_sorted_input(self):
        ordered = list(range(200))
        shuffled = random_data(200, seed=2)
        _o, cheap = profile_sort("insertion", ordered)
        _o, expensive = profile_sort("insertion", shuffled)
        assert cheap.total_instructions < expensive.total_instructions / 5


class TestInstrumentation:
    def test_profile_classes(self):
        _out, profile = profile_sort("bubble", random_data(30, seed=4))
        assert {"alu", "load", "store", "branch"} <= set(profile.counts)

    def test_recursive_sorts_charge_call_overhead(self):
        _out, quick = profile_sort("quick", random_data(64, seed=4))
        _out, bubble = profile_sort("bubble", random_data(64, seed=4))
        # recursion shows up as taken branches (call/return)
        assert quick.counts.get("branch_taken", 0) > 0

    def test_random_data_reproducible(self):
        assert random_data(10, seed=5) == random_data(10, seed=5)
        with pytest.raises(SimulationError):
            random_data(0)


class TestVMAgreement:
    def test_bubble_routes_agree(self):
        """VM-executed and instrumented bubble sort count similar work."""
        from repro.sim.isa import BUBBLE_SORT, run_sort_program

        data = random_data(48, seed=6)
        _out, vm_profile = run_sort_program(BUBBLE_SORT, data)
        _out, traced_profile = profile_sort("bubble", data)
        vm_energy = algorithm_energy(vm_profile)
        traced_energy = algorithm_energy(traced_profile)
        ratio = max(vm_energy, traced_energy) / min(vm_energy, traced_energy)
        assert ratio < 2.5, (vm_energy, traced_energy)
