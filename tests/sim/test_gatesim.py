"""Switch-level capacitance simulator."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.gatesim import (
    C_DFF_CLOCK,
    Gate,
    Netlist,
    random_vectors,
    simulate,
)
from repro.errors import NetlistError, SimulationError


class TestGateEvaluation:
    @pytest.mark.parametrize(
        "kind,inputs,expected",
        [
            ("not", [0], 1), ("not", [1], 0),
            ("buf", [1], 1),
            ("and", [1, 1], 1), ("and", [1, 0], 0),
            ("nand", [1, 1], 0), ("nand", [0, 1], 1),
            ("or", [0, 0], 0), ("or", [0, 1], 1),
            ("nor", [0, 0], 1), ("nor", [1, 0], 0),
            ("xor", [1, 1], 0), ("xor", [1, 0], 1),
            ("xor", [1, 1, 1], 1),
            ("xnor", [1, 0], 0), ("xnor", [1, 1], 1),
            ("mux2", [1, 0, 0], 1),  # sel=0 -> a
            ("mux2", [1, 0, 1], 0),  # sel=1 -> b
        ],
    )
    def test_truth_tables(self, kind, inputs, expected):
        names = [f"i{k}" for k in range(len(inputs))]
        gate = Gate(kind, "out", tuple(names))
        values = dict(zip(names, inputs))
        assert gate.evaluate(values) == expected

    def test_wide_gates(self):
        gate = Gate("and", "out", ("a", "b", "c", "d"))
        assert gate.evaluate({"a": 1, "b": 1, "c": 1, "d": 1}) == 1
        assert gate.evaluate({"a": 1, "b": 1, "c": 0, "d": 1}) == 0

    def test_undriven_input(self):
        gate = Gate("and", "out", ("a", "ghost"))
        with pytest.raises(SimulationError, match="undriven"):
            gate.evaluate({"a": 1})


class TestNetlistStructure:
    def test_double_drive_rejected(self):
        netlist = Netlist()
        netlist.add_input("a")
        with pytest.raises(NetlistError, match="already driven"):
            netlist.add_input("a")

    def test_gate_arity_checked(self):
        netlist = Netlist()
        netlist.add_input("a")
        with pytest.raises(NetlistError):
            netlist.add_gate("not", "x", ["a", "a2"])
        with pytest.raises(NetlistError):
            netlist.add_gate("and", "y", ["a"])
        with pytest.raises(NetlistError):
            netlist.add_gate("warp", "z", ["a"])

    def test_combinational_cycle_detected(self):
        netlist = Netlist()
        netlist.add_input("a")
        netlist.add_gate("and", "x", ["a", "y"])
        netlist.add_gate("and", "y", ["a", "x"])
        with pytest.raises(NetlistError, match="cycle"):
            netlist.topological_gates()

    def test_cycle_through_register_is_fine(self):
        netlist = Netlist()
        netlist.add_input("d")
        netlist.add_gate("xor", "next", ["d", "q"])
        netlist.add_register("q", "next")
        netlist.topological_gates()  # must not raise

    def test_undriven_net_detected(self):
        netlist = Netlist()
        netlist.add_input("a")
        netlist.add_gate("and", "x", ["a", "ghost"])
        with pytest.raises(NetlistError, match="undriven"):
            netlist.topological_gates()

    def test_fanout_counts(self):
        netlist = Netlist()
        netlist.add_input("a")
        netlist.add_input("b")
        netlist.add_gate("and", "x", ["a", "b"])
        netlist.add_gate("or", "y", ["a", "x"])
        assert netlist.fanout()["a"] == 2
        assert netlist.fanout()["x"] == 1

    def test_capacitance_grows_with_fanout(self):
        netlist = Netlist()
        netlist.add_input("a")
        netlist.add_input("b")
        netlist.add_gate("and", "x", ["a", "b"])
        netlist.add_gate("not", "y", ["a"])
        caps = netlist.net_capacitance()
        assert caps["a"] > caps["b"]

    def test_logic_depth(self):
        netlist = Netlist()
        netlist.add_input("a")
        netlist.add_gate("not", "l1", ["a"])
        netlist.add_gate("not", "l2", ["l1"])
        depth = netlist.logic_depth()
        assert depth["a"] == 0 and depth["l1"] == 1 and depth["l2"] == 2


class TestSimulation:
    def inverter(self):
        netlist = Netlist("inv")
        netlist.add_input("a")
        netlist.add_gate("not", "y", ["a"])
        netlist.mark_output("y")
        return netlist

    def test_static_input_no_switching(self):
        netlist = self.inverter()
        result = simulate(netlist, [{"a": 1}] * 10)
        assert result.switched_capacitance == 0.0
        assert result.transitions == 0

    def test_toggling_input_switches_both_nets(self):
        netlist = self.inverter()
        vectors = [{"a": cycle % 2} for cycle in range(11)]
        result = simulate(netlist, vectors)
        caps = netlist.net_capacitance()
        expected = 10 * (caps["a"] + caps["y"])
        assert result.switched_capacitance == pytest.approx(expected)
        assert result.transitions == 20

    def test_clock_capacitance_counted_every_cycle(self):
        netlist = Netlist("reg")
        netlist.add_input("d")
        netlist.add_register("q", "d")
        result = simulate(netlist, [{"d": 0}] * 5)
        assert result.clock_capacitance == pytest.approx(5 * C_DFF_CLOCK)
        # clock load dominates a quiet register
        assert result.switched_capacitance == pytest.approx(result.clock_capacitance)

    def test_register_delays_by_one_cycle(self):
        netlist = Netlist("reg")
        netlist.add_input("d")
        netlist.add_register("q", "d")
        netlist.mark_output("q")
        values0 = netlist.evaluate({"d": 1}, {"q": 0})
        assert values0["q"] == 0  # old state visible this cycle
        state = {"q": values0["d"]}
        values1 = netlist.evaluate({"d": 0}, state)
        assert values1["q"] == 1

    def test_missing_input_value(self):
        netlist = self.inverter()
        with pytest.raises(SimulationError, match="missing value"):
            simulate(netlist, [{}])

    def test_glitch_factor_inflates_deep_nets(self):
        netlist = Netlist("chain")
        netlist.add_input("a")
        netlist.add_gate("not", "l1", ["a"])
        netlist.add_gate("not", "l2", ["l1"])
        netlist.mark_output("l2")
        vectors = [{"a": cycle % 2} for cycle in range(11)]
        plain = simulate(netlist, vectors, glitch_factor=0.0)
        glitchy = simulate(netlist, vectors, glitch_factor=0.5)
        assert glitchy.switched_capacitance > plain.switched_capacitance

    def test_glitch_factor_validation(self):
        with pytest.raises(SimulationError):
            simulate(self.inverter(), [{"a": 0}], glitch_factor=-1)

    def test_energy_and_power(self):
        netlist = self.inverter()
        vectors = [{"a": cycle % 2} for cycle in range(11)]
        result = simulate(netlist, vectors)
        assert result.energy(1.5) == pytest.approx(
            result.switched_capacitance * 2.25
        )
        assert result.power(1.5, 1e6) == pytest.approx(
            result.energy(1.5) * 1e6 / 11
        )
        with pytest.raises(SimulationError):
            result.energy(0)

    def test_per_net_attribution(self):
        netlist = self.inverter()
        vectors = [{"a": cycle % 2} for cycle in range(3)]
        result = simulate(netlist, vectors)
        assert set(result.per_net) == {"a", "y"}


class TestRandomVectors:
    def test_shape_and_determinism(self):
        a = random_vectors(["x", "y"], 50, seed=3)
        b = random_vectors(["x", "y"], 50, seed=3)
        assert a == b
        assert len(a) == 50
        assert set(a[0]) == {"x", "y"}

    def test_probability(self):
        vectors = random_vectors(["x"], 2000, seed=1, probability=0.9)
        ones = sum(vector["x"] for vector in vectors)
        assert 0.85 < ones / 2000 < 0.95

    def test_validation(self):
        with pytest.raises(SimulationError):
            random_vectors(["x"], 10, probability=2.0)


@given(st.integers(min_value=0, max_value=255), st.integers(min_value=0, max_value=255))
def test_property_xor_gate_matches_python(a, b):
    """8-bit XOR array agrees with Python ^ for any operands."""
    netlist = Netlist()
    for bit in range(8):
        netlist.add_input(f"a{bit}")
        netlist.add_input(f"b{bit}")
        netlist.add_gate("xor", f"y{bit}", [f"a{bit}", f"b{bit}"])
    values = netlist.evaluate(
        {
            **{f"a{bit}": (a >> bit) & 1 for bit in range(8)},
            **{f"b{bit}": (b >> bit) & 1 for bit in range(8)},
        },
        {},
    )
    result = sum(values[f"y{bit}"] << bit for bit in range(8))
    assert result == a ^ b


class TestUnitDelaySimulation:
    """Event-driven unit-delay mode: hazards are measured, not modeled."""

    def chain_with_hazard(self):
        """a -> (a AND not(a)): a static-0 hazard generator.

        Zero-delay: the output is always 0, so nothing switches.
        Unit-delay: when `a` rises, the AND sees (new a, old not-a) for
        one time unit and pulses high — a counted glitch.
        """
        netlist = Netlist("hazard")
        netlist.add_input("a")
        netlist.add_gate("not", "na", ["a"])
        netlist.add_gate("and", "pulse", ["a", "na"])
        netlist.mark_output("pulse")
        return netlist

    def test_hazard_counted_only_by_unit_delay(self):
        from repro.sim.gatesim import simulate_unit_delay

        netlist = self.chain_with_hazard()
        vectors = [{"a": cycle % 2} for cycle in range(9)]
        zero = simulate(netlist, vectors)
        unit = simulate_unit_delay(netlist, vectors)
        # zero-delay: 'pulse' never changes
        assert "pulse" not in zero.per_net
        # unit-delay: the rising edges pulse it (up and back down)
        assert unit.per_net.get("pulse", 0.0) > 0.0
        assert unit.transitions > zero.transitions

    def test_settled_values_agree_with_zero_delay(self):
        """Glitches change energy, never logic: final register state is
        identical under both modes."""
        from repro.sim.activity import operand_vectors
        from repro.sim.gatesim import simulate_unit_delay
        from repro.sim.netlists import ripple_adder_netlist

        netlist = ripple_adder_netlist(8, registered=True)
        vectors = operand_vectors(60, 8, seed=12)
        # run both modes manually and compare captured sums every cycle
        state_zero = {q: 0 for q, _ in netlist.registers}
        for vector in vectors:
            values = netlist.evaluate(vector, state_zero)
            state_zero = {q: values[d] for q, d in netlist.registers}
        # the unit-delay path reaches the same place: glitches settle
        result_unit = simulate_unit_delay(netlist, vectors)
        result_zero = simulate(netlist, vectors)
        assert result_unit.cycles == result_zero.cycles
        # energy: unit-delay >= zero-delay, always
        assert (
            result_unit.switched_capacitance
            >= result_zero.switched_capacitance - 1e-18
        )

    def test_static_input_no_switching(self):
        from repro.sim.gatesim import simulate_unit_delay

        netlist = self.chain_with_hazard()
        result = simulate_unit_delay(netlist, [{"a": 1}] * 10)
        assert result.switched_capacitance == 0.0

    def test_glitch_fraction_tracks_logic_depth(self):
        """Deep reconvergent logic glitches hard; shallow logic barely."""
        from repro.sim.activity import operand_vectors
        from repro.sim.gatesim import glitch_energy_fraction
        from repro.sim.netlists import (
            array_multiplier_netlist,
            comparator_netlist,
        )

        mult = glitch_energy_fraction(
            array_multiplier_netlist(4, 4, registered=False),
            operand_vectors(150, 4, seed=7),
        )
        comp = glitch_energy_fraction(
            comparator_netlist(8), operand_vectors(150, 8, seed=7)
        )
        assert mult > 0.3
        assert comp < 0.05
        assert mult > comp

    def test_glitch_factor_knob_is_in_the_measured_range(self):
        """The zero-delay `glitch_factor` approximation used by the
        characterization flow must not be wildly off the measured
        hazard energy for the circuits it characterizes."""
        from repro.sim.activity import operand_vectors
        from repro.sim.gatesim import simulate_unit_delay
        from repro.sim.netlists import ripple_adder_netlist

        netlist = ripple_adder_netlist(16, registered=False)
        vectors = operand_vectors(200, 16, seed=3)
        approximated = simulate(netlist, vectors, glitch_factor=0.15)
        measured = simulate_unit_delay(netlist, vectors)
        ratio = (
            approximated.switched_capacitance
            / measured.switched_capacitance
        )
        assert 0.5 < ratio < 2.0  # within the paper's own octave
