"""The fictitious processor: assembler, executor, profiles."""

import pytest

from repro.sim.isa import (
    BUBBLE_SORT,
    INSERTION_SORT,
    Machine,
    assemble,
    run_sort_program,
)
from repro.errors import SimulationError


def run(source, memory=None, **kwargs):
    machine = Machine(**kwargs) if kwargs else Machine()
    return machine.run(assemble(source), memory=memory)


class TestAssembler:
    def test_labels_and_comments(self):
        program = assemble(
            """
            ; entry point
            start:  ldi r1, 5
                    jmp start
            """
        )
        assert program[0].opcode == "ldi"
        assert program[1].operands == (0,)

    def test_multiple_labels_one_line(self):
        program = assemble("a: b: nop\n jmp a\n jmp b")
        assert program[1].operands == (0,)
        assert program[2].operands == (0,)

    def test_unknown_opcode(self):
        with pytest.raises(SimulationError, match="unknown opcode"):
            assemble("frob r1, r2")

    def test_wrong_operand_count(self):
        with pytest.raises(SimulationError, match="operands"):
            assemble("add r1, r2")

    def test_bad_register(self):
        with pytest.raises(SimulationError, match="out of range"):
            assemble("ldi r9, 1")
        with pytest.raises(SimulationError, match="register"):
            assemble("mov r1, x2")

    def test_unknown_label(self):
        with pytest.raises(SimulationError, match="unknown label"):
            assemble("jmp nowhere")

    def test_duplicate_label(self):
        with pytest.raises(SimulationError, match="duplicate"):
            assemble("a: nop\na: nop")

    def test_immediates(self):
        program = assemble("ldi r1, 0x10\nldi r2, -3")
        assert program[0].operands == (1, 16)
        assert program[1].operands == (2, -3)

    def test_bad_immediate(self):
        with pytest.raises(SimulationError, match="immediate"):
            assemble("ldi r1, banana")


class TestExecution:
    def test_arithmetic(self):
        state, _profile = run(
            """
            ldi r1, 6
            ldi r2, 7
            mul r3, r1, r2
            add r4, r3, r1
            sub r5, r4, r2
            halt
            """
        )
        assert state.registers[3] == 42
        assert state.registers[4] == 48
        assert state.registers[5] == 41

    def test_logic_and_shifts(self):
        state, _profile = run(
            """
            ldi r1, 12
            ldi r2, 10
            and r3, r1, r2
            or  r4, r1, r2
            xor r5, r1, r2
            ldi r6, 2
            shl r7, r1, r6
            halt
            """
        )
        assert state.registers[3] == 8
        assert state.registers[4] == 14
        assert state.registers[5] == 6
        assert state.registers[7] == 48

    def test_memory(self):
        state, profile = run(
            """
            ldi r1, 3
            ldi r2, 99
            st  r2, r1, 2
            ld  r3, r1, 2
            halt
            """
        )
        assert state.memory[5] == 99
        assert state.registers[3] == 99
        assert profile.counts["load"] == 1
        assert profile.counts["store"] == 1

    def test_memory_bounds(self):
        with pytest.raises(SimulationError, match="out of range"):
            run("ldi r1, 5000\nld r2, r1, 0\nhalt")

    def test_branches_and_profile_classes(self):
        state, profile = run(
            """
            ldi r1, 3
            ldi r2, 0
            loop: addi r2, r2, 10
            subi r1, r1, 1
            bne r1, r0, loop
            halt
            """
        )
        assert state.registers[2] == 30
        assert profile.counts["branch_taken"] == 2
        assert profile.counts["branch"] == 1  # the fall-through exit

    def test_counted_instructions(self):
        state, profile = run("nop\nnop\nhalt")
        assert state.instructions_executed == 3
        assert profile.counts["nop"] == 3

    def test_runaway_guard(self):
        machine = Machine()
        program = assemble("loop: jmp loop")
        with pytest.raises(SimulationError, match="runaway"):
            machine.run(program, max_instructions=1000)

    def test_running_off_the_end(self):
        state, _profile = run("nop")
        assert not state.halted

    def test_initial_memory_too_large(self):
        machine = Machine(memory_words=4)
        with pytest.raises(SimulationError):
            machine.run(assemble("halt"), memory=[0] * 10)

    def test_empty_program(self):
        with pytest.raises(SimulationError):
            Machine().run([])


class TestSortPrograms:
    @pytest.mark.parametrize("source", [BUBBLE_SORT, INSERTION_SORT])
    def test_sorts_correctly(self, source):
        data = [9, 1, 8, 2, 7, 3, 6, 4, 5, 0, 5, 5]
        result, profile = run_sort_program(source, data)
        assert result == sorted(data)
        assert profile.total_instructions > 0

    def test_already_sorted_is_cheaper_for_insertion(self):
        data = list(range(30))
        _result, sorted_profile = run_sort_program(INSERTION_SORT, data)
        _result, reversed_profile = run_sort_program(
            INSERTION_SORT, list(reversed(data))
        )
        assert (
            sorted_profile.total_instructions
            < reversed_profile.total_instructions / 3
        )

    def test_single_element(self):
        result, _profile = run_sort_program(BUBBLE_SORT, [42])
        assert result == [42]

    def test_empty_rejected(self):
        with pytest.raises(SimulationError):
            run_sort_program(BUBBLE_SORT, [])

    def test_profile_has_memory_traffic(self):
        _result, profile = run_sort_program(BUBBLE_SORT, [3, 1, 2])
        assert profile.counts.get("load", 0) > 0
        assert profile.counts.get("store", 0) > 0
