"""Synthetic video source and frame utilities."""

import math

import pytest

from repro.sim.traces import (
    VideoConfig,
    VideoSource,
    blocks_to_frame,
    frame_to_blocks,
    mean_squared_error,
    peak_signal_to_noise,
)
from repro.errors import SimulationError


def small_config(**kwargs):
    defaults = dict(width=32, height=16, seed=5)
    defaults.update(kwargs)
    return VideoConfig(**defaults)


class TestVideoSource:
    def test_frame_shape_and_range(self):
        source = VideoSource(small_config())
        frame = source.next_frame()
        assert len(frame) == 16
        assert all(len(row) == 32 for row in frame)
        full_scale = (1 << 6) - 1
        assert all(0 <= pixel <= full_scale for row in frame for pixel in row)

    def test_deterministic(self):
        a = VideoSource(small_config()).next_frame()
        b = VideoSource(small_config()).next_frame()
        assert a == b

    def test_spatial_smoothness_reduces_gradient(self):
        def roughness(frame):
            total = count = 0
            for row in frame:
                for left, right in zip(row, row[1:]):
                    total += abs(left - right)
                    count += 1
            return total / count

        smooth = VideoSource(small_config(spatial_smoothness=0.95)).next_frame()
        noisy = VideoSource(small_config(spatial_smoothness=0.1)).next_frame()
        assert roughness(smooth) < roughness(noisy)

    def test_temporal_smoothness_links_frames(self):
        source = VideoSource(small_config(temporal_smoothness=0.95))
        first = source.next_frame()
        second = source.next_frame()
        jumpy_source = VideoSource(small_config(temporal_smoothness=0.0, seed=6))
        jf = jumpy_source.next_frame()
        js = jumpy_source.next_frame()
        assert mean_squared_error(first, second) < mean_squared_error(jf, js)

    def test_frames_iterator(self):
        source = VideoSource(small_config())
        frames = list(source.frames(3))
        assert len(frames) == 3
        assert source.frames_generated == 3

    def test_config_validation(self):
        with pytest.raises(SimulationError):
            VideoConfig(width=0)
        with pytest.raises(SimulationError):
            VideoConfig(depth=0)
        with pytest.raises(SimulationError):
            VideoConfig(spatial_smoothness=1.0)
        with pytest.raises(SimulationError):
            VideoSource(small_config()).frames(-1).__next__()


class TestBlockConversion:
    def test_round_trip(self):
        source = VideoSource(small_config())
        frame = source.next_frame()
        blocks = frame_to_blocks(frame, 16)
        assert blocks_to_frame(blocks, 32) == frame

    def test_block_count(self):
        frame = [[0] * 32 for _ in range(16)]
        assert len(frame_to_blocks(frame, 16)) == 32 * 16 // 16

    def test_width_must_divide(self):
        frame = [[0] * 30]
        with pytest.raises(SimulationError):
            frame_to_blocks(frame, 16)

    def test_reassembly_validation(self):
        with pytest.raises(SimulationError):
            blocks_to_frame([[0] * 16] * 3, 32)  # 1.5 rows


class TestMetrics:
    def test_identical_frames(self):
        frame = [[1, 2], [3, 4]]
        assert mean_squared_error(frame, frame) == 0.0
        assert peak_signal_to_noise(frame, frame) == math.inf

    def test_known_mse(self):
        a = [[0, 0]]
        b = [[3, 4]]
        assert mean_squared_error(a, b) == pytest.approx(12.5)

    def test_psnr_decreases_with_error(self):
        reference = [[10] * 8]
        close = [[11] * 8]
        far = [[30] * 8]
        assert peak_signal_to_noise(reference, close) > peak_signal_to_noise(
            reference, far
        )

    def test_shape_mismatch(self):
        with pytest.raises(SimulationError):
            mean_squared_error([[1]], [[1, 2]])
