"""Signal statistics and stimulus generation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.activity import (
    correlated_words,
    dual_bit_type,
    measure_bits,
    merge_vectors,
    operand_vectors,
    uniform_words,
    word_correlation,
    words_to_vectors,
)
from repro.errors import SimulationError


class TestMeasureBits:
    def test_known_stream(self):
        # alternating 0b01 / 0b10: every bit flips every cycle
        words = [0b01, 0b10] * 50
        stats = measure_bits(words, 2)
        assert stats.signal_probability == pytest.approx((0.5, 0.5))
        assert stats.transition_activity == pytest.approx((1.0, 1.0))

    def test_constant_stream(self):
        stats = measure_bits([0b11] * 20, 2)
        assert stats.signal_probability == (1.0, 1.0)
        assert stats.transition_activity == (0.0, 0.0)

    def test_average_activity(self):
        stats = measure_bits([0, 1] * 20, 2)
        assert stats.average_activity() == pytest.approx((1.0 + 0.0) / 2)

    def test_needs_two_words(self):
        with pytest.raises(SimulationError):
            measure_bits([1], 4)


class TestCorrelation:
    def test_uniform_is_uncorrelated(self):
        words = uniform_words(5000, 12, seed=2)
        assert abs(word_correlation(words)) < 0.05

    @pytest.mark.parametrize("rho", [0.5, 0.9])
    def test_target_correlation_achieved(self, rho):
        words = correlated_words(8000, 12, rho, seed=2)
        assert word_correlation(words) == pytest.approx(rho, abs=0.07)

    def test_correlated_msbs_are_quiet(self):
        """The dual-bit-type phenomenon: MSBs of correlated data flip
        far less than LSBs."""
        words = correlated_words(5000, 12, 0.95, seed=4)
        stats = measure_bits(words, 12)
        assert stats.transition_activity[-1] < 0.5 * stats.transition_activity[0]

    def test_rho_bounds(self):
        with pytest.raises(SimulationError):
            correlated_words(100, 8, 1.0)

    def test_correlation_needs_three(self):
        with pytest.raises(SimulationError):
            word_correlation([1, 2])


class TestDualBitType:
    def test_fit_on_correlated_stream(self):
        words = correlated_words(5000, 12, 0.95, seed=4)
        profile = dual_bit_type(measure_bits(words, 12))
        assert profile.breakpoint_low < profile.breakpoint_high
        assert profile.msb_activity < profile.lsb_activity

    def test_activity_of_bit_interpolates(self):
        words = correlated_words(5000, 12, 0.95, seed=4)
        profile = dual_bit_type(measure_bits(words, 12))
        low = profile.activity_of_bit(0)
        high = profile.activity_of_bit(11)
        middle = profile.activity_of_bit(
            (profile.breakpoint_low + profile.breakpoint_high) // 2
        )
        assert min(low, high) <= middle <= max(low, high)

    def test_needs_two_bits(self):
        stats = measure_bits([0, 1, 0, 1], 1)
        with pytest.raises(SimulationError):
            dual_bit_type(stats)


class TestVectors:
    def test_words_to_vectors(self):
        vectors = words_to_vectors([5], 4, "a")
        assert vectors == [{"a0": 1, "a1": 0, "a2": 1, "a3": 0}]

    def test_merge(self):
        merged = merge_vectors(
            words_to_vectors([1], 2, "a"), words_to_vectors([2], 2, "b")
        )
        assert merged == [{"a0": 1, "a1": 0, "b0": 0, "b1": 1}]

    def test_merge_overlap_rejected(self):
        with pytest.raises(SimulationError, match="overlap"):
            merge_vectors(
                words_to_vectors([1], 2, "a"), words_to_vectors([2], 2, "a")
            )

    def test_operand_vectors_shape(self):
        vectors = operand_vectors(10, 4)
        assert len(vectors) == 10
        assert set(vectors[0]) == {f"a{i}" for i in range(4)} | {
            f"b{i}" for i in range(4)
        }

    def test_operand_vectors_deterministic(self):
        assert operand_vectors(20, 4, seed=9) == operand_vectors(20, 4, seed=9)

    def test_operand_vectors_differ_across_operands(self):
        vectors = operand_vectors(200, 8, seed=9)
        a_stream = [sum(v[f"a{i}"] << i for i in range(8)) for v in vectors]
        b_stream = [sum(v[f"b{i}"] << i for i in range(8)) for v in vectors]
        assert a_stream != b_stream


@given(st.lists(st.integers(min_value=0, max_value=255), min_size=2, max_size=50))
def test_property_measure_round_trip(words):
    """Signal probabilities recover the mean bit values exactly."""
    stats = measure_bits(words, 8)
    for bit in range(8):
        expected = sum((word >> bit) & 1 for word in words) / len(words)
        assert stats.signal_probability[bit] == pytest.approx(expected)
