"""Functional correctness of the generated netlists."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.gatesim import Netlist, simulate
from repro.sim.netlists import (
    array_multiplier_netlist,
    comparator_netlist,
    memory_column_netlist,
    mux_tree_netlist,
    register_bank_netlist,
    ripple_adder_netlist,
)
from repro.errors import NetlistError


def bits_of(value, width, prefix):
    return {f"{prefix}{bit}": (value >> bit) & 1 for bit in range(width)}


def word_from(values, width, prefix):
    return sum(values[f"{prefix}{bit}"] << bit for bit in range(width))


class TestRippleAdder:
    @pytest.mark.parametrize("a,b", [(0, 0), (1, 1), (255, 1), (170, 85), (255, 255)])
    def test_combinational_addition(self, a, b):
        netlist = ripple_adder_netlist(8, registered=False)
        values = netlist.evaluate({**bits_of(a, 8, "a"), **bits_of(b, 8, "b")}, {})
        total = sum(values[f"fa{bit}_s"] << bit for bit in range(8))
        total += values["fa7_c"] << 8
        assert total == a + b

    def test_registered_variant_pipelines(self):
        netlist = ripple_adder_netlist(4, registered=True)
        state = {q: 0 for q, _d in netlist.registers}
        # cycle 1: present operands; cycle 2: operands reach the adder;
        # cycle 3: registered sum visible
        vectors = [
            {**bits_of(5, 4, "a"), **bits_of(9, 4, "b")},
        ] * 3
        for vector in vectors:
            values = netlist.evaluate(vector, state)
            state = {q: values[d] for q, d in netlist.registers}
        total = sum(state[f"rs{bit}"] << bit for bit in range(5))
        assert total == 14

    def test_validation(self):
        with pytest.raises(NetlistError):
            ripple_adder_netlist(0)

    @given(
        st.integers(min_value=0, max_value=2**12 - 1),
        st.integers(min_value=0, max_value=2**12 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_addition(self, a, b):
        netlist = ripple_adder_netlist(12, registered=False)
        values = netlist.evaluate(
            {**bits_of(a, 12, "a"), **bits_of(b, 12, "b")}, {}
        )
        total = sum(values[f"fa{bit}_s"] << bit for bit in range(12))
        total += values["fa11_c"] << 12
        assert total == a + b


class TestArrayMultiplier:
    @given(
        st.integers(min_value=0, max_value=31),
        st.integers(min_value=0, max_value=31),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_multiplication(self, a, b):
        netlist = array_multiplier_netlist(5, 5, registered=False)
        values = netlist.evaluate(
            {**bits_of(a, 5, "a"), **bits_of(b, 5, "b")}, {}
        )
        product = 0
        for index, net in enumerate(netlist.outputs):
            product += values[net] << index
        assert product == a * b

    def test_asymmetric(self):
        netlist = array_multiplier_netlist(3, 6, registered=False)
        values = netlist.evaluate(
            {**bits_of(5, 3, "a"), **bits_of(41, 6, "b")}, {}
        )
        product = sum(values[net] << i for i, net in enumerate(netlist.outputs))
        assert product == 5 * 41

    def test_capacitance_grows_bilinearly(self):
        """The physical origin of EQ 20."""
        from repro.sim.activity import operand_vectors

        small = array_multiplier_netlist(2, 2)
        large = array_multiplier_netlist(4, 4)
        r_small = simulate(small, operand_vectors(150, 2, seed=6))
        r_large = simulate(large, operand_vectors(150, 4, seed=6))
        ratio = r_large.capacitance_per_cycle / r_small.capacitance_per_cycle
        assert 2.0 < ratio < 8.0  # ~4x expected from 4x the bit pairs


class TestMuxTree:
    def test_selects_correct_port(self):
        netlist = mux_tree_netlist(bits=4, inputs=4)
        inputs = {}
        lane_values = [3, 9, 12, 6]
        for port in range(4):
            for lane in range(4):
                inputs[f"in{port}_{lane}"] = (lane_values[port] >> lane) & 1
        for selected in range(4):
            inputs["sel0"] = selected & 1
            inputs["sel1"] = (selected >> 1) & 1
            values = netlist.evaluate(inputs, {})
            out = sum(values[net] << lane for lane, net in enumerate(netlist.outputs))
            assert out == lane_values[selected]

    def test_power_of_two_required(self):
        with pytest.raises(NetlistError):
            mux_tree_netlist(4, 3)


class TestComparator:
    @given(
        st.integers(min_value=0, max_value=255),
        st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_equality(self, a, b):
        netlist = comparator_netlist(8)
        values = netlist.evaluate(
            {**bits_of(a, 8, "a"), **bits_of(b, 8, "b")}, {}
        )
        assert values["equal"] == int(a == b)


class TestRegisterBank:
    def test_pure_clock_load_when_idle(self):
        netlist = register_bank_netlist(8)
        result = simulate(netlist, [bits_of(0, 8, "d")] * 10)
        assert result.switched_capacitance == pytest.approx(
            result.clock_capacitance
        )


class TestMemoryColumn:
    def test_write_then_read(self):
        netlist = memory_column_netlist(4)
        state = {q: 0 for q, _d in netlist.registers}

        def step(address, write_data, write_enable):
            nonlocal state
            vector = {
                "addr0": address & 1,
                "addr1": (address >> 1) & 1,
                "write_data": write_data,
                "write_enable": write_enable,
            }
            values = netlist.evaluate(vector, state)
            state = {q: values[d] for q, d in netlist.registers}
            return values["bitline"]

        step(2, 1, 1)          # write 1 to word 2
        assert step(2, 0, 0) == 1   # read it back
        assert step(1, 0, 0) == 0   # other words untouched

    def test_word_count_validation(self):
        with pytest.raises(NetlistError):
            memory_column_netlist(3)

    def test_bitline_capacitance_grows_with_words(self):
        from repro.sim.gatesim import random_vectors

        small = memory_column_netlist(4)
        large = memory_column_netlist(16)
        vec_small = random_vectors(small.inputs, 100, seed=2)
        vec_large = random_vectors(large.inputs, 100, seed=2)
        r_small = simulate(small, vec_small)
        r_large = simulate(large, vec_large)
        assert (
            r_large.capacitance_per_cycle > 2 * r_small.capacitance_per_cycle
        )


class TestMemoryArray:
    def test_write_then_read_per_column(self):
        from repro.sim.netlists import memory_array_netlist

        netlist = memory_array_netlist(4, 2)
        state = {q: 0 for q, _d in netlist.registers}

        def step(address, data, write_enable):
            nonlocal state
            vector = {
                "addr0": address & 1,
                "addr1": (address >> 1) & 1,
                "write_enable": write_enable,
                "write_data0": data & 1,
                "write_data1": (data >> 1) & 1,
            }
            values = netlist.evaluate(vector, state)
            state = {q: values[d] for q, d in netlist.registers}
            return values["bitline0"] + (values["bitline1"] << 1)

        step(1, 0b10, 1)            # write 2 to word 1
        step(3, 0b11, 1)            # write 3 to word 3
        assert step(1, 0, 0) == 0b10
        assert step(3, 0, 0) == 0b11
        assert step(0, 0, 0) == 0

    def test_validation(self):
        from repro.sim.netlists import memory_array_netlist

        with pytest.raises(NetlistError):
            memory_array_netlist(3, 2)
        with pytest.raises(NetlistError):
            memory_array_netlist(4, 0)
