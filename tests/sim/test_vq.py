"""VQ codec and the luminance-chip architectures (Figures 1 and 3)."""

import pytest

from repro.sim.traces import VideoConfig, VideoSource, mean_squared_error
from repro.sim.vq import BLOCK_SIZE, Codebook, LuminanceChip, decode, encode
from repro.errors import SimulationError


def small_chip(words_per_access=1, codebook=None):
    return LuminanceChip(
        codebook or Codebook.uniform(),
        words_per_access=words_per_access,
        width=64,
        height=32,
    )


def small_video(seed=7, frames=2):
    source = VideoSource(VideoConfig(width=64, height=32, seed=seed))
    return list(source.frames(frames))


class TestCodebook:
    def test_uniform_shape(self):
        codebook = Codebook.uniform()
        assert codebook.size == 256
        assert codebook.block_size == BLOCK_SIZE
        assert codebook.index_bits == 8

    def test_value_range_enforced(self):
        with pytest.raises(SimulationError):
            Codebook([[99] * 16], depth=6)  # 99 > 63
        with pytest.raises(SimulationError):
            Codebook([])
        with pytest.raises(SimulationError):
            Codebook([[1] * 16, [1] * 8])

    def test_nearest_exact_match(self):
        codebook = Codebook.uniform()
        for index in (0, 17, 255):
            assert codebook.nearest(list(codebook[index])) in range(256)
            # the exact codeword must be at distance zero from itself
            found = codebook.nearest(list(codebook[index]))
            assert list(codebook[found]) == list(codebook[index])

    def test_index_bounds(self):
        codebook = Codebook.uniform()
        with pytest.raises(SimulationError):
            codebook[256]

    def test_training_beats_uniform(self):
        """k-means on the actual video reduces reconstruction error."""
        from repro.sim.traces import frame_to_blocks

        frames = small_video(frames=4)
        vectors = []
        for frame in frames:
            vectors.extend(frame_to_blocks(frame, BLOCK_SIZE))
        trained = Codebook.train(vectors, entries=64, iterations=6)
        uniform = Codebook.uniform(entries=64)
        test_frame = small_video(seed=8, frames=1)[0]
        err_trained = mean_squared_error(
            test_frame, decode(encode(test_frame, trained), trained, 64)
        )
        err_uniform = mean_squared_error(
            test_frame, decode(encode(test_frame, uniform), uniform, 64)
        )
        assert err_trained < err_uniform

    def test_training_needs_enough_vectors(self):
        with pytest.raises(SimulationError):
            Codebook.train([[0] * 16] * 10, entries=64)


class TestCodec:
    def test_encode_shape(self):
        codebook = Codebook.uniform()
        frame = small_video(frames=1)[0]
        indices = encode(frame, codebook)
        assert len(indices) == 64 * 32 // 16
        assert all(0 <= index < 256 for index in indices)

    def test_decode_round_trip_of_codewords(self):
        """A frame built from codewords reconstructs pixel-exactly.

        (Indices themselves need not round-trip: the uniform codebook
        contains equivalent codewords, and nearest() may pick either.)
        """
        codebook = Codebook.uniform()
        indices = [3, 250, 17, 99] * (64 * 32 // 16 // 4)
        frame = decode(indices, codebook, 64)
        recoded = encode(frame, codebook)
        assert decode(recoded, codebook, 64) == frame


class TestChipStructure:
    def test_paper_operating_point(self):
        chip = LuminanceChip(Codebook.uniform())
        assert chip.pixel_rate == pytest.approx(1.966e6, rel=1e-3)
        assert chip.bank_words == 2048
        assert chip.lut_words == 4096
        assert chip.lut_bits == 6

    def test_figure3_organization(self):
        chip = LuminanceChip(Codebook.uniform(), words_per_access=4)
        assert chip.lut_words == 1024
        assert chip.lut_bits == 24

    def test_words_per_access_must_divide(self):
        with pytest.raises(SimulationError):
            LuminanceChip(Codebook.uniform(), words_per_access=3)

    def test_display_rate_multiple(self):
        with pytest.raises(SimulationError):
            LuminanceChip(Codebook.uniform(), display_fps=50, source_fps=30)

    def test_width_multiple_of_block(self):
        with pytest.raises(SimulationError):
            LuminanceChip(Codebook.uniform(), width=60)


class TestChipOperation:
    def test_requires_a_frame_before_display(self):
        with pytest.raises(SimulationError, match="no frame"):
            small_chip().display_frame()

    def test_displayed_frame_is_decoded_bank(self):
        chip = small_chip()
        frame = small_video(frames=1)[0]
        indices = chip.receive_frame(frame)
        displayed = chip.display_frame()
        assert displayed == decode(indices, chip.codebook, 64)

    def test_access_counts_exact(self):
        chip = small_chip(words_per_access=1)
        chip.run(small_video(frames=1))
        pixels = 64 * 32
        blocks = pixels // 16
        repeats = chip.repeats_per_source_frame
        counts = chip.counts
        assert counts.write_bank_writes == blocks
        assert counts.read_bank_reads == blocks * repeats
        assert counts.lut_reads == pixels * repeats
        assert counts.output_register_loads == pixels * repeats
        assert counts.output_mux_selects == 0

    def test_figure3_counts(self):
        chip = small_chip(words_per_access=4)
        chip.run(small_video(frames=1))
        pixels = 64 * 32
        repeats = chip.repeats_per_source_frame
        assert chip.counts.lut_reads == (pixels // 4) * repeats
        assert chip.counts.output_mux_selects == pixels * repeats

    def test_measured_rates_match_paper_relations(self):
        """f, f/16, f/32 — the numbers the paper derives."""
        chip = small_chip(words_per_access=1)
        chip.run(small_video(frames=2))
        rates = chip.access_rates()
        f = chip.pixel_rate
        assert rates["lut"] == pytest.approx(f)
        assert rates["read_bank"] == pytest.approx(f / 16)
        assert rates["write_bank"] == pytest.approx(f / 32)

    def test_measured_equals_expected(self):
        for words in (1, 2, 4, 8, 16):
            chip = small_chip(words_per_access=words)
            chip.run(small_video(frames=2))
            measured = chip.access_rates()
            expected = chip.expected_rates()
            for key in ("lut", "read_bank", "write_bank", "output_register"):
                assert measured[key] == pytest.approx(expected[key]), (words, key)

    def test_rates_need_simulation(self):
        with pytest.raises(SimulationError):
            small_chip().access_rates()

    def test_ping_pong_swaps(self):
        chip = small_chip()
        frames = small_video(frames=2)
        first_indices = chip.receive_frame(frames[0])
        second_indices = chip.receive_frame(frames[1])
        # after two receives the banks hold both frames
        assert chip._banks[chip._read_bank] == second_indices
        assert chip._banks[1 - chip._read_bank] == first_indices

    def test_merged_counts(self):
        a = small_chip()
        a.run(small_video(frames=1))
        merged = a.counts.merged(a.counts)
        assert merged.lut_reads == 2 * a.counts.lut_reads
        assert merged.frames_displayed == 2 * a.counts.frames_displayed
