"""Streaming prediction: lazy windows, Pareto mask, uncertainty band."""

import numpy as np
import pytest

from repro.errors import SurrogateError
from repro.explore import Axis, DerivedObjective, ParameterSpace, pareto_rows
from repro.surrogate import axis_matrix, fit_objective, pareto_mask, scan_space


def make_space(nx=9, ny=7):
    return ParameterSpace(
        [
            Axis("x", tuple(1.0 + 0.25 * i for i in range(nx))),
            Axis("y", tuple(0.5 + 0.25 * i for i in range(ny))),
        ]
    )


def exact_fn(matrix):
    x, y = matrix[:, 0], matrix[:, 1]
    return 1.0 + 2.0 * x + 0.5 * y + 0.25 * x * y


def fitted(space, name="power"):
    matrix = axis_matrix(space, 0, len(space))
    return fit_objective(matrix, exact_fn(matrix), name, basis="quadratic")


class TestAxisMatrix:
    def test_rows_match_point_enumeration(self):
        space = make_space(4, 3)
        matrix = axis_matrix(space, 0, len(space))
        for index in range(len(space)):
            values = space.point(index)["values"]
            assert matrix[index, 0] == values["x"]
            assert matrix[index, 1] == values["y"]

    def test_window_slice_matches_full(self):
        space = make_space()
        full = axis_matrix(space, 0, len(space))
        window = axis_matrix(space, 13, 29)
        np.testing.assert_array_equal(window, full[13:29])

    def test_out_of_range_window_rejected(self):
        space = make_space()
        with pytest.raises(SurrogateError, match="out of range"):
            axis_matrix(space, 0, len(space) + 1)


class TestParetoMask:
    def brute_force(self, vectors):
        n = len(vectors)
        keep = []
        for i in range(n):
            dominated = any(
                all(vectors[j][k] <= vectors[i][k]
                    for k in range(len(vectors[i])))
                and any(vectors[j][k] < vectors[i][k]
                        for k in range(len(vectors[i])))
                for j in range(n) if j != i
            )
            keep.append(not dominated)
        return np.array(keep)

    @pytest.mark.parametrize("columns", [2, 3, 4])
    def test_matches_brute_force(self, columns):
        rng = np.random.default_rng(columns)
        vectors = rng.integers(0, 6, size=(200, columns)).astype(float)
        np.testing.assert_array_equal(
            pareto_mask(vectors), self.brute_force(vectors)
        )

    def test_ties_on_full_vector_all_survive(self):
        vectors = np.array([[1.0, 2.0], [1.0, 2.0], [0.5, 3.0]])
        assert pareto_mask(vectors).tolist() == [True, True, True]

    def test_empty(self):
        assert pareto_mask(np.empty((0, 2))).size == 0

    def test_matches_pareto_rows_semantics(self):
        rng = np.random.default_rng(17)
        vectors = rng.integers(0, 5, size=(120, 2)).astype(float)
        rows = [
            {
                "index": i,
                "values": {"x": 0.0},
                "overrides": {},
                "objectives": {"a": float(v[0]), "b": float(v[1])},
                "error": "",
            }
            for i, v in enumerate(vectors)
        ]
        expected = {r["index"] for r in pareto_rows(rows, ("a", "b"))}
        assert set(np.flatnonzero(pareto_mask(vectors))) == expected


class TestScanSpace:
    def test_front_matches_exact_enumeration(self):
        space = ParameterSpace(
            [
                Axis("x", (1.0, 1.5, 2.0, 2.5, 3.0)),
                Axis("y", (0.5, 1.0, 1.5, 2.0)),
            ]
        )
        matrix = axis_matrix(space, 0, len(space))
        power = fit_objective(matrix, exact_fn(matrix), "power",
                              basis="quadratic")
        # second objective favors big x: a real trade-off, a real front
        area = fit_objective(matrix, 10.0 / matrix[:, 0], "area",
                             basis="log")
        scan = scan_space(
            space, {"power": power, "area": area}, ["power", "area"],
            chunk_size=7,
        )
        vectors = np.column_stack(
            [power.predict(matrix), area.predict(matrix)]
        )
        expected = sorted(np.flatnonzero(pareto_mask(vectors)).tolist())
        assert scan.front_indices == expected
        assert scan.scanned_points == len(space)

    def test_chunk_size_does_not_change_result(self):
        space = make_space()
        fits = {"power": fitted(space)}
        small = scan_space(space, fits, ["power"], chunk_size=5,
                           keep_uncertain=10)
        large = scan_space(space, fits, ["power"], chunk_size=1000,
                          keep_uncertain=10)
        assert small.front_indices == large.front_indices
        assert small.uncertain_indices == large.uncertain_indices
        assert small.predicted == large.predicted

    def test_derived_objective_computed_on_predictions(self):
        space = make_space(5, 5)
        fits = {"power": fitted(space)}
        derived = (DerivedObjective("doubled", "power * 2"),)
        scan = scan_space(space, fits, ["power"], derived, chunk_size=6)
        for index, values in scan.predicted.items():
            assert values["doubled"] == pytest.approx(2 * values["power"])

    def test_non_finite_predictions_dropped_and_counted(self):
        space = make_space(5, 5)
        fits = {"power": fitted(space)}
        # 1/(x - 2) explodes on the x == 2.0 column of the grid
        derived = (DerivedObjective("bad", "1 / (x - 2)"),)
        scan = scan_space(space, fits, ["power"], derived, chunk_size=6)
        assert scan.dropped_non_finite == 5
        assert all(
            np.isfinite(list(values.values())).all()
            for values in scan.predicted.values()
        )

    def test_band_excludes_front_and_orders_by_score(self):
        space = make_space()
        fits = {"power": fitted(space)}
        scan = scan_space(space, fits, ["power"], keep_uncertain=8)
        assert not set(scan.uncertain_indices) & set(scan.front_indices)
        scores = [scan.scores[i] for i in scan.uncertain_indices]
        assert scores == sorted(scores, reverse=True)

    def test_predictions_recorded_for_all_kept_rows(self):
        space = make_space()
        fits = {"power": fitted(space)}
        scan = scan_space(space, fits, ["power"], chunk_size=4,
                          keep_uncertain=12)
        wanted = set(scan.front_indices) | set(scan.uncertain_indices)
        assert wanted == set(scan.predicted)

    def test_missing_fit_rejected(self):
        space = make_space()
        with pytest.raises(SurrogateError, match="no surrogate fit"):
            scan_space(space, {}, ["power"])
