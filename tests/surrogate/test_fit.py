"""Surrogate regression fits: recovery, honesty, and failure modes."""

import numpy as np
import pytest

from repro.errors import SurrogateError
from repro.surrogate import BASIS_NAMES, SurrogateFit, fit_objective, fit_surrogates


def grid(nx=8, ny=8):
    xs = np.linspace(1.0, 3.0, nx)
    ys = np.linspace(0.5, 2.0, ny)
    return np.array([[x, y] for x in xs for y in ys])


def quadratic(matrix):
    x, y = matrix[:, 0], matrix[:, 1]
    return 2.0 + 3.0 * x + 0.5 * y + 1.25 * x * x + 0.75 * x * y


class TestFitObjective:
    def test_quadratic_recovered_exactly(self):
        matrix = grid()
        fit = fit_objective(matrix, quadratic(matrix), "power",
                            basis="quadratic")
        assert fit.holdout_max_rel < 1e-9
        predicted = fit.predict(matrix)
        np.testing.assert_allclose(predicted, quadratic(matrix), rtol=1e-9)

    def test_auto_picks_a_low_error_basis(self):
        matrix = grid()
        fit = fit_objective(matrix, quadratic(matrix), "power", basis="auto")
        assert fit.basis in BASIS_NAMES
        assert fit.holdout_p95_rel < 1e-9

    def test_log_basis_recovers_log_polynomial(self):
        matrix = grid()
        lx, ly = np.log(matrix[:, 0]), np.log(matrix[:, 1])
        measured = 4.0 + 2.0 * lx - 1.3 * ly + 0.7 * lx * ly + ly * ly
        fit = fit_objective(matrix, measured, "power", basis="log")
        assert fit.log_features
        assert fit.holdout_max_rel < 1e-9

    def test_log_basis_rejects_non_positive_axes(self):
        matrix = grid()
        matrix[0, 0] = 0.0
        with pytest.raises(SurrogateError, match="strictly positive"):
            fit_objective(matrix, quadratic(grid()), "power", basis="log")

    def test_unknown_basis_rejected(self):
        matrix = grid()
        with pytest.raises(SurrogateError, match="unknown surrogate basis"):
            fit_objective(matrix, quadratic(matrix), "power",
                          basis="spline")

    def test_named_basis_failure_is_fatal(self):
        # 6 rows cannot support a 10-column cubic basis over 1 axis?
        # use duplicated single-axis rows: rank-deficient quadratic
        matrix = np.array([[1.0], [1.0], [1.0], [1.0], [1.0],
                           [1.0], [1.0], [1.0], [1.0], [1.0]])
        measured = np.ones(10)
        with pytest.raises(SurrogateError, match="basis 'quadratic' failed"):
            fit_objective(matrix, measured, "power", basis="quadratic")

    def test_non_finite_measured_rejected(self):
        matrix = grid(4, 4)
        measured = quadratic(matrix)
        measured[3] = np.nan
        with pytest.raises(SurrogateError, match="non-finite measured"):
            fit_objective(matrix, measured, "power")

    def test_non_finite_axis_rejected(self):
        matrix = grid(4, 4)
        measured = quadratic(matrix)
        matrix[2, 1] = np.inf
        with pytest.raises(SurrogateError, match="non-finite axis"):
            fit_objective(matrix, measured, "power")

    def test_holdout_is_honest_for_a_bad_model(self):
        # a cliff no polynomial tracks: the holdout bound must be large
        rng = np.random.default_rng(0)
        matrix = grid(10, 10)
        measured = np.where(matrix[:, 0] > 2.0, 100.0, 1.0)
        measured = measured + rng.normal(0, 1e-6, measured.shape)
        fit = fit_objective(matrix, measured, "power", basis="linear")
        assert fit.holdout_max_rel > 0.1

    def test_payload_round_trip(self):
        matrix = grid()
        fit = fit_objective(matrix, quadratic(matrix), "power")
        clone = SurrogateFit.from_payload(fit.to_payload())
        np.testing.assert_allclose(
            clone.predict(matrix), fit.predict(matrix)
        )
        assert clone.basis == fit.basis
        assert clone.terms == fit.terms

    def test_corrupt_payload_raises(self):
        with pytest.raises(SurrogateError, match="corrupt"):
            SurrogateFit.from_payload({"basis": "linear"})

    def test_leverage_highest_outside_training_cloud(self):
        matrix = grid()
        fit = fit_objective(matrix, quadratic(matrix), "power",
                            basis="linear")
        inside = fit.leverage(np.array([[2.0, 1.2]]))[0]
        outside = fit.leverage(np.array([[6.0, 5.0]]))[0]
        assert outside > inside


def rows_from(matrix, measured, errors=()):
    rows = []
    for i, (point, value) in enumerate(zip(matrix, measured)):
        rows.append(
            {
                "index": i,
                "values": {"x": float(point[0]), "y": float(point[1])},
                "objectives": {"power": float(value)},
                "error": "boom" if i in errors else "",
            }
        )
    return rows


class TestFitSurrogates:
    def test_fits_every_objective(self):
        matrix = grid()
        fits = fit_surrogates(
            rows_from(matrix, quadratic(matrix)), ["x", "y"], ["power"]
        )
        assert set(fits) == {"power"}

    def test_failed_rows_dropped(self):
        matrix = grid(4, 4)
        measured = quadratic(matrix)
        measured[5] = np.nan  # failed row's garbage must not matter
        fits = fit_surrogates(
            rows_from(matrix, measured, errors={5}), ["x", "y"], ["power"]
        )
        assert fits["power"].holdout_max_rel < 1e-9

    def test_too_few_usable_rows(self):
        matrix = grid(2, 2)
        with pytest.raises(SurrogateError, match="need at least 8"):
            fit_surrogates(
                rows_from(matrix, quadratic(matrix)), ["x", "y"], ["power"]
            )

    def test_max_error_budget_enforced(self):
        matrix = grid(10, 10)
        measured = np.where(matrix[:, 0] > 2.0, 100.0, 1.0)
        with pytest.raises(SurrogateError, match="max-error"):
            fit_surrogates(
                rows_from(matrix, measured), ["x", "y"], ["power"],
                basis="linear", max_error=0.01,
            )
