"""Training-set selection: corners always in, seeded and deterministic."""

import pytest

from repro.errors import SurrogateError
from repro.explore import Axis, ParameterSpace
from repro.surrogate import (
    MIN_TRAINING_POINTS,
    chunk_indices,
    corner_indices,
    training_indices,
)
from repro.surrogate.sampling import axis_strides


def space_3d(a=7, b=5, c=3):
    return ParameterSpace(
        [
            Axis("x", tuple(1.0 + 0.1 * i for i in range(a))),
            Axis("y", tuple(2.0 + 0.1 * i for i in range(b))),
            Axis("z", tuple(3.0 + 0.1 * i for i in range(c))),
        ]
    )


class TestStridesAndCorners:
    def test_strides_are_row_major(self):
        space = space_3d(7, 5, 3)
        assert axis_strides(space) == [15, 3, 1]

    def test_strides_match_point_enumeration(self):
        space = space_3d(4, 3, 2)
        strides = axis_strides(space)
        for index in range(len(space)):
            values = space.point(index)["values"]
            for axis, stride in zip(space.axes, strides):
                position = (index // stride) % len(axis)
                assert values[axis.name] == axis.values[position]

    def test_all_corners_present(self):
        space = space_3d(7, 5, 3)
        corners = corner_indices(space)
        assert len(corners) == 8  # 2^3 distinct extremes
        values = [space.point(i)["values"] for i in corners]
        for point in values:
            assert point["x"] in (1.0, 1.6)
            assert point["y"] in (2.0, 2.4)
            assert point["z"] in (3.0, 3.2)

    def test_single_value_axis_collapses_corners(self):
        space = ParameterSpace(
            [Axis("x", (1.0, 2.0)), Axis("y", (5.0,))]
        )
        assert corner_indices(space) == [0, 1]


class TestTrainingIndices:
    def test_deterministic_per_seed(self):
        space = space_3d()
        first = training_indices(space, fraction=0.3, seed=42)
        second = training_indices(space, fraction=0.3, seed=42)
        assert first == second

    def test_seed_changes_selection(self):
        space = space_3d()
        assert training_indices(space, 0.5, seed=1) != training_indices(
            space, 0.5, seed=2
        )

    def test_sorted_unique_and_in_range(self):
        space = space_3d()
        chosen = training_indices(space, fraction=0.4, seed=7)
        assert chosen == sorted(set(chosen))
        assert all(0 <= i < len(space) for i in chosen)

    def test_corners_always_included(self):
        space = space_3d()
        chosen = set(training_indices(space, fraction=0.3, seed=9))
        assert chosen >= set(corner_indices(space))

    def test_minimum_floor_applies(self):
        space = space_3d()  # 105 points; 1% would be 1
        chosen = training_indices(space, fraction=0.01, seed=3)
        assert len(chosen) >= MIN_TRAINING_POINTS

    def test_full_fraction_is_everything(self):
        space = space_3d(4, 3, 2)
        chosen = training_indices(space, 1.0, seed=5, minimum=1)
        assert chosen == list(range(len(space)))

    @pytest.mark.parametrize("fraction", [0.0, -0.5, 1.5])
    def test_bad_fraction_rejected(self, fraction):
        with pytest.raises(SurrogateError):
            training_indices(space_3d(), fraction=fraction)

    def test_stratification_covers_index_range(self):
        space = space_3d(10, 10, 1)  # 100 points
        chosen = training_indices(space, fraction=0.5, seed=11)
        # with 50 points over 100 indices, every quarter must be hit
        for lo in (0, 25, 50, 75):
            assert any(lo <= i < lo + 25 for i in chosen)


class TestChunkIndices:
    def test_shards_preserve_order(self):
        chunks = chunk_indices([3, 1, 4, 1, 5, 9, 2], 3)
        assert chunks == [[3, 1, 4], [1, 5, 9], [2]]

    def test_empty_input(self):
        assert chunk_indices([], 8) == []

    def test_bad_chunk_size(self):
        with pytest.raises(SurrogateError):
            chunk_indices([1, 2], 0)
