"""The surrogate job lifecycle: phases, checkpoints, kill -> resume."""

import json

import pytest

from repro.core.design import Design
from repro.core.expressions import compile_expression as E
from repro.core.model import CapacitiveTerm, TemplatePowerModel
from repro.core.parameters import Parameter
from repro.errors import JobError
from repro.explore import (
    Axis,
    DerivedObjective,
    JobStore,
    ParameterSpace,
    export_json,
)
from repro.explore.engine import run_job
from repro.surrogate import surrogate_pending, surrogate_report
from repro.surrogate.runner import train_plan, verify_plan

ADDER = TemplatePowerModel(
    "adder",
    capacitive=[CapacitiveTerm("bits", E("bitwidth * 68f"))],
    parameters=(Parameter("bitwidth", 16),),
)


def make_design():
    design = Design("d")
    design.scope.set("VDD", 1.5)
    design.scope.set("f", 2e6)
    design.add("alu", ADDER)
    return design


def make_space():
    return ParameterSpace(
        [
            Axis("VDD", tuple(1.0 + 0.05 * i for i in range(20))),
            Axis("bits", tuple(float(b) for b in range(8, 18, 1)),
                 target="alu.bitwidth"),
        ]
    )


SURROGATE = {"train_frac": 0.25, "train_seed": 7, "verify_top": 12}


def make_job(tmp_path, name="a", **overrides):
    store = JobStore(tmp_path / name)
    config = dict(SURROGATE)
    config.update(overrides)
    job = store.create(
        make_design(), make_space(), objectives=("power",),
        # a second, opposing objective gives the front real extent, so
        # the verification budget cannot cover it and some rows stay
        # ``predicted`` — the interesting half of the contract
        derived=(DerivedObjective("slowness", "1 / VDD"),),
        chunk_size=16, surrogate=config,
    )
    return store, job


class TestLifecycle:
    def test_runs_to_done(self, tmp_path):
        _, job = make_job(tmp_path)
        run_job(job)
        assert job.state == "done"
        assert not surrogate_pending(job)
        rows = job.result_rows()
        assert {row["source"] for row in rows} == {"exact", "predicted"}
        assert rows == sorted(rows, key=lambda r: r["index"])

    def test_train_rows_bit_identical_to_exact(self, tmp_path):
        _, job = make_job(tmp_path)
        run_job(job)
        from repro.explore.batcheval import BatchEvaluator

        evaluator = BatchEvaluator(make_design(), ("power",))
        for row in job.result_rows():
            if row["source"] != "exact":
                continue
            exact = evaluator.evaluate(row["overrides"])
            assert row["objectives"]["power"] == exact["power"]

    def test_verified_front_is_exact(self, tmp_path):
        _, job = make_job(tmp_path)
        run_job(job)
        report = surrogate_report(job)
        assert report.verified_points > 0
        assert report.error_bound < 1e-9  # polynomial model, exact fit
        assert report.observed_max_rel < 1e-9

    def test_result_rows_raise_while_pending(self, tmp_path):
        _, job = make_job(tmp_path)
        with pytest.raises(JobError, match="incomplete"):
            job.result_rows()

    def test_phase_plans_are_deterministic(self, tmp_path):
        _, job = make_job(tmp_path)
        first = train_plan(job)
        second = train_plan(job)
        assert first == second
        assert verify_plan(job) == []  # no plan checkpoint yet


class TestKillResume:
    def run_with_budget(self, job, budget):
        """Run the job but stop after ``budget`` chunk checkpoints."""
        seen = {"n": 0}

        def stop():
            return seen["n"] >= budget

        original = job.record_phase_chunk

        def counting(phase, ordinal, indices, rows, seconds):
            original(phase, ordinal, indices, rows, seconds)
            seen["n"] += 1

        job.record_phase_chunk = counting
        try:
            run_job(job, should_stop=stop)
        finally:
            job.record_phase_chunk = original

    def test_interrupt_then_resume_is_byte_identical(self, tmp_path):
        _, baseline = make_job(tmp_path, "base")
        run_job(baseline)
        expected = export_json(
            baseline.result_rows(), ["VDD", "bits"], ["power", "slowness"]
        )

        store, job = make_job(tmp_path, "resumed")
        self.run_with_budget(job, 1)
        assert job.state == "cancelled"
        assert surrogate_pending(job)

        # a fresh process: reload the checkpoint from disk and resume
        store.forget(job.job_id)
        revived = store.job(job.job_id)
        run_job(revived)
        assert revived.state == "done"
        actual = export_json(
            revived.result_rows(), ["VDD", "bits"], ["power", "slowness"]
        )
        assert actual == expected

    def test_resume_after_plan_skips_refit(self, tmp_path):
        store, job = make_job(tmp_path, "late")
        run_job(job)
        plan_before = json.dumps(job.phase_data("plan"), sort_keys=True)
        store.forget(job.job_id)
        revived = store.job(job.job_id)
        assert not surrogate_pending(revived)
        plan_after = json.dumps(
            revived.phase_data("plan"), sort_keys=True
        )
        assert plan_after == plan_before


class TestReport:
    def test_report_shape(self, tmp_path):
        _, job = make_job(tmp_path)
        run_job(job)
        report = surrogate_report(job)
        payload = report.to_payload()
        assert payload["total_points"] == len(job.space)
        assert payload["train_points"] >= 32
        assert payload["predicted_points"] == len(job.space)
        assert set(payload["fits"]) == {"power"}
        assert payload["verified_points"] <= SURROGATE["verify_top"]
        # every front row is either exact (train/verified) or counted
        assert payload["unverified_front"] >= 0

    def test_seconds_excluded_from_rows(self, tmp_path):
        """Timing is informational; the export never contains it."""
        _, job = make_job(tmp_path)
        run_job(job)
        text = export_json(
            job.result_rows(), ["VDD", "bits"], ["power", "slowness"]
        )
        assert "seconds" not in text

    def test_summary_flags_surrogate(self, tmp_path):
        _, job = make_job(tmp_path)
        assert job.summary()["surrogate"] is True
