"""Backend-conformance suite: every StateBackend honors one contract.

Parametrized over all ``BACKEND_KINDS`` so a new backend cannot ship
without proving the same properties the stores rely on:

* atomic save/load round-trips, last-writer-wins, namespace isolation;
* per-key locking prevents lost updates under thread concurrency;
* a ``kill -9`` mid-write leaves a previous-or-new complete document,
  never a torn one (subprocess SIGKILL, both backends);
* unreadable documents quarantine — bytes preserved, key reads absent,
  audit trail recorded — and :class:`UserStore` surfaces that audit
  identically over any backend.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.errors import StateError
from repro.state import (
    BACKEND_KINDS,
    FileBackend,
    SQLiteBackend,
    open_backend,
)
from repro.web.session import UserStore


@pytest.fixture(params=BACKEND_KINDS)
def backend(request, tmp_path):
    opened = open_backend(request.param, tmp_path / "state")
    yield opened
    opened.close()


class TestDocuments:
    def test_round_trip(self, backend):
        assert backend.load("users", "alice") is None
        backend.save("users", "alice", '{"n": 1}')
        assert backend.load("users", "alice") == '{"n": 1}'
        assert backend.keys("users") == ["alice"]
        assert backend.mtime("users", "alice") is not None

    def test_last_writer_wins(self, backend):
        backend.save("users", "bob", "first")
        backend.save("users", "bob", "second")
        assert backend.load("users", "bob") == "second"

    def test_delete(self, backend):
        backend.save("jobs", "job-0001", "{}")
        assert backend.delete("jobs", "job-0001") is True
        assert backend.load("jobs", "job-0001") is None
        assert backend.delete("jobs", "job-0001") is False

    def test_namespaces_are_isolated(self, backend):
        backend.save("users", "zed", "user doc")
        backend.save("jobs", "zed", "job doc")
        assert backend.load("users", "zed") == "user doc"
        assert backend.load("jobs", "zed") == "job doc"
        backend.delete("jobs", "zed")
        assert backend.load("users", "zed") == "user doc"

    def test_keys_sorted_per_namespace(self, backend):
        for key in ("mallory", "alice", "bob"):
            backend.save("users", key, "{}")
        backend.save("registry", "entry--sram--v1", "{}")
        assert backend.keys("users") == ["alice", "bob", "mallory"]
        assert backend.keys("registry") == ["entry--sram--v1"]

    @pytest.mark.parametrize(
        "bad", ["", ".sneaky", "a/b", "a\nb", "-lead", "x" * 200]
    )
    def test_invalid_keys_rejected(self, backend, bad):
        with pytest.raises(StateError):
            backend.save("users", bad, "{}")

    def test_mtime_absent_is_none(self, backend):
        assert backend.mtime("users", "ghost") is None

    def test_writable_and_lifecycle(self, backend):
        assert backend.writable() is True
        backend.flush()  # never raises, even with nothing buffered

    def test_context_manager_closes(self, tmp_path):
        with open_backend("sqlite", tmp_path / "cm") as backend:
            backend.save("users", "a", "{}")
        with pytest.raises(StateError):
            backend.save("users", "b", "{}")


class TestConcurrency:
    def test_per_key_lock_prevents_lost_updates(self, backend):
        """Read-modify-write under backend.lock() loses no increment."""
        backend.save("users", "counter", '{"n": 0}')
        threads_n, per_thread = 8, 40
        errors = []

        def bump():
            try:
                for _ in range(per_thread):
                    with backend.lock("users", "counter"):
                        doc = json.loads(backend.load("users", "counter"))
                        doc["n"] += 1
                        backend.save("users", "counter", json.dumps(doc))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=bump) for _ in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        final = json.loads(backend.load("users", "counter"))
        assert final["n"] == threads_n * per_thread

    def test_concurrent_distinct_keys_dont_interfere(self, backend):
        errors = []

        def hammer(key):
            try:
                for i in range(30):
                    backend.save("users", key, json.dumps({key: i}))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(f"user{n}",))
            for n in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        for n in range(6):
            doc = json.loads(backend.load("users", f"user{n}"))
            assert doc == {f"user{n}": 29}

    def test_lock_is_per_key_and_reentrant(self, backend):
        lock = backend.lock("users", "alice")
        assert backend.lock("users", "alice") is lock
        assert backend.lock("users", "bob") is not lock
        assert backend.lock("jobs", "alice") is not lock
        with lock:
            with lock:  # re-entrant by contract
                pass


_CRASH_WRITER = """
import json, sys
from pathlib import Path
from repro.state import open_backend

backend = open_backend(sys.argv[1], Path(sys.argv[2]))
fill = "x" * 20000
i = 0
print("GO", flush=True)
while True:
    i += 1
    backend.save("users", "victim", json.dumps({"n": i, "fill": fill}))
"""


@pytest.mark.slow
class TestCrashWindow:
    @pytest.mark.parametrize("kind", BACKEND_KINDS)
    def test_sigkill_mid_write_leaves_complete_document(
        self, kind, tmp_path
    ):
        """A writer SIGKILLed at an arbitrary instant (statistically
        mid-write, given the loop) must leave a previous-or-new complete
        document — never a torn one — under either backend."""
        root = tmp_path / "state"
        process = subprocess.Popen(
            [sys.executable, "-c", _CRASH_WRITER, kind, str(root)],
            stdout=subprocess.PIPE,
            text=True,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=str(Path(__file__).resolve().parents[2]),
        )
        try:
            assert process.stdout.readline().strip() == "GO"
            time.sleep(0.3)  # let many saves (and one in-flight) happen
        finally:
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=10)
            process.stdout.close()

        survivor = open_backend(kind, root)
        try:
            text = survivor.load("users", "victim")
            assert text is not None, "no complete save survived"
            doc = json.loads(text)  # would raise on a torn document
            assert doc["n"] >= 1
            assert doc["fill"] == "x" * 20000
            assert survivor.quarantined == []
        finally:
            survivor.close()

    def test_file_backend_leaves_no_temp_litter(self, tmp_path):
        root = tmp_path / "state"
        process = subprocess.Popen(
            [sys.executable, "-c", _CRASH_WRITER, "file", str(root)],
            stdout=subprocess.PIPE,
            text=True,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=str(Path(__file__).resolve().parents[2]),
        )
        try:
            assert process.stdout.readline().strip() == "GO"
            time.sleep(0.2)
        finally:
            process.send_signal(signal.SIGKILL)
            process.wait(timeout=10)
            process.stdout.close()
        # at most the one temp being written when the kill landed; it
        # must be a dotfile keys() can never mistake for a document
        leftovers = [p.name for p in root.iterdir() if p.suffix == ".saving"]
        assert all(name.startswith(".") for name in leftovers)
        survivor = open_backend("file", root)
        assert survivor.keys("users") == ["victim"]


class TestQuarantine:
    def test_quarantine_hides_key_and_preserves_bytes(self, backend):
        backend.save("users", "eve", "{broken")
        label = backend.quarantine("users", "eve", "bad json")
        assert label
        assert backend.load("users", "eve") is None
        assert "eve" not in backend.keys("users")
        record = backend.quarantined_in("users")[0]
        assert record[0:2] == ("users", "eve")
        assert record[2] == label
        assert record[3] == "bad json"
        if isinstance(backend, FileBackend):
            assert Path(label).read_text() == "{broken"
        else:
            assert label == "users/eve@q1"

    def test_quarantine_absent_key_is_noop(self, backend):
        assert backend.quarantine("users", "ghost", "whatever") == ""
        assert backend.quarantined == []

    def test_repeated_quarantines_never_collide(self, backend):
        labels = []
        for _ in range(3):
            backend.save("users", "eve", "{broken")
            labels.append(backend.quarantine("users", "eve", "bad"))
        assert len(set(labels)) == 3
        assert len(backend.quarantined_in("users")) == 3

    def test_file_backend_keeps_historical_corrupt_naming(self, tmp_path):
        backend = FileBackend(tmp_path)
        for _ in range(3):
            backend.save("users", "eve", "{broken")
            backend.quarantine("users", "eve", "bad")
        names = sorted(p.name for p in tmp_path.iterdir())
        assert names == [
            "eve.json.corrupt", "eve.json.corrupt-1", "eve.json.corrupt-2",
        ]


class TestUserStoreAuditParity:
    """UserStore's quarantine audit is backend-independent."""

    @pytest.fixture(params=BACKEND_KINDS)
    def store(self, request, tmp_path):
        backend = open_backend(request.param, tmp_path / "users")
        return UserStore(tmp_path / "users", backend=backend)

    def test_corrupt_state_quarantined_with_audit(self, store):
        store.backend.save("users", "eve", "{broken")
        session = store.session("eve")  # fresh session, not an error
        assert session.designs == {}
        assert len(store.quarantined) == 1
        user, target, reason = store.quarantined[0]
        assert user == "eve"
        assert str(target)  # a path or a row label — never empty
        assert reason
        # the damaged payload is preserved, the key reads absent
        assert store.read_disk("eve") is None
        assert store.backend.quarantined_in("users")[0][3] == reason

    def test_wrong_format_quarantined_too(self, store):
        store.backend.save(
            "users", "mallory", json.dumps({"format": "evil/1"})
        )
        store.session("mallory")
        assert len(store.quarantined) == 1
        assert "format" in store.quarantined[0][2]

    def test_round_trip_survives_reopen(self, store, tmp_path):
        session = store.session("carol")
        session.remember_defaults("sram", {"words": 1024})
        fresh = UserStore(
            tmp_path / "users",
            backend=open_backend(store.backend.kind, tmp_path / "users"),
        )
        assert fresh.session("carol").defaults_for("sram") == {
            "words": 1024.0
        }
        assert fresh.quarantined == []


class TestSQLiteSpecifics:
    def test_injectable_clock_controls_mtime(self, tmp_path):
        clock = {"t": 100.0}
        backend = SQLiteBackend(tmp_path, clock=lambda: clock["t"])
        backend.save("users", "a", "{}")
        assert backend.mtime("users", "a") == 100.0
        clock["t"] = 250.0
        backend.save("users", "a", "{}")
        assert backend.mtime("users", "a") == 250.0

    def test_two_backends_share_one_database(self, tmp_path):
        """What the pre-fork workers do: one database, many processes
        (modeled here as two connections in one process — the WAL and
        busy-timeout settings are identical)."""
        first = SQLiteBackend(tmp_path)
        second = SQLiteBackend(tmp_path)
        first.save("users", "shared", '{"from": "first"}')
        assert second.load("users", "shared") == '{"from": "first"}'
        second.save("users", "shared", '{"from": "second"}')
        assert first.load("users", "shared") == '{"from": "second"}'
        first.close()
        second.close()

    def test_unknown_backend_kind_rejected(self, tmp_path):
        with pytest.raises(StateError, match="unknown state backend"):
            open_backend("redis", tmp_path)

    def test_open_backend_passes_instances_through(self, tmp_path):
        backend = FileBackend(tmp_path)
        assert open_backend(backend, tmp_path / "elsewhere") is backend
