"""Properties of the user-keyed shard function.

The pre-fork front's correctness argument rests on three properties of
``shard_for``: it is a *function* of (user, workers) alone (no process
salt — workers must all agree), it always lands in range, and it covers
the whole worker set (no starved worker for a realistic population).
Hypothesis drives the key space; a subprocess check proves the
cross-process stability that ``hash()`` would silently break.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.web.prefork import request_user, shard_for

#: the username grammar UserStore accepts (session.validate_username)
usernames = st.from_regex(r"[A-Za-z][A-Za-z0-9_.-]{0,31}", fullmatch=True)

worker_counts = st.integers(min_value=1, max_value=16)


class TestShardFunction:
    @given(usernames, worker_counts)
    def test_in_range(self, user, workers):
        assert 0 <= shard_for(user, workers) < workers

    @given(usernames, worker_counts)
    def test_deterministic(self, user, workers):
        assert shard_for(user, workers) == shard_for(user, workers)

    @given(usernames)
    def test_single_worker_owns_everything(self, user):
        assert shard_for(user, 1) == 0

    @given(usernames, worker_counts)
    def test_exactly_one_owner(self, user, workers):
        """A user's mutations land on exactly one worker: the owner
        set over the whole worker range is a single index."""
        owners = {
            index
            for index in range(workers)
            if shard_for(user, workers) == index
        }
        assert len(owners) == 1

    @pytest.mark.parametrize("workers", [2, 3, 4, 8])
    def test_full_coverage_of_worker_set(self, workers):
        """The loadgen population (load_user0..N) exercises every
        worker — no shard is structurally starved."""
        population = [f"load_user{i}" for i in range(64)]
        owners = {shard_for(user, workers) for user in population}
        assert owners == set(range(workers))

    @pytest.mark.parametrize("workers", [2, 4])
    def test_roughly_uniform(self, workers):
        counts = [0] * workers
        for i in range(400):
            counts[shard_for(f"user{i}", workers)] += 1
        expected = 400 / workers
        for count in counts:
            assert expected * 0.5 <= count <= expected * 1.5

    def test_stable_across_processes(self):
        """The reason it's blake2b and not hash(): a different process
        must compute the very same owners."""
        users = [f"load_user{i}" for i in range(20)] + ["alice", "Bob.X-1"]
        script = (
            "from repro.web.prefork import shard_for\n"
            "import sys\n"
            "for user in sys.argv[1:]:\n"
            "    print(user, shard_for(user, 4))\n"
        )
        output = subprocess.check_output(
            [sys.executable, "-c", script, *users],
            text=True,
            env={**os.environ, "PYTHONPATH": "src",
                 "PYTHONHASHSEED": "random"},
            cwd=str(Path(__file__).resolve().parents[2]),
        )
        for line in output.strip().splitlines():
            user, owner = line.rsplit(" ", 1)
            assert shard_for(user, 4) == int(owner), user


class TestRequestUser:
    @given(usernames)
    def test_query_user_extracted(self, user):
        assert request_user(f"/menu?user={user}") == user

    @given(usernames)
    def test_form_overrides_query(self, user):
        assert (
            request_user("/menu?user=somebodyelse", {"user": user}) == user
        )

    @given(usernames, worker_counts)
    def test_shard_decision_matches_application_lock_key(
        self, user, workers
    ):
        """The worker that handles the request serializes on the same
        (validated) name the shard decision used."""
        extracted = request_user(f"/design/play?user={user}&design=d")
        assert extracted == user
        assert shard_for(extracted, workers) == shard_for(user, workers)

    def test_invalid_or_missing_user_handled_anywhere(self):
        assert request_user("/metrics") == ""
        assert request_user("/menu?user=3bad") == ""
        assert request_user("/menu?user=") == ""
        assert request_user("/menu", {"user": "has space"}) == ""

    def test_query_percent_encoding_decoded(self):
        # %41 is "A": the decision must see the decoded name, as the
        # Application's parser does
        assert request_user("/menu?user=%41lice") == "Alice"
