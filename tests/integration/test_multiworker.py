"""Multi-worker front, oracle-checked end to end.

The differential argument: a seeded workload executed against a
``serve --workers N`` front (real processes, real sockets, user-keyed
sharding) must leave byte-for-byte the end state a serial replay of the
same script leaves — and the oracle that certifies it must *fail* when
a lost update is deliberately injected, or its EQUIVALENT verdict means
nothing.

Also here: the fleet aggregator merging per-worker ``/metrics``, and
the parent-SIGTERM drain regression (children exit within the deadline,
in-flight responses never truncated).
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.loadgen import (
    HttpTarget,
    generate_workload,
    replay_serial,
    run_script,
    verify,
)
from repro.errors import TransientRemoteError
from repro.obs.fleet import FleetScraper
from repro.state import BACKEND_KINDS, open_backend
from repro.web.app import Application
from repro.web.client import Browser
from repro.web.prefork import (
    WORKER_HEADER,
    MultiWorkerFront,
    shard_for,
)

SEED = 1996
REPO_ROOT = Path(__file__).resolve().parents[2]


def _front_vs_serial(tmp_path, workers, backend, users, ops, seed):
    """Run the seeded script against a live front, then serially;
    return the oracle report plus the concurrent run result."""
    script = generate_workload(seed, users=users, ops=ops)
    state = tmp_path / "state"
    with MultiWorkerFront(state, workers=workers, backend=backend) as front:
        result = run_script(
            script, HttpTarget(front.base_url), threads=users
        )
    exit_codes = front.exit_codes()
    assert exit_codes == {index: 0 for index in range(workers)}, exit_codes
    assert len(result.results) == len(script)
    assert not result.server_errors, (
        f"{len(result.server_errors)} 5xx/errors; first: "
        f"{[(r.index, r.kind, r.status, r.error) for r in result.server_errors[:3]]}"
    )
    # reopen the shared state with a fresh single-process server: the
    # oracle must see exactly what the workers durably left behind
    concurrent_app = Application(state, backend=backend)
    serial_app, serial_result = replay_serial(script, tmp_path / "serial")
    assert not serial_result.server_errors
    report = verify(script, concurrent_app, serial_app)
    return script, result, report


def test_two_worker_front_matches_serial(tmp_path):
    """Tier-1 smoke: 2 workers over the file backend, oracle EQUIVALENT,
    zero 5xx."""
    _, result, report = _front_vs_serial(
        tmp_path, workers=2, backend="file", users=4, ops=120, seed=SEED
    )
    assert report.matches, report.differences
    assert "EQUIVALENT" in report.summary()
    assert report.designs_checked > 0


@pytest.mark.slow
@pytest.mark.parametrize("backend", BACKEND_KINDS)
def test_four_worker_front_matches_serial(tmp_path, backend):
    """The CI oracle smoke: 4 workers, both backends, longer script."""
    _, result, report = _front_vs_serial(
        tmp_path, workers=4, backend=backend, users=8, ops=320,
        seed=SEED + 3,
    )
    assert report.matches, report.differences
    assert "EQUIVALENT" in report.summary()


def test_requests_land_on_owning_worker(tmp_path):
    """Structural affinity: every response names the worker the shard
    function predicts, no matter which worker accepted the socket."""
    with MultiWorkerFront(
        tmp_path / "state", workers=2, backend="file"
    ) as front:
        browser = Browser(front.base_url)
        for user in ("alice", "bob", "carol", "dave"):
            owner = shard_for(user, 2)
            for _ in range(3):
                page = browser.post("/login", {"user": user})
                assert page.status == 200
                assert page.header(WORKER_HEADER) == str(owner), user


def test_oracle_detects_injected_lost_update(tmp_path):
    """Negative control: the oracle is only trustworthy if it fails
    when a lost update actually happened.  Replay the script twice
    (identical end states), then overwrite one user's durable state
    with a stale payload — exactly what a broken backend or a
    mis-sharded worker would leave — and demand DIVERGED."""
    script = generate_workload(SEED + 4, users=3, ops=90)
    victim_dir = tmp_path / "victim"
    _, victim_result = replay_serial(script, victim_dir)
    assert not victim_result.server_errors

    # inject the lost update: drop one design from the saved document
    backend = open_backend("file", victim_dir)
    user = script.users[0]
    payload = json.loads(backend.load("users", user))
    assert payload["designs"], "workload prologue guarantees a design"
    payload["designs"].popitem()
    backend.save("users", user, json.dumps(payload))

    tampered_app = Application(victim_dir)
    serial_app, _ = replay_serial(script, tmp_path / "serial")
    report = verify(script, tampered_app, serial_app)
    assert not report.matches
    assert "DIVERGED" in report.summary()
    assert any(f"user[{user}]" in diff for diff in report.differences)


def test_fleet_aggregator_merges_worker_metrics(tmp_path):
    """Each worker exposes its own /metrics and /healthz on its
    internal port; the existing fleet scraper merges them into one
    aggregate without any multi-worker special-casing."""
    with MultiWorkerFront(
        tmp_path / "state", workers=2, backend="file"
    ) as front:
        browser = Browser(front.base_url)
        issued = 0
        for user in ("erin", "frank", "grace", "heidi"):
            for _ in range(2):
                assert browser.post("/login", {"user": user}).status == 200
                issued += 1
        scraper = FleetScraper(front.internal_peers(), timeout=10.0)
        report = scraper.scrape()
        assert report.reachable == 2
        names = sorted(node.name for node in report.nodes)
        assert names == ["powerplay-w0", "powerplay-w1"]
        for node in report.nodes:
            assert node.ok, node.error
            assert node.health.get("status") == "ok"
            worker = node.health.get("worker", {})
            assert worker.get("count") == 2
        assert report.aggregate_requests_total() >= issued


@pytest.mark.slow
def test_parent_sigterm_drains_children(tmp_path):
    """Regression: SIGTERM to the ``serve --workers`` parent drains the
    whole fleet within the stop deadline — exit code 0, every child
    reaped, and a response in flight at the moment of the signal is
    delivered complete, never truncated."""
    state = tmp_path / "state"
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--state", str(state), "--workers", "2", "--port", "0",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env={**os.environ, "PYTHONPATH": "src"},
        cwd=str(REPO_ROOT),
    )
    try:
        base_url = None
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            line = process.stdout.readline()
            if not line:
                break
            if "serving at" in line:
                base_url = line.split("serving at", 1)[1].split()[0]
                break
        assert base_url, "front never reported its URL"

        browser = Browser(base_url)
        assert browser.post("/login", {"user": "ivan"}).status == 200

        # keep requests in flight while the signal lands; any response
        # that comes back must be complete — truncation surfaces as
        # IncompleteRead/BadStatusLine, which we treat as failure
        failures = []
        done = threading.Event()

        def hammer():
            hammer_browser = Browser(base_url)
            while not done.is_set():
                try:
                    page = hammer_browser.get("/menu?user=ivan")
                    if page.status >= 500:
                        failures.append(f"status {page.status}")
                    elif "</html>" not in page.body:
                        failures.append("truncated body")
                except TransientRemoteError as exc:
                    cause = exc.__cause__
                    if isinstance(
                        cause, (ConnectionError, TimeoutError)
                    ):
                        return  # zero response bytes: a clean refusal
                        # race as the listener closed, not truncation
                    failures.append(f"{type(cause).__name__}: {cause}")
                    return

        threads = [threading.Thread(target=hammer) for _ in range(3)]
        for thread in threads:
            thread.start()
        time.sleep(0.4)
        process.send_signal(signal.SIGTERM)
        process.wait(timeout=30)
        done.set()
        for thread in threads:
            thread.join(timeout=10)
        assert not failures, failures
        assert process.returncode == 0
    finally:
        done_proc = process.poll()
        if done_proc is None:
            process.kill()
            process.wait(timeout=10)
        process.stdout.close()
