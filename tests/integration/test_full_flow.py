"""End-to-end pipelines across subsystems.

These are the flows that make the reproduction hang together: workload
simulation feeding the estimator, characterization feeding the library,
libraries travelling between servers, estimates checked against the
gate-level "measurement" substrate.
"""

import pytest

from repro.core.design import Design
from repro.core.estimator import evaluate_power
from repro.library.catalog import Library
from repro.library.characterize import (
    characterize_adder,
    within_octave,
)
from repro.library.designio import design_from_json, design_to_json
from repro.designs.luminance import build_luminance_from_chip
from repro.sim.activity import operand_vectors
from repro.sim.gatesim import simulate
from repro.sim.netlists import ripple_adder_netlist
from repro.sim.traces import VideoConfig, VideoSource, mean_squared_error
from repro.sim.vq import Codebook, LuminanceChip, decode, encode


class TestVideoToEstimate:
    """Synthetic video -> functional chip -> access rates -> power."""

    def test_pipeline(self):
        source = VideoSource(VideoConfig(width=64, height=32, seed=11))
        chip = LuminanceChip(
            Codebook.uniform(), words_per_access=4, width=64, height=32
        )
        displayed = chip.run(source.frames(3))
        # functional correctness: the display shows a valid decode
        assert displayed, "chip displayed nothing"
        design = build_luminance_from_chip(chip)
        report = evaluate_power(design)
        assert report.power > 0
        # the LUT row's frequency is the simulated rate, pixel_rate / 4
        assert design.row("lut").scope["f"] == pytest.approx(
            chip.pixel_rate / 4
        )

    def test_reconstruction_quality_feeds_architecture_choice(self):
        """Trained codebooks lower distortion without changing power —
        the codec and the power model are orthogonal, as in the paper."""
        from repro.sim.traces import frame_to_blocks

        source = VideoSource(VideoConfig(width=64, height=32, seed=11))
        frames = list(source.frames(4))
        vectors = []
        for frame in frames:
            vectors.extend(frame_to_blocks(frame, 16))
        trained = Codebook.train(vectors, entries=64, iterations=5)
        uniform = Codebook.uniform(entries=64)
        test_frame = frames[-1]
        err_trained = mean_squared_error(
            test_frame, decode(encode(test_frame, trained), trained, 64)
        )
        err_uniform = mean_squared_error(
            test_frame, decode(encode(test_frame, uniform), uniform, 64)
        )
        assert err_trained < err_uniform
        # identical chip organization -> identical estimated power
        chip_a = LuminanceChip(trained, 4, width=64, height=32)
        chip_b = LuminanceChip(uniform, 4, width=64, height=32)
        chip_a.run(VideoSource(VideoConfig(width=64, height=32, seed=1)).frames(1))
        chip_b.run(VideoSource(VideoConfig(width=64, height=32, seed=1)).frames(1))
        power_a = evaluate_power(build_luminance_from_chip(chip_a)).power
        power_b = evaluate_power(build_luminance_from_chip(chip_b)).power
        assert power_a == pytest.approx(power_b)


class TestCharacterizeToLibrary:
    """Gate sim -> fitted coefficients -> shareable library -> design."""

    def test_pipeline(self):
        model, fit = characterize_adder(bit_widths=(4, 8, 16), cycles=150)
        assert fit.within_octave

        # publish into a library and round-trip through JSON (the wire)
        from repro.core.model import ModelSet
        from repro.library.catalog import LibraryEntry

        library = Library("characterized")
        library.add(
            LibraryEntry("adder_fit", ModelSet(power=model), category="computation")
        )
        received = Library.from_json(library.to_json(), origin="http://berkeley")
        remote_model = received.get("adder_fit").models.power

        # drop it into a design and estimate
        design = Design("datapath")
        design.scope.set("VDD", 1.5)
        design.scope.set("f", 10e6)
        design.add("alu", remote_model, params={"bitwidth": 12})
        watts = evaluate_power(design).power

        # cross-check against direct gate-level measurement at 12 bits
        netlist = ripple_adder_netlist(12)
        result = simulate(
            netlist, operand_vectors(200, 12, seed=9), glitch_factor=0.15
        )
        measured = result.power(1.5, 10e6)
        assert within_octave(watts, measured), (watts, measured)


class TestDesignSharingRoundTrip:
    def test_design_travels_and_still_explores(self):
        """Export a design, import it 'elsewhere', keep exploring."""
        source = VideoSource(VideoConfig(width=64, height=32, seed=2))
        chip = LuminanceChip(Codebook.uniform(), 4, width=64, height=32)
        chip.run(source.frames(1))
        original = build_luminance_from_chip(chip)
        wire = design_to_json(original)
        imported = design_from_json(wire)
        base = evaluate_power(imported).power
        low = evaluate_power(imported, overrides={"VDD": 1.1}).power
        assert low == pytest.approx(base * (1.1 / 1.5) ** 2, rel=1e-6)
