"""The complete browser workflow over live HTTP (the E8 scenario).

"The whole process, including the selection of the library elements and
the composition of the architecture, was executed through a standard WWW
browser ... in less than three minutes.  No other tool interfaces are
needed."
"""

import json
import time

import pytest

from repro.library.catalog import Library
from repro.library.designio import design_from_json
from repro.core.estimator import evaluate_power
from repro.web.client import Browser
from repro.web.remote import RemoteLibraryClient, federate
from repro.web.server import PowerPlayServer


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    with PowerPlayServer(
        tmp_path_factory.mktemp("workflow"), server_name="berkeley"
    ) as live:
        yield live


class TestThreeMinuteSession:
    def test_compose_the_luminance_design_through_the_browser(self, server):
        """Select elements, parameterize, compose, Play — browser only."""
        browser = Browser(server.base_url)
        started = time.perf_counter()

        page = browser.login("lidsky")
        assert "Main Menu" in page.title

        browser.new_design("lidsky", "vq_luminance")

        # Figure 2's rows, each configured through the Figure 4 form
        rows = [
            ("sram", "read_bank", {"words": 2048, "bits": 8, "f": "122.88k"}),
            ("sram", "write_bank", {"words": 2048, "bits": 8, "f": "61.44k"}),
            ("sram", "lut", {"words": 4096, "bits": 6, "f": "1.966M"}),
            ("register", "output_register", {"bits": 6, "f": "1.966M"}),
        ]
        for cell, row, parameters in rows:
            parameters = dict(parameters, VDD=1.5)
            computed = browser.compute_cell("lidsky", cell, parameters)
            assert computed.contains("Result"), (cell, computed.body[:300])
            browser.save_cell_to_design("lidsky", cell, "vq_luminance", row, parameters)

        sheet = browser.open_design("lidsky", "vq_luminance")
        for _cell, row, _parameters in rows:
            assert sheet.contains(row)

        # PLAY at a lower supply: every row re-computes
        played = browser.play("lidsky", "vq_luminance", row_params={
            (row, "VDD"): 1.1 for _c, row, _p in rows
        })
        assert played.error is None

        elapsed = time.perf_counter() - started
        assert elapsed < 60, "scripted session should be far under 3 minutes"

    def test_exported_design_matches_prebuilt_estimate(self, server):
        """The browser-composed design agrees with the library-built one."""
        browser = Browser(server.base_url)
        # restore the nominal supply (the previous session left 1.1 V)
        browser.play("lidsky", "vq_luminance", row_params={
            (row, "VDD"): 1.5
            for row in ("read_bank", "write_bank", "lut", "output_register")
        })
        exported = browser.get("/export/design?user=lidsky&name=vq_luminance")
        design = design_from_json(exported.body)
        watts = evaluate_power(design).power
        from repro.designs.luminance import build_figure1_design

        reference = evaluate_power(build_figure1_design()).power
        assert watts == pytest.approx(reference, rel=0.02)


class TestFederationScenario:
    def test_characterized_in_berkeley_used_at_mit(self, server, tmp_path):
        """Figure 6: models cross the network; estimates stay identical."""
        # Berkeley publishes; the MIT site starts empty
        with PowerPlayServer(tmp_path / "mit", server_name="mit") as mit:
            mit_local = Library("mit_local")
            federate(mit_local, [server.base_url])
            assert "multiplier" in mit_local

            # identical numbers on both coasts
            env = {"bitwidthA": 16, "bitwidthB": 16, "VDD": 1.5, "f": 2e6}
            berkeley_client = RemoteLibraryClient(server.base_url)
            direct = berkeley_client.fetch_model("multiplier")
            assert mit_local.get("multiplier").models.power.power(
                env
            ) == pytest.approx(direct.models.power.power(env))

    def test_user_model_defined_then_fetched_by_peer_session(self, server):
        """A model defined through the form is available to its owner
        but never leaks into the shared API."""
        browser = Browser(server.base_url)
        browser.login("modeler")
        browser.post("/define", {
            "user": "modeler",
            "name": "sensor_adc",
            "equation": "channels * 0.4m * VDD",
            "parameters": "channels=4",
            "doc": "successive-approximation ADC bank",
            "category": "analog",
            "proprietary": "no",
        })
        page = browser.compute_cell(
            "modeler", "sensor_adc", {"channels": 4, "VDD": 3.0, "f": "1M"}
        )
        assert page.contains("Result")
        payload = browser.get("/api/library.json")
        names = {
            entry["name"] for entry in json.loads(payload.body)["entries"]
        }
        assert "sensor_adc" not in names  # user models are per-session
