"""Concurrency stress against the live application, oracle-checked.

The tier-1 smoke variant (4 threads, ~160 ops, in-process) runs on
every ``pytest`` invocation; the ``slow``-marked soak (8 threads,
1000+ ops, plus an HTTP pass) is the long version CI's loadgen job and
``repro loadgen`` exercise:

    PYTHONPATH=src python -m pytest -m slow tests/integration/test_concurrency.py
"""

from pathlib import Path

import pytest

from repro.loadgen import (
    HttpTarget,
    InProcessTarget,
    generate_workload,
    replay_serial,
    run_script,
    verify,
)
from repro.web.app import Application
from repro.web.server import PowerPlayServer

SEED = 1996


def _assert_linearizable(script, application, result, tmp_path: Path):
    assert len(result.results) == len(script)
    assert not result.server_errors, (
        f"{len(result.server_errors)} server errors; first: "
        f"{[ (r.index, r.kind, r.status, r.error) for r in result.server_errors[:3] ]}"
    )
    serial_app, serial_result = replay_serial(script, tmp_path / "serial")
    assert not serial_result.server_errors
    report = verify(script, application, serial_app)
    assert report.matches, report.differences


def test_concurrent_smoke_matches_serial(tmp_path: Path):
    """Tier-1: 4 threads, seeded ops, serial-replay equivalence."""
    script = generate_workload(SEED, users=4, ops=160)
    application = Application(tmp_path / "state")
    result = run_script(script, InProcessTarget(application), threads=4)
    _assert_linearizable(script, application, result, tmp_path)
    assert not application.users.quarantined


@pytest.mark.slow
def test_concurrent_soak_8_threads(tmp_path: Path):
    """8 threads x 1000+ seeded ops against the application layer."""
    script = generate_workload(SEED + 1, users=8, ops=1000)
    application = Application(tmp_path / "state")
    result = run_script(script, InProcessTarget(application), threads=8)
    _assert_linearizable(script, application, result, tmp_path)


@pytest.mark.slow
def test_concurrent_soak_over_http(tmp_path: Path):
    """Same oracle, but through the real threaded HTTP transport."""
    script = generate_workload(SEED + 2, users=6, ops=400)
    with PowerPlayServer(tmp_path / "state") as server:
        result = run_script(
            script, HttpTarget(server.base_url), threads=6
        )
        _assert_linearizable(script, server.application, result, tmp_path)
