"""Golden-file regression tests for the paper's two report tables.

Figure 2 (the luminance spreadsheet) and Figure 5 (the InfoPad system
spreadsheet) are the paper's visible deliverables; this pins their
rendered text byte-for-byte so *any* drift — a formatting tweak, a
model re-characterization, an evaluation-order change — fails loudly
and has to be acknowledged by regenerating the goldens:

    PYTHONPATH=src python -m pytest tests/test_golden_reports.py --update-golden

and committing the reviewed diff.
"""

from pathlib import Path

import pytest

from repro.core.estimator import evaluate_power
from repro.core.report import render_power
from repro.designs.infopad import build_infopad
from repro.designs.luminance import build_figure1_design

GOLDEN_DIR = Path(__file__).parent / "golden"

CASES = {
    "fig2_luminance.txt": build_figure1_design,
    "fig5_infopad.txt": build_infopad,
}


def _render(builder) -> str:
    report = evaluate_power(builder())
    return render_power(report) + "\n"


@pytest.mark.parametrize("filename", sorted(CASES))
def test_report_matches_golden(filename, update_golden):
    actual = _render(CASES[filename])
    path = GOLDEN_DIR / filename
    if update_golden:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(actual)
        pytest.skip(f"golden file {filename} regenerated")
    expected = path.read_text()
    assert actual == expected, (
        f"{filename} drifted from the golden copy; if the change is "
        "intentional, regenerate with --update-golden and commit the diff"
    )


def test_goldens_are_deterministic():
    """Two evaluations render identical bytes — a prerequisite for
    byte-level pinning to be meaningful at all."""
    for filename, builder in CASES.items():
        assert _render(builder) == _render(builder), filename
