"""The command-line interface."""

import pytest

from repro.cli import main


def run(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestEstimate:
    def test_table(self, capsys):
        code, out, _err = run(capsys, "estimate", "fig3")
        assert code == 0
        assert "luminance_fig3 summary" in out
        assert "1.4261e-04 W" in out
        assert "Cumulative" in out

    def test_csv(self, capsys):
        code, out, _err = run(capsys, "estimate", "fig1", "--csv")
        assert code == 0
        lines = out.strip().splitlines()
        assert lines[0] == "path,power_w,share"
        assert any(line.startswith("luminance_fig1/lut,") for line in lines)

    def test_vdd_override(self, capsys):
        _code, nominal, _err = run(capsys, "estimate", "fig3", "--csv")
        _code, low, _err = run(capsys, "estimate", "fig3", "--vdd", "1.1", "--csv")

        def total(text):
            return sum(
                float(line.split(",")[1])
                for line in text.strip().splitlines()[1:]
            )

        assert total(low) == pytest.approx(
            total(nominal) * (1.1 / 1.5) ** 2, rel=1e-6
        )

    def test_infopad_vdd_targets_custom_supply(self, capsys):
        code, out, _err = run(capsys, "estimate", "infopad", "--depth", "1")
        assert code == 0
        assert "custom_hardware" in out

    def test_unknown_design_rejected_by_argparse(self, capsys):
        with pytest.raises(SystemExit):
            main(["estimate", "warp_core"])


class TestCompare:
    def test_default_pair(self, capsys):
        code, out, _err = run(capsys, "compare")
        assert code == 0
        assert "luminance_fig1" in out and "luminance_fig3" in out
        assert "0.181x" in out

    def test_bad_design_name_clean_error(self, capsys):
        code, _out, err = run(capsys, "compare", "fig1", "warp")
        assert code == 2
        assert "unknown design" in err


class TestSweep:
    def test_csv_output(self, capsys):
        code, out, _err = run(capsys, "sweep", "fig3", "VDD", "1.0", "2.0")
        assert code == 0
        lines = out.strip().splitlines()
        assert lines[0] == "VDD,power_w"
        values = [line.split(",") for line in lines[1:]]
        assert float(values[1][1]) == pytest.approx(
            4 * float(values[0][1]), rel=1e-6
        )


class TestEngineSweep:
    def test_multi_axis_with_state_and_resume(self, capsys, tmp_path):
        state = str(tmp_path)
        argv = [
            "sweep", "fig1",
            "--axis", "VDD=1.1:3.3:0.4",
            "--workers", "1", "--mode", "serial", "--chunk-size", "2",
            "--state", state,
        ]
        # stop after one chunk: the job checkpoint stays incomplete
        code, out, _err = run(capsys, *argv, "--max-chunks", "1")
        assert code == 1
        assert "--resume job-0001" in out

        # jobs listing shows the interrupted job
        code, out, _err = run(capsys, "jobs", "--state", state)
        assert code == 0
        assert "job-0001" in out and "cancelled" in out

        # resume finishes it and exports
        json_out = tmp_path / "results.json"
        code, out, _err = run(
            capsys, "sweep", "fig1", "--resume", "job-0001",
            "--state", state, "--json-out", str(json_out),
        )
        assert code == 0
        assert json_out.exists()
        code, out, _err = run(capsys, "jobs", "--state", state)
        assert "done" in out

    def test_stateless_sweep_prints_table(self, capsys):
        code, out, _err = run(
            capsys, "sweep", "fig1",
            "--axis", "VDD=1.1,1.5,3.3",
            "--derive", "pw_mw=power * 1000",
        )
        assert code == 0
        assert "VDD" in out and "pw_mw" in out

    def test_legacy_single_parameter_form_still_works(self, capsys):
        code, out, _err = run(capsys, "sweep", "fig3", "VDD", "1.0", "2.0")
        assert code == 0
        assert out.strip().splitlines()[0] == "VDD,power_w"

    def test_neither_form_is_an_error(self, capsys):
        code, _out, err = run(capsys, "sweep", "fig3")
        assert code == 2
        assert "--axis" in err


class TestOptimize:
    def test_fig3_reports_saving(self, capsys):
        code, out, _err = run(capsys, "optimize", "fig3")
        assert code == 0
        assert "minimum feasible VDD" in out
        assert "saving: 52.9%" in out

    def test_infopad_targets_vdd2(self, capsys):
        code, out, _err = run(capsys, "optimize", "infopad")
        assert code == 0
        assert "VDD2" in out


class TestBattery:
    def test_reports_packs(self, capsys):
        code, out, _err = run(capsys, "battery", "--design", "infopad")
        assert code == 0
        assert "nimh_6v" in out and "nicd_6v" in out
        assert " h" in out


class TestSorting:
    def test_study(self, capsys):
        code, out, _err = run(capsys, "sorting", "-n", "64")
        assert code == 0
        assert "bubble" in out and "merge" in out
        assert "1.0x" in out


class TestCharacterize:
    def test_adder(self, capsys):
        code, out, _err = run(capsys, "characterize", "adder", "--cycles", "60")
        assert code == 0
        assert "c_per_bit" in out
        assert "R^2" in out


class TestSurrogateCLI:
    AXES = [
        "--axis", "VDD=1.0:3.0:0.1",
        "--axis", "f=1e6:3e6:1e5",
    ]

    def test_ephemeral_surrogate_sweep(self, capsys):
        code, out, _err = run(
            capsys, "sweep", "fig1", *self.AXES,
            "--derive", "slowness=1 / VDD",
            "--surrogate", "--train-frac", "0.3", "--verify-top", "10",
        )
        assert code == 0
        assert "surrogate job" in out
        assert "trained on" in out and "error bound" in out

    def test_surrogate_interrupt_resume_byte_identical(
        self, capsys, tmp_path
    ):
        fresh = tmp_path / "fresh.json"
        code, _out, _err = run(
            capsys, "sweep", "fig1", *self.AXES,
            "--surrogate", "--train-frac", "0.3",
            "--json-out", str(fresh),
        )
        assert code == 0

        state = str(tmp_path / "state")
        code, out, _err = run(
            capsys, "sweep", "fig1", *self.AXES,
            "--surrogate", "--train-frac", "0.3",
            "--state", state, "--max-chunks", "1",
        )
        assert code == 1
        assert "--resume job-0001" in out

        resumed = tmp_path / "resumed.json"
        code, out, _err = run(
            capsys, "sweep", "fig1", "--resume", "job-0001",
            "--state", state, "--json-out", str(resumed),
        )
        assert code == 0
        assert resumed.read_text() == fresh.read_text()

    def test_max_error_budget_fails_fast(self, capsys, tmp_path):
        state = str(tmp_path)
        code, _out, err = run(
            capsys, "sweep", "fig1", *self.AXES,
            "--surrogate", "--train-frac", "0.3",
            "--basis", "linear", "--max-error", "1e-12",
            "--state", state,
        )
        assert code == 2
        assert "max-error" in err
        # the job checkpoint records the failure, not a silent wedge
        code, out, _err = run(capsys, "jobs", "--state", state)
        assert code == 0
        assert "failed" in out

    def test_over_cap_error_names_max_points(self, capsys):
        code, _out, err = run(
            capsys, "sweep", "fig1",
            "--axis", "VDD=1.0:3.0:0.0001",
            "--axis", "f=1e6:3e6:1e4",
        )
        assert code == 2
        assert "--max-points" in err

    def test_max_points_raises_the_cap(self, capsys):
        code, out, _err = run(
            capsys, "sweep", "fig1",
            "--axis", "VDD=1.0:3.0:0.01",
            "--axis", "f=1e6:3e6:1e4",  # 201 * 201 > default cap
            "--max-points", "200000", "--surrogate",
        )
        assert code == 0
        assert "surrogate job" in out
