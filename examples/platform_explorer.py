"""Implementation-platform exploration: the decisions before any RTL.

Uses the extension layers on top of the reproduction to answer four
early-design questions for a video-decompression datapath:

1. which controller platform (random logic / ROM / PLA) — EQ 9/10;
2. custom silicon or FPGA prototype — the paper's flagged future work;
3. what supply voltage, under the real timing constraint — composed
   critical path + bisection optimizer;
4. what battery the terminal needs — closing the watts-to-hours loop.

Run:  python examples/platform_explorer.py
"""

from repro.core.composition import Chain, meets_frequency, slack
from repro.core.estimator import evaluate_power
from repro.core.model import VoltageScaledTimingModel
from repro.core.optimize import optimize_voltage, pareto_front
from repro.designs.infopad import build_infopad
from repro.designs.luminance import build_figure3_design
from repro.models.battery import NICD_6V, NIMH_6V, battery_life, required_capacity_ah
from repro.models.controller import compare_platforms
from repro.models.fpga import custom_vs_fpga


def controller_platforms() -> None:
    print("== 1. Controller platform (EQ 9 vs EQ 10) ==")
    print(f"{'N_I':>4} {'random logic':>13} {'ROM':>10} {'PLA':>10}")
    for n_inputs in (5, 8, 11, 14):
        watts = compare_platforms(n_inputs, 16, 1.5, 1e6, n_minterms=48)
        rom = f"{watts['rom'] * 1e6:8.2f}uW" if "rom" in watts else "       -"
        print(
            f"{n_inputs:>4} {watts['random_logic'] * 1e6:>11.2f}uW "
            f"{rom:>10} {watts['pla'] * 1e6:>8.2f}uW"
        )
    print("  -> the ROM's 2^N_I decode cost overtakes random logic as the")
    print("     controller widens; pick per block, not per project.\n")


def custom_or_fpga() -> None:
    print("== 2. Custom silicon vs FPGA prototype ==")
    for gates in (8000, 32000):
        result = custom_vs_fpga(gates)
        same = custom_vs_fpga(gates, vdd_custom=5.0, vdd_fpga=5.0)
        print(
            f"  {gates:>6} gates: custom {result['custom'] * 1e6:8.1f} uW, "
            f"FPGA {result['fpga'] * 1e3:7.1f} mW — "
            f"{same['ratio']:.0f}x from interconnect, "
            f"{result['ratio'] / same['ratio']:.0f}x more from the supply"
        )
    print("  -> prototype on the FPGA, budget for the custom part.\n")


def supply_choice() -> None:
    print("== 3. Supply voltage under the timing constraint ==")
    design = build_figure3_design()
    path = Chain(
        "lut_to_pixel",
        [
            VoltageScaledTimingModel("lut_access", 500e-9, v_ref=1.5),
            VoltageScaledTimingModel("mux_reg", 60e-9, v_ref=1.5),
        ],
    )
    lut_rate = design.scope["f_pixel"] / 4
    print(f"  constraint: LUT path inside {1e9 / lut_rate:.0f} ns "
          f"(f_pixel/4 = {lut_rate / 1e3:.1f} kHz)")
    for vdd in (1.5, 1.2, 1.0, 0.9):
        ok = meets_frequency(path, lut_rate, {"VDD": vdd})
        margin = slack(path, lut_rate, {"VDD": vdd})
        watts = evaluate_power(design, overrides={"VDD": vdd}).power
        print(f"    {vdd:.1f} V: {watts * 1e6:7.1f} uW, "
              f"slack {margin * 1e9:+8.0f} ns {'ok' if ok else 'VIOLATION'}")
    optimum = optimize_voltage(design, path, lut_rate)
    print(f"  optimizer: {optimum.vdd:.2f} V -> "
          f"{optimum.power * 1e6:.1f} uW "
          f"({100 * optimum.saving:.0f}% below nominal)\n")


def battery_sizing() -> None:
    print("== 4. Battery sizing for the terminal ==")
    system = build_infopad()
    watts = evaluate_power(system).power
    print(f"  system input power: {watts:.2f} W")
    for pack in (NIMH_6V, NICD_6V):
        print(f"    {pack.name:10s}: {battery_life(watts, pack):5.2f} h")
    target = 6.0
    needed = required_capacity_ah(watts, target, NIMH_6V)
    print(f"  for a {target:.0f} h day: {needed:.1f} Ah NiMH pack "
          f"({needed / NIMH_6V.capacity_ah:.1f}x the stock pack)")
    # and the lever that actually helps: turn the backlight down
    system.row("display_lcds").set("backlight_duty", 0.4)
    dimmed = evaluate_power(system).power
    print(f"  or dim the backlight to 40%: {dimmed:.2f} W -> "
          f"{battery_life(dimmed, NIMH_6V):.2f} h on the stock pack")


def main() -> None:
    controller_platforms()
    custom_or_fpga()
    supply_choice()
    battery_sizing()


if __name__ == "__main__":
    main()
