"""The paper's worked example: exploring the video decompression chip.

Reproduces the Figure 1 vs Figure 3 comparison end to end:

1. simulate both chip architectures on synthetic video and verify the
   access-rate relations the paper quotes (f = 2 MHz, reads f/16,
   writes f/32);
2. build PowerPlay designs from the *measured* access rates and compare
   ("~150 uW, or 1/5 that of the original design");
3. generalize: sweep words-per-access 1..16 to find the optimum memory
   organization, and sweep the supply voltage.

Run:  python examples/luminance_explorer.py
"""

from repro.core import compare, evaluate_power, render_comparison, render_power, sweep
from repro.designs import (
    build_figure1_design,
    build_figure3_design,
    build_luminance_design,
    build_luminance_from_chip,
)
from repro.sim import Codebook, LuminanceChip, VideoConfig, VideoSource


def simulate_architectures() -> None:
    print("== Workload simulation (synthetic video through both chips) ==")
    codebook = Codebook.uniform()
    for words_per_access in (1, 4):
        chip = LuminanceChip(codebook, words_per_access=words_per_access)
        source = VideoSource(VideoConfig(seed=7))
        chip.run(source.frames(2))
        rates = chip.access_rates()
        f = chip.pixel_rate
        print(
            f"  arch w={words_per_access}: f = {f / 1e6:.3f} MHz, "
            f"LUT at f/{f / rates['lut']:.0f}, "
            f"read bank at f/{f / rates['read_bank']:.0f}, "
            f"write bank at f/{f / rates['write_bank']:.0f}"
        )


def compare_figures() -> None:
    print("\n== Figure 1 vs Figure 3 (PowerPlay estimate) ==")
    fig1 = build_figure1_design()
    fig3 = build_figure3_design()
    print(render_power(evaluate_power(fig1)))
    print()
    print(render_power(evaluate_power(fig3)))
    print()
    print(render_comparison(compare([fig1, fig3])))
    ratio = evaluate_power(fig1).power / evaluate_power(fig3).power
    print(f"\nPaper: second implementation ~150 uW, 1/5 of the original; "
          f"measured chip 100 uW.")
    print(f"Ours : {evaluate_power(fig3).power * 1e6:.0f} uW, "
          f"1/{ratio:.1f} of the original.")


def from_simulated_chip() -> None:
    print("\n== Design built from simulated (not assumed) access rates ==")
    chip = LuminanceChip(Codebook.uniform(), words_per_access=4)
    chip.run(VideoSource(VideoConfig(seed=3)).frames(2))
    design = build_luminance_from_chip(chip)
    print(render_power(evaluate_power(design)))


def partition_sweep() -> None:
    print("\n== Generalized Figure 3: words per LUT access 1..16 ==")
    best = None
    for words in (1, 2, 4, 8, 16):
        design = build_luminance_design(words_per_access=words)
        watts = evaluate_power(design).power
        marker = ""
        if best is None or watts < best[1]:
            best = (words, watts)
        print(f"  {words:>2} words/access -> {watts * 1e6:7.1f} uW")
    print(f"  best in range: {best[0]} words/access "
          f"({best[1] * 1e6:.1f} uW) — wider accesses amortize the LUT "
          f"decoder, with sharply diminishing returns as the full-rate "
          f"mux grows")


def voltage_sweep() -> None:
    print("\n== Supply sweep on the Figure 3 design ==")
    design = build_figure3_design()
    for vdd, watts in sweep(design, "VDD", [1.1, 1.3, 1.5, 2.0, 3.0, 5.0]):
        bar = "#" * max(1, int(watts * 1e6 / 40))
        print(f"  VDD {vdd:>3.1f} V  {watts * 1e6:8.1f} uW  {bar}")


def main() -> None:
    simulate_architectures()
    compare_figures()
    from_simulated_chip()
    partition_sweep()
    voltage_sweep()


if __name__ == "__main__":
    main()
