"""Quickstart: estimate a small datapath in a dozen lines.

Builds a multiply-accumulate datapath from the stock library, prints the
Figure 2-style spreadsheet, then sweeps the supply voltage — the
what-if loop early power exploration exists for.

Run:  python examples/quickstart.py
"""

from repro.core import evaluate_power, render_power, sweep
from repro.core.design import Design
from repro.library import build_default_library


def main() -> None:
    library = build_default_library()

    # A design is a spreadsheet: global parameters + one row per block.
    design = Design("mac_datapath", doc="16-bit multiply-accumulate")
    design.scope.set("VDD", 1.5)      # volts — inherited by every row
    design.scope.set("f", 10e6)       # 10 MHz sample rate

    design.add("multiplier", library.get("multiplier").models,
               params={"bitwidthA": 16, "bitwidthB": 16})
    design.add("accumulator", library.get("ripple_adder").models,
               params={"bitwidth": 32})
    design.add("result_reg", library.get("register").models,
               params={"bits": 32})

    # "Play": hierarchical evaluation, engineering-notation table.
    report = evaluate_power(design)
    print(render_power(report))

    # Parameterized exploration: how does the total scale with VDD?
    print("\nSupply sweep (the knob low-power design turns first):")
    for vdd, watts in sweep(design, "VDD", [1.1, 1.5, 2.5, 3.3, 5.0]):
        print(f"  VDD = {vdd:>4.1f} V   ->   {watts * 1e6:8.1f} uW")

    # Where should optimization effort go?
    from repro.core import top_consumers
    print("\nTop consumers:")
    for path, watts in top_consumers(report, 3):
        print(f"  {path:30s} {watts * 1e6:8.1f} uW")


if __name__ == "__main__":
    main()
