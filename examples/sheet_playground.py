"""The live spreadsheet: a design as recalculating cells.

"A spread-sheet-like work sheet, which presents the design-under-
exploration and allows the study of the impact of parameter variations"
— this example drives that surface directly (no web browser):

* every global and row parameter is a writable cell;
* every row's power is a bound cell, recomputed only when something in
  its dependency cone changes (one hierarchical evaluation per edit);
* user-defined derived cells ("any parameter can be expressed as a
  function of these parameters"): battery current, frame energy, the
  share of the budget one block owns.

Run:  python examples/sheet_playground.py
"""

from repro.core.sheetbridge import DesignSheet
from repro.core.units import format_quantity
from repro.designs.luminance import build_figure3_design


def show(bridge: DesignSheet, label: str) -> None:
    print(f"\n-- {label} --")
    values = bridge.values()
    for name in sorted(values):
        if name.startswith("P.") or name in (
            "battery_current", "energy_per_frame", "lut_share",
        ):
            unit = "W" if name.startswith("P.") else ""
            print(f"  {name:22s} {format_quantity(values[name], unit)}")


def main() -> None:
    design = build_figure3_design()
    bridge = DesignSheet(design)

    # derived cells the designer types into the sheet
    bridge.add_derived("energy_per_frame", "P.total / 60", unit="J",
                       doc="per displayed frame at 60 Hz")
    bridge.add_derived("battery_current", "P.total / 1.5", unit="A",
                       doc="draw from the 1.5 V rail")
    bridge.add_derived("lut_share", "P.lut / P.total",
                       doc="the block to optimize first")

    show(bridge, "nominal (1.5 V)")
    print(f"\n  evaluations so far: {bridge.evaluations} "
          "(one hierarchical PLAY serves every cell)")

    bridge.set_parameter("g.VDD", 1.1)
    show(bridge, "after one edit: VDD -> 1.1 V")
    print(f"  evaluations now: {bridge.evaluations} (exactly one more)")

    bridge.set_parameter("lut.words", 256)
    show(bridge, "after a second edit: smaller codebook (lut.words = 256)")

    print("\nThe derived cells track automatically — the spreadsheet is "
          "the design.")


if __name__ == "__main__":
    main()
