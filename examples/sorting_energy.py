"""Instruction-level software energy (EQ 12) — the Ong & Yan study.

"Ong and Yan have used this methodology on a fictitious processor to
determine that there can be orders of magnitude variance in power
consumption for different sorting algorithms."

This example reproduces that finding two ways:

* bubble sort executed instruction-by-instruction on the fictitious
  processor VM (the SPIX/Pixie route), cross-checked against the
  instrumented-algorithm route;
* all six instrumented algorithms profiled across array sizes, energies
  from the EQ 12 table, including the cache-miss correction the paper
  says naive estimates omit.

Run:  python examples/sorting_energy.py
"""

from repro.models import (
    DEFAULT_ISA,
    MemorySystemCorrection,
    algorithm_cycles,
    algorithm_energy,
    algorithm_power,
)
from repro.sim import BUBBLE_SORT, profile_sort, random_data, run_sort_program

CLOCK = 25e6  # 25 MHz embedded part


def vm_cross_check() -> None:
    print("== VM vs instrumented profiling (bubble sort, n=64) ==")
    data = random_data(64, seed=5)
    _sorted_vm, vm_profile = run_sort_program(BUBBLE_SORT, data, "bubble_vm")
    _sorted_tr, traced_profile = profile_sort("bubble", data)
    e_vm = algorithm_energy(vm_profile)
    e_tr = algorithm_energy(traced_profile)
    print(f"  VM route        : {vm_profile.total_instructions:7d} instrs, "
          f"{e_vm * 1e6:8.2f} uJ")
    print(f"  instrumented    : {traced_profile.total_instructions:7d} instrs, "
          f"{e_tr * 1e6:8.2f} uJ")
    print(f"  agreement       : {max(e_vm, e_tr) / min(e_vm, e_tr):.2f}x "
          "(same algorithm, two profilers)")


def full_study() -> None:
    print("\n== EQ 12 energy, all algorithms ==")
    correction = MemorySystemCorrection(miss_rate=0.05)
    for n in (64, 256, 1024):
        data = random_data(n, seed=9)
        print(f"\n  n = {n}")
        results = []
        for algorithm in ("bubble", "selection", "insertion",
                          "heap", "merge", "quick"):
            _out, profile = profile_sort(algorithm, data)
            energy = algorithm_energy(profile)
            extra_energy, _extra_cycles = correction.apply(profile)
            power = algorithm_power(profile, CLOCK)
            results.append((algorithm, profile.total_instructions,
                            energy + extra_energy, power))
        results.sort(key=lambda row: row[2])
        best = results[0][2]
        for algorithm, instrs, energy, power in results:
            print(f"    {algorithm:10s} {instrs:9d} instrs  "
                  f"{energy * 1e6:10.2f} uJ  ({energy / best:6.1f}x)  "
                  f"{power:.3f} W while running")
        spread = results[-1][2] / results[0][2]
        print(f"    energy spread at n={n}: {spread:.0f}x"
              + ("  <- orders of magnitude, as Ong & Yan found"
                 if spread >= 100 else ""))


def voltage_scaling() -> None:
    print("\n== Same algorithm, scaled supply (energies ~ VDD^2) ==")
    data = random_data(256, seed=9)
    _out, profile = profile_sort("quick", data)
    for vdd in (3.3, 2.5, 1.5, 1.1):
        energy = algorithm_energy(profile, DEFAULT_ISA, vdd=vdd)
        print(f"  VDD = {vdd:3.1f} V -> {energy * 1e6:8.2f} uJ")


def main() -> None:
    vm_cross_check()
    full_study()
    voltage_scaling()


if __name__ == "__main__":
    main()
