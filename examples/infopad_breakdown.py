"""System-level analysis: the InfoPad power breakdown (Figure 5).

Demonstrates the hierarchy features the paper highlights:

* subsystem rows mixing datasheet, measured-style and fully modeled
  sources;
* top-page global supplies (VDD1/VDD2) inherited three levels deep;
* the DC-DC converter row computing its loss from every other row's
  power (EQ 18/19 inter-model interaction);
* the power-minimization questions: who are the major consumers, and
  where is the point of diminishing returns?

Run:  python examples/infopad_breakdown.py
"""

from repro.core import (
    consumers_for_fraction,
    coverage,
    evaluate_power,
    render_coverage,
    render_power,
)
from repro.designs import build_infopad


def main() -> None:
    system = build_infopad()
    report = evaluate_power(system)

    print(render_power(report, max_depth=1))
    print()
    print("Custom low-power chipset share of the budget: "
          f"{100 * report['custom_hardware'].power / report.power:.3f}% — "
          "the paper's warning about optimizing the wrong block, quantified.")

    print("\nFull hierarchy (three levels):")
    print(render_power(report))

    print("\nDiminishing returns (hottest leaves, cumulative):")
    print(render_coverage(report, limit=8))

    selected = consumers_for_fraction(report, 0.8)
    print(f"\n{len(selected)} leaves cover 80% of the system power — "
          "optimize these first:")
    for path, watts in selected:
        print(f"  {path:55s} {watts:8.3f} W")

    # What-if: halve the backlight duty and drop the radio receive time.
    what_if = evaluate_power(
        system,
        overrides={},
    )
    system.row("display_lcds").set("backlight_duty", 0.5)
    system.row("radio_subsystem").set("rx_duty", 0.15)
    improved = evaluate_power(system)
    print(f"\nWhat-if (half backlight, lighter radio duty): "
          f"{what_if.power:.2f} W -> {improved.power:.2f} W "
          f"({100 * (1 - improved.power / what_if.power):.0f}% saved), "
          "converter loss re-computed automatically via EQ 19.")

    # Global supply exploration from the top page.
    for vdd2 in (1.1, 1.5, 2.5):
        r = evaluate_power(system, overrides={"VDD2": vdd2})
        custom = r["custom_hardware"].power
        print(f"  VDD2 = {vdd2:>3.1f} V -> custom chipset "
              f"{custom * 1e6:7.1f} uW (quadratic, inherited 3 levels deep)")


if __name__ == "__main__":
    main()
