"""The World Wide Web workflow, scripted end to end.

Starts a live PowerPlay server on localhost, then drives the complete
Netscape session the paper times at "less than three minutes": identify
-> browse the library -> parameterize a multiplier on its input form
(Figure 4) -> save it into a design -> PLAY the spreadsheet (Figure 2)
-> define a brand-new user model -> export the design as JSON.  Then a
*second* server federates the first one's library over HTTP — the
Figure 6 "characterized in Massachusetts, used in California" scenario.

Run:            python examples/web_demo.py
Interactive:    python examples/web_demo.py --serve   (then open the URL)
"""

import sys
import tempfile
import time
from pathlib import Path

from repro.library import Library, build_default_library
from repro.web import (
    Browser,
    PowerPlayServer,
    RemoteLibraryClient,
    compare_protocols,
    federate,
)


def scripted_session(base_url: str) -> None:
    browser = Browser(base_url)
    started = time.perf_counter()

    page = browser.login("lidsky")
    assert "Main Menu" in page.title
    print(f"  logged in -> {page.title!r}")

    page = browser.get(page.link_by_text("Library"))
    print(f"  library page lists multiplier: {page.contains('multiplier')}")

    page = browser.new_design("lidsky", "vq_chip")
    page = browser.compute_cell(
        "lidsky", "multiplier",
        {"bitwidthA": 16, "bitwidthB": 16, "VDD": 1.5, "f": "2M"},
    )
    print(f"  Figure 4 form computed: "
          f"{'Result' in page.body and '2.9146e-04 W' in page.body}")

    browser.save_cell_to_design(
        "lidsky", "multiplier", "vq_chip", "mult16",
        {"bitwidthA": 16, "bitwidthB": 16, "VDD": 1.5, "f": "2M"},
    )
    page = browser.open_design("lidsky", "vq_chip")
    print(f"  design sheet shows the row: {page.contains('mult16')}")

    page = browser.play("lidsky", "vq_chip",
                        row_params={("mult16", "VDD"): 1.1})
    print(f"  PLAY at 1.1 V recomputed: {page.contains('1.5674e-04 W')}")

    page = browser.post("/define", {
        "user": "lidsky",
        "name": "ntsc_dac",
        "equation": "bits * 95f * VDD^2 * f + 1.2m * VDD",
        "parameters": "bits=8",
        "doc": "video DAC: dynamic + bias current",
        "category": "analog",
        "proprietary": "no",
    })
    print(f"  user model defined: {page.contains('ntsc_dac')}")

    exported = browser.get("/export/design?user=lidsky&name=vq_chip")
    print(f"  design exported as JSON ({len(exported.body)} bytes)")

    elapsed = time.perf_counter() - started
    print(f"  whole session: {elapsed:.2f} s "
          "(paper: 'in less than three minutes')")


def federation_demo(provider_url: str) -> None:
    print("\n== Remote model access (Figure 6/7) ==")
    client = RemoteLibraryClient(provider_url)
    print(f"  handshake: {client.ping()}")
    local = Library("california_site", "local library, initially empty")
    adopted = federate(local, [provider_url])
    total = sum(len(names) for names in adopted.values())
    print(f"  federated {total} models from {provider_url}")
    entry = local.get("sram")
    watts = entry.models.power.power(
        {"words": 2048, "bits": 8, "VDD": 1.5, "f": 122880.0}
    )
    print(f"  remote-characterized SRAM evaluated locally: "
          f"{watts * 1e6:.1f} uW  (origin {entry.origin})")

    stats = compare_protocols(
        build_default_library(), ["sram", "multiplier", "register"]
    )
    print("  protocol comparison (3 model fetches):")
    for name, stat in stats.items():
        print(f"    {name:12s} {stat.messages:2d} messages, "
              f"{stat.hub_hops} hub hops, {stat.latency:5.2f} s simulated")


def main() -> None:
    state = Path(tempfile.mkdtemp(prefix="powerplay_"))
    with PowerPlayServer(state, server_name="berkeley") as server:
        print(f"PowerPlay server at {server.base_url}")
        if "--serve" in sys.argv:
            print("Serving until Ctrl-C; open the URL in a browser.")
            server.serve_forever()
            return
        print("\n== Scripted browser session ==")
        scripted_session(server.base_url)
        federation_demo(server.base_url)


if __name__ == "__main__":
    main()
