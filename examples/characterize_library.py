"""The characterization flow: from netlists to library coefficients.

Reproduces the Landman method the paper's library was built with:

1. sweep cell sizes through the gate-level capacitance simulator;
2. least-squares fit the paper's model forms (EQ 3 linear for the
   adder, EQ 20 bilinear for the multiplier);
3. verify the "within an octave" accuracy bar on held-out sizes;
4. extract reduced-swing memory parameters from multi-voltage
   measurements (EQ 8);
5. show the correlated-data effect that motivates the dual coefficient
   sets ("PowerPlay also contains models for correlated inputs").

Run:  python examples/characterize_library.py
"""

from repro.library import (
    characterize_adder,
    characterize_multiplier,
    extract_reduced_swing,
    octave_report,
    sweep_adder,
)
from repro.sim import (
    correlated_words,
    dual_bit_type,
    measure_bits,
    operand_vectors,
    ripple_adder_netlist,
    simulate,
)


def adder_flow() -> None:
    print("== EQ 3: ripple adder characterization ==")
    model, fit = characterize_adder(bit_widths=(4, 8, 12, 16, 24), cycles=250)
    c = fit.coefficients["c_per_bit"]
    print(f"  fitted C_0 = {c * 1e15:.1f} fF/bit, "
          f"R^2 = {fit.r_squared:.5f}, "
          f"max rel err = {fit.max_relative_error:.2%}")
    # held-out sizes: the octave check on points the fit never saw
    held_out = [(bits, cap) for bits, cap in sweep_adder((6, 20, 28), cycles=250)]
    rows = octave_report(
        model, [({"bitwidth": bits}, cap) for bits, cap in held_out]
    )
    for env, measured, predicted, ok in rows:
        print(f"  {env['bitwidth']:>2}-bit held-out: measured "
              f"{measured * 1e12:6.2f} pF, model {predicted * 1e12:6.2f} pF, "
              f"within octave: {ok}")


def multiplier_flow() -> None:
    print("\n== EQ 20: array multiplier characterization ==")
    model, fit = characterize_multiplier(
        sizes=((2, 2), (3, 3), (4, 4), (5, 5), (6, 6), (4, 6)), cycles=150
    )
    c = fit.coefficients["c_per_bit_pair"]
    print(f"  fitted C = {c * 1e15:.1f} fF per bit pair "
          f"(the paper's library: 253 fF on its 1.2 um process), "
          f"R^2 = {fit.r_squared:.4f}")


def reduced_swing_flow() -> None:
    print("\n== EQ 8: multi-voltage extraction for a reduced-swing memory ==")
    # synthetic measurements of a memory with 80 pF full swing and
    # 120 pF of 300 mV bit lines, plus 2% instrument noise
    import random
    rng = random.Random(4)
    truth_full, truth_partial, v_swing = 80e-12, 120e-12, 0.3
    measurements = []
    for vdd in (1.0, 1.2, 1.5, 2.0, 2.5, 3.3):
        energy = truth_full * vdd**2 + truth_partial * v_swing * vdd
        measurements.append((vdd, energy * rng.uniform(0.98, 1.02)))
    extraction = extract_reduced_swing(measurements, v_swing=v_swing)
    print(f"  C_fullswing    = {extraction['c_fullswing'] * 1e12:6.1f} pF "
          f"(truth {truth_full * 1e12:.0f})")
    print(f"  C_partialswing = {extraction['c_partialswing'] * 1e12:6.1f} pF "
          f"(truth {truth_partial * 1e12:.0f})")
    print(f"  R^2 = {extraction['r_squared']:.5f} — a single-voltage "
          "quadratic fit would misattribute the linear term")


def correlation_flow() -> None:
    print("\n== Correlated data: why the library has two coefficient sets ==")
    netlist = ripple_adder_netlist(16)
    for rho, label in ((0.0, "uncorrelated"), (0.95, "correlated (rho=0.95)")):
        vectors = operand_vectors(300, 16, correlation=rho, seed=8)
        result = simulate(netlist, vectors, glitch_factor=0.15)
        print(f"  {label:24s} {result.capacitance_per_cycle * 1e12:6.2f} "
              "pF/access")
    words = correlated_words(2000, 16, 0.95, seed=8)
    stats = measure_bits(words, 16)
    profile = dual_bit_type(stats)
    print(f"  dual-bit-type: LSB activity {profile.lsb_activity:.2f}, "
          f"MSB activity {profile.msb_activity:.2f}, "
          f"breakpoints {profile.breakpoint_low}/{profile.breakpoint_high}")


def main() -> None:
    adder_flow()
    multiplier_flow()
    reduced_swing_flow()
    correlation_flow()


if __name__ == "__main__":
    main()
