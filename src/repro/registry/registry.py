"""The per-server model registry: publish, ingest, materialize.

A :class:`ModelRegistry` wraps a :class:`~repro.registry.store.MirrorStore`
with the semantics the federation needs:

* **publish** — wrap a library entry or a design into a new artifact at
  the next version and mirror it (the paper's "put it on the web in
  Massachusetts" step, with integrity and history attached);
* **ingest** — accept an already-built artifact from a peer (the
  subscribe side), verifying its digest and refusing version conflicts;
* **materialize** — turn a mirrored artifact back into a live
  :class:`~repro.library.catalog.LibraryEntry` or
  :class:`~repro.core.design.Design`, digest-verified on the way out.

Every payload that crosses this boundary is *data* — expressions and
coefficients decoded by the library codecs, never code.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional

from ..core.design import Design
from ..errors import RegistryError
from ..library.catalog import Library, LibraryEntry
from ..library.designio import design_from_payload, design_to_payload
from ..obs import get_logger, span
from .artifacts import ModelArtifact
from .store import MirrorStore, _metric_ops

_LOG = get_logger("registry")


class ModelRegistry:
    """Versioned publication on top of a local mirror store."""

    def __init__(
        self,
        store: MirrorStore,
        publisher: str = "local",
        clock: Callable[[], float] = time.time,
    ):
        self.store = store
        self.publisher = publisher
        self.clock = clock

    # -- publish -----------------------------------------------------------

    def _next_version(self, kind: str, name: str) -> int:
        try:
            return self.store.get(kind, name).version + 1
        except RegistryError:
            return 1

    def publish_entry(
        self, entry: LibraryEntry, publisher: Optional[str] = None
    ) -> ModelArtifact:
        """Publish one library entry as the next artifact version.

        Proprietary entries never leave the server — the paper's
        "available for re-use unless specified as proprietary".
        """
        if entry.proprietary:
            raise RegistryError(
                f"entry {entry.name!r} is proprietary and cannot be published"
            )
        return self._publish("entry", entry.name, entry.to_payload(), publisher)

    def publish_design(
        self, design: Design, publisher: Optional[str] = None
    ) -> ModelArtifact:
        """Publish a whole design (hierarchy, models, parameters)."""
        return self._publish(
            "design", design.name, design_to_payload(design), publisher
        )

    def _publish(
        self, kind: str, name: str, payload: Dict, publisher: Optional[str]
    ) -> ModelArtifact:
        with span("registry_publish", kind=kind, name=name):
            who = publisher if publisher is not None else self.publisher
            version = self._next_version(kind, name)
            artifact = ModelArtifact.create(
                kind, name, payload,
                version=version, publisher=who, clock=self.clock,
            )
            self.store.put(artifact)
            _metric_ops().inc(op="publish")
            _LOG.info(
                "publish", ref=artifact.ref, digest=artifact.digest[:12],
                publisher=who,
            )
            return artifact

    # -- ingest (the subscribe side) ---------------------------------------

    def ingest(self, artifact: ModelArtifact) -> bool:
        """Mirror a peer's artifact; True if it was new.

        Digest verification and version-conflict refusal happen in
        :meth:`MirrorStore.put`; this is the single funnel every synced
        or pushed artifact passes through.
        """
        key = (artifact.kind, artifact.name, artifact.version)
        known = key in self.store
        self.store.put(artifact)
        if not known:
            _metric_ops().inc(op="ingest")
            _LOG.info(
                "ingest", ref=artifact.ref, publisher=artifact.publisher
            )
        return not known

    # -- materialize -------------------------------------------------------

    def get_artifact(
        self, kind: str, name: str, version: Optional[int] = None
    ) -> ModelArtifact:
        return self.store.get(kind, name, version)

    def get_entry(
        self, name: str, version: Optional[int] = None
    ) -> LibraryEntry:
        """A live library entry from the mirror (digest-verified read)."""
        artifact = self.store.get("entry", name, version)
        entry = LibraryEntry.from_payload(
            artifact.payload, origin=f"registry:{artifact.publisher}"
        )
        _metric_ops().inc(op="materialize_entry")
        return entry

    def get_design(self, name: str, version: Optional[int] = None) -> Design:
        """A live design from the mirror (digest-verified read)."""
        artifact = self.store.get("design", name, version)
        design = design_from_payload(artifact.payload)
        _metric_ops().inc(op="materialize_design")
        return design

    def as_library(self, name: str = "mirrored") -> Library:
        """Every mirrored entry (latest versions) as one Library."""
        library = Library(name, "latest mirrored registry entries")
        latest: Dict[str, int] = {}
        for row in self.catalog():
            if row.get("corrupt") or row["kind"] != "entry":
                continue
            latest[row["name"]] = max(latest.get(row["name"], 0), row["version"])
        for entry_name, version in sorted(latest.items()):
            library.add(self.get_entry(entry_name, version), replace=True)
        return library

    # -- views -------------------------------------------------------------

    def catalog(self) -> List[dict]:
        return self.store.catalog()

    def verify_all(self) -> Dict[str, List[str]]:
        return self.store.verify_all()
