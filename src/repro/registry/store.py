"""The crash-safe local artifact mirror.

One JSON file per artifact version under a server-local directory,
written with the same mkstemp + fsync + atomic-rename discipline as the
session and job stores: a ``kill -9`` at any instant leaves either the
previous complete file or the new complete file, never a torn one.

Every read re-verifies the blake2b digest.  A file that fails — disk
damage, manual edits, a tampering peer — is **quarantined**: moved
aside to ``*.corrupt[-N]``, counted in metrics, recorded on
:attr:`MirrorStore.quarantined`, and reported to the caller as
:class:`~repro.errors.IntegrityError`.  A corrupt artifact is therefore
*never* silently used, and the damaged bytes are preserved for
inspection.

The mirror is bounded: :meth:`MirrorStore.gc` evicts the oldest
unpinned, non-latest versions once the store exceeds ``max_artifacts``.
Pinned versions (``pins.json``, atomically maintained) and the latest
version of every name are never evicted — "every server can still
evaluate every design mid-outage" requires the working set to survive
any GC.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ArtifactConflict, IntegrityError, RegistryError
from ..obs import get_logger, get_registry
from .artifacts import (
    ModelArtifact,
    validate_artifact_name,
    validate_kind,
    validate_version,
)

_LOG = get_logger("registry.store")

#: default size bound: generous for a fleet of model libraries, small
#: enough that a runaway publisher cannot fill the disk
DEFAULT_MAX_ARTIFACTS = 4096


def _metric_ops():
    return get_registry().counter(
        "powerplay_registry_ops_total",
        "Registry mirror-store operations, by op.",
        ("op",),
    )


def _metric_integrity():
    return get_registry().counter(
        "powerplay_registry_integrity_total",
        "Artifact digest verifications, by outcome.",
        ("event",),
    )


def _metric_artifacts():
    return get_registry().gauge(
        "powerplay_registry_artifacts",
        "Artifacts currently held in the local mirror store.",
    )


#: (kind, name, version) — the store's primary key
StoreKey = Tuple[str, str, int]


class MirrorStore:
    """File-backed, digest-verified artifact mirror.

    Thread-safe: the web server syncs and serves from multiple threads.
    ``clock`` is injectable so freshness in tests is deterministic.
    """

    def __init__(
        self,
        root: Path,
        max_artifacts: int = DEFAULT_MAX_ARTIFACTS,
        clock: Callable[[], float] = time.time,
    ):
        if max_artifacts < 1:
            raise RegistryError("max_artifacts must be >= 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_artifacts = max_artifacts
        self.clock = clock
        self._lock = threading.RLock()
        #: ``[(ref, quarantine path, reason), ...]`` since construction
        self.quarantined: List[Tuple[str, Path, str]] = []
        self._pins: Dict[str, int] = self._load_pins()
        _metric_artifacts().set(len(self._list_files()))

    # -- paths -------------------------------------------------------------

    def _path(self, kind: str, name: str, version: int) -> Path:
        return self.root / f"{kind}--{name}--v{version}.json"

    @staticmethod
    def _parse_filename(path: Path) -> Optional[StoreKey]:
        parts = path.stem.split("--")
        if len(parts) != 3 or not parts[2].startswith("v"):
            return None
        try:
            return parts[0], parts[1], int(parts[2][1:])
        except ValueError:
            return None

    def _list_files(self) -> Dict[StoreKey, Path]:
        files: Dict[StoreKey, Path] = {}
        for path in self.root.glob("*.json"):
            if path.name == "pins.json":
                continue
            key = self._parse_filename(path)
            if key is not None:
                files[key] = path
        return files

    # -- pins --------------------------------------------------------------

    def _pin_key(self, kind: str, name: str) -> str:
        return f"{kind}:{name}"

    def _load_pins(self) -> Dict[str, int]:
        path = self.root / "pins.json"
        if not path.exists():
            return {}
        try:
            payload = json.loads(path.read_text())
            return {str(k): int(v) for k, v in payload.get("pins", {}).items()}
        except (json.JSONDecodeError, ValueError, TypeError, AttributeError):
            # a torn pins file must not take the mirror down; pins are
            # advisory and re-creatable, the artifacts themselves are not
            _LOG.warning("pins_unreadable", path=str(path))
            return {}

    def _save_pins(self) -> None:
        self._atomic_write(
            self.root / "pins.json",
            json.dumps({"format": "powerplay-pins/1", "pins": self._pins},
                       indent=1, sort_keys=True),
        )

    def pin(self, kind: str, name: str, version: int) -> None:
        """Protect one version from GC (and record operator intent)."""
        validate_kind(kind)
        validate_artifact_name(name)
        validate_version(version)
        with self._lock:
            if (kind, name, version) not in self._list_files():
                raise RegistryError(
                    f"cannot pin {kind}:{name}@v{version}: not in the mirror"
                )
            self._pins[self._pin_key(kind, name)] = version
            self._save_pins()
            _metric_ops().inc(op="pin")
            _LOG.info("pin", kind=kind, name=name, version=version)

    def unpin(self, kind: str, name: str) -> None:
        with self._lock:
            if self._pins.pop(self._pin_key(kind, name), None) is None:
                raise RegistryError(f"{kind}:{name} is not pinned")
            self._save_pins()
            _metric_ops().inc(op="unpin")

    def pinned(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._pins)

    # -- write path --------------------------------------------------------

    def _atomic_write(self, path: Path, text: str) -> None:
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.root), prefix=f".{path.stem}-", suffix=".saving"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        # make the rename itself durable (directory entry update)
        try:
            dir_fd = os.open(str(self.root), os.O_RDONLY)
        except OSError:  # pragma: no cover - exotic filesystems
            return
        try:
            os.fsync(dir_fd)
        finally:
            os.close(dir_fd)

    def put(self, artifact: ModelArtifact) -> ModelArtifact:
        """Store one artifact (digest-verified before any byte lands).

        Idempotent for identical content.  A *different* artifact under
        an existing (kind, name, version) raises
        :class:`~repro.errors.ArtifactConflict`: versions are immutable.
        """
        artifact.verify()
        _metric_integrity().inc(event="verified")
        path = self._path(artifact.kind, artifact.name, artifact.version)
        with self._lock:
            if path.exists():
                try:
                    existing = self._read_verified(path)
                except IntegrityError:
                    # the resident copy is damaged; the incoming verified
                    # one replaces it (the damaged bytes were quarantined
                    # by _read_verified)
                    existing = None
                if existing is not None:
                    if existing.digest == artifact.digest:
                        _metric_ops().inc(op="put_duplicate")
                        return existing
                    raise ArtifactConflict(
                        f"{artifact.ref} already mirrored with digest "
                        f"{existing.digest[:12]}…; refusing to replace it "
                        f"with {artifact.digest[:12]}…"
                    )
            self._atomic_write(path, artifact.to_json())
            _metric_ops().inc(op="put")
            _metric_artifacts().set(len(self._list_files()))
            _LOG.info(
                "put", ref=artifact.ref, digest=artifact.digest[:12],
                publisher=artifact.publisher,
            )
        return artifact

    # -- read path ---------------------------------------------------------

    def _quarantine(self, path: Path, reason: str) -> Path:
        target = path.with_suffix(".json.corrupt")
        counter = 0
        while target.exists():
            counter += 1
            target = path.with_suffix(f".json.corrupt-{counter}")
        path.replace(target)
        self.quarantined.append((path.stem, target, reason))
        _metric_integrity().inc(event="quarantine")
        _metric_artifacts().set(len(self._list_files()))
        _LOG.warning(
            "quarantine", artifact=path.stem, moved_to=str(target),
            reason=reason,
        )
        return target

    def _read_verified(self, path: Path) -> ModelArtifact:
        """Read + digest-verify one file, quarantining on any failure."""
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise RegistryError(f"cannot read {path.name}: {exc}") from exc
        try:
            artifact = ModelArtifact.from_json(text)
        except (IntegrityError, RegistryError) as exc:
            self._quarantine(path, str(exc))
            raise IntegrityError(
                f"mirrored artifact {path.stem} failed verification and "
                f"was quarantined: {exc}"
            ) from exc
        _metric_integrity().inc(event="verified")
        return artifact

    def get(
        self, kind: str, name: str, version: Optional[int] = None
    ) -> ModelArtifact:
        """Fetch (and verify) one artifact; latest version by default."""
        validate_kind(kind)
        validate_artifact_name(name)
        with self._lock:
            files = self._list_files()
            if version is None:
                versions = sorted(
                    v for (k, n, v) in files if k == kind and n == name
                )
                if not versions:
                    raise RegistryError(
                        f"mirror has no artifact {kind}:{name!r}"
                    )
                version = versions[-1]
            else:
                validate_version(version)
            path = files.get((kind, name, version))
            if path is None:
                raise RegistryError(
                    f"mirror has no artifact {kind}:{name}@v{version}"
                )
            artifact = self._read_verified(path)
            _metric_ops().inc(op="get")
            return artifact

    def __contains__(self, key: object) -> bool:
        if not (isinstance(key, tuple) and len(key) == 3):
            return False
        with self._lock:
            return key in self._list_files()

    def __len__(self) -> int:
        with self._lock:
            return len(self._list_files())

    def catalog(self) -> List[dict]:
        """Descriptor + freshness for every mirrored artifact.

        Unreadable entries are quarantined as a side effect (a catalog
        listing is an audit) and reported with ``"corrupt": True`` so
        pages can show the hole instead of hiding it.
        """
        rows: List[dict] = []
        with self._lock:
            now = self.clock()
            for key, path in sorted(self._list_files().items()):
                kind, name, version = key
                try:
                    stored_at = path.stat().st_mtime
                except OSError:  # pragma: no cover - raced unlink
                    continue
                try:
                    artifact = self._read_verified(path)
                except IntegrityError as exc:
                    rows.append(
                        {
                            "kind": kind, "name": name, "version": version,
                            "corrupt": True, "error": str(exc),
                        }
                    )
                    continue
                row = artifact.descriptor()
                row["age_s"] = max(0.0, now - stored_at)
                row["pinned"] = (
                    self._pins.get(self._pin_key(kind, name)) == version
                )
                rows.append(row)
        return rows

    def verify_all(self) -> Dict[str, List[str]]:
        """Re-verify every mirrored artifact; quarantine what fails."""
        ok: List[str] = []
        corrupt: List[str] = []
        with self._lock:
            for key, path in sorted(self._list_files().items()):
                try:
                    artifact = self._read_verified(path)
                    ok.append(artifact.ref)
                except IntegrityError:
                    corrupt.append(f"{key[0]}:{key[1]}@v{key[2]}")
            _metric_ops().inc(op="verify")
        return {"ok": ok, "corrupt": corrupt}

    # -- bounded size ------------------------------------------------------

    def gc(self, max_artifacts: Optional[int] = None) -> List[str]:
        """Evict oldest unpinned, non-latest versions over the bound.

        Returns the evicted refs.  The latest version of every name and
        every pinned version always survive — the GC bounds history,
        never the working set (so the bound is best-effort when the
        working set itself exceeds it).
        """
        bound = self.max_artifacts if max_artifacts is None else max_artifacts
        if bound < 1:
            raise RegistryError("max_artifacts must be >= 1")
        evicted: List[str] = []
        with self._lock:
            files = self._list_files()
            if len(files) <= bound:
                return evicted
            latest: Dict[Tuple[str, str], int] = {}
            for kind, name, version in files:
                key = (kind, name)
                latest[key] = max(latest.get(key, 0), version)
            candidates = []
            for (kind, name, version), path in files.items():
                if latest[(kind, name)] == version:
                    continue
                if self._pins.get(self._pin_key(kind, name)) == version:
                    continue
                try:
                    mtime = path.stat().st_mtime
                except OSError:  # pragma: no cover - raced unlink
                    continue
                candidates.append((mtime, kind, name, version, path))
            candidates.sort()
            excess = len(files) - bound
            for _mtime, kind, name, version, path in candidates[:excess]:
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - raced unlink
                    continue
                evicted.append(f"{kind}:{name}@v{version}")
                _metric_ops().inc(op="gc_evict")
                _LOG.info("gc_evict", ref=evicted[-1])
            _metric_artifacts().set(len(self._list_files()))
        return evicted

    # -- health ------------------------------------------------------------

    def writable(self) -> bool:
        """Probe whether the mirror can still persist artifacts."""
        try:
            fd, tmp_name = tempfile.mkstemp(
                dir=str(self.root), prefix=".probe-", suffix=".tmp"
            )
            os.close(fd)
            os.unlink(tmp_name)
            return True
        except OSError:
            return False
