"""The crash-safe local artifact mirror.

One JSON document per artifact version, stored through a
:class:`~repro.state.backend.StateBackend` (namespace ``"registry"``).
The default file backend keeps the historical layout — one
``kind--name--vN.json`` under a server-local directory, written with
the same mkstemp + fsync + atomic-rename discipline as the session and
job stores: a ``kill -9`` at any instant leaves either the previous
complete file or the new complete file, never a torn one.  ``serve
--backend sqlite`` swaps in WAL-mode SQLite without this class
changing shape.

Every read re-verifies the blake2b digest.  A document that fails —
disk damage, manual edits, a tampering peer — is **quarantined**: moved
aside (file: ``*.corrupt[-N]``; SQLite: a quarantine table), counted in
metrics, recorded on :attr:`MirrorStore.quarantined`, and reported to
the caller as :class:`~repro.errors.IntegrityError`.  A corrupt
artifact is therefore *never* silently used, and the damaged bytes are
preserved for inspection.

The mirror is bounded: :meth:`MirrorStore.gc` evicts the oldest
unpinned, non-latest versions once the store exceeds ``max_artifacts``.
Pinned versions (the ``pins`` document, atomically maintained) and the
latest version of every name are never evicted — "every server can
still evaluate every design mid-outage" requires the working set to
survive any GC.
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ArtifactConflict, IntegrityError, RegistryError
from ..obs import get_logger, get_registry
from ..state import FileBackend, open_backend
from .artifacts import (
    ModelArtifact,
    validate_artifact_name,
    validate_kind,
    validate_version,
)

_LOG = get_logger("registry.store")

#: default size bound: generous for a fleet of model libraries, small
#: enough that a runaway publisher cannot fill the disk
DEFAULT_MAX_ARTIFACTS = 4096


def _metric_ops():
    return get_registry().counter(
        "powerplay_registry_ops_total",
        "Registry mirror-store operations, by op.",
        ("op",),
    )


def _metric_integrity():
    return get_registry().counter(
        "powerplay_registry_integrity_total",
        "Artifact digest verifications, by outcome.",
        ("event",),
    )


def _metric_artifacts():
    return get_registry().gauge(
        "powerplay_registry_artifacts",
        "Artifacts currently held in the local mirror store.",
    )


#: (kind, name, version) — the store's primary key
StoreKey = Tuple[str, str, int]

#: the document holding the pin table (never a valid artifact key:
#: artifact keys always contain ``--``)
_PINS_KEY = "pins"


class MirrorStore:
    """Backend-backed, digest-verified artifact mirror.

    Thread-safe: the web server syncs and serves from multiple threads.
    ``clock`` is injectable so freshness in tests is deterministic.
    """

    NAMESPACE = "registry"

    def __init__(
        self,
        root: Path,
        max_artifacts: int = DEFAULT_MAX_ARTIFACTS,
        clock: Callable[[], float] = time.time,
        backend=None,
    ):
        if max_artifacts < 1:
            raise RegistryError("max_artifacts must be >= 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        if backend is None:
            # standalone store: the historical layout rooted itself at
            # the registry directory, not a parent state directory
            backend = FileBackend(self.root, layout={self.NAMESPACE: "."})
        self.backend = open_backend(backend, self.root)
        self.max_artifacts = max_artifacts
        self.clock = clock
        self._lock = threading.RLock()
        #: ``[(ref, quarantine location, reason), ...]`` since construction
        self.quarantined: List[Tuple[str, Path, str]] = []
        self._pins: Dict[str, int] = self._load_pins()
        _metric_artifacts().set(len(self._list_keys()))

    # -- document keys -----------------------------------------------------

    @staticmethod
    def _doc_key(kind: str, name: str, version: int) -> str:
        return f"{kind}--{name}--v{version}"

    def _path(self, kind: str, name: str, version: int) -> Path:
        """Where one artifact lives (file backend only — tests use this
        to corrupt raw bytes on disk)."""
        return self.backend.doc_path(
            self.NAMESPACE, self._doc_key(kind, name, version)
        )

    @staticmethod
    def _parse_key(key: str) -> Optional[StoreKey]:
        parts = key.split("--")
        if len(parts) != 3 or not parts[2].startswith("v"):
            return None
        try:
            return parts[0], parts[1], int(parts[2][1:])
        except ValueError:
            return None

    def _list_keys(self) -> Dict[StoreKey, str]:
        keys: Dict[StoreKey, str] = {}
        for doc_key in self.backend.keys(self.NAMESPACE):
            if doc_key == _PINS_KEY:
                continue
            key = self._parse_key(doc_key)
            if key is not None:
                keys[key] = doc_key
        return keys

    # -- pins --------------------------------------------------------------

    def _pin_key(self, kind: str, name: str) -> str:
        return f"{kind}:{name}"

    def _load_pins(self) -> Dict[str, int]:
        text = self.backend.load(self.NAMESPACE, _PINS_KEY)
        if text is None:
            return {}
        try:
            payload = json.loads(text)
            return {str(k): int(v) for k, v in payload.get("pins", {}).items()}
        except (json.JSONDecodeError, ValueError, TypeError, AttributeError):
            # a torn pins document must not take the mirror down; pins are
            # advisory and re-creatable, the artifacts themselves are not
            _LOG.warning("pins_unreadable", store=str(self.root))
            return {}

    def _save_pins(self) -> None:
        self.backend.save(
            self.NAMESPACE,
            _PINS_KEY,
            json.dumps({"format": "powerplay-pins/1", "pins": self._pins},
                       indent=1, sort_keys=True),
        )

    def pin(self, kind: str, name: str, version: int) -> None:
        """Protect one version from GC (and record operator intent)."""
        validate_kind(kind)
        validate_artifact_name(name)
        validate_version(version)
        with self._lock:
            if (kind, name, version) not in self._list_keys():
                raise RegistryError(
                    f"cannot pin {kind}:{name}@v{version}: not in the mirror"
                )
            self._pins[self._pin_key(kind, name)] = version
            self._save_pins()
            _metric_ops().inc(op="pin")
            _LOG.info("pin", kind=kind, name=name, version=version)

    def unpin(self, kind: str, name: str) -> None:
        with self._lock:
            if self._pins.pop(self._pin_key(kind, name), None) is None:
                raise RegistryError(f"{kind}:{name} is not pinned")
            self._save_pins()
            _metric_ops().inc(op="unpin")

    def pinned(self) -> Dict[str, int]:
        with self._lock:
            return dict(self._pins)

    # -- write path --------------------------------------------------------

    def put(self, artifact: ModelArtifact) -> ModelArtifact:
        """Store one artifact (digest-verified before any byte lands).

        Idempotent for identical content.  A *different* artifact under
        an existing (kind, name, version) raises
        :class:`~repro.errors.ArtifactConflict`: versions are immutable.
        """
        artifact.verify()
        _metric_integrity().inc(event="verified")
        doc_key = self._doc_key(artifact.kind, artifact.name, artifact.version)
        with self._lock:
            if self.backend.load(self.NAMESPACE, doc_key) is not None:
                try:
                    existing = self._read_verified(doc_key)
                except IntegrityError:
                    # the resident copy is damaged; the incoming verified
                    # one replaces it (the damaged bytes were quarantined
                    # by _read_verified)
                    existing = None
                if existing is not None:
                    if existing.digest == artifact.digest:
                        _metric_ops().inc(op="put_duplicate")
                        return existing
                    raise ArtifactConflict(
                        f"{artifact.ref} already mirrored with digest "
                        f"{existing.digest[:12]}…; refusing to replace it "
                        f"with {artifact.digest[:12]}…"
                    )
            self.backend.save(self.NAMESPACE, doc_key, artifact.to_json())
            _metric_ops().inc(op="put")
            _metric_artifacts().set(len(self._list_keys()))
            _LOG.info(
                "put", ref=artifact.ref, digest=artifact.digest[:12],
                publisher=artifact.publisher,
            )
        return artifact

    # -- read path ---------------------------------------------------------

    def _quarantine(self, doc_key: str, reason: str) -> Path:
        target = Path(self.backend.quarantine(self.NAMESPACE, doc_key, reason))
        self.quarantined.append((doc_key, target, reason))
        _metric_integrity().inc(event="quarantine")
        _metric_artifacts().set(len(self._list_keys()))
        _LOG.warning(
            "quarantine", artifact=doc_key, moved_to=str(target),
            reason=reason,
        )
        return target

    def _read_verified(self, doc_key: str) -> ModelArtifact:
        """Read + digest-verify one document, quarantining on failure."""
        text = self.backend.load(self.NAMESPACE, doc_key)
        if text is None:
            raise RegistryError(f"cannot read {doc_key}: missing")
        try:
            artifact = ModelArtifact.from_json(text)
        except (IntegrityError, RegistryError) as exc:
            self._quarantine(doc_key, str(exc))
            raise IntegrityError(
                f"mirrored artifact {doc_key} failed verification and "
                f"was quarantined: {exc}"
            ) from exc
        _metric_integrity().inc(event="verified")
        return artifact

    def get(
        self, kind: str, name: str, version: Optional[int] = None
    ) -> ModelArtifact:
        """Fetch (and verify) one artifact; latest version by default."""
        validate_kind(kind)
        validate_artifact_name(name)
        with self._lock:
            keys = self._list_keys()
            if version is None:
                versions = sorted(
                    v for (k, n, v) in keys if k == kind and n == name
                )
                if not versions:
                    raise RegistryError(
                        f"mirror has no artifact {kind}:{name!r}"
                    )
                version = versions[-1]
            else:
                validate_version(version)
            doc_key = keys.get((kind, name, version))
            if doc_key is None:
                raise RegistryError(
                    f"mirror has no artifact {kind}:{name}@v{version}"
                )
            artifact = self._read_verified(doc_key)
            _metric_ops().inc(op="get")
            return artifact

    def __contains__(self, key: object) -> bool:
        if not (isinstance(key, tuple) and len(key) == 3):
            return False
        with self._lock:
            return key in self._list_keys()

    def __len__(self) -> int:
        with self._lock:
            return len(self._list_keys())

    def catalog(self) -> List[dict]:
        """Descriptor + freshness for every mirrored artifact.

        Unreadable entries are quarantined as a side effect (a catalog
        listing is an audit) and reported with ``"corrupt": True`` so
        pages can show the hole instead of hiding it.
        """
        rows: List[dict] = []
        with self._lock:
            now = self.clock()
            for key, doc_key in sorted(self._list_keys().items()):
                kind, name, version = key
                stored_at = self.backend.mtime(self.NAMESPACE, doc_key)
                if stored_at is None:  # pragma: no cover - raced delete
                    continue
                try:
                    artifact = self._read_verified(doc_key)
                except IntegrityError as exc:
                    rows.append(
                        {
                            "kind": kind, "name": name, "version": version,
                            "corrupt": True, "error": str(exc),
                        }
                    )
                    continue
                row = artifact.descriptor()
                row["age_s"] = max(0.0, now - stored_at)
                row["pinned"] = (
                    self._pins.get(self._pin_key(kind, name)) == version
                )
                rows.append(row)
        return rows

    def verify_all(self) -> Dict[str, List[str]]:
        """Re-verify every mirrored artifact; quarantine what fails."""
        ok: List[str] = []
        corrupt: List[str] = []
        with self._lock:
            for key, doc_key in sorted(self._list_keys().items()):
                try:
                    artifact = self._read_verified(doc_key)
                    ok.append(artifact.ref)
                except IntegrityError:
                    corrupt.append(f"{key[0]}:{key[1]}@v{key[2]}")
            _metric_ops().inc(op="verify")
        return {"ok": ok, "corrupt": corrupt}

    # -- bounded size ------------------------------------------------------

    def gc(self, max_artifacts: Optional[int] = None) -> List[str]:
        """Evict oldest unpinned, non-latest versions over the bound.

        Returns the evicted refs.  The latest version of every name and
        every pinned version always survive — the GC bounds history,
        never the working set (so the bound is best-effort when the
        working set itself exceeds it).
        """
        bound = self.max_artifacts if max_artifacts is None else max_artifacts
        if bound < 1:
            raise RegistryError("max_artifacts must be >= 1")
        evicted: List[str] = []
        with self._lock:
            keys = self._list_keys()
            if len(keys) <= bound:
                return evicted
            latest: Dict[Tuple[str, str], int] = {}
            for kind, name, version in keys:
                key = (kind, name)
                latest[key] = max(latest.get(key, 0), version)
            candidates = []
            for (kind, name, version), doc_key in keys.items():
                if latest[(kind, name)] == version:
                    continue
                if self._pins.get(self._pin_key(kind, name)) == version:
                    continue
                mtime = self.backend.mtime(self.NAMESPACE, doc_key)
                if mtime is None:  # pragma: no cover - raced delete
                    continue
                candidates.append((mtime, kind, name, version, doc_key))
            candidates.sort()
            excess = len(keys) - bound
            for _mtime, kind, name, version, doc_key in candidates[:excess]:
                if not self.backend.delete(self.NAMESPACE, doc_key):
                    continue  # pragma: no cover - raced delete
                evicted.append(f"{kind}:{name}@v{version}")
                _metric_ops().inc(op="gc_evict")
                _LOG.info("gc_evict", ref=evicted[-1])
            _metric_artifacts().set(len(self._list_keys()))
        return evicted

    # -- health ------------------------------------------------------------

    def writable(self) -> bool:
        """Probe whether the mirror can still persist artifacts."""
        return self.backend.writable()
