"""Publish/subscribe synchronization between PowerPlay servers.

The subscribe side pulls a peer's catalog (``GET
/api/registry/catalog.json``), fetches every artifact it is missing
(``GET /api/registry/artifact``), digest-verifies each one *at the
fetch boundary*, and ingests it into the local mirror.  The publish
side pushes one artifact to a peer (``POST /api/registry/publish``).

Both directions ride the existing resilience stack — bounded retries
with deterministic jitter and a per-host circuit breaker
(:mod:`repro.web.resilience`) — and the federation trace headers
(:mod:`repro.obs.propagate`) via :class:`~repro.web.client.Browser`,
so a sync through a flapping provider is retried, breaker-guarded, and
visible as one federated trace.

Integrity is the protocol's backbone: a truncated or corrupted payload
(a connection reset mid-body, a tampering peer) fails digest
verification and is treated as *transport damage* — retried, counted
(``powerplay_registry_sync_total{outcome="integrity_rejected"}``), and
never ingested.  Zero digest-unverified artifacts can enter a mirror
through this module.
"""

from __future__ import annotations

import json
import time
import urllib.parse
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..errors import (
    ArtifactConflict,
    CircuitOpenError,
    IntegrityError,
    RegistryError,
    RemoteError,
    TransientRemoteError,
)
from ..obs import annotate, get_logger, get_registry, span
from ..web.client import Browser
from ..web.resilience import CircuitBreaker, RetryPolicy
from .artifacts import ModelArtifact
from .registry import ModelRegistry

_LOG = get_logger("registry.sync")

#: artifact bodies are model payloads, not bulk data; anything larger
#: than this is either a mistake or an attack on the mirror's disk
MAX_ARTIFACT_BYTES = 512 * 1024


def _metric_sync():
    return get_registry().counter(
        "powerplay_registry_sync_total",
        "Registry sync outcomes (fetched, duplicate, integrity_rejected, "
        "failed, pushed).",
        ("outcome",),
    )


@dataclass
class SyncReport:
    """Per-artifact account of one sync pass: nothing is silent."""

    peer: str = ""
    fetched: List[str] = field(default_factory=list)
    duplicates: List[str] = field(default_factory=list)
    conflicts: Dict[str, str] = field(default_factory=dict)
    integrity_rejected: Dict[str, str] = field(default_factory=dict)
    failed: Dict[str, str] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return not self.failed and not self.integrity_rejected

    def summary(self) -> Dict[str, int]:
        return {
            "fetched": len(self.fetched),
            "duplicates": len(self.duplicates),
            "conflicts": len(self.conflicts),
            "integrity_rejected": len(self.integrity_rejected),
            "failed": len(self.failed),
        }

    def to_payload(self) -> dict:
        payload = {"peer": self.peer, "complete": self.complete}
        payload.update(
            {
                "fetched": list(self.fetched),
                "duplicates": list(self.duplicates),
                "conflicts": dict(self.conflicts),
                "integrity_rejected": dict(self.integrity_rejected),
                "failed": dict(self.failed),
            }
        )
        return payload


class RegistrySyncClient:
    """Client for a peer server's registry API.

    One breaker and one retry policy per peer, exactly like
    :class:`~repro.web.remote.RemoteLibraryClient` — the two clients
    share a host's failure history shape, not its state, so a dead
    registry peer is skipped fast without poisoning model fetches.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 10.0,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.base_url = base_url.rstrip("/")
        self.retry_policy = retry_policy or RetryPolicy()
        self.breaker = breaker or CircuitBreaker(
            name=f"registry:{self.base_url}"
        )
        self._browser = Browser(self.base_url, timeout=timeout)
        self.requests_made = 0
        self.clock = clock

    # -- guarded transport -------------------------------------------------

    def _guarded(self, fn: Callable[[], object], target: str) -> object:
        """One registry operation through breaker + bounded retries."""

        def attempt() -> object:
            with span(
                "registry_attempt", url=self.base_url, target=target
            ):
                return self.breaker.call(
                    fn, failure_types=(TransientRemoteError, OSError)
                )

        def on_retry(attempt_index: int, exc: Exception) -> None:
            annotate(
                "registry_retry",
                url=self.base_url,
                target=target,
                attempt=attempt_index + 1,
                error=type(exc).__name__,
            )

        return self.retry_policy.call(attempt, on_retry=on_retry)

    # -- protocol ----------------------------------------------------------

    def fetch_catalog(self) -> List[dict]:
        """The peer's artifact descriptors (identity + digest, no payload)."""

        def fetch() -> List[dict]:
            self.requests_made += 1
            payload = self._browser.get_json("/api/registry/catalog.json")
            if (
                not isinstance(payload, dict)
                or payload.get("format") != "powerplay-registry-catalog/1"
                or not isinstance(payload.get("artifacts"), list)
            ):
                raise RemoteError(
                    f"{self.base_url} did not return a registry catalog"
                )
            return payload["artifacts"]

        with span("registry_fetch_catalog", url=self.base_url) as sp:
            catalog = self._guarded(fetch, "catalog")
            sp.set(artifacts=len(catalog))
            return catalog

    def _fetch_artifact_once(
        self, kind: str, name: str, version: int
    ) -> ModelArtifact:
        self.requests_made += 1
        query = urllib.parse.urlencode(
            {"kind": kind, "name": name, "version": version}
        )
        page = self._browser.get(f"/api/registry/artifact?{query}")
        if page.status == 400 or page.status == 404:
            raise RemoteError(
                f"{self.base_url} refused artifact {kind}:{name}@v{version} "
                f"({page.status})"
            )
        if page.status != 200:
            raise TransientRemoteError(
                f"{self.base_url}/api/registry/artifact returned {page.status}"
            )
        if len(page.body) > MAX_ARTIFACT_BYTES:
            raise RemoteError(
                f"artifact {kind}:{name}@v{version} from {self.base_url} "
                f"is {len(page.body)} bytes (limit {MAX_ARTIFACT_BYTES})"
            )
        try:
            # from_json digest-verifies; a truncated or mangled body is
            # transport damage, worth a retry — and NEVER parses into a
            # usable artifact
            return ModelArtifact.from_json(page.body)
        except IntegrityError as exc:
            _metric_sync().inc(outcome="integrity_rejected")
            raise TransientRemoteError(
                f"artifact {kind}:{name}@v{version} from {self.base_url} "
                f"failed digest verification: {exc}"
            ) from exc
        except RegistryError as exc:
            raise RemoteError(
                f"bad artifact payload from {self.base_url}: {exc}"
            ) from exc

    def fetch_artifact(
        self, kind: str, name: str, version: int
    ) -> ModelArtifact:
        """Fetch + digest-verify one artifact (retried through faults)."""
        with span(
            "registry_fetch_artifact",
            url=self.base_url, kind=kind, name=name, version=version,
        ):
            return self._guarded(
                lambda: self._fetch_artifact_once(kind, name, version),
                f"{kind}:{name}@v{version}",
            )

    def push_artifact(self, artifact: ModelArtifact) -> dict:
        """Publish one artifact *to* the peer (the push direction)."""

        def push() -> dict:
            self.requests_made += 1
            page = self._browser.post(
                "/api/registry/publish", {"artifact": artifact.to_json()}
            )
            if page.status >= 500:
                raise TransientRemoteError(
                    f"{self.base_url}/api/registry/publish returned "
                    f"{page.status}"
                )
            if page.status != 200:
                raise RemoteError(
                    f"{self.base_url} refused pushed artifact "
                    f"{artifact.ref} ({page.status})"
                )
            try:
                return json.loads(page.body)
            except json.JSONDecodeError as exc:
                raise TransientRemoteError(
                    f"bad publish response from {self.base_url}: {exc}"
                ) from exc

        with span("registry_push", url=self.base_url, ref=artifact.ref):
            result = self._guarded(push, f"push:{artifact.ref}")
            _metric_sync().inc(outcome="pushed")
            return result


def sync_from(
    registry: ModelRegistry,
    client: RegistrySyncClient,
) -> SyncReport:
    """One subscribe pass: mirror everything the peer has that we lack.

    Best-effort per artifact: one unfetchable artifact is recorded in
    the report and does not abort the rest of the pass (a provider
    flapping mid-sync still yields a maximally-filled mirror).  The
    catalog fetch itself failing aborts — there is nothing to iterate.
    """
    report = SyncReport(peer=client.base_url)
    with span("registry_sync", peer=client.base_url) as sp:
        catalog = client.fetch_catalog()
        for row in catalog:
            try:
                kind = str(row["kind"])
                name = str(row["name"])
                version = int(row["version"])
                digest = str(row.get("digest", ""))
            except (KeyError, TypeError, ValueError):
                report.failed[repr(row)[:80]] = "malformed catalog row"
                _metric_sync().inc(outcome="failed")
                continue
            ref = f"{kind}:{name}@v{version}"
            if (kind, name, version) in registry.store:
                try:
                    resident = registry.store.get(kind, name, version)
                    if resident.digest == digest:
                        report.duplicates.append(ref)
                        _metric_sync().inc(outcome="duplicate")
                        continue
                    # same version, different content upstream: a
                    # conflict to surface, never an overwrite
                    report.conflicts[ref] = (
                        f"mirrored digest {resident.digest[:12]}… != "
                        f"peer digest {digest[:12]}…"
                    )
                    _metric_sync().inc(outcome="conflict")
                    continue
                except IntegrityError:
                    pass  # resident copy was corrupt -> quarantined; refetch
            try:
                artifact = client.fetch_artifact(kind, name, version)
                registry.ingest(artifact)
                report.fetched.append(ref)
                _metric_sync().inc(outcome="fetched")
            except ArtifactConflict as exc:
                report.conflicts[ref] = str(exc)
                _metric_sync().inc(outcome="conflict")
            except (IntegrityError, RegistryError) as exc:
                report.integrity_rejected[ref] = str(exc)
                _metric_sync().inc(outcome="integrity_rejected")
            except CircuitOpenError as exc:
                report.failed[ref] = f"circuit open: {exc}"
                _metric_sync().inc(outcome="failed")
            except RemoteError as exc:
                if isinstance(exc.__cause__, IntegrityError):
                    # retries exhausted on a payload that kept failing
                    # verification: file it as an integrity rejection,
                    # not a generic transport failure
                    report.integrity_rejected[ref] = str(exc)
                else:
                    report.failed[ref] = str(exc)
                    _metric_sync().inc(outcome="failed")
        sp.set(**report.summary())
        _LOG.info("sync", peer=client.base_url, **report.summary())
    return report
