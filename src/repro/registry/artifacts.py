"""Content-addressed, versioned registry artifacts.

An artifact is the unit of publication in the federated registry: one
library entry (a shareable model) or one design, wrapped with identity
(``kind``, ``name``, ``version``, ``publisher``) and a blake2b content
digest.  The digest is computed over the *canonical JSON* serialization
of the identity plus payload, so

* the same content always hashes to the same digest, regardless of
  which Python, dict order, or whitespace produced the wire bytes;
* tampering with any identity field or any payload byte is detected;
* two servers can agree an artifact is identical without shipping it.

Non-semantic metadata (``published_at``, transport origin) is carried
on the wire but excluded from the digest — republishing the same model
at a different time is the *same* artifact.

Wire format ``powerplay-artifact/1``::

    {"format": "powerplay-artifact/1",
     "kind": "entry" | "design",
     "name": "...", "version": 3, "publisher": "mass.server",
     "published_at": 836930921.0,
     "digest": "<blake2b hex over canonical identity+payload>",
     "payload": {...}}

Decoding *always* verifies: :func:`ModelArtifact.from_wire` raises
:class:`~repro.errors.IntegrityError` on any mismatch — a truncated or
corrupted artifact can never parse into a usable one.
"""

from __future__ import annotations

import hashlib
import json
import re
import time
from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

from ..errors import IntegrityError, RegistryError

#: what an artifact can carry: one library entry, or one whole design
ARTIFACT_KINDS = ("entry", "design")

#: the wire format tag (bump on incompatible change, never reuse)
WIRE_FORMAT = "powerplay-artifact/1"

#: digest scheme tag carried next to the hex digest so future schemes
#: can coexist; blake2b-160 keeps file names and catalogs compact while
#: remaining collision-resistant far beyond this registry's scale
DIGEST_SCHEME = "blake2b-160"
_DIGEST_SIZE = 20  # bytes -> 40 hex chars

#: artifact names become file names and URL query values — the same
#: strictly boring shape usernames and job ids use (\Z kills trailing
#: newlines that $ would let through)
_NAME_RE = re.compile(r"^[A-Za-z][A-Za-z0-9_.-]{0,63}\Z")

_DIGEST_RE = re.compile(r"^[0-9a-f]{40}\Z")


def validate_artifact_name(name: str) -> str:
    """Artifact names become file names — reject anything surprising."""
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise RegistryError(
            f"invalid artifact name {name!r}: use 1-64 letters, digits, "
            "'_', '.', '-', starting with a letter"
        )
    return name


def validate_kind(kind: str) -> str:
    if kind not in ARTIFACT_KINDS:
        raise RegistryError(
            f"unknown artifact kind {kind!r}; choose from {ARTIFACT_KINDS}"
        )
    return kind


def validate_version(version: object) -> int:
    if isinstance(version, bool) or not isinstance(version, int):
        raise RegistryError(f"artifact version must be an int, got {version!r}")
    if version < 1:
        raise RegistryError(f"artifact version must be >= 1, got {version}")
    return version


def canonical_json(payload: object) -> str:
    """Deterministic JSON: sorted keys, tight separators, pure ASCII.

    The digest is computed over this text, so every server — whatever
    its Python version or dict insertion order — serializes identical
    content to identical bytes.  Non-finite floats are rejected
    (``allow_nan=False``): ``NaN`` is not JSON and would make digests
    transport-dependent.
    """
    try:
        return json.dumps(
            payload,
            sort_keys=True,
            separators=(",", ":"),
            ensure_ascii=True,
            allow_nan=False,
        )
    except (TypeError, ValueError) as exc:
        raise RegistryError(f"payload is not canonicalizable: {exc}") from exc


def artifact_digest(
    kind: str, name: str, version: int, publisher: str, payload: Mapping
) -> str:
    """The content address: blake2b over canonical identity + payload."""
    body = canonical_json(
        {
            "kind": kind,
            "name": name,
            "version": version,
            "publisher": publisher,
            "payload": payload,
        }
    )
    return hashlib.blake2b(
        body.encode("ascii"), digest_size=_DIGEST_SIZE
    ).hexdigest()


@dataclass(frozen=True)
class ModelArtifact:
    """One immutable published unit: identity, payload, content digest."""

    kind: str
    name: str
    version: int
    publisher: str
    payload: Mapping
    digest: str
    published_at: float = 0.0

    @property
    def ref(self) -> str:
        """Human-readable identity, e.g. ``entry:sram@v3``."""
        return f"{self.kind}:{self.name}@v{self.version}"

    @classmethod
    def create(
        cls,
        kind: str,
        name: str,
        payload: Mapping,
        version: int = 1,
        publisher: str = "local",
        clock: Callable[[], float] = time.time,
    ) -> "ModelArtifact":
        """Build a new artifact, computing its digest."""
        validate_kind(kind)
        validate_artifact_name(name)
        validate_version(version)
        digest = artifact_digest(kind, name, version, str(publisher), payload)
        return cls(
            kind=kind,
            name=name,
            version=version,
            publisher=str(publisher),
            payload=payload,
            digest=digest,
            published_at=float(clock()),
        )

    # -- integrity ---------------------------------------------------------

    def expected_digest(self) -> str:
        return artifact_digest(
            self.kind, self.name, self.version, self.publisher, self.payload
        )

    def verify(self) -> "ModelArtifact":
        """Recompute the digest; raise :class:`IntegrityError` on mismatch."""
        expected = self.expected_digest()
        if not isinstance(self.digest, str) or not _DIGEST_RE.match(self.digest):
            raise IntegrityError(
                f"artifact {self.ref}: malformed digest {self.digest!r}"
            )
        if expected != self.digest:
            raise IntegrityError(
                f"artifact {self.ref}: digest mismatch "
                f"(claimed {self.digest[:12]}…, content is {expected[:12]}…)"
            )
        return self

    # -- wire codec --------------------------------------------------------

    def to_wire(self) -> dict:
        return {
            "format": WIRE_FORMAT,
            "digest_scheme": DIGEST_SCHEME,
            "kind": self.kind,
            "name": self.name,
            "version": self.version,
            "publisher": self.publisher,
            "published_at": self.published_at,
            "digest": self.digest,
            "payload": self.payload,
        }

    def to_json(self) -> str:
        """The artifact's file/body representation (canonical)."""
        return canonical_json(self.to_wire())

    @classmethod
    def from_wire(cls, wire: object, verify: bool = True) -> "ModelArtifact":
        """Decode (and, by default, digest-verify) a wire payload.

        Malformed structure raises :class:`~repro.errors.RegistryError`;
        a well-formed artifact whose digest does not match its content
        raises :class:`~repro.errors.IntegrityError`.  ``verify=False``
        exists only for forensics on quarantined files.
        """
        if not isinstance(wire, Mapping):
            raise RegistryError(
                f"artifact wire payload must be an object, got "
                f"{type(wire).__name__}"
            )
        if wire.get("format") != WIRE_FORMAT:
            raise RegistryError(
                f"unsupported artifact format {wire.get('format')!r}"
            )
        scheme = wire.get("digest_scheme", DIGEST_SCHEME)
        if scheme != DIGEST_SCHEME:
            raise RegistryError(
                f"unsupported digest scheme {scheme!r} "
                f"(this server speaks {DIGEST_SCHEME})"
            )
        payload = wire.get("payload")
        if not isinstance(payload, Mapping):
            raise RegistryError("artifact payload must be an object")
        try:
            published_at = float(wire.get("published_at", 0.0))
        except (TypeError, ValueError):
            published_at = 0.0
        artifact = cls(
            kind=validate_kind(wire.get("kind")),
            name=validate_artifact_name(wire.get("name")),
            version=validate_version(wire.get("version")),
            publisher=str(wire.get("publisher", "")),
            payload=payload,
            digest=wire.get("digest", ""),
            published_at=published_at,
        )
        if verify:
            artifact.verify()
        return artifact

    @classmethod
    def from_json(cls, text: str, verify: bool = True) -> "ModelArtifact":
        try:
            wire = json.loads(text)
        except json.JSONDecodeError as exc:
            raise IntegrityError(
                f"artifact bytes are not JSON (truncated or corrupt): {exc}"
            ) from exc
        return cls.from_wire(wire, verify=verify)

    def descriptor(self) -> dict:
        """The catalog row: identity + digest, no payload."""
        return {
            "kind": self.kind,
            "name": self.name,
            "version": self.version,
            "publisher": self.publisher,
            "digest": self.digest,
            "published_at": self.published_at,
        }
