"""Federated model registry: versioned, integrity-verified artifacts.

The paper's vision is model libraries living on *remote* servers and
fetched on demand.  Fetch-on-demand alone is fetch-or-fail: a provider
outage (or one corrupted payload) degrades every downstream evaluation.
This package gives fetched models a lifecycle:

* :mod:`repro.registry.artifacts` — content-addressed, versioned
  artifacts: canonical JSON serialization + a blake2b digest verified
  on every read and every fetch;
* :mod:`repro.registry.store` — a crash-safe local mirror
  (mkstemp + fsync + atomic rename, corrupt-file quarantine, pinned
  versions, bounded size with GC);
* :mod:`repro.registry.registry` — publish/ingest/materialize on top
  of a mirror: the per-server registry;
* :mod:`repro.registry.sync` — the publish/subscribe protocol between
  PowerPlay servers, riding the resilience stack
  (:mod:`repro.web.resilience`) and the trace headers
  (:mod:`repro.obs.propagate`);
* :mod:`repro.registry.resolve` — the graceful-degradation resolution
  chain: live fetch -> stale cache -> mirrored artifact -> an explicit
  :class:`~repro.registry.resolve.DegradedResolution` report, never a
  silent error.
"""

from .artifacts import (
    ARTIFACT_KINDS,
    ModelArtifact,
    artifact_digest,
    canonical_json,
)
from .registry import ModelRegistry
from .resolve import DegradedResolution, RegistryResolver
from .store import MirrorStore
from .sync import RegistrySyncClient, SyncReport, sync_from

__all__ = [
    "ARTIFACT_KINDS",
    "DegradedResolution",
    "MirrorStore",
    "ModelArtifact",
    "ModelRegistry",
    "RegistryResolver",
    "RegistrySyncClient",
    "SyncReport",
    "artifact_digest",
    "canonical_json",
    "sync_from",
]
