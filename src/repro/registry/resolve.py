"""The graceful-degradation resolution chain.

``local library -> live fetch -> stale cache -> mirrored artifact``, in
that order, with every step's outcome recorded.  The chain's contract
is the registry's whole point: **a provider outage yields a degraded
resolution, not a failed one** — and a failed one yields an explicit
:class:`DegradedResolution` report (surfaced on ``/status``, ``/healthz``
and in metrics), never a bare exception swallowed somewhere upstream.

Outcome vocabulary (also the ``powerplay_registry_resolutions_total``
metric label):

==========  ===========================================================
``local``   the local library had it — no network, no degradation
``live``    fetched fresh from a remote (or its fresh TTL cache)
``stale``   a remote was down; its stale cached copy was served
``mirror``  every remote failed; the mirrored artifact was served
``failed``  nothing anywhere — the report says exactly what was tried
==========  ===========================================================
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..errors import IntegrityError, RegistryError, RemoteError
from ..library.catalog import Library, LibraryEntry
from ..obs import get_logger, get_registry, span
from ..web.remote import RemoteLibraryClient
from ..web.resilience import CACHE_HIT, FETCHED, STALE_SERVED
from .registry import ModelRegistry

_LOG = get_logger("registry.resolve")

#: the degraded/failed outcomes, for quick health checks
DEGRADED_OUTCOMES = frozenset({"stale", "mirror"})


def _metric_resolutions():
    return get_registry().counter(
        "powerplay_registry_resolutions_total",
        "Model resolutions through the registry chain, by outcome "
        "(local, live, stale, mirror, failed).",
        ("outcome",),
    )


@dataclass
class DegradedResolution:
    """The explicit account of one resolution through the chain.

    ``outcome`` is the step that finally served (or ``failed``);
    ``steps`` lists every step tried, in order, with its result — so an
    operator reading ``/status`` sees *why* a model came from a mirror,
    not just that it did.
    """

    name: str
    outcome: str = "failed"
    steps: List[Dict[str, str]] = field(default_factory=list)
    served_from: str = ""

    def record(self, step: str, target: str, result: str, detail: str = "") -> None:
        entry = {"step": step, "target": target, "result": result}
        if detail:
            entry["detail"] = detail
        self.steps.append(entry)

    @property
    def degraded(self) -> bool:
        return self.outcome in DEGRADED_OUTCOMES

    @property
    def failed(self) -> bool:
        return self.outcome == "failed"

    def summary(self) -> str:
        where = f" from {self.served_from}" if self.served_from else ""
        return f"{self.name}: {self.outcome}{where} ({len(self.steps)} step(s))"

    def to_payload(self) -> dict:
        return {
            "name": self.name,
            "outcome": self.outcome,
            "served_from": self.served_from,
            "degraded": self.degraded,
            "steps": list(self.steps),
        }


class RegistryResolver:
    """Name -> entry resolution across local, remote, and mirror.

    Thread-safe bookkeeping: the web app resolves from request threads.
    ``history`` bounds the retained reports; :meth:`recent` feeds the
    ``/status`` page and :meth:`health_counts` feeds ``/healthz``.
    """

    def __init__(
        self,
        local: Library,
        remotes: Sequence[RemoteLibraryClient] = (),
        registry: Optional[ModelRegistry] = None,
        history: int = 64,
    ):
        self.local = local
        self.remotes = list(remotes)
        self.registry = registry
        self._lock = threading.Lock()
        self._recent: Deque[DegradedResolution] = deque(maxlen=max(1, history))

    # -- bookkeeping -------------------------------------------------------

    def _finish(
        self, report: DegradedResolution, outcome: str, served_from: str = ""
    ) -> DegradedResolution:
        report.outcome = outcome
        report.served_from = served_from
        _metric_resolutions().inc(outcome=outcome)
        with self._lock:
            self._recent.append(report)
        if outcome in DEGRADED_OUTCOMES:
            _LOG.warning("degraded_resolution", name=report.name,
                         outcome=outcome, served_from=served_from)
        elif outcome == "failed":
            _LOG.error("failed_resolution", name=report.name,
                       steps=len(report.steps))
        return report

    def recent(self) -> List[DegradedResolution]:
        with self._lock:
            return list(self._recent)

    def health_counts(self) -> Dict[str, int]:
        """Outcome -> count over the retained window."""
        counts: Dict[str, int] = {}
        with self._lock:
            for report in self._recent:
                counts[report.outcome] = counts.get(report.outcome, 0) + 1
        return counts

    # -- the chain ---------------------------------------------------------

    def resolve(self, name: str) -> Tuple[Optional[LibraryEntry], DegradedResolution]:
        """Walk the chain; never raises for a resolution failure.

        Returns ``(entry, report)`` — ``entry`` is ``None`` only when
        the chain is exhausted, and then ``report`` says exactly which
        steps were tried and how each one failed.
        """
        report = DegradedResolution(name)
        with span("registry_resolve", model=name) as sp:
            # 1. the local library — the paper's local-first precedence
            if name in self.local:
                report.record("local", self.local.name, "hit")
                sp.set(outcome="local")
                self._finish(report, "local", self.local.name)
                return self.local.get(name), report
            report.record("local", self.local.name, "miss")

            # 2. each remote: live fetch, falling to its stale cache
            for remote in self.remotes:
                before = len(remote.report.events)
                try:
                    entry = remote.fetch_model(name)
                except RemoteError as exc:
                    report.record(
                        "remote", remote.base_url, "failed",
                        f"{type(exc).__name__}: {exc}",
                    )
                    continue
                new_events = remote.report.events[before:]
                kinds = {event.kind for event in new_events}
                if STALE_SERVED in kinds:
                    report.record("remote", remote.base_url, "stale")
                    sp.set(outcome="stale")
                    self._finish(report, "stale", remote.base_url)
                else:
                    result = "cache" if CACHE_HIT in kinds else "live"
                    if FETCHED in kinds:
                        result = "live"
                    report.record("remote", remote.base_url, result)
                    sp.set(outcome="live")
                    self._finish(report, "live", remote.base_url)
                return entry, report

            # 3. the mirrored artifact — outage-resilient by design
            if self.registry is not None:
                try:
                    entry = self.registry.get_entry(name)
                    report.record("mirror", "registry", "hit")
                    sp.set(outcome="mirror")
                    self._finish(report, "mirror", "registry")
                    return entry, report
                except IntegrityError as exc:
                    report.record("mirror", "registry", "quarantined", str(exc))
                except RegistryError as exc:
                    report.record("mirror", "registry", "miss", str(exc))

            sp.set(outcome="failed")
            self._finish(report, "failed")
            return None, report

    def resolve_strict(self, name: str) -> LibraryEntry:
        """The raising flavor, for callers that cannot proceed without."""
        entry, report = self.resolve(name)
        if entry is None:
            raise RegistryError(
                f"cannot resolve model {name!r}: "
                + "; ".join(
                    f"{step['step']}({step['target']})={step['result']}"
                    for step in report.steps
                )
            )
        return entry

    def resolve_design(self, name: str, version: Optional[int] = None):
        """A mirrored design, with the same explicit reporting."""
        report = DegradedResolution(name)
        if self.registry is None:
            report.record("mirror", "registry", "unconfigured")
            self._finish(report, "failed")
            return None, report
        try:
            design = self.registry.get_design(name, version)
        except IntegrityError as exc:
            report.record("mirror", "registry", "quarantined", str(exc))
            self._finish(report, "failed")
            return None, report
        except RegistryError as exc:
            report.record("mirror", "registry", "miss", str(exc))
            self._finish(report, "failed")
            return None, report
        report.record("mirror", "registry", "hit")
        self._finish(report, "mirror", "registry")
        return design, report
