"""Resilience primitives for the distributed-library stack.

The paper's headline claim — "if a library is characterized and put on
the web in Massachusetts, it can be used for estimates in California" —
makes PowerPlay a distributed system, and distributed systems fail in
boring, recoverable ways: dropped connections, slow peers, truncated
payloads, hosts that stay down for an hour.  This module supplies the
three standard defenses, each deterministic and clock-injectable so the
fault-injection tests (:mod:`repro.web.faults`) can exercise them
without wall-clock sleeps:

* :class:`RetryPolicy` — bounded retries with exponential backoff and
  *deterministic* jitter (no RNG: the jitter is a fixed function of the
  attempt number, so test schedules are reproducible);
* :class:`CircuitBreaker` — the classic closed/open/half-open state
  machine, one per remote host, so a persistently dead peer is skipped
  fast instead of paying a timeout per lookup;
* :class:`ModelCache` — a TTL'd stale-while-revalidate cache: fresh
  entries short-circuit the network, expired entries trigger a refetch,
  and when the refetch fails the stale copy keeps designs evaluable
  through an outage.

Nothing degrades silently: every retry, stale serve, and skipped host
is recorded as a :class:`ResolutionEvent` in a
:class:`ResolutionReport` — and, since the observability layer
(:mod:`repro.obs`), mirrored into the process-wide metrics registry
(``powerplay_retries_total``, ``powerplay_circuit_state``,
``powerplay_model_cache_total``) and the ``resilience`` structured
logger, so a degrading federation is visible on ``GET /metrics`` and
``GET /status`` while it happens.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Generic, List, Optional, Tuple, TypeVar

from ..errors import CircuitOpenError, TransientRemoteError
from ..obs import get_logger, get_registry

T = TypeVar("T")

_LOG = get_logger("resilience")

#: numeric circuit states for the ``powerplay_circuit_state`` gauge
CIRCUIT_STATE_CODES = {"closed": 0, "half_open": 1, "open": 2}


def _metric_retries():
    return get_registry().counter(
        "powerplay_retries_total",
        "Retry attempts issued by RetryPolicy.call.",
    )


def _metric_circuit_state():
    return get_registry().gauge(
        "powerplay_circuit_state",
        "Circuit breaker state (0=closed, 1=half_open, 2=open).",
        ("name",),
    )


def _metric_circuit_transitions():
    return get_registry().counter(
        "powerplay_circuit_transitions_total",
        "Circuit breaker state transitions.",
        ("name", "to"),
    )


def _metric_cache():
    return get_registry().counter(
        "powerplay_model_cache_total",
        "Model cache lookups by outcome (fresh hit, stale serve, miss).",
        ("result",),
    )


def _metric_stale_served():
    return get_registry().counter(
        "powerplay_stale_served_total",
        "Cache entries served past their TTL (outage fallbacks).",
    )


# ---------------------------------------------------------------------------
# retry with deterministic backoff
# ---------------------------------------------------------------------------

class RetryPolicy:
    """Bounded retries with exponential backoff and deterministic jitter.

    ``delay(attempt)`` for attempt ``n`` (0-based, i.e. the delay slept
    *after* failure ``n``) is::

        min(max_delay, base_delay * multiplier**n) * (1 + jitter * frac(n))

    where ``frac(n)`` is a fixed pseudo-random fraction derived from the
    attempt number (a Weyl sequence on the golden ratio), so two clients
    created with the same policy spread their retries without sharing an
    RNG — and a test re-running the same schedule sees the same delays.

    ``sleep`` is injectable; tests pass a recorder instead of
    :func:`time.sleep` and assert on the exact schedule.
    """

    #: golden-ratio conjugate — the classic low-discrepancy increment
    _WEYL = 0.6180339887498949

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay: float = 0.05,
        max_delay: float = 2.0,
        multiplier: float = 2.0,
        jitter: float = 0.25,
        sleep: Callable[[float], None] = time.sleep,
        retry_on: Tuple[type, ...] = (TransientRemoteError,),
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.multiplier = multiplier
        self.jitter = jitter
        self.sleep = sleep
        self.retry_on = tuple(retry_on)
        self.retries_issued = 0

    def delay(self, attempt: int) -> float:
        backoff = min(self.max_delay, self.base_delay * self.multiplier ** attempt)
        frac = (self._WEYL * (attempt + 1)) % 1.0
        return backoff * (1.0 + self.jitter * frac)

    def call(
        self,
        fn: Callable[[], T],
        on_retry: Optional[Callable[[int, Exception], None]] = None,
    ) -> T:
        """Run ``fn``, retrying on the configured exception types.

        ``on_retry(attempt, exc)`` is invoked before each sleep so
        callers (e.g. :class:`~repro.web.remote.ModelResolver`) can
        record the degradation.  Non-retryable exceptions — including
        :class:`~repro.errors.CircuitOpenError`, which must never cause
        another call into a tripped host — propagate immediately.
        """
        attempt = 0
        while True:
            try:
                return fn()
            except self.retry_on as exc:
                if isinstance(exc, CircuitOpenError):
                    raise  # an open circuit is a *skip*, never a retry
                if attempt + 1 >= self.max_attempts:
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                self.retries_issued += 1
                _metric_retries().inc()
                _LOG.warning(
                    "retry",
                    attempt=attempt + 1,
                    max_attempts=self.max_attempts,
                    delay_s=self.delay(attempt),
                    error=str(exc),
                )
                self.sleep(self.delay(attempt))
                attempt += 1


# ---------------------------------------------------------------------------
# circuit breaker
# ---------------------------------------------------------------------------

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Per-host closed/open/half-open breaker.

    * **closed** — calls flow; ``failure_threshold`` *consecutive*
      failures trip the breaker.
    * **open** — calls raise :class:`~repro.errors.CircuitOpenError`
      immediately (no network, no timeout) until ``cooldown`` seconds
      elapse on the injectable ``clock``.
    * **half-open** — after the cooldown exactly one probe call is let
      through; success closes the breaker, failure re-opens it for
      another cooldown.
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        name: str = "remote",
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.clock = clock
        self.name = name
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self.times_tripped = 0
        self.calls_rejected = 0
        _metric_circuit_state().set(CIRCUIT_STATE_CODES[CLOSED], name=name)

    def _note_transition(self, to_state: str) -> None:
        """Publish a state change to metrics and the structured log."""
        _metric_circuit_state().set(
            CIRCUIT_STATE_CODES[to_state], name=self.name
        )
        _metric_circuit_transitions().inc(name=self.name, to=to_state)
        log = _LOG.warning if to_state == OPEN else _LOG.info
        log(
            "circuit_transition",
            name=self.name,
            to=to_state,
            consecutive_failures=self._consecutive_failures,
        )

    @property
    def state(self) -> str:
        if self._state == OPEN and self._remaining() <= 0:
            return HALF_OPEN
        return self._state

    def _remaining(self) -> float:
        return self.cooldown - (self.clock() - self._opened_at)

    def allow(self) -> bool:
        """Would a call be let through right now?"""
        return self.state != OPEN

    def record_success(self) -> None:
        was = self._state
        self._state = CLOSED
        self._consecutive_failures = 0
        if was != CLOSED:
            self._note_transition(CLOSED)

    def record_failure(self) -> None:
        self._consecutive_failures += 1
        if (
            self._state != CLOSED
            or self._consecutive_failures >= self.failure_threshold
        ):
            # a failed half-open probe, or the threshold reached:
            # (re)open for a full cooldown
            if self._state != OPEN:
                self.times_tripped += 1
            self._state = OPEN
            self._opened_at = self.clock()
            self._note_transition(OPEN)

    def call(
        self,
        fn: Callable[[], T],
        failure_types: Tuple[type, ...] = (Exception,),
    ) -> T:
        """Run ``fn`` through the breaker.

        Raises :class:`~repro.errors.CircuitOpenError` without invoking
        ``fn`` while open; otherwise records the outcome.  Exceptions
        outside ``failure_types`` count as *successes* for breaker
        purposes — e.g. a clean HTTP 400 refusal proves the host is
        alive even though the lookup failed.
        """
        state = self.state
        if state == OPEN:
            self.calls_rejected += 1
            raise CircuitOpenError(
                f"circuit for {self.name} is open "
                f"(retry in {max(0.0, self._remaining()):.1f}s)",
                retry_after=max(0.0, self._remaining()),
            )
        if state == HALF_OPEN and self._state != HALF_OPEN:
            self._state = HALF_OPEN  # commit the probe
            self._note_transition(HALF_OPEN)
        try:
            result = fn()
        except failure_types:
            self.record_failure()
            raise
        except Exception:
            self.record_success()
            raise
        self.record_success()
        return result


# ---------------------------------------------------------------------------
# TTL'd stale-while-revalidate cache
# ---------------------------------------------------------------------------

@dataclass
class _CacheSlot(Generic[T]):
    value: T
    stored_at: float


class ModelCache(Generic[T]):
    """A TTL cache whose expired entries remain servable as *stale*.

    ``lookup`` distinguishes three outcomes: a **fresh** hit (within
    TTL — skip the network), a **stale** hit (past TTL — revalidate,
    but keep the copy as a fallback), and a miss.  ``ttl=None`` means
    entries never go stale (the pre-resilience behaviour: cache
    forever).

    ``max_stale_age`` caps how far past its TTL an entry may still be
    served as a stale fallback: beyond it the entry is evicted and the
    lookup is a miss.  The bound is the difference between "yesterday's
    coefficients during an hour's outage" (fine) and "last year's
    during a forgotten one" (silently wrong estimates).  ``None`` (the
    default) keeps the old serve-forever fallback.  Every stale serve
    increments ``powerplay_stale_served_total``.
    """

    def __init__(
        self,
        ttl: Optional[float] = 300.0,
        clock: Callable[[], float] = time.monotonic,
        max_stale_age: Optional[float] = None,
    ):
        if (
            max_stale_age is not None
            and ttl is not None
            and max_stale_age < ttl
        ):
            raise ValueError(
                f"max_stale_age ({max_stale_age}) must be >= ttl ({ttl}): "
                "an entry cannot expire from staleness before it is stale"
            )
        self.ttl = ttl
        self.max_stale_age = max_stale_age
        self.clock = clock
        self._slots: Dict[str, _CacheSlot[T]] = {}
        self.fresh_hits = 0
        self.stale_serves = 0
        self.stale_expired = 0

    def __len__(self) -> int:
        return len(self._slots)

    def __contains__(self, key: object) -> bool:
        return key in self._slots

    def put(self, key: str, value: T) -> None:
        self._slots[key] = _CacheSlot(value, self.clock())

    def lookup(self, key: str) -> Tuple[Optional[T], bool]:
        """Return ``(value, fresh)``; ``(None, False)`` on a miss."""
        slot = self._slots.get(key)
        if slot is None:
            return None, False
        if self.ttl is not None and self.clock() - slot.stored_at > self.ttl:
            return slot.value, False
        return slot.value, True

    def get_fresh(self, key: str) -> Optional[T]:
        value, fresh = self.lookup(key)
        if fresh:
            self.fresh_hits += 1
            _metric_cache().inc(result="fresh")
            return value
        _metric_cache().inc(result="miss")
        return None

    def get_stale(self, key: str) -> Optional[T]:
        """The stale fallback — counts as a degradation."""
        slot = self._slots.get(key)
        if slot is None:
            return None
        age = self.clock() - slot.stored_at
        if self.max_stale_age is not None and age > self.max_stale_age:
            # too old to trust even as an outage fallback: evict, miss
            del self._slots[key]
            self.stale_expired += 1
            _metric_cache().inc(result="stale_expired")
            _LOG.warning(
                "stale_expired", key=key, age_s=round(age, 3),
                max_stale_age_s=self.max_stale_age,
            )
            return None
        self.stale_serves += 1
        _metric_cache().inc(result="stale")
        _metric_stale_served().inc()
        _LOG.info("stale_serve", key=key)
        return slot.value

    def clear(self) -> None:
        self._slots.clear()


# ---------------------------------------------------------------------------
# structured degradation reporting
# ---------------------------------------------------------------------------

#: event kinds a report can carry
RETRY = "retry"
STALE_SERVED = "stale_served"
CIRCUIT_SKIPPED = "circuit_skipped"
REMOTE_FAILED = "remote_failed"
FETCHED = "fetched"
LOCAL_HIT = "local_hit"
CACHE_HIT = "cache_hit"
MIRROR_SERVED = "mirror_served"


@dataclass
class ResolutionEvent:
    """One observable fact about how a lookup was satisfied (or not)."""

    kind: str
    target: str          # host URL or library name
    name: str = ""       # the model being resolved
    detail: str = ""

    def __str__(self) -> str:  # pragma: no cover - formatting only
        parts = [self.kind, self.target]
        if self.name:
            parts.append(self.name)
        if self.detail:
            parts.append(f"({self.detail})")
        return " ".join(parts)


@dataclass
class ResolutionReport:
    """Structured account of a resolution: nothing degrades silently.

    A report accumulates across lookups (a :class:`ModelResolver` keeps
    one per ``resolve`` call and a running total), so callers can both
    inspect a single lookup and audit a whole evaluation session.
    """

    events: List[ResolutionEvent] = field(default_factory=list)

    def record(self, kind: str, target: str, name: str = "", detail: str = "") -> None:
        self.events.append(ResolutionEvent(kind, target, name, detail))

    def count(self, kind: str) -> int:
        return sum(1 for event in self.events if event.kind == kind)

    @property
    def retries(self) -> int:
        return self.count(RETRY)

    @property
    def stale_serves(self) -> int:
        return self.count(STALE_SERVED)

    @property
    def circuit_skips(self) -> int:
        return self.count(CIRCUIT_SKIPPED)

    @property
    def degraded(self) -> bool:
        """True when anything short of a clean fetch happened."""
        clean = {FETCHED, LOCAL_HIT, CACHE_HIT}
        return any(event.kind not in clean for event in self.events)

    def merged_into(self, other: "ResolutionReport") -> None:
        other.events.extend(self.events)

    def summary(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts
