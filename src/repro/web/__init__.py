"""The World Wide Web application.

HTML pages, per-user sessions, the HTTP server, a scriptable browser,
remote model access (HTTP URLs, Figure 7 bottom), the Silva SMTP-hub
baseline (Figure 7 top), and the Design Agent flow manager.
"""

from .agent import DesignAgent, Tool, default_agent
from .app import Application, Response
from .client import Browser, Page
from .hub import (
    HTTPDirect,
    HUB_QUEUE_DELAY,
    HTTP_SETUP,
    MailHub,
    TransferStats,
    WIRE_LATENCY,
    compare_protocols,
)
from .remote import ModelResolver, RemoteLibraryClient, federate
from .server import PowerPlayServer
from .session import UserSession, UserStore, validate_username

__all__ = [
    "Application",
    "Browser",
    "DesignAgent",
    "HTTPDirect",
    "HTTP_SETUP",
    "HUB_QUEUE_DELAY",
    "MailHub",
    "ModelResolver",
    "Page",
    "PowerPlayServer",
    "RemoteLibraryClient",
    "Response",
    "Tool",
    "TransferStats",
    "UserSession",
    "UserStore",
    "WIRE_LATENCY",
    "compare_protocols",
    "default_agent",
    "federate",
    "validate_username",
]
