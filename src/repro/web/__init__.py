"""The World Wide Web application.

HTML pages, per-user sessions, the HTTP server, a scriptable browser,
remote model access (HTTP URLs, Figure 7 bottom), the Silva SMTP-hub
baseline (Figure 7 top), and the Design Agent flow manager.
"""

from .agent import DesignAgent, Tool, default_agent
from .app import Application, Response
from .client import Browser, Page
from .faults import ChaosServer, FaultPlan, FaultyApplication
from .hub import (
    HTTPDirect,
    HUB_QUEUE_DELAY,
    HTTP_SETUP,
    MailHub,
    TransferStats,
    WIRE_LATENCY,
    compare_protocols,
)
from .remote import (
    FederationReport,
    ModelResolver,
    RemoteLibraryClient,
    federate,
)
from .resilience import (
    CircuitBreaker,
    ModelCache,
    ResolutionEvent,
    ResolutionReport,
    RetryPolicy,
)
from .server import PowerPlayServer, host_allowed
from .session import UserSession, UserStore, validate_username

__all__ = [
    "Application",
    "Browser",
    "ChaosServer",
    "CircuitBreaker",
    "DesignAgent",
    "FaultPlan",
    "FaultyApplication",
    "FederationReport",
    "HTTPDirect",
    "HTTP_SETUP",
    "HUB_QUEUE_DELAY",
    "MailHub",
    "ModelCache",
    "ModelResolver",
    "Page",
    "PowerPlayServer",
    "RemoteLibraryClient",
    "ResolutionEvent",
    "ResolutionReport",
    "Response",
    "RetryPolicy",
    "Tool",
    "TransferStats",
    "UserSession",
    "UserStore",
    "WIRE_LATENCY",
    "compare_protocols",
    "default_agent",
    "federate",
    "host_allowed",
    "validate_username",
]
