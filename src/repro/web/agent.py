"""The Design Agent: hyperlink requests -> tool invocation sequences.

"Models which require tool invocations are implemented through a
dynamic design-flow manager called the *Design Agent*, which translates
the hyperlink request for data into a sequence of appropriate tool
invocations determined by the chosen design context."

The agent is a tiny backward-chaining planner over registered *tools*:

* a :class:`Tool` consumes named artifacts and produces named artifacts
  (e.g. ``netlist -> switched_capacitance``, ``switched_capacitance +
  operating_point -> power``);
* :meth:`DesignAgent.plan` finds an invocation sequence producing the
  requested artifact from what the *design context* already provides;
* :meth:`DesignAgent.fulfill` executes the plan and returns the value —
  and can be wrapped in a
  :class:`~repro.core.model.CallablePowerModel`, which is how "paths to
  estimation tools in lieu of an equation" plug into the spreadsheet.

Tools registered for different design contexts let the same request
("power of block X") resolve to a quick model in early design and a
simulation later — the paper's "determined by the chosen design
context".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, List, Mapping, Optional, Sequence, Set, Tuple

from ..errors import WebError


@dataclass(frozen=True)
class Tool:
    """One invocable tool in the design flow.

    ``func`` receives a dict with (at least) every ``requires`` key and
    returns a dict providing every ``produces`` key.  ``cost`` orders
    alternatives: the planner prefers cheap tools (quick estimators)
    over expensive ones (simulators) when both can produce an artifact.
    """

    name: str
    requires: FrozenSet[str]
    produces: FrozenSet[str]
    func: Callable[[Dict[str, object]], Mapping[str, object]]
    cost: float = 1.0
    contexts: FrozenSet[str] = frozenset({"any"})

    @classmethod
    def make(
        cls,
        name: str,
        requires: Sequence[str],
        produces: Sequence[str],
        func: Callable,
        cost: float = 1.0,
        contexts: Sequence[str] = ("any",),
    ) -> "Tool":
        if not produces:
            raise WebError(f"tool {name!r} produces nothing")
        return cls(
            name=name,
            requires=frozenset(requires),
            produces=frozenset(produces),
            func=func,
            cost=cost,
            contexts=frozenset(contexts),
        )


class DesignAgent:
    """Backward-chaining planner + executor over registered tools."""

    def __init__(self, context: str = "any"):
        self.context = context
        self._tools: List[Tool] = []

    def register(self, tool: Tool) -> Tool:
        if any(existing.name == tool.name for existing in self._tools):
            raise WebError(f"a tool named {tool.name!r} is already registered")
        self._tools.append(tool)
        return tool

    def tools_for_context(self) -> List[Tool]:
        return [
            tool
            for tool in self._tools
            if "any" in tool.contexts or self.context in tool.contexts
        ]

    def plan(
        self, target: str, available: Set[str]
    ) -> List[Tool]:
        """Find the cheapest tool sequence producing ``target``.

        Forward-closure search: repeatedly apply the cheapest applicable
        tool that produces something new until the target is available.
        Raises :class:`~repro.errors.WebError` with the missing-artifact
        frontier when no plan exists.
        """
        have = set(available)
        sequence: List[Tool] = []
        tools = sorted(self.tools_for_context(), key=lambda tool: tool.cost)
        while target not in have:
            progressed = False
            for tool in tools:
                if tool in sequence:
                    continue
                if tool.requires <= have and not tool.produces <= have:
                    sequence.append(tool)
                    have |= tool.produces
                    progressed = True
                    break
            if not progressed:
                missing = sorted(
                    requirement
                    for tool in tools
                    if target in tool.produces
                    for requirement in tool.requires - have
                )
                hint = (
                    f"; tools producing it need {missing}" if missing else ""
                )
                raise WebError(
                    f"design agent cannot produce {target!r} in context "
                    f"{self.context!r} from {sorted(have)}{hint}"
                )
        # drop tools whose products are never used for the target chain
        return self._prune(sequence, target, set(available))

    def _prune(
        self, sequence: List[Tool], target: str, available: Set[str]
    ) -> List[Tool]:
        needed: Set[str] = {target}
        keep: List[Tool] = []
        for tool in reversed(sequence):
            if tool.produces & needed:
                keep.append(tool)
                needed |= tool.requires
        keep.reverse()
        return keep

    def fulfill(
        self, target: str, context_data: Mapping[str, object]
    ) -> Tuple[object, List[str]]:
        """Plan and execute; returns (value, invoked tool names)."""
        data: Dict[str, object] = dict(context_data)
        sequence = self.plan(target, set(data))
        for tool in sequence:
            produced = tool.func(data)
            if not isinstance(produced, Mapping):
                raise WebError(
                    f"tool {tool.name!r} returned {type(produced).__name__}, "
                    "expected a mapping"
                )
            missing = tool.produces - set(produced)
            if missing:
                raise WebError(
                    f"tool {tool.name!r} failed to produce {sorted(missing)}"
                )
            data.update(produced)
        return data[target], [tool.name for tool in sequence]


def default_agent(context: str = "early") -> DesignAgent:
    """An agent wired with the estimation flow this package provides.

    Artifacts: ``netlist`` (a gate netlist), ``stimulus`` (vector list),
    ``operating_point`` ({"VDD": V, "f": Hz}), ``switched_capacitance``
    (F/access), ``energy_per_access`` (J), ``power`` (W).

    In the ``early`` context, capacitance comes from a fitted model; in
    the ``layout`` context, from gate-level simulation — same request,
    different tool sequence.
    """
    agent = DesignAgent(context)

    def quick_capacitance(data: Dict[str, object]) -> Mapping[str, object]:
        model = data["model"]
        env = dict(data["operating_point"])  # type: ignore[arg-type]
        env.update(data.get("parameters", {}))  # type: ignore[arg-type]
        return {"switched_capacitance": model.effective_capacitance(env)}  # type: ignore[union-attr]

    def simulated_capacitance(data: Dict[str, object]) -> Mapping[str, object]:
        from ..sim.gatesim import simulate

        result = simulate(data["netlist"], data["stimulus"])  # type: ignore[arg-type]
        return {"switched_capacitance": result.capacitance_per_cycle}

    def energy(data: Dict[str, object]) -> Mapping[str, object]:
        vdd = data["operating_point"]["VDD"]  # type: ignore[index]
        c = data["switched_capacitance"]
        return {"energy_per_access": c * vdd * vdd}  # type: ignore[operator]

    def power(data: Dict[str, object]) -> Mapping[str, object]:
        f = data["operating_point"]["f"]  # type: ignore[index]
        return {"power": data["energy_per_access"] * f}  # type: ignore[operator]

    agent.register(
        Tool.make(
            "quick_model_capacitance",
            requires=("model", "operating_point"),
            produces=("switched_capacitance",),
            func=quick_capacitance,
            cost=1.0,
            contexts=("early",),
        )
    )
    agent.register(
        Tool.make(
            "gate_level_simulation",
            requires=("netlist", "stimulus"),
            produces=("switched_capacitance",),
            func=simulated_capacitance,
            cost=10.0,
            contexts=("layout",),
        )
    )
    agent.register(
        Tool.make(
            "energy_calculator",
            requires=("switched_capacitance", "operating_point"),
            produces=("energy_per_access",),
            func=energy,
            cost=0.1,
        )
    )
    agent.register(
        Tool.make(
            "power_calculator",
            requires=("energy_per_access", "operating_point"),
            produces=("power",),
            func=power,
            cost=0.1,
        )
    )
    return agent
