"""Pre-fork multi-worker serving with user-keyed sharding.

``repro serve --workers N`` scales the single-process threaded server
(the paper's one-httpd deployment) across N OS processes without
giving up its strongest property: *per-user linearizability*.  The
paper's state is naturally user-partitioned ("the individual user's
defaults" live in one file per user), so the front shards by user:

* every worker binds the **same public port** with ``SO_REUSEPORT``
  and the kernel load-balances incoming connections (when the platform
  has no ``SO_REUSEPORT``, the parent accepts and passes connection
  FDs to workers over a Unix socketpair — same topology, userspace
  balancing);
* each worker also runs an **internal loopback server**; a public
  request naming user *u* is handled locally when
  ``shard_for(u) == my index`` and otherwise proxied to the owner's
  internal port.  Session affinity is therefore *structural*: exactly
  one process ever mutates a user's state, whichever worker the kernel
  happened to hand the connection to, so per-user lost updates are
  impossible by construction — with either state backend;
* requests naming no user (``/metrics``, ``/healthz``, ``/status``,
  static pages) are answered by whichever worker accepted them.

The parent coordinates startup over the workers' stdin/stdout pipes
(worker: ``INTERNAL <port>`` → parent: ``TABLE <p0> <p1> …`` →
worker: ``READY <port>``), relays SIGTERM/SIGINT for graceful drain
(each worker stops accepting, finishes in-flight responses, flushes
sessions, then exits), and holds workers' stdin open as an orphan
detector — a worker whose stdin hits EOF shuts itself down.

Every worker is a full PowerPlay server: its ``/metrics`` and
``/healthz`` (on the internal port) merge through the existing fleet
aggregator, and ``/healthz`` reports ``worker: {index, count}``.
"""

from __future__ import annotations

import hashlib
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.parse
from http.client import HTTPConnection, HTTPException
from pathlib import Path
from queue import Empty, Queue
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import SessionError, StateError
from ..obs import get_logger
from .app import Application, Response
from .server import PowerPlayServer, _error_html, _Handler
from .session import validate_username

_LOG = get_logger("web.prefork")

#: response header naming the worker that actually handled a request —
#: the property tests read this to prove mutations land on one process
WORKER_HEADER = "X-PowerPlay-Shard"

#: request headers a forwarded request must not carry verbatim
_HOP_HEADERS = frozenset(
    {"host", "content-length", "connection", "keep-alive"}
)


def shard_for(user: str, workers: int) -> int:
    """Which worker owns ``user``'s state — stable across processes.

    blake2b, *not* Python's ``hash()``: every process (workers, the
    parent, tests, a future router box) must agree on the owner, and
    ``hash()`` is salted per process.  Uniform over the key space, so
    W workers see ~1/W of the users each.
    """
    if workers <= 1:
        return 0
    digest = hashlib.blake2b(
        user.encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") % workers


def request_user(path: str, form=None) -> str:
    """The (validated) user a request names, as the Application sees it.

    Mirrors ``Application.handle``'s parsing exactly — query string
    first, form fields override — so the shard decision and the
    per-user lock downstream always name the same user.  Returns ""
    for requests naming no (or an invalid) user; those are handled
    wherever they land and fail validation there if relevant.
    """
    parsed = urllib.parse.urlsplit(path)
    data = {
        key: values[-1]
        for key, values in urllib.parse.parse_qs(parsed.query).items()
    }
    data.update(form or {})
    user = data.get("user", "")
    if not user:
        return ""
    try:
        return validate_username(user)
    except SessionError:
        return ""


class ShardedHandler(_Handler):
    """Public-port handler that proxies non-owned users to their shard.

    The kernel (or the FD-passing parent) routes connections to an
    arbitrary worker; this handler restores user affinity at the
    application layer.  Owned requests run locally; foreign ones are
    replayed against the owner's internal loopback server and the
    owner's response is relayed byte-for-byte (status, body, headers —
    including its ``X-PowerPlay-Shard``).
    """

    worker_index: int = 0
    worker_count: int = 1
    #: worker index -> internal loopback port (the TABLE broadcast)
    internal_ports: Sequence[int] = ()
    forward_timeout_s: float = 60.0

    def _handle_safely(self, method: str, form=None) -> Response:
        user = request_user(self.path, form)
        if user and self.worker_count > 1:
            owner = shard_for(user, self.worker_count)
            if owner != self.worker_index:
                return self._forward(owner, method, form)
        response = super()._handle_safely(method, form)
        response.headers.setdefault(
            WORKER_HEADER, str(self.worker_index)
        )
        return response

    def _forward(self, owner: int, method: str, form=None) -> Response:
        """Replay this request against the owning worker's internal port."""
        headers = {
            key: value
            for key, value in self.headers.items()
            if key.lower() not in _HOP_HEADERS
        }
        body: Optional[str] = None
        if method == "POST":
            body = urllib.parse.urlencode(form or {})
            headers["Content-Type"] = "application/x-www-form-urlencoded"
        connection = HTTPConnection(
            "127.0.0.1",
            self.internal_ports[owner],
            timeout=self.forward_timeout_s,
        )
        try:
            connection.request(method, self.path, body=body, headers=headers)
            upstream = connection.getresponse()
            payload = upstream.read().decode("utf-8", errors="replace")
            content_type = upstream.getheader(
                "Content-Type", "text/html; charset=utf-8"
            )
            relayed = {
                key: value
                for key, value in upstream.getheaders()
                if key.lower() not in (
                    "content-length", "content-type", "server", "date",
                    "connection",
                )
            }
            relayed.setdefault(WORKER_HEADER, str(owner))
            return Response(
                status=upstream.status,
                body=payload,
                content_type=content_type,
                headers=relayed,
            )
        except (OSError, HTTPException) as exc:
            # never handle a foreign user locally: that would break the
            # one-process-per-user invariant the oracle relies on
            self._httpd_log.info(
                "forward_failed", owner=owner, error=str(exc)
            )
            return Response(
                status=503,
                body=_error_html(
                    503,
                    "Shard unavailable",
                    f"the worker owning this user (shard {owner}) did "
                    "not answer; retry shortly",
                ),
                headers={"Retry-After": "1"},
            )
        finally:
            connection.close()


# ---------------------------------------------------------------------------
# worker side


def _install_stop_handlers(stop_event: threading.Event) -> None:
    def _stop(signum, frame) -> None:  # pragma: no cover - signal path
        stop_event.set()

    try:
        signal.signal(signal.SIGTERM, _stop)
        signal.signal(signal.SIGINT, _stop)
    except ValueError:  # not the main thread (in-process tests)
        pass


def _watch_stdin(stdin, stop_event: threading.Event) -> threading.Thread:
    """EOF on stdin means the parent died — shut down, don't orphan."""

    def _watch() -> None:
        while True:
            line = stdin.readline()
            if not line:
                break
            if line.strip() == "STOP":
                break
        stop_event.set()

    thread = threading.Thread(
        target=_watch, daemon=True, name="prefork-stdin"
    )
    thread.start()
    return thread


def _feed_passed_fds(
    control: socket.socket, httpd, stop_event: threading.Event
) -> threading.Thread:
    """FD-passing mode: serve connections the parent accepted for us."""

    def _feed() -> None:
        while not stop_event.is_set():
            try:
                _msg, fds, _flags, _addr = socket.recv_fds(control, 16, 4)
            except OSError:
                break
            if not fds:
                break  # parent closed its end
            for fd in fds:
                try:
                    request = socket.socket(fileno=fd)
                    try:
                        peer = request.getpeername()
                    except OSError:
                        peer = ("127.0.0.1", 0)
                    httpd.inject(request, peer)
                except OSError:  # pragma: no cover - raced disconnect
                    continue

    thread = threading.Thread(
        target=_feed, daemon=True, name="prefork-fdpass"
    )
    thread.start()
    return thread


def worker_main(
    state_dir: Path,
    host: str,
    port: int,
    index: int,
    workers: int,
    backend: str = "file",
    server_name: str = "powerplay",
    mode: str = "reuseport",
    control_fd: Optional[int] = None,
    stdin=None,
    stdout=None,
) -> int:
    """One pre-fork worker: full server + shard forwarding.

    Speaks the pipe protocol documented in the module docstring; runs
    until SIGTERM/SIGINT, a ``STOP`` line, or stdin EOF; then drains
    gracefully (public accepts stop, in-flight responses finish,
    sessions and the backend flush) and exits 0.
    """
    stdin = sys.stdin if stdin is None else stdin
    stdout = sys.stdout if stdout is None else stdout
    application = Application(
        Path(state_dir),
        server_name=f"{server_name}-w{index}",
        backend=backend,
        worker_index=index,
        worker_count=workers,
    )
    internal = PowerPlayServer(
        state_dir, host="127.0.0.1", port=0, application=application
    )
    internal.start()
    print(f"INTERNAL {internal.address[1]}", file=stdout, flush=True)

    table_line = stdin.readline()
    if not table_line.startswith("TABLE "):
        internal.stop()
        return 1
    internal_ports = tuple(int(p) for p in table_line.split()[1:])

    stop_event = threading.Event()
    _install_stop_handlers(stop_event)

    handler_attrs = {
        "worker_index": index,
        "worker_count": workers,
        "internal_ports": internal_ports,
    }
    control: Optional[socket.socket] = None
    feeder: Optional[threading.Thread] = None
    if mode == "reuseport":
        public = PowerPlayServer(
            state_dir,
            host=host,
            port=port,
            application=application,
            handler_base=ShardedHandler,
            handler_attrs=handler_attrs,
            reuse_port=True,
        )
        public.start()
        public_port = public.address[1]
    elif mode == "fdpass":
        if control_fd is None:
            internal.stop()
            return 1
        # loopback carrier server: never advertised; real connections
        # arrive as FDs the parent accepted on the public port
        public = PowerPlayServer(
            state_dir,
            host="127.0.0.1",
            port=0,
            application=application,
            handler_base=ShardedHandler,
            handler_attrs=handler_attrs,
        )
        public.start()
        control = socket.socket(fileno=control_fd)
        feeder = _feed_passed_fds(control, public._httpd, stop_event)
        public_port = port
    else:
        internal.stop()
        raise StateError(f"unknown prefork mode {mode!r}")

    _watch_stdin(stdin, stop_event)
    print(f"READY {public_port}", file=stdout, flush=True)
    _LOG.info(
        "worker_up", index=index, workers=workers, mode=mode,
        public_port=public_port, internal_port=internal.address[1],
    )

    stop_event.wait()
    if control is not None:
        try:
            control.close()
        except OSError:  # pragma: no cover
            pass
    public.stop()  # stop accepting, drain in-flight, flush state
    if feeder is not None:
        feeder.join(timeout=2)
    # peers may still be forwarding the tail of their own drains here;
    # give those proxied requests a beat before the internal port dies
    time.sleep(0.2)
    internal.stop()
    _LOG.info("worker_down", index=index)
    return 0


# ---------------------------------------------------------------------------
# parent side


class WorkerProcess:
    """Bookkeeping for one spawned worker."""

    def __init__(self, index: int, process: subprocess.Popen,
                 parent_control: Optional[socket.socket] = None):
        self.index = index
        self.process = process
        self.parent_control = parent_control
        self.internal_port: Optional[int] = None
        self.lines: "Queue[str]" = Queue()
        self._reader = threading.Thread(
            target=self._read_stdout, daemon=True,
            name=f"prefork-out-{index}",
        )
        self._reader.start()

    def _read_stdout(self) -> None:
        for line in self.process.stdout:
            self.lines.put(line.strip())
        self.lines.put("")  # EOF marker

    def expect(self, prefix: str, timeout: float) -> List[str]:
        """Wait for a protocol line ``<prefix> …``; returns its fields."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise StateError(
                    f"worker {self.index}: no {prefix!r} within {timeout}s"
                )
            try:
                line = self.lines.get(timeout=remaining)
            except Empty:
                continue
            if not line:
                raise StateError(
                    f"worker {self.index} exited during startup "
                    f"(rc={self.process.poll()})"
                )
            if line.startswith(prefix + " "):
                return line.split()[1:]
            # ignore chatter; protocol lines are the only stdout writers


class MultiWorkerFront:
    """Parent of N pre-fork workers sharing one state directory.

    Context-managed like :class:`PowerPlayServer`::

        with MultiWorkerFront(state_dir, workers=4) as front:
            browser = Browser(front.base_url)
            ...

    ``mode`` is ``"reuseport"`` where the kernel supports it (Linux,
    the BSDs), else ``"fdpass"``; tests pin ``mode="fdpass"`` to cover
    the fallback on any platform.
    """

    _log = get_logger("web.prefork.front")

    #: how long to wait for every worker to report READY
    start_timeout_s: float = 60.0
    #: how long stop() waits for workers to drain before SIGKILL
    stop_timeout_s: float = 20.0

    def __init__(
        self,
        state_dir: Path,
        workers: int = 2,
        backend: str = "file",
        host: str = "127.0.0.1",
        port: int = 0,
        server_name: str = "powerplay",
        mode: Optional[str] = None,
    ):
        if workers < 1:
            raise StateError("workers must be >= 1")
        self.state_dir = Path(state_dir)
        self.workers = int(workers)
        self.backend = backend
        self.host = host
        self.port = int(port)
        self.server_name = server_name
        if mode is None:
            mode = (
                "reuseport"
                if hasattr(socket, "SO_REUSEPORT")
                else "fdpass"
            )
        if mode not in ("reuseport", "fdpass"):
            raise StateError(f"unknown prefork mode {mode!r}")
        self.mode = mode
        self._children: List[WorkerProcess] = []
        self._placeholder: Optional[socket.socket] = None
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._stopping = threading.Event()
        self._started = False

    # -- addresses ---------------------------------------------------------

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def internal_ports(self) -> List[int]:
        return [child.internal_port for child in self._children]

    def internal_peers(self) -> List[Tuple[str, str]]:
        """(name, url) pairs for the fleet aggregator — one per worker."""
        return [
            (
                f"{self.server_name}-w{child.index}",
                f"http://127.0.0.1:{child.internal_port}",
            )
            for child in self._children
        ]

    # -- lifecycle ---------------------------------------------------------

    def _reserve_port(self) -> None:
        """Pick (and hold) the public port before any worker binds it.

        reuseport mode: a bound — never listening — placeholder with
        ``SO_REUSEPORT`` keeps the port ours between choosing it and
        the workers binding it; connections only go to listeners, so
        the placeholder never steals one.  fdpass mode: the parent is
        the actual listener.
        """
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        if self.mode == "reuseport":
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        sock.bind((self.host, self.port))
        self.port = sock.getsockname()[1]
        if self.mode == "fdpass":
            sock.listen(128)
            self._listener = sock
        else:
            self._placeholder = sock

    def _spawn(self, index: int) -> WorkerProcess:
        command = [
            sys.executable, "-m", "repro", "serve-worker",
            "--state", str(self.state_dir),
            "--backend", self.backend,
            "--host", self.host,
            "--port", str(self.port),
            "--index", str(index),
            "--workers", str(self.workers),
            "--name", self.server_name,
            "--mode", self.mode,
        ]
        parent_control: Optional[socket.socket] = None
        pass_fds: Sequence[int] = ()
        if self.mode == "fdpass":
            parent_control, child_control = socket.socketpair()
            command += ["--control-fd", str(child_control.fileno())]
            pass_fds = (child_control.fileno(),)
        process = subprocess.Popen(
            command,
            stdin=subprocess.PIPE,
            stdout=subprocess.PIPE,
            text=True,
            bufsize=1,
            pass_fds=pass_fds,
        )
        if self.mode == "fdpass":
            child_control.close()  # the worker's copy lives in the child
        return WorkerProcess(index, process, parent_control)

    def start(self) -> "MultiWorkerFront":
        if self._started:
            return self
        self._reserve_port()
        self._children = [self._spawn(i) for i in range(self.workers)]
        deadline = time.monotonic() + self.start_timeout_s
        try:
            for child in self._children:
                fields = child.expect(
                    "INTERNAL", deadline - time.monotonic()
                )
                child.internal_port = int(fields[0])
            table = "TABLE " + " ".join(
                str(child.internal_port) for child in self._children
            )
            for child in self._children:
                child.process.stdin.write(table + "\n")
                child.process.stdin.flush()
            for child in self._children:
                child.expect("READY", deadline - time.monotonic())
        except BaseException:
            self.stop()
            raise
        if self.mode == "fdpass":
            self._accept_thread = threading.Thread(
                target=self._accept_loop, daemon=True,
                name="prefork-accept",
            )
            self._accept_thread.start()
        self._started = True
        self._log.info(
            "front_up", workers=self.workers, mode=self.mode,
            port=self.port, backend=self.backend,
        )
        return self

    def _accept_loop(self) -> None:
        """fdpass mode: accept publicly, hand sockets out round-robin.

        Routing is free to be arbitrary — user affinity is restored by
        the workers' shard forwarding, exactly as in reuseport mode.
        """
        turn = 0
        while not self._stopping.is_set():
            try:
                request, _addr = self._listener.accept()
            except OSError:
                break
            child = self._children[turn % len(self._children)]
            turn += 1
            try:
                socket.send_fds(
                    child.parent_control, [b"c"], [request.fileno()]
                )
            except OSError:  # pragma: no cover - worker died mid-send
                pass
            request.close()  # the worker holds its own duplicate now

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT on the parent → graceful drain of the fleet."""

        def _stop(signum, frame):  # pragma: no cover - signal path
            self.stop()
            raise SystemExit(0)

        signal.signal(signal.SIGTERM, _stop)
        signal.signal(signal.SIGINT, _stop)

    def stop(self) -> None:
        """Drain every worker (bounded), then reap; idempotent."""
        if self._stopping.is_set():
            return
        self._stopping.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:  # pragma: no cover
                pass
        for child in self._children:
            if child.process.poll() is None:
                try:
                    child.process.terminate()
                except OSError:  # pragma: no cover - already gone
                    pass
        deadline = time.monotonic() + self.stop_timeout_s
        clean = True
        for child in self._children:
            remaining = max(0.1, deadline - time.monotonic())
            try:
                child.process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                clean = False
                child.process.kill()
                child.process.wait(timeout=5)
            if child.parent_control is not None:
                try:
                    child.parent_control.close()
                except OSError:  # pragma: no cover
                    pass
            for stream in (child.process.stdin, child.process.stdout):
                try:
                    stream.close()
                except (OSError, AttributeError):  # pragma: no cover
                    pass
        if self._placeholder is not None:
            try:
                self._placeholder.close()
            except OSError:  # pragma: no cover
                pass
            self._placeholder = None
        self._log.info("front_down", clean=clean)

    def exit_codes(self) -> Dict[int, Optional[int]]:
        """Worker index -> exit code (None while still running)."""
        return {
            child.index: child.process.poll() for child in self._children
        }

    def __enter__(self) -> "MultiWorkerFront":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
