"""Minimal HTML generation — the 1996 web, dependency-free.

"A WWW page is written in HyperText Markup Language (HTML).  HTML pages
enable hyperlinks to other pages and calls to programs located on the
WWW."  Everything PowerPlay renders is tables, forms and links; this
module covers exactly that, with systematic escaping.
"""

from __future__ import annotations

import html as _html
from typing import Iterable, List, Mapping, Optional, Sequence, Tuple, Union

Content = Union[str, "Raw"]


class Raw(str):
    """A string already containing markup — not escaped again."""


def escape(text: object) -> str:
    """Escape text for safe inclusion in HTML."""
    if isinstance(text, Raw):
        return str(text)
    return _html.escape(str(text), quote=True)


def tag(element: str, content: Content = "", **attributes: object) -> Raw:
    """``tag('td', 'x', class_='num')`` -> ``<td class="num">x</td>``.

    Attribute names ending in ``_`` have it stripped (``class_``);
    underscores become hyphens.  ``None`` attribute values are skipped;
    ``True`` renders as a bare attribute.
    """
    parts = [element]
    for key, value in attributes.items():
        if value is None:
            continue
        attr = key.rstrip("_").replace("_", "-")
        if value is True:
            parts.append(attr)
        else:
            parts.append(f'{attr}="{escape(value)}"')
    open_tag = "<" + " ".join(parts) + ">"
    if element in ("br", "hr", "input", "meta"):
        return Raw(open_tag)
    return Raw(f"{open_tag}{escape(content)}</{element}>")


def join(*chunks: Content) -> Raw:
    return Raw("".join(escape(chunk) for chunk in chunks))


def link(href: str, text: str) -> Raw:
    """A hyperlink — "textual pointers to scripts or files"."""
    return tag("a", text, href=href)


def heading(text: str, level: int = 1) -> Raw:
    return tag(f"h{max(1, min(6, level))}", text)


def paragraph(content: Content) -> Raw:
    return tag("p", content)


def unordered_list(items: Iterable[Content]) -> Raw:
    body = "".join(tag("li", item) for item in items)
    return Raw(f"<ul>{body}</ul>")


def table(
    rows: Sequence[Sequence[Content]],
    header: Optional[Sequence[Content]] = None,
    caption: str = "",
) -> Raw:
    """An HTML table in the Figure 2 / Figure 5 spreadsheet style."""
    parts: List[str] = ['<table border="1" cellpadding="3">']
    if caption:
        parts.append(tag("caption", caption))
    if header is not None:
        cells = "".join(tag("th", cell) for cell in header)
        parts.append(f"<tr>{cells}</tr>")
    for row in rows:
        cells = "".join(tag("td", cell) for cell in row)
        parts.append(f"<tr>{cells}</tr>")
    parts.append("</table>")
    return Raw("".join(parts))


# -- forms -----------------------------------------------------------------


def text_input(name: str, value: object = "", size: int = 12) -> Raw:
    return tag("input", type="text", name=name, value=value, size=size)


def hidden_input(name: str, value: object) -> Raw:
    return tag("input", type="hidden", name=name, value=value)


def select(name: str, options: Sequence[str], selected: Optional[str] = None) -> Raw:
    body = "".join(
        tag("option", option, value=option, selected=(option == selected) or None)
        for option in options
    )
    return Raw(f'<select name="{escape(name)}">{body}</select>')


def submit(label: str = "Submit") -> Raw:
    return tag("input", type="submit", value=label)


def form(
    action: str,
    body: Content,
    method: str = "post",
) -> Raw:
    return Raw(
        f'<form action="{escape(action)}" method="{escape(method)}">'
        f"{escape(body)}</form>"
    )


def labelled_field(label: str, field: Content, note: str = "") -> Raw:
    suffix = tag("small", f" {note}") if note else Raw("")
    return Raw(f"<tr><td>{escape(label)}</td><td>{escape(field)}{suffix}</td></tr>")


def field_table(rows: Iterable[Content]) -> Raw:
    return Raw("<table>" + "".join(escape(row) for row in rows) + "</table>")


# -- pages -----------------------------------------------------------------

_STYLE = """
body { font-family: sans-serif; margin: 1.5em; }
table { border-collapse: collapse; }
th { background: #ddd; text-align: left; }
td.num { text-align: right; font-family: monospace; }
.nav { margin-bottom: 1em; }
.error { color: #a00; font-weight: bold; }
small { color: #555; }
"""


def page(title: str, *body: Content, nav: Sequence[Tuple[str, str]] = ()) -> str:
    """A complete HTML document with the PowerPlay navigation bar."""
    nav_html = ""
    if nav:
        links = " | ".join(link(href, text) for href, text in nav)
        nav_html = f'<div class="nav">{links}</div>'
    content = "".join(escape(chunk) for chunk in body)
    return (
        "<!DOCTYPE html>"
        f"<html><head><title>{escape(title)}</title>"
        f"<style>{_STYLE}</style></head>"
        f"<body>{nav_html}<h1>{escape(title)}</h1>{content}</body></html>"
    )


def error_page(title: str, message: str, nav: Sequence[Tuple[str, str]] = ()) -> str:
    return page(title, tag("p", message, class_="error"), nav=nav)
