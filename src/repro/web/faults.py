"""Deterministic fault injection for the PowerPlay web stack.

The resilience layer (:mod:`repro.web.resilience`) is only trustworthy
if its behaviour under failure is *tested*, and failures from the real
network are neither reproducible nor CI-friendly.  This module makes
them both:

* :class:`FaultPlan` — a seeded schedule of faults (connection refusal,
  latency spikes, 5xx, malformed or truncated JSON, mid-body
  disconnect).  The same seed always produces the same schedule, so a
  test that passes once passes forever;
* :class:`FaultyApplication` — wraps an
  :class:`~repro.web.app.Application` in-process: transport-shaped
  faults surface as :class:`~repro.errors.FaultInjected`, payload
  faults corrupt the response body.  Unit tests exercise degradation
  without sockets;
* :class:`ChaosServer` — a :class:`~repro.web.server.PowerPlayServer`
  whose handler injects the same faults at the real HTTP layer
  (closing sockets, mangling bytes on the wire), for end-to-end tests
  and the ``bench_fault_tolerance`` benchmark.

Fault kinds
-----------

==================  ====================================================
``refuse``          connection dropped before any response byte
``latency``         response delayed by ``latency`` seconds, then served
``error_500``       a well-formed HTTP 500 error page
``malformed_json``  HTTP 200 whose body is not parseable JSON
``truncate``        correct headers, but the body stops halfway
``disconnect``      socket closed mid-response (after the status line)
``reset_mid_body``  connection reset mid-body with *no* Content-Length:
                    the partial body reads as a complete response, so
                    only content verification (a digest) can catch it
``flap``            host down per a deterministic up/down schedule
                    (``flap_up``/``flap_down`` request counts)
==================  ====================================================
"""

from __future__ import annotations

import random
import socket
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import FaultInjected
from ..obs import get_logger, get_registry
from .app import Application, Response
from .server import PowerPlayServer, _Handler

_LOG = get_logger("faults")


def _metric_faults():
    return get_registry().counter(
        "powerplay_faults_injected_total",
        "Faults injected by FaultPlan, by kind.",
        ("kind",),
    )

#: every fault kind the harness can inject
FAULT_KINDS = (
    "refuse",
    "latency",
    "error_500",
    "malformed_json",
    "truncate",
    "disconnect",
    "reset_mid_body",
    "flap",
)

#: faults that damage the payload but still deliver *an* HTTP response
_PAYLOAD_FAULTS = {"error_500", "malformed_json", "truncate"}


@dataclass
class FaultPlan:
    """A deterministic schedule of injected faults.

    Two modes, combinable:

    * **rate mode** — each request draws from a ``random.Random(seed)``
      stream; with probability ``rate`` a fault is injected, its kind
      drawn uniformly from ``kinds``.  Deterministic per seed: the
      n-th request always sees the same decision.
    * **script mode** — ``script`` is an explicit per-request sequence
      (``None`` entries mean "no fault"); once exhausted, rate mode
      takes over (or no faults, if ``rate`` is 0).

    ``max_faults`` caps the total injected, so a plan can model "the
    network was bad for a while, then recovered".  ``exempt_paths``
    lets tests keep control endpoints clean.  The plan is thread-safe:
    the live chaos server serves from a thread pool.

    **Flapping host mode**: ``flap_up``/``flap_down`` overlay a
    deterministic availability schedule — the host answers ``flap_up``
    requests, then is down (kind ``flap``, a transport refusal) for
    ``flap_down`` requests, repeating.  The schedule is a property of
    the host, not a fault budget: it is exempt from ``max_faults`` and
    counted separately in :attr:`flap_outages`.
    """

    rate: float = 0.0
    seed: int = 0
    kinds: Sequence[str] = FAULT_KINDS
    latency: float = 0.02
    max_faults: Optional[int] = None
    script: Sequence[Optional[str]] = ()
    exempt_paths: Sequence[str] = ()
    flap_up: int = 0
    flap_down: int = 0

    requests_seen: int = 0
    faults_injected: int = 0
    flap_outages: int = 0
    injected_log: List[Tuple[int, str, str]] = field(default_factory=list)

    def __post_init__(self) -> None:
        for kind in self.kinds:
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
        for kind in self.script:
            if kind is not None and kind not in FAULT_KINDS:
                raise ValueError(f"unknown scripted fault kind {kind!r}")
        if self.flap_up < 0 or self.flap_down < 0:
            raise ValueError("flap_up/flap_down must be >= 0")
        if self.flap_down > 0 and self.flap_up == 0:
            raise ValueError(
                "flap_up must be > 0 when flap_down is set "
                "(a host that is never up is `rate=1.0 refuse`, not flap)"
            )
        self._rng = random.Random(self.seed)
        self._lock = threading.Lock()

    def next_fault(self, path: str = "") -> Optional[str]:
        """The fault (if any) for the next request.  Mutates the plan."""
        with self._lock:
            index = self.requests_seen
            self.requests_seen += 1
            bare = path.split("?", 1)[0]
            if bare and bare in self.exempt_paths:
                return None
            if self.flap_down > 0:
                # the availability schedule is checked before the fault
                # budget: a flapping host's downtime is deterministic,
                # not part of the random-fault allowance
                if index % (self.flap_up + self.flap_down) >= self.flap_up:
                    self.flap_outages += 1
                    self.injected_log.append((index, "flap", bare))
                    _metric_faults().inc(kind="flap")
                    _LOG.info("inject", kind="flap", path=bare, request=index)
                    return "flap"
            if self.max_faults is not None and self.faults_injected >= self.max_faults:
                return None
            kind: Optional[str] = None
            if index < len(self.script):
                kind = self.script[index]
            elif self.rate > 0 and self._rng.random() < self.rate:
                kind = self._rng.choice(list(self.kinds))
            if kind is not None:
                self.faults_injected += 1
                self.injected_log.append((index, kind, bare))
                _metric_faults().inc(kind=kind)
                _LOG.info("inject", kind=kind, path=bare, request=index)
            return kind

    def reset(self) -> None:
        """Rewind to the exact initial schedule (same seed)."""
        with self._lock:
            self._rng = random.Random(self.seed)
            self.requests_seen = 0
            self.faults_injected = 0
            self.flap_outages = 0
            self.injected_log.clear()


def _mangle(response: Response, kind: str) -> Response:
    """Apply a payload-damaging fault to an otherwise good response."""
    if kind == "error_500":
        return Response(
            status=500,
            body="<html><body><h1>500</h1><p>injected server error"
            "</p></body></html>",
        )
    if kind == "malformed_json":
        return Response(
            status=response.status,
            body='{"oops": this is not json',
            content_type="application/json",
        )
    if kind == "truncate":
        return Response(
            status=response.status,
            body=response.body[: max(1, len(response.body) // 2)],
            content_type=response.content_type,
            headers=dict(response.headers),
        )
    raise ValueError(f"not a payload fault: {kind!r}")


class FaultyApplication:
    """An :class:`Application` lookalike with a fault plan in front.

    Drop-in for anything that calls ``handle(method, path, form)`` —
    including :class:`~repro.web.server.PowerPlayServer` via its
    ``application`` argument.  Transport-shaped faults (``refuse``,
    ``disconnect``) raise :class:`~repro.errors.FaultInjected`; payload
    faults return a damaged :class:`Response`; ``latency`` sleeps via
    the injectable ``sleep`` then serves normally.
    """

    def __init__(
        self,
        inner: Application,
        plan: FaultPlan,
        sleep=time.sleep,
    ):
        self.inner = inner
        self.plan = plan
        self.sleep = sleep

    def __getattr__(self, name: str):
        # delegate everything but handle() (users, libraries, ...)
        return getattr(self.inner, name)

    def handle(
        self,
        method: str,
        path: str,
        form: Optional[Mapping[str, str]] = None,
        headers=None,
    ) -> Response:
        kind = self.plan.next_fault(path)
        if kind is None:
            return self.inner.handle(method, path, form, headers=headers)
        if kind in ("refuse", "disconnect", "flap"):
            raise FaultInjected(f"injected {kind} on {method} {path}")
        if kind == "latency":
            self.sleep(self.plan.latency)
            return self.inner.handle(method, path, form, headers=headers)
        if kind == "reset_mid_body":
            # the in-process shape of a mid-body connection reset with
            # no Content-Length: a partial body that LOOKS like a
            # complete, successful response — no error, no marker;
            # only content verification can tell
            response = self.inner.handle(method, path, form, headers=headers)
            return Response(
                status=response.status,
                body=response.body[: max(1, 2 * len(response.body) // 3)],
                content_type=response.content_type,
                headers=dict(response.headers),
            )
        return _mangle(
            self.inner.handle(method, path, form, headers=headers), kind
        )


class _ChaosHandler(_Handler):
    """The hardened handler, sabotaged at the socket layer."""

    fault_plan: FaultPlan  # injected via PowerPlayServer(handler_attrs=...)

    def _sever(self) -> None:
        """Hard-kill the connection (shutdown works regardless of the
        rfile/wfile refcounts still pinning the descriptor open)."""
        self.close_connection = True
        try:
            self.connection.shutdown(socket.SHUT_RDWR)
        except OSError:  # pragma: no cover - already gone
            pass

    def _send(self, response: Response) -> None:
        kind = self.fault_plan.next_fault(self.path)
        if kind is None:
            super()._send(response)
            return
        if kind in ("refuse", "flap"):
            # drop the connection before a single response byte (a
            # flapping host's down phase looks exactly like a refusal)
            self._sever()
            return
        if kind == "reset_mid_body":
            # headers WITHOUT Content-Length, then a partial body and a
            # clean FIN: connection-close framing makes the truncated
            # bytes read as a complete response.  The transport cannot
            # detect this — the artifact digest must.
            body = response.body.encode("utf-8")
            self.send_response(response.status)
            self.send_header("Content-Type", response.content_type)
            self.end_headers()
            self.wfile.write(body[: max(1, 2 * len(body) // 3)])
            try:
                self.wfile.flush()
            except OSError:  # pragma: no cover
                pass
            self._sever()
            return
        if kind == "latency":
            time.sleep(self.fault_plan.latency)
            super()._send(response)
            return
        if kind == "disconnect":
            # status line + headers promise a body that never arrives
            body = response.body.encode("utf-8")
            self.send_response(response.status)
            self.send_header("Content-Type", response.content_type)
            self.send_header("Content-Length", str(len(body)))
            self.end_headers()
            self.wfile.write(body[: max(1, len(body) // 3)])
            try:
                self.wfile.flush()
            except OSError:  # pragma: no cover
                pass
            self._sever()
            return
        super()._send(_mangle(response, kind))


class ChaosServer(PowerPlayServer):
    """A live PowerPlay server with a fault plan on every response.

    Usable standalone as a chaos endpoint for any HTTP client::

        plan = FaultPlan(rate=0.3, seed=7)
        with ChaosServer(state_dir, plan) as chaotic:
            client = RemoteLibraryClient(chaotic.base_url, ...)

    The application underneath is a real one — non-faulted requests
    serve real pages and real model payloads — so success rates
    measured against it are meaningful.
    """

    def __init__(
        self,
        state_dir: Path,
        plan: FaultPlan,
        host: str = "127.0.0.1",
        port: int = 0,
        server_name: str = "chaos",
        application: Optional[Application] = None,
        allowed_hosts: Optional[Sequence[str]] = None,
    ):
        self.plan = plan
        super().__init__(
            state_dir,
            host=host,
            port=port,
            server_name=server_name,
            application=application,
            allowed_hosts=allowed_hosts,
            handler_base=_ChaosHandler,
            handler_attrs={"fault_plan": plan},
        )
        # severed sockets make http.server's default handle_error noisy;
        # injected faults are expected, so keep stderr clean
        self._httpd.handle_error = lambda *args: None
