"""Remote model access over HTTP (paper Figures 6 and 7, bottom).

"The key is using secure scripts at Universal Resource Locators to
handle information transfer on demand."  A PowerPlay server exposes its
shared models at well-known JSON endpoints (``/api/library.json``,
``/api/model?name=...``); this module is the consumer side:

* :class:`RemoteLibraryClient` — fetch a whole shared library or a
  single model from another server, tagging every adopted entry with
  its origin URL;
* :func:`federate` — merge several remote libraries into a local one
  ("If a library is characterized and put on the web in Massachusetts,
  it can be used for estimates in California");
* on-demand resolution with a small cache, so a design evaluation that
  needs a remote model fetches it once per session.

A federation spans the open internet, so every client is wrapped in the
resilience layer (:mod:`repro.web.resilience`): transient failures are
retried with backoff, persistently dead hosts trip a per-host circuit
breaker and are skipped fast, and previously fetched models are served
stale from a TTL cache during an outage.  Every degradation is recorded
in a :class:`~repro.web.resilience.ResolutionReport` — never silent.

Security posture matches the paper's: payloads are *data* (expressions,
coefficients) decoded by the library codecs — nothing executable — and
proprietary entries are never served.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..errors import (
    CircuitOpenError,
    RemoteError,
    TransientRemoteError,
)
from ..library.catalog import Library, LibraryEntry
from ..obs import annotate, span
from .client import Browser
from .resilience import (
    CACHE_HIT,
    CIRCUIT_SKIPPED,
    FETCHED,
    LOCAL_HIT,
    MIRROR_SERVED,
    REMOTE_FAILED,
    RETRY,
    STALE_SERVED,
    CircuitBreaker,
    ModelCache,
    ResolutionReport,
    RetryPolicy,
)


class RemoteLibraryClient:
    """Client for another PowerPlay server's model API.

    Each client owns one :class:`~repro.web.resilience.CircuitBreaker`
    (state is per remote host), one retry policy, and one TTL'd model
    cache.  ``retry_policy=None`` / ``breaker=None`` get sensible
    defaults; ``cache_ttl=None`` caches forever (the pre-resilience
    behaviour); ``clock``/``sleep`` are injectable for tests.
    """

    def __init__(
        self,
        base_url: str,
        timeout: float = 10.0,
        retry_policy: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        cache_ttl: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.base_url = base_url.rstrip("/")
        self.retry_policy = retry_policy or RetryPolicy()
        self.breaker = breaker or CircuitBreaker(name=self.base_url)
        self._browser = Browser(self.base_url, timeout=timeout)
        self._cache: ModelCache[LibraryEntry] = ModelCache(ttl=cache_ttl, clock=clock)
        self.requests_made = 0
        #: degradations observed across this client's lifetime
        self.report = ResolutionReport()

    # -- guarded transport -------------------------------------------------

    def _guarded(self, fn: Callable[[], "object"], name: str = "") -> "object":
        """One remote operation through breaker + retries.

        The breaker is *inside* the retry loop so each attempt checks
        (and feeds) it; once it trips, :class:`CircuitOpenError` aborts
        immediately — zero retries are ever issued to an open circuit.

        When tracing is on, every attempt opens its own
        ``remote_attempt`` span (the provider's grafted sub-span lands
        under the attempt that succeeded), each retry decision is an
        instant ``retry`` annotation carrying the backoff delay, and a
        rejected call against an open circuit annotates the wait.
        """
        attempt_counter = [0]

        def attempt() -> "object":
            with span(
                "remote_attempt",
                url=self.base_url,
                target=name or "library",
                attempt=attempt_counter[0],
            ):
                try:
                    return self.breaker.call(
                        fn, failure_types=(TransientRemoteError, OSError)
                    )
                except CircuitOpenError as exc:
                    # the breaker wait, visible in the trace tree
                    annotate(
                        "circuit_wait",
                        url=self.base_url,
                        retry_after_s=round(exc.retry_after, 3),
                    )
                    raise

        def on_retry(attempt_index: int, exc: Exception) -> None:
            self.report.record(
                RETRY, self.base_url, name, f"attempt {attempt_index + 1}: {exc}"
            )
            annotate(
                "retry",
                url=self.base_url,
                attempt=attempt_index + 1,
                delay_s=round(self.retry_policy.delay(attempt_index), 4),
                error=type(exc).__name__,
            )
            attempt_counter[0] += 1

        return self.retry_policy.call(attempt, on_retry=on_retry)

    def ping(self) -> Dict[str, str]:
        """Identify the remote server (protocol handshake)."""

        def fetch() -> Dict[str, str]:
            self.requests_made += 1
            payload = self._browser.get_json("/api/ping")
            if not isinstance(payload, dict) or "protocol" not in payload:
                raise RemoteError(f"{self.base_url} is not a PowerPlay server")
            return payload

        with span("remote_ping", url=self.base_url):
            return self._guarded(fetch)

    def fetch_library(self) -> Library:
        """Fetch every shared model in one request."""

        def fetch() -> Library:
            self.requests_made += 1
            page = self._browser.get("/api/library.json")
            if page.status >= 500:
                raise TransientRemoteError(
                    f"{self.base_url}/api/library.json returned {page.status}"
                )
            if page.status != 200:
                raise RemoteError(
                    f"{self.base_url}/api/library.json returned {page.status}"
                )
            from ..errors import LibraryError

            try:
                return Library.from_json(page.body, origin=self.base_url)
            except LibraryError as exc:
                # truncated / garbled payloads are usually transport
                # damage, not a hostile peer — worth one more try
                raise TransientRemoteError(
                    f"bad library payload from {self.base_url}: {exc}"
                ) from exc

        with span("remote_fetch_library", url=self.base_url) as sp:
            library = self._guarded(fetch)
            sp.set(entries=len(library))
        for entry in library:
            self._cache.put(entry.name, entry)
        return library

    def _fetch_model_once(self, name: str) -> LibraryEntry:
        import json as _json
        import urllib.parse as _url

        self.requests_made += 1
        page = self._browser.get(f"/api/model?name={_url.quote(name)}")
        if page.status == 400:
            raise RemoteError(
                f"{self.base_url} refused model {name!r} (unknown or proprietary)"
            )
        if page.status >= 500:
            raise TransientRemoteError(
                f"{self.base_url}/api/model returned {page.status}"
            )
        if page.status != 200:
            raise RemoteError(
                f"{self.base_url}/api/model returned {page.status}"
            )
        try:
            payload = _json.loads(page.body)
        except _json.JSONDecodeError as exc:
            raise TransientRemoteError(
                f"bad model payload from {self.base_url}: {exc}"
            ) from exc
        from ..errors import LibraryError

        try:
            return LibraryEntry.from_payload(payload, origin=self.base_url)
        except LibraryError as exc:
            raise RemoteError(
                f"bad model payload from {self.base_url}: {exc}"
            ) from exc

    def fetch_model(self, name: str) -> LibraryEntry:
        """Fetch one model on demand.

        Resolution order: fresh cache hit -> network (breaker +
        retries) -> stale cache fallback.  A stale serve or a skipped
        circuit is recorded in :attr:`report`; only when no copy exists
        at all does the failure propagate.  Traced as one
        ``remote_fetch`` span whose children are the attempts, retries,
        breaker waits, and (on success) the provider's grafted handler
        span.
        """
        with span("remote_fetch", url=self.base_url, model=name) as sp:
            cached = self._cache.get_fresh(name)
            if cached is not None:
                self.report.record(CACHE_HIT, self.base_url, name)
                sp.set(outcome="cache_fresh")
                return cached
            try:
                entry = self._guarded(lambda: self._fetch_model_once(name), name)
            except CircuitOpenError as exc:
                self.report.record(CIRCUIT_SKIPPED, self.base_url, name, str(exc))
                stale = self._cache.get_stale(name)
                if stale is not None:
                    self.report.record(STALE_SERVED, self.base_url, name)
                    sp.set(outcome="stale_after_circuit")
                    return stale
                sp.set(outcome="circuit_open")
                raise
            except TransientRemoteError as exc:
                self.report.record(REMOTE_FAILED, self.base_url, name, str(exc))
                stale = self._cache.get_stale(name)
                if stale is not None:
                    self.report.record(STALE_SERVED, self.base_url, name)
                    sp.set(outcome="stale_after_failure")
                    return stale
                sp.set(outcome="failed")
                raise
            self._cache.put(name, entry)
            self.report.record(FETCHED, self.base_url, name)
            sp.set(outcome="fetched")
            return entry

    def clear_cache(self) -> None:
        self._cache.clear()


@dataclass
class FederationReport:
    """Per-URL outcome of a best-effort federation."""

    succeeded: Dict[str, List[str]] = field(default_factory=dict)
    failed: Dict[str, str] = field(default_factory=dict)
    skipped: Dict[str, str] = field(default_factory=dict)

    @property
    def complete(self) -> bool:
        return not self.failed and not self.skipped

    def summary(self) -> str:
        return (
            f"{len(self.succeeded)} succeeded, {len(self.failed)} failed, "
            f"{len(self.skipped)} skipped"
        )


def federate(
    local: Library,
    remote_urls: Sequence[str],
    prefer: str = "mine",
    best_effort: bool = False,
    client_factory: Callable[[str], RemoteLibraryClient] = RemoteLibraryClient,
) -> Union[Dict[str, List[str]], FederationReport]:
    """Merge shared libraries from several servers into ``local``.

    Strict mode (the default) returns ``{url: adopted entry names}``
    and raises :class:`~repro.errors.RemoteError` on the first
    unreachable server — a federation is explicit, so a silently
    missing site cannot skew an estimate.

    ``best_effort=True`` instead returns a :class:`FederationReport`
    accounting for *every* URL: ``succeeded`` (with adopted names),
    ``failed`` (with the error), and ``skipped`` (circuit already
    open — the host was known-dead and not even contacted).  Nothing
    is silent; callers decide whether a partial federation is usable.
    """
    with span(
        "federate", remotes=len(remote_urls), best_effort=best_effort
    ):
        if not best_effort:
            adopted: Dict[str, List[str]] = {}
            for url in remote_urls:
                client = client_factory(url)
                remote_library = client.fetch_library()
                adopted[url] = local.merge(remote_library, prefer=prefer)
            return adopted

        report = FederationReport()
        for url in remote_urls:
            client = client_factory(url)
            try:
                remote_library = client.fetch_library()
            except CircuitOpenError as exc:
                report.skipped[url] = str(exc)
                annotate("federate_skipped", url=url)
                continue
            except RemoteError as exc:
                report.failed[url] = str(exc)
                annotate("federate_failed", url=url, error=type(exc).__name__)
                continue
            report.succeeded[url] = local.merge(remote_library, prefer=prefer)
        return report


class ModelResolver:
    """Name -> entry resolution across local + remote libraries.

    The lookup order is local-first (the paper's servers share models;
    local characterizations take precedence), then each remote in the
    order given, then — when a ``registry``
    (:class:`~repro.registry.registry.ModelRegistry`) is attached — the
    digest-verified local mirror, so a total provider outage still
    resolves every previously synced model.  Fetches are on-demand and
    cached — the Figure 7 "information transfer on demand" behaviour —
    and each lookup's degradations (retries, stale serves, skipped
    circuits, mirror serves) accumulate in :attr:`report`;
    :attr:`last_report` covers just the most recent ``resolve`` call.
    """

    def __init__(
        self,
        local: Library,
        remotes: Sequence[RemoteLibraryClient] = (),
        registry: Optional[object] = None,
    ):
        self.local = local
        self.remotes = list(remotes)
        #: an optional ModelRegistry (typed loosely: repro.registry
        #: imports this module, so importing it back at module scope
        #: would be a cycle)
        self.registry = registry
        self.report = ResolutionReport()
        self.last_report = ResolutionReport()

    def resolve(self, name: str) -> LibraryEntry:
        self.last_report = ResolutionReport()
        with span("resolve", model=name) as sp:
            try:
                if name in self.local:
                    self.last_report.record(LOCAL_HIT, self.local.name, name)
                    sp.set(outcome="local")
                    return self.local.get(name)
                failures: List[str] = []
                for remote in self.remotes:
                    before = len(remote.report.events)
                    try:
                        entry = remote.fetch_model(name)
                        self.last_report.events.extend(
                            remote.report.events[before:]
                        )
                        sp.set(outcome="remote", url=remote.base_url)
                        return entry
                    except RemoteError as exc:
                        self.last_report.events.extend(
                            remote.report.events[before:]
                        )
                        failures.append(str(exc))
                if self.registry is not None:
                    entry = self._from_mirror(name, failures)
                    if entry is not None:
                        sp.set(outcome="mirror")
                        return entry
                detail = (
                    "; ".join(failures) if failures else "no remotes configured"
                )
                self.last_report.record(REMOTE_FAILED, "resolver", name, detail)
                sp.set(outcome="unresolved")
                raise RemoteError(f"cannot resolve model {name!r}: {detail}")
            finally:
                self.last_report.merged_into(self.report)

    def _from_mirror(
        self, name: str, failures: List[str]
    ) -> Optional[LibraryEntry]:
        """The last resort: a digest-verified mirrored artifact.

        Only reached after every remote failed, so a hit here is by
        definition a degradation — recorded as ``mirror_served``.  A
        mirror miss (or a quarantined copy) appends to ``failures`` and
        lets the caller raise with the full chain in the message.
        """
        from ..errors import PowerPlayError

        try:
            entry = self.registry.get_entry(name)
        except PowerPlayError as exc:
            failures.append(f"mirror: {exc}")
            return None
        self.last_report.record(
            MIRROR_SERVED, "registry", name,
            f"all {len(self.remotes)} remote(s) failed",
        )
        annotate("mirror_served", model=name)
        return entry

    def total_remote_requests(self) -> int:
        return sum(remote.requests_made for remote in self.remotes)
