"""Remote model access over HTTP (paper Figures 6 and 7, bottom).

"The key is using secure scripts at Universal Resource Locators to
handle information transfer on demand."  A PowerPlay server exposes its
shared models at well-known JSON endpoints (``/api/library.json``,
``/api/model?name=...``); this module is the consumer side:

* :class:`RemoteLibraryClient` — fetch a whole shared library or a
  single model from another server, tagging every adopted entry with
  its origin URL;
* :func:`federate` — merge several remote libraries into a local one
  ("If a library is characterized and put on the web in Massachusetts,
  it can be used for estimates in California");
* on-demand resolution with a small cache, so a design evaluation that
  needs a remote model fetches it once per session.

Security posture matches the paper's: payloads are *data* (expressions,
coefficients) decoded by the library codecs — nothing executable — and
proprietary entries are never served.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import RemoteError
from ..library.catalog import Library, LibraryEntry
from .client import Browser


class RemoteLibraryClient:
    """Client for another PowerPlay server's model API."""

    def __init__(self, base_url: str, timeout: float = 10.0):
        self.base_url = base_url.rstrip("/")
        self._browser = Browser(self.base_url, timeout=timeout)
        self._cache: Dict[str, LibraryEntry] = {}
        self.requests_made = 0

    def ping(self) -> Dict[str, str]:
        """Identify the remote server (protocol handshake)."""
        payload = self._browser.get_json("/api/ping")
        self.requests_made += 1
        if not isinstance(payload, dict) or "protocol" not in payload:
            raise RemoteError(f"{self.base_url} is not a PowerPlay server")
        return payload

    def fetch_library(self) -> Library:
        """Fetch every shared model in one request."""
        page = self._browser.get("/api/library.json")
        self.requests_made += 1
        if page.status != 200:
            raise RemoteError(
                f"{self.base_url}/api/library.json returned {page.status}"
            )
        from ..errors import LibraryError

        try:
            library = Library.from_json(page.body, origin=self.base_url)
        except LibraryError as exc:
            raise RemoteError(
                f"bad library payload from {self.base_url}: {exc}"
            ) from exc
        for entry in library:
            self._cache[entry.name] = entry
        return library

    def fetch_model(self, name: str) -> LibraryEntry:
        """Fetch one model on demand (cached per client)."""
        if name in self._cache:
            return self._cache[name]
        import json as _json
        import urllib.parse as _url

        page = self._browser.get(f"/api/model?name={_url.quote(name)}")
        self.requests_made += 1
        if page.status == 400:
            raise RemoteError(
                f"{self.base_url} refused model {name!r} (unknown or proprietary)"
            )
        if page.status != 200:
            raise RemoteError(
                f"{self.base_url}/api/model returned {page.status}"
            )
        try:
            payload = _json.loads(page.body)
        except _json.JSONDecodeError as exc:
            raise RemoteError(f"bad model payload from {self.base_url}: {exc}") from exc
        from ..errors import LibraryError

        try:
            entry = LibraryEntry.from_payload(payload, origin=self.base_url)
        except LibraryError as exc:
            raise RemoteError(
                f"bad model payload from {self.base_url}: {exc}"
            ) from exc
        self._cache[name] = entry
        return entry

    def clear_cache(self) -> None:
        self._cache.clear()


def federate(
    local: Library,
    remote_urls: Sequence[str],
    prefer: str = "mine",
) -> Dict[str, List[str]]:
    """Merge shared libraries from several servers into ``local``.

    Returns ``{url: adopted entry names}``.  Unreachable servers raise
    :class:`~repro.errors.RemoteError` — a federation is explicit, not
    best-effort, so a silently missing site cannot skew an estimate.
    """
    adopted: Dict[str, List[str]] = {}
    for url in remote_urls:
        client = RemoteLibraryClient(url)
        remote_library = client.fetch_library()
        adopted[url] = local.merge(remote_library, prefer=prefer)
    return adopted


class ModelResolver:
    """Name -> entry resolution across local + remote libraries.

    The lookup order is local-first (the paper's servers share models;
    local characterizations take precedence), then each remote in the
    order given.  Fetches are on-demand and cached — the Figure 7
    "information transfer on demand" behaviour.
    """

    def __init__(
        self,
        local: Library,
        remotes: Sequence[RemoteLibraryClient] = (),
    ):
        self.local = local
        self.remotes = list(remotes)

    def resolve(self, name: str) -> LibraryEntry:
        if name in self.local:
            return self.local.get(name)
        failures: List[str] = []
        for remote in self.remotes:
            try:
                return remote.fetch_model(name)
            except RemoteError as exc:
                failures.append(str(exc))
        detail = "; ".join(failures) if failures else "no remotes configured"
        raise RemoteError(f"cannot resolve model {name!r}: {detail}")

    def total_remote_requests(self) -> int:
        return sum(remote.requests_made for remote in self.remotes)
