"""HTTP transport for the PowerPlay application.

Wraps :class:`~repro.web.app.Application` in a threading
``http.server`` — the modern stand-in for the paper's Perl-CGI-behind-
httpd deployment.  "Since PowerPlay is local to one server, it can be
accessed by any machine on the web" — here, by anything that can reach
the bound address.

:class:`PowerPlayServer` is context-managed for tests and examples::

    with PowerPlayServer(state_dir) as server:
        browser = Browser(server.base_url)
        ...
"""

from __future__ import annotations

import ipaddress
import itertools
import socket
import threading
import time
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Sequence, Tuple

from ..obs import get_logger
from ..obs.propagate import REQUEST_HEADER
from .app import Application, Response

#: transport-level request-ID fallback — responses the application never
#: sees (403 gate refusals, malformed POSTs, last-resort 500s) still get
#: an ``X-PowerPlay-Request`` so every response is log-correlatable
_transport_request_ids = itertools.count(1)


def host_allowed(client_ip: str, allowed: Optional[Sequence[str]]) -> bool:
    """Check a client address against an allowlist of IPs/networks.

    "WWW programs enable file access to be restricted to specific
    machines" — ``allowed`` entries are literal IPs ("10.0.0.7") or
    CIDR networks ("10.0.0.0/24").  ``None`` means open access; an
    empty list denies everyone (the lockdown configuration).
    """
    if allowed is None:
        return True
    try:
        client = ipaddress.ip_address(client_ip)
    except ValueError:
        return False
    for entry in allowed:
        try:
            if "/" in entry:
                if client in ipaddress.ip_network(entry, strict=False):
                    return True
            elif client == ipaddress.ip_address(entry):
                return True
        except ValueError:
            continue
    return False


def _error_html(status: int, title: str, message: str) -> str:
    """A small, traceback-free error page (transport-level failures)."""
    return (
        "<html><head><title>PowerPlay — error</title></head><body>"
        f"<h1>{status} {title}</h1><p>{message}</p>"
        '<p><a href="/">PowerPlay front page</a></p></body></html>'
    )


class _Handler(BaseHTTPRequestHandler):
    """Adapts HTTP requests to Application.handle calls.

    Transport hardening lives here: request bodies are size-limited,
    malformed ``Content-Length`` headers and non-UTF-8 bodies yield a
    400 page, and an unexpected application exception yields a 500 HTML
    page — a browser (or attacker) never sees a Python traceback.
    """

    application: Application  # injected by the server factory
    allowed_hosts: Optional[Sequence[str]] = None
    #: request body ceiling — a form post is a few hundred bytes; 1 MiB
    #: leaves generous headroom for design-JSON imports
    max_body_bytes: int = 1 << 20

    #: transport-level log lines (http.server's per-request and error
    #: chatter) go through the structured logger, not raw stderr.  The
    #: default observability state is disabled with a no-op sink, so
    #: tests stay quiet; ``repro --log-level info serve`` surfaces them.
    _httpd_log = get_logger("web.httpd")

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        self._httpd_log.info(
            "httpd",
            client=self.client_address[0],
            message=format % args,
        )

    def _send(self, response: Response) -> None:
        response.headers.setdefault(
            REQUEST_HEADER, f"req-t{next(_transport_request_ids):08x}"
        )
        body = response.body.encode("utf-8")
        self.send_response(response.status)
        self.send_header("Content-Type", response.content_type)
        self.send_header("Content-Length", str(len(body)))
        for key, value in response.headers.items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    def _gate(self) -> bool:
        if host_allowed(self.client_address[0], self.allowed_hosts):
            return True
        self._send(
            Response(
                status=403,
                body=_error_html(
                    403,
                    "Forbidden",
                    "This PowerPlay server is restricted to specific machines.",
                ),
            )
        )
        return False

    def _handle_safely(self, method: str, form=None) -> Response:
        try:
            return self.application.handle(
                method, self.path, form, headers=self.headers
            )
        except Exception:  # noqa: BLE001 - last-resort transport guard
            return Response(
                status=500,
                body=_error_html(
                    500,
                    "Server error",
                    "PowerPlay hit an internal error handling this "
                    "request. The details have not been disclosed; "
                    "please retry or start over from the front page.",
                ),
            )

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        if not self._gate():
            return
        self._send(self._handle_safely("GET"))

    def _read_form(self) -> Tuple[Optional[dict], Optional[Response]]:
        """Parse the POST body, or produce the 4xx that explains why not."""
        header = self.headers.get("Content-Length", "0")
        try:
            length = int(header)
        except ValueError:
            return None, Response(
                status=400,
                body=_error_html(
                    400, "Bad request",
                    f"unparseable Content-Length header {header!r}",
                ),
            )
        if length < 0:
            return None, Response(
                status=400,
                body=_error_html(
                    400, "Bad request", "negative Content-Length"
                ),
            )
        if length > self.max_body_bytes:
            return None, Response(
                status=413,
                body=_error_html(
                    413, "Payload too large",
                    f"request body of {length} bytes exceeds the "
                    f"{self.max_body_bytes} byte limit",
                ),
            )
        try:
            raw = self.rfile.read(length).decode("utf-8") if length else ""
        except UnicodeDecodeError:
            return None, Response(
                status=400,
                body=_error_html(
                    400, "Bad request", "request body is not valid UTF-8"
                ),
            )
        form = {
            key: values[-1]
            for key, values in urllib.parse.parse_qs(raw).items()
        }
        return form, None

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if not self._gate():
            return
        form, refusal = self._read_form()
        if refusal is not None:
            self._send(refusal)
            return
        self._send(self._handle_safely("POST", form))


class _SoakFriendlyHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer tuned for long soaks.

    The stock mixin keeps a reference to *every* request thread it ever
    spawned when ``block_on_close`` is true, so a load test that issues
    thousands of requests grows an unbounded thread list and then joins
    it all at shutdown.  Request threads are daemons here anyway, so we
    skip the tracking: memory stays flat across a soak and ``stop()``
    returns promptly.

    Instead of the thread list we keep a *count* of in-flight requests
    (O(1) memory), which is what graceful drain actually needs: after
    ``shutdown()`` stops the accept loop, :meth:`drain` waits for the
    count to reach zero so responses already being written — session
    saves, mirror writes — complete instead of being killed mid-write.
    """

    daemon_threads = True
    block_on_close = False

    def __init__(self, *args, reuse_port: bool = False, **kwargs):
        self.reuse_port = reuse_port
        self._inflight = 0
        self._inflight_cv = threading.Condition()
        super().__init__(*args, **kwargs)

    def server_bind(self) -> None:
        # SO_REUSEPORT before bind: the pre-fork front's workers all
        # bind the same public port and let the kernel load-balance
        # accepts (set manually — socketserver.allow_reuse_port only
        # exists on 3.11+ and this runs on 3.10)
        if self.reuse_port and hasattr(socket, "SO_REUSEPORT"):
            self.socket.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEPORT, 1)
        super().server_bind()

    def inject(self, request, client_address) -> None:
        """Serve one already-accepted connection (FD-passing mode).

        The pre-fork front's parent accepts and hands the socket over a
        Unix socketpair when ``SO_REUSEPORT`` is unavailable; the worker
        feeds it here and the threading mixin handles it exactly like a
        locally accepted one (in-flight counted, drained on stop).
        """
        self.process_request(request, client_address)

    def process_request_thread(self, request, client_address) -> None:
        with self._inflight_cv:
            self._inflight += 1
        try:
            super().process_request_thread(request, client_address)
        finally:
            with self._inflight_cv:
                self._inflight -= 1
                self._inflight_cv.notify_all()

    @property
    def inflight(self) -> int:
        with self._inflight_cv:
            return self._inflight

    def drain(self, deadline: float) -> bool:
        """Wait up to ``deadline`` seconds for in-flight requests to
        finish.  Returns True if the server is idle, False on timeout
        (stragglers are daemon threads and die with the process)."""
        end = time.monotonic() + deadline
        with self._inflight_cv:
            while self._inflight > 0:
                remaining = end - time.monotonic()
                if remaining <= 0:
                    return False
                self._inflight_cv.wait(remaining)
        return True


class PowerPlayServer:
    """A live PowerPlay HTTP server on localhost.

    ``port=0`` (default) picks a free port; read it back from
    :attr:`base_url`.
    """

    _log = get_logger("web.server")

    def __init__(
        self,
        state_dir: Path,
        host: str = "127.0.0.1",
        port: int = 0,
        server_name: str = "powerplay",
        application: Optional[Application] = None,
        allowed_hosts: Optional[Sequence[str]] = None,
        handler_base: type = _Handler,
        max_body_bytes: int = _Handler.max_body_bytes,
        handler_attrs: Optional[dict] = None,
        telemetry_tick_s: Optional[float] = None,
        backend=None,
        reuse_port: bool = False,
    ):
        self.application = application or Application(
            Path(state_dir), server_name=server_name, backend=backend
        )
        self.allowed_hosts = allowed_hosts

        attrs = {
            "application": self.application,
            "allowed_hosts": allowed_hosts,
            "max_body_bytes": max_body_bytes,
        }
        attrs.update(handler_attrs or {})
        handler = type("BoundHandler", (handler_base,), attrs)
        self._httpd = _SoakFriendlyHTTPServer(
            (host, port), handler, reuse_port=reuse_port
        )
        self._thread: Optional[threading.Thread] = None
        #: optional background SLO tick — rolling windows must advance
        #: (and alerts must clear) even when no requests arrive.  Off
        #: by default: tests drive evaluation explicitly; ``repro
        #: serve`` turns it on.
        self.telemetry_tick_s = telemetry_tick_s
        self._tick_stop = threading.Event()
        self._tick_thread: Optional[threading.Thread] = None
        #: when the application has a history recorder attached
        #: (``attach_history``), :meth:`start` runs its sampling thread
        #: and :meth:`stop` seals the journal — the recorder's lifetime
        #: is exactly the serving lifetime
        self._history_running = False

    def _telemetry_tick(self) -> None:
        evaluate = getattr(self.application, "_maybe_evaluate_slos", None)
        while not self._tick_stop.wait(self.telemetry_tick_s):
            if callable(evaluate):
                try:
                    evaluate(force=True)
                except Exception:  # noqa: BLE001 - the tick must survive
                    pass

    @property
    def address(self) -> Tuple[str, int]:
        return self._httpd.server_address[0], self._httpd.server_address[1]

    @property
    def base_url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "PowerPlayServer":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, daemon=True, name="powerplay-http"
        )
        self._thread.start()
        if self.telemetry_tick_s and self._tick_thread is None:
            self._tick_stop.clear()
            self._tick_thread = threading.Thread(
                target=self._telemetry_tick,
                daemon=True,
                name="powerplay-telemetry",
            )
            self._tick_thread.start()
        recorder = getattr(self.application, "history_recorder", None)
        if recorder is not None and not self._history_running:
            recorder.start()
            self._history_running = True
        return self

    #: how long ``stop()`` waits for in-flight requests before closing
    drain_deadline: float = 5.0

    def stop(self) -> None:
        """Gracefully drain and shut down.

        Stops accepting new connections, waits (bounded by
        :attr:`drain_deadline`) for requests already being handled to
        finish, flushes application state (sessions, mirror store) to
        disk, then closes the listening socket.  The old hard-stop
        killed request threads mid-response during soak teardown and
        lost their writes; the flush makes teardown a durability point.
        """
        if self._thread is None:
            return
        if self._tick_thread is not None:
            self._tick_stop.set()
            self._tick_thread.join(timeout=2)
            self._tick_thread = None
        if self._history_running:
            recorder = getattr(self.application, "history_recorder", None)
            if recorder is not None:
                # seal=False: Application.flush() below seals after the
                # drain, so in-flight requests still land in the segment
                recorder.stop(seal=False)
            self._history_running = False
        self._httpd.shutdown()
        self._thread.join(timeout=5)
        drained = self._httpd.drain(self.drain_deadline)
        if not drained:
            self._log.warning(
                "drain_timeout",
                inflight=self._httpd.inflight,
                deadline_s=self.drain_deadline,
            )
        flush = getattr(self.application, "flush", None)
        if callable(flush):
            flushed = flush()
            self._log.info("drained", clean=drained, **(flushed or {}))
        self._httpd.server_close()
        self._thread = None

    def __enter__(self) -> "PowerPlayServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def serve_forever(self) -> None:
        """Blocking serve — what ``examples/web_demo.py --serve`` uses."""
        try:
            self._httpd.serve_forever()
        except KeyboardInterrupt:  # pragma: no cover - interactive only
            self._httpd.server_close()
