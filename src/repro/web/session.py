"""Per-user sessions and server-side state.

"Since WWW browsers do not supply user names, when PowerPlay is
initially accessed the user must identify her/himself.  The username is
passed to a Perl script which retrieves the individual user's defaults
from the PowerPlay server's local file system.  These user defaults
include the relevant hardware libraries and any previously generated
designs."

:class:`UserStore` reproduces exactly that: one JSON file per user under
a server-local directory, holding

* ``defaults`` — per-model parameter defaults remembered across visits
  ("A Perl script updates the user defaults ...");
* ``designs`` — serialized designs (via :mod:`repro.library.designio`);
* ``models`` — the user's self-defined primitives (library payloads).
"""

from __future__ import annotations

import hashlib
import hmac
import json
import os
import re
import threading
from pathlib import Path
from typing import Dict, List, Mapping, Optional

from ..core.design import Design
from ..errors import PowerPlayError, SessionError
from ..state import open_backend
from ..library.catalog import Library, LibraryEntry
from ..library.designio import design_from_payload, design_to_payload
from ..obs import get_logger, get_registry

_LOG = get_logger("session")


def _metric_sessions():
    return get_registry().counter(
        "powerplay_session_ops_total",
        "Session store operations (save, load, create, quarantine).",
        ("op",),
    )

# \Z, not $: "$" also matches before a trailing newline, which would
# let "alice\n" through and put a newline in a file name
_USERNAME_RE = re.compile(r"^[A-Za-z][A-Za-z0-9_.-]{0,31}\Z")


def validate_username(username: str) -> str:
    """Usernames become file names — keep them strictly boring."""
    if not isinstance(username, str) or not _USERNAME_RE.match(username):
        raise SessionError(
            f"invalid username {username!r}: use 1-32 letters, digits, "
            "'_', '.', '-', starting with a letter"
        )
    return username


class UserSession:
    """One user's mutable server-side state.

    The server is threaded, so one user's browser (or several tabs, or
    a scripted client) can hit the server concurrently.  :attr:`lock`
    serializes this session's mutations *and* its persistence: every
    mutator holds it through ``save()``, so the JSON snapshot written to
    disk is always internally consistent and saves for one user land in
    mutation order — no lost updates from an older payload racing past
    a newer one.  Re-entrant, because mutators call ``save()`` which
    re-acquires it.
    """

    def __init__(self, username: str, store: "UserStore"):
        self.username = validate_username(username)
        self._store = store
        self.lock = threading.RLock()
        self.defaults: Dict[str, Dict[str, float]] = {}
        self.designs: Dict[str, Design] = {}
        self.user_library = Library(
            f"{username}_models", f"models defined by {username}"
        )
        #: optional password protection — "PowerPlay can provide
        #: password-restricted access".  Stored as salted SHA-256.
        self._password_salt: str = ""
        self._password_hash: str = ""

    # -- password protection ---------------------------------------------

    @property
    def has_password(self) -> bool:
        return bool(self._password_hash)

    @staticmethod
    def _digest(salt: str, password: str) -> str:
        return hashlib.sha256((salt + password).encode("utf-8")).hexdigest()

    def set_password(self, password: str) -> None:
        """Protect this user's designs with a password."""
        if not password or len(password) < 4:
            raise SessionError("password must be at least 4 characters")
        with self.lock:
            self._password_salt = os.urandom(8).hex()
            self._password_hash = self._digest(self._password_salt, password)
            self.save()

    def clear_password(self, current: str) -> None:
        if not self.check_password(current):
            raise SessionError("wrong password")
        with self.lock:
            self._password_salt = ""
            self._password_hash = ""
            self.save()

    def check_password(self, password: str) -> bool:
        """True when access should be granted."""
        if not self.has_password:
            return True
        candidate = self._digest(self._password_salt, password or "")
        return hmac.compare_digest(candidate, self._password_hash)

    # -- defaults ---------------------------------------------------------

    def defaults_for(self, model_name: str) -> Dict[str, float]:
        with self.lock:
            return dict(self.defaults.get(model_name, {}))

    def remember_defaults(self, model_name: str, values: Mapping[str, float]) -> None:
        with self.lock:
            merged = self.defaults.setdefault(model_name, {})
            for key, value in values.items():
                merged[key] = float(value)
            self.save()

    # -- designs ------------------------------------------------------------

    def design(self, name: str) -> Design:
        design = self.designs.get(name)
        if design is None:
            raise SessionError(
                f"user {self.username!r} has no design {name!r}"
            )
        return design

    def put_design(self, design: Design) -> None:
        with self.lock:
            self.designs[design.name] = design
            self.save()

    def delete_design(self, name: str) -> None:
        with self.lock:
            if name not in self.designs:
                raise SessionError(
                    f"user {self.username!r} has no design {name!r}"
                )
            del self.designs[name]
            self.save()

    # -- persistence ----------------------------------------------------------

    def to_payload(self) -> dict:
        return {
            "format": "powerplay-user/1",
            "username": self.username,
            "password_salt": self._password_salt,
            "password_hash": self._password_hash,
            "defaults": self.defaults,
            "designs": {
                name: design_to_payload(design)
                for name, design in self.designs.items()
            },
            "models": [entry.to_payload() for entry in self.user_library],
        }

    def load_payload(self, payload: Mapping) -> None:
        if payload.get("format") != "powerplay-user/1":
            raise SessionError(
                f"corrupt state for user {self.username!r}: "
                f"format {payload.get('format')!r}"
            )
        self._password_salt = payload.get("password_salt", "")
        self._password_hash = payload.get("password_hash", "")
        self.defaults = {
            model: {k: float(v) for k, v in values.items()}
            for model, values in payload.get("defaults", {}).items()
        }
        self.designs = {}
        for name, design_payload in payload.get("designs", {}).items():
            self.designs[name] = design_from_payload(design_payload)
        self.user_library = Library(
            f"{self.username}_models", f"models defined by {self.username}"
        )
        for entry_payload in payload.get("models", []):
            self.user_library.add(LibraryEntry.from_payload(entry_payload))

    def save(self) -> None:
        # hold this session's lock across serialize-and-write so (a) the
        # payload is a consistent snapshot and (b) two threads saving the
        # same user cannot persist their snapshots out of order
        with self.lock:
            self._store.save_session(self)


class UserStore:
    """Backend-backed session registry: one JSON document per user.

    Durable storage is delegated to a
    :class:`~repro.state.backend.StateBackend` (namespace ``"users"``).
    The default is the historical file layout — one ``<user>.json``
    under ``root``, written with the mkstemp + fsync + atomic-rename
    ritual — so a store created by any earlier version opens unchanged;
    ``serve --backend sqlite`` swaps in WAL-mode SQLite without this
    class changing shape.

    A state document that is unreadable (disk damage, manual edits, a
    foreign format) is **quarantined**, not fatal: the backend moves
    the bytes aside (file: ``<user>.json.corrupt[-N]``; SQLite: a
    quarantine table), the event is recorded in :attr:`quarantined`,
    and the user gets a fresh session — the web service keeps running
    and the damaged bytes are preserved for inspection.
    """

    NAMESPACE = "users"

    def __init__(self, root: Path, backend=None):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.backend = open_backend(backend, self.root)
        self._sessions: Dict[str, UserSession] = {}
        self._lock = threading.Lock()
        #: ``[(username, quarantine location, reason), ...]`` — every
        #: corrupt state document set aside since this store was created
        self.quarantined: List[tuple] = []

    def known_users(self) -> List[str]:
        return self.backend.keys(self.NAMESPACE)

    def read_disk(self, username: str) -> Optional[str]:
        """The durable (backend) copy of one user's state, unparsed.

        The oracle's torn-file check compares this byte-for-byte
        against the in-memory session, whichever backend is in play.
        """
        return self.backend.load(self.NAMESPACE, validate_username(username))

    def flush(self) -> int:
        """Persist every loaded session; returns how many were saved.

        The graceful-drain hook: handlers save after each mutation, so
        this is normally a re-save of already-persisted state — but a
        drain must not depend on "normally".
        """
        with self._lock:
            sessions = list(self._sessions.values())
        for session in sessions:
            session.save()
        return len(sessions)

    def _quarantine(self, username: str, reason: str) -> str:
        target = self.backend.quarantine(self.NAMESPACE, username, reason)
        self.quarantined.append((username, Path(target), reason))
        _metric_sessions().inc(op="quarantine")
        _LOG.warning(
            "quarantine", user=username, moved_to=str(target), reason=reason
        )
        return target

    def session(self, username: str) -> UserSession:
        """Fetch (or lazily create) a user's session."""
        username = validate_username(username)
        with self._lock:
            session = self._sessions.get(username)
            if session is not None:
                return session
            session = UserSession(username, self)
            text = self.backend.load(self.NAMESPACE, username)
            if text is not None:
                try:
                    payload = json.loads(text)
                    session.load_payload(payload)
                    _metric_sessions().inc(op="load")
                    _LOG.debug("load", user=username)
                except (
                    json.JSONDecodeError,
                    PowerPlayError,
                    ValueError,
                    TypeError,
                    AttributeError,
                    KeyError,
                ) as exc:
                    self._quarantine(username, str(exc))
                    # load_payload may have half-populated the session
                    # before failing — start over from a clean one
                    session = UserSession(username, self)
            else:
                _metric_sessions().inc(op="create")
                _LOG.debug("create", user=username)
            self._sessions[username] = session
            return session

    def save_session(self, session: UserSession) -> None:
        """Atomically persist one user's state (crash- and race-safe).

        The payload is fully serialized *before* the backend is
        touched, and the backend's save is atomic and durable (file:
        unique mkstemp temp + fsync + atomic rename; SQLite: one
        fsynced row transaction) — a crash at any instant leaves either
        the previous complete document or the new complete one, never a
        torn or interleaved one.  The backend's per-key lock keeps two
        threads saving the same user from landing out of order.
        """
        payload = json.dumps(session.to_payload(), indent=1)
        with self.backend.lock(self.NAMESPACE, session.username):
            self.backend.save(self.NAMESPACE, session.username, payload)
        _metric_sessions().inc(op="save")
        _LOG.debug("save", user=session.username, bytes=len(payload))

    def forget(self, username: str) -> None:
        """Drop the in-memory session (state file remains)."""
        with self._lock:
            self._sessions.pop(username, None)
