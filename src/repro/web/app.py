"""The PowerPlay web application: routing and request handling.

Transport-independent: :meth:`Application.handle` maps
``(method, path, form)`` to a :class:`Response`, so unit tests exercise
every page without sockets and :mod:`repro.web.server` exposes the same
object over real HTTP.

The flow is the paper's, page for page: identify -> menu -> pick a
library element -> parameterize it on its input form (instant feedback)
-> save it into a design -> explore on the design spreadsheet with PLAY
-> hyperlink into sub-designs -> export/share JSON payloads that other
PowerPlay servers import (the Figure 7 HTTP model-access protocol).
"""

from __future__ import annotations

import itertools
import json
import secrets
import threading
import time
import urllib.parse
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..core.design import Design, SubDesign
from ..core.evalcache import (
    DEFAULT_CACHE,
    cached_evaluate_area,
    cached_evaluate_power,
    cached_evaluate_timing,
)
from ..core.model import (
    ExpressionAreaModel,
    ExpressionPowerModel,
    ExpressionTimingModel,
    ModelSet,
    TemplatePowerModel,
)
from ..core.parameters import Parameter
from ..core.units import format_eng, format_quantity, parse_float
from ..designs.infopad import build_infopad
from ..designs.luminance import build_figure1_design, build_figure3_design
from ..designs.macros import build_macro_library
from ..errors import (
    ArtifactConflict,
    CircuitOpenError,
    ExploreError,
    IntegrityError,
    PowerPlayError,
    RegistryError,
    RemoteError,
    SessionError,
    WebError,
)
from ..explore import (
    DerivedObjective,
    JobStore,
    ParameterSpace,
    coerce_surrogate,
    coupled_from_spec,
    export_csv,
    export_json,
    pareto_rows,
    parse_axis_spec,
    sensitivity_ranking,
)
from ..explore.engine import run_job
from ..library.catalog import Library, LibraryEntry
from ..library.cells import build_default_library
from ..library.datasheet import build_system_library
from ..library.designio import (
    design_from_payload,
    design_to_json,
    design_to_payload,
)
from ..obs import get_logger, get_registry, is_enabled, recent_traces
from ..obs import capacity as obs_capacity
from ..obs import fleet as obs_fleet
from ..obs import history as obs_history
from ..obs import process as obs_process
from ..obs import profile as obs_profile
from ..obs import propagate
from ..obs import recorder as obs_recorder
from ..obs import render_trace
from ..obs.recorder import FlightRecorder
from ..obs.slo import SLOTracker
from ..obs.trace import Span, traced
# direct submodule imports: repro.registry's package __init__ pulls in
# .resolve, which imports this package back (repro.web.remote) — going
# through submodules keeps both import orders acyclic
from ..registry.artifacts import (
    ModelArtifact,
    validate_artifact_name,
    validate_kind,
)
from ..registry.registry import ModelRegistry
from ..registry.store import MirrorStore, _metric_integrity, _metric_ops
from ..state import open_backend
from ..registry.sync import (
    MAX_ARTIFACT_BYTES,
    RegistrySyncClient,
    _metric_sync,
    sync_from,
)
from . import pages

if False:  # pragma: no cover - typing only (avoids the import cycle)
    from ..registry.resolve import RegistryResolver
from .resilience import (
    CIRCUIT_STATE_CODES,
    _metric_cache,
    _metric_circuit_state,
    _metric_circuit_transitions,
    _metric_retries,
)
from .session import UserStore, _metric_sessions, validate_username


@dataclass
class Response:
    """An HTTP-shaped response."""

    status: int = 200
    body: str = ""
    content_type: str = "text/html; charset=utf-8"
    headers: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def redirect(cls, location: str) -> "Response":
        return cls(status=303, body="", headers={"Location": location})

    @classmethod
    def json(cls, payload: object) -> "Response":
        return cls(
            body=json.dumps(payload, indent=1, sort_keys=True),
            content_type="application/json",
        )

    @classmethod
    def json_text(cls, text: str) -> "Response":
        return cls(body=text, content_type="application/json")

    @classmethod
    def not_found(cls, message: str = "not found") -> "Response":
        return cls(status=404, body=pages.H.error_page("Not found", message))


EXAMPLES = ("luminance_fig1", "luminance_fig3", "infopad")

#: every fixed route `_dispatch` knows — used to normalize metric labels
#: so an attacker probing random paths cannot mint unbounded label sets
KNOWN_ROUTES = frozenset(
    {
        "/", "/login", "/password", "/menu", "/library", "/cell",
        "/cell/save", "/design", "/design/analysis", "/design/new",
        "/design/load_example", "/define", "/sweep", "/sweep/job",
        "/sweep/result", "/sweep/cancel", "/export/design",
        "/export/library", "/api/library.json", "/api/model",
        "/api/design", "/agent/estimate", "/api/ping", "/doc/models",
        "/tutorial", "/help", "/metrics", "/status", "/trace", "/profile",
        "/registry", "/healthz", "/api/registry/catalog.json",
        "/api/registry/artifact", "/api/registry/publish",
        "/api/registry/sync", "/fleet", "/debug/flight", "/history",
        "/api/history/query",
    }
)

#: /healthz states, worst last; the numeric code is the
#: ``powerplay_health_state`` gauge value
HEALTH_STATES = ("ok", "degraded", "failing")


def route_label(route: str) -> str:
    """Collapse a request path to a bounded metric label."""
    if route in KNOWN_ROUTES:
        return route
    if route.startswith("/doc/cell/"):
        return "/doc/cell/:name"
    return "(unmatched)"


#: gauge code -> state word, for the /status dashboard
_CIRCUIT_WORDS = {code: word for word, code in CIRCUIT_STATE_CODES.items()}


def _build_example(name: str) -> Design:
    if name == "luminance_fig1":
        return build_figure1_design()
    if name == "luminance_fig3":
        return build_figure3_design()
    if name == "infopad":
        return build_infopad()
    raise WebError(f"unknown example {name!r}")


class Application:
    """PowerPlay server state + request dispatch."""

    def __init__(
        self,
        state_dir: Path,
        server_name: str = "powerplay",
        telemetry: bool = True,
        backend=None,
        worker_index: Optional[int] = None,
        worker_count: int = 1,
    ):
        self.server_name = server_name
        #: one durable-state backend shared by every store — ``backend``
        #: is a kind name ("file"/"sqlite"), an open StateBackend, or
        #: None for the historical file layout
        self.state_backend = open_backend(backend, Path(state_dir))
        #: pre-fork worker identity (None/1 when serving single-process)
        self.worker_index = worker_index
        self.worker_count = max(1, int(worker_count))
        self.users = UserStore(Path(state_dir), backend=self.state_backend)
        #: login tokens for password-protected users (in-memory; a
        #: restart simply requires logging in again)
        self._tokens: Dict[str, str] = {}
        self._tokens_lock = threading.Lock()
        #: per-user request serialization — the transport is threaded
        #: but a user's session (designs, defaults, user library) is
        #: mutable shared state; requests naming the same user run one
        #: at a time, requests for different users run in parallel.
        #: Bounded by the (validated) user population, like the state
        #: files themselves.
        self._user_locks: Dict[str, threading.RLock] = {}
        self._user_locks_guard = threading.Lock()
        #: memoized evaluate_power/area/timing for sheet views
        self.eval_cache = DEFAULT_CACHE
        #: persistent sweep jobs — same layout the CLI uses, so a job
        #: submitted in the browser can be resumed with `repro sweep
        #: --resume` against the same state directory (and vice versa)
        self.jobs = JobStore(
            Path(state_dir) / "jobs",
            backend=self.state_backend,
            worker_index=worker_index,
            worker_count=self.worker_count,
        )
        self._job_threads: Dict[str, threading.Thread] = {}
        self._job_threads_lock = threading.Lock()
        #: the federated model registry: a digest-verified local mirror
        #: plus publish/ingest.  (`self.registry` below is the *metrics*
        #: registry — a historical name this attribute must not shadow.)
        self.models_registry = ModelRegistry(
            MirrorStore(
                Path(state_dir) / "registry", backend=self.state_backend
            ),
            publisher=server_name,
        )
        #: optional resolution-chain bookkeeping: federation wiring
        #: (tests, benchmarks, `federate`) installs a RegistryResolver
        #: here so /healthz and /status can report recent outcomes
        self.model_resolver: Optional[RegistryResolver] = None
        self.libraries: List[Library] = [
            build_default_library(),
            build_system_library(),
            build_macro_library(),
        ]
        # -- observability ----------------------------------------------
        self.started_at = time.time()
        self.registry = get_registry()
        self._access = get_logger("web.access")
        #: per-application request IDs — echoed as X-PowerPlay-Request
        #: on every response and cited in the access log, so a log line,
        #: a trace, and a client-side error join on one key
        self._request_ids = itertools.count(1)
        self._requests = self.registry.counter(
            "powerplay_http_requests_total",
            "HTTP requests routed, by method and (normalized) route.",
            ("method", "route"),
        )
        self._responses = self.registry.counter(
            "powerplay_http_responses_total",
            "HTTP responses, by status class (2xx/3xx/4xx/5xx).",
            ("status_class",),
        )
        self._latency = self.registry.histogram(
            "powerplay_http_request_seconds",
            "Request handling latency in seconds, per route.",
            ("route",),
        )
        self._uptime = self.registry.gauge(
            "powerplay_uptime_seconds",
            "Seconds since this Application was constructed.",
        )
        # pre-register the resilience/session families so `/metrics` is
        # complete (HELP/TYPE lines) even before the first degradation
        _metric_retries()
        _metric_circuit_state()
        _metric_circuit_transitions()
        _metric_cache()
        _metric_sessions()
        _metric_ops()
        _metric_integrity()
        _metric_sync()
        self.registry.counter(  # mirrors registry.resolve._metric_resolutions
            "powerplay_registry_resolutions_total",
            "Model resolutions through the registry chain, by outcome "
            "(local, live, stale, mirror, failed).",
            ("outcome",),
        )
        self._health_gauge = self.registry.gauge(
            "powerplay_health_state",
            "Server health: 0=ok, 1=degraded, 2=failing (the /healthz "
            "verdict, continuously exported).",
        )
        self.registry.counter(
            "powerplay_faults_injected_total",
            "Faults injected by FaultPlan, by kind.",
            ("kind",),  # declared here too: importing .faults would cycle
        )
        # -- fleet telemetry plane ---------------------------------------
        #: SLO burn-rate tracker + flight recorder; ``telemetry=False``
        #: strips both so bench_fleet.py can measure their exact cost
        self.slo_tracker: Optional[SLOTracker] = (
            SLOTracker() if telemetry else None
        )
        self.recorder: Optional[FlightRecorder] = (
            FlightRecorder(snapshot_dir=Path(state_dir) / "flight")
            if telemetry
            else None
        )
        if telemetry:
            obs_recorder.install_trace_hook()
        #: SLO evaluation is rate-limited on the request path (the
        #: ops endpoints always evaluate fresh via force=True)
        self._slo_eval_interval_s = 1.0
        self._slo_last_eval = float("-inf")
        self._slo_guard = threading.Lock()
        #: peer scraper — installed by :meth:`configure_fleet`; /fleet
        #: without one shows just this node
        self.fleet: Optional[obs_fleet.FleetScraper] = None
        # -- durable telemetry history -----------------------------------
        #: installed by :meth:`attach_history`; without it /history and
        #: /api/history/query answer 404 and nothing touches the disk
        self.history: Optional[obs_history.HistoryStore] = None
        self.history_recorder: Optional[obs_history.HistoryRecorder] = None
        #: fleet peer summaries ride along every Nth history round (a
        #: full scrape per 5s tick would hammer the peers); the latest
        #: summary is cached and re-emitted so rounds stay self-contained
        self._history_fleet_every = 12
        self._history_rounds = 0
        self._history_fleet_state: Dict[str, Dict[str, object]] = {}

    # -- lookups ------------------------------------------------------------

    def visible_libraries(self, user: str) -> List[Library]:
        session = self.users.session(user)
        result = list(self.libraries)
        if len(session.user_library):
            result.append(session.user_library)
        return result

    def find_entry(self, user: str, name: str) -> LibraryEntry:
        for library in reversed(self.visible_libraries(user)):
            if name in library:
                return library.get(name)
        raise WebError(f"no library entry named {name!r}")

    def find_entry_anywhere(self, name: str) -> LibraryEntry:
        """Entry lookup for the unauthenticated API (shared libraries)."""
        for library in self.libraries:
            if name in library:
                return library.get(name)
        raise WebError(f"no shared library entry named {name!r}")

    # -- concurrency ----------------------------------------------------------

    def user_lock(self, user: str) -> threading.RLock:
        """The lock serializing requests for one (validated) username."""
        with self._user_locks_guard:
            lock = self._user_locks.get(user)
            if lock is None:
                lock = self._user_locks[user] = threading.RLock()
            return lock

    # -- dispatch --------------------------------------------------------------

    def handle(
        self,
        method: str,
        path: str,
        form: Optional[Mapping[str, str]] = None,
        headers: Optional[Mapping[str, str]] = None,
    ) -> Response:
        """Route one request.  ``path`` may include a query string.

        Every request — including the error paths — is measured: a
        per-route request counter, a status-class counter, a latency
        histogram sample, and one structured access-log line citing the
        request ID echoed in the ``X-PowerPlay-Request`` header.

        ``headers`` (the request headers, when a transport supplies
        them) feeds cross-server tracing: a valid ``X-PowerPlay-Trace``
        makes this request's span a child of the remote caller's span,
        and the finished span is returned in ``X-PowerPlay-Span`` so
        the caller can graft it into its own trace.  A malformed or
        oversized trace header is ignored — never an error.
        """
        started = time.perf_counter()
        parsed = urllib.parse.urlsplit(path)
        route = parsed.path.rstrip("/") or "/"
        query = {
            key: values[-1]
            for key, values in urllib.parse.parse_qs(parsed.query).items()
        }
        data: Dict[str, str] = dict(query)
        data.update(form or {})
        label = route_label(route)
        request_id = f"req-{next(self._request_ids):08x}"
        context = propagate.extract_context(headers)
        handled: Optional[Span] = None
        with traced(
            "http_request",
            context,
            method=method.upper(),
            route=label,
            request=request_id,
        ) as sp:
            if isinstance(sp, Span):
                handled = sp
            try:
                response = self._dispatch_serialized(
                    method.upper(), route, data
                )
            except (WebError, SessionError) as exc:
                response = Response(
                    status=400,
                    body=pages.H.error_page("PowerPlay error", str(exc)),
                )
            except PowerPlayError as exc:
                response = Response(
                    status=422,
                    body=pages.H.error_page("Model error", str(exc)),
                )
            except Exception:  # noqa: BLE001 - last-resort: page, no traceback
                response = Response(
                    status=500,
                    body=pages.H.error_page(
                        "Server error",
                        "PowerPlay hit an internal error handling this "
                        "request; the details have been kept server-side. "
                        "Please retry or start over from the front page.",
                    ),
                )
        duration = time.perf_counter() - started
        response.headers.setdefault(propagate.REQUEST_HEADER, request_id)
        if context is not None and handled is not None:
            # the caller asked for this span: hand the finished subtree
            # back so the federated trace is one tree, not two halves
            encoded = propagate.encode_span_header(handled)
            if encoded:
                response.headers.setdefault(propagate.SPAN_HEADER, encoded)
        self._requests.inc(method=method.upper(), route=label)
        self._responses.inc(status_class=f"{response.status // 100}xx")
        self._latency.observe(duration, route=label)
        if self.recorder is not None:
            # the tracer's root hook stashed this request's finished
            # span tree (when tracing is on); consume it either way so
            # the stash can never leak across requests on a thread
            root = obs_recorder.consume_root()
            alerts: Tuple[str, ...] = ()
            if self.slo_tracker is not None:
                self._maybe_evaluate_slos()
                alerts = tuple(
                    name
                    for name, state in sorted(
                        self.slo_tracker.states().items()
                    )
                    if state != "ok"
                )
            self.recorder.record(
                route=label,
                method=method.upper(),
                status=response.status,
                duration_ms=duration * 1e3,
                request_id=request_id,
                trace_id=root.trace_id if root is not None else "",
                user=data.get("user", ""),
                spans=root.to_payload() if root is not None else None,
                alerts=alerts,
            )
        self._access.info(
            "request",
            method=method.upper(),
            path=parsed.path,
            route=label,
            status=response.status,
            duration_ms=round(duration * 1e3, 3),
            user=data.get("user", ""),
            request=request_id,
        )
        return response

    def _dispatch_serialized(
        self, method: str, route: str, data: Dict[str, str]
    ) -> Response:
        """Route one request, holding the named user's lock if any.

        Requests that carry a (syntactically valid) ``user`` are
        serialized per user: the handlers below read-modify-write the
        session's designs, defaults and library, and without this two
        concurrent PLAYs could interleave scope edits with evaluation,
        or two saves could race a check-then-add.  Requests naming an
        invalid user skip the lock — they fail in validation anyway.
        """
        user = data.get("user", "")
        try:
            user = validate_username(user) if user else ""
        except SessionError:
            user = ""
        if user:
            with self.user_lock(user):
                return self._dispatch(method, route, data)
        return self._dispatch(method, route, data)

    def _dispatch(self, method: str, route: str, data: Dict[str, str]) -> Response:
        if route == "/":
            return Response(body=pages.login_page())
        if route == "/login" and method == "POST":
            return self._login(data)
        if route == "/password" and method == "POST":
            return self._set_password(data)
        if route == "/menu":
            return self._menu(data)
        if route == "/library":
            return self._library(data)
        if route == "/cell" and method == "GET":
            return self._cell_form(data)
        if route == "/cell" and method == "POST":
            return self._cell_compute(data)
        if route == "/cell/save" and method == "POST":
            return self._cell_save(data)
        if route == "/design" and method == "GET":
            return self._design_sheet(data)
        if route == "/design/analysis" and method == "GET":
            return self._design_analysis(data)
        if route == "/design" and method == "POST":
            return self._design_play(data)
        if route == "/design/new" and method == "POST":
            return self._design_new(data)
        if route == "/design/load_example" and method == "POST":
            return self._design_load_example(data)
        if route == "/define" and method == "GET":
            user = self._user(data)
            return Response(
                body=pages.define_model_page(user, auth=self._auth_token(user))
            )
        if route == "/define" and method == "POST":
            return self._define_model(data)
        if route == "/sweep" and method == "GET":
            return self._sweep_form(data)
        if route == "/sweep" and method == "POST":
            return self._sweep_submit(data)
        if route == "/sweep/job" and method == "GET":
            return self._sweep_job_status(data)
        if route == "/sweep/result" and method == "GET":
            return self._sweep_result(data)
        if route == "/sweep/cancel" and method == "POST":
            return self._sweep_cancel(data)
        if route == "/export/design":
            return self._export_design(data)
        if route == "/export/library":
            return self._export_library(data)
        if route == "/api/library.json":
            return self._api_library(data)
        if route == "/api/model":
            return self._api_model(data)
        if route == "/api/design":
            return self._export_design(data)
        if route == "/agent/estimate":
            return self._agent_estimate(data)
        if route == "/api/ping":
            return Response.json({"server": self.server_name, "protocol": "powerplay/1"})
        if route == "/metrics":
            return self._metrics_exposition()
        if route == "/status":
            return self._status_page()
        if route == "/healthz":
            return self._healthz()
        if route == "/fleet":
            return self._fleet_endpoint(data)
        if route == "/history":
            return self._history_endpoint(data)
        if route == "/api/history/query":
            return self._api_history_query(data)
        if route == "/debug/flight":
            return self._flight_endpoint(data)
        if route == "/registry":
            return self._registry_page()
        if route == "/api/registry/catalog.json":
            return self._api_registry_catalog()
        if route == "/api/registry/artifact":
            return self._api_registry_artifact(data)
        if route == "/api/registry/publish" and method == "POST":
            return self._api_registry_publish(data)
        if route == "/api/registry/sync" and method == "POST":
            return self._api_registry_sync(data)
        if route == "/trace":
            return self._trace_endpoint(data)
        if route == "/profile":
            return self._profile_endpoint(data)
        if route.startswith("/doc/cell/"):
            return self._doc_cell(route.rsplit("/", 1)[-1], data)
        if route == "/doc/models":
            return Response(body=pages.help_page())
        if route == "/tutorial":
            return Response(body=pages.tutorial_page())
        if route == "/help":
            return Response(body=pages.help_page())
        return Response.not_found(f"no route for {method} {route}")

    # -- helpers -----------------------------------------------------------

    def _user(self, data: Mapping[str, str]) -> str:
        """Validate the username AND enforce password protection.

        "PowerPlay can provide password-restricted access" — users who
        set a password get a login token, carried in every URL/form
        (cookie-less, as a 1996 CGI application would).  Users without
        a password authenticate by name alone, the paper's default.
        """
        user = validate_username(data.get("user", ""))
        session = self.users.session(user)
        if session.has_password:
            token = data.get("auth", "")
            with self._tokens_lock:
                issued = self._tokens.get(user)
            if not token or issued != token:
                raise SessionError(
                    f"user {user!r} is password-protected — "
                    "log in from the front page"
                )
        return user

    def _auth_token(self, user: str) -> str:
        """The credential suffix value for pages (empty if unprotected)."""
        if self.users.session(user).has_password:
            with self._tokens_lock:
                return self._tokens.get(user, "")
        return ""

    def _param_values(self, data: Mapping[str, str]) -> Dict[str, float]:
        values: Dict[str, float] = {}
        for key, text in data.items():
            if key.startswith("p:"):
                name = key[2:]
                values[name] = parse_float(text)
        return values

    # -- pages ----------------------------------------------------------------

    def _login(self, data: Mapping[str, str]) -> Response:
        try:
            user = validate_username(data.get("user", ""))
        except SessionError as exc:
            return Response(status=400, body=pages.login_page(str(exc)))
        session = self.users.session(user)  # create state on first visit
        if session.has_password:
            if not session.check_password(data.get("password", "")):
                return Response(
                    status=403,
                    body=pages.login_page(
                        f"wrong password for user {user!r}"
                    ),
                )
            token = secrets.token_hex(16)
            with self._tokens_lock:
                self._tokens[user] = token
            return Response.redirect(f"/menu?user={user}&auth={token}")
        return Response.redirect(f"/menu?user={user}")

    def _set_password(self, data: Mapping[str, str]) -> Response:
        user = self._user(data)
        session = self.users.session(user)
        session.set_password(data.get("password", ""))
        token = secrets.token_hex(16)
        with self._tokens_lock:
            self._tokens[user] = token
        return Response.redirect(f"/menu?user={user}&auth={token}")

    def _menu(self, data: Mapping[str, str]) -> Response:
        user = self._user(data)
        session = self.users.session(user)
        return Response(
            body=pages.menu_page(
                user,
                self.visible_libraries(user),
                sorted(session.designs),
                EXAMPLES,
                auth=self._auth_token(user),
            )
        )

    def _library(self, data: Mapping[str, str]) -> Response:
        user = self._user(data)
        libraries = self.visible_libraries(user)
        wanted = data.get("library")
        if wanted:
            libraries = [lib for lib in libraries if lib.name == wanted]
            if not libraries:
                raise WebError(f"no library named {wanted!r}")
        return Response(
            body=pages.library_page(user, libraries, auth=self._auth_token(user))
        )

    def _cell_form(self, data: Mapping[str, str]) -> Response:
        user = self._user(data)
        name = data.get("name", "")
        entry = self.find_entry(user, name)
        session = self.users.session(user)
        values = session.defaults_for(name)
        return Response(
            body=pages.cell_form_page(
                user, entry, values, designs=sorted(session.designs),
                auth=self._auth_token(user),
            )
        )

    def _compute_result(
        self, entry: LibraryEntry, values: Dict[str, float]
    ) -> Dict[str, str]:
        # declared defaults first, posted values on top — a partial form
        # (or a scripted client) still evaluates
        env: Dict[str, float] = {}
        for parameter in entry.models.parameters:
            if isinstance(parameter.default, (int, float)):
                env[parameter.name] = float(parameter.default)
        env.update(values)
        env.setdefault("VDD", 1.5)
        env.setdefault("f", 2e6)
        power_model = entry.models.power
        result: Dict[str, str] = {}
        power = power_model.power(env)
        result["Power"] = format_eng(power, "W")
        if env.get("f", 0) > 0:
            result["Energy / access"] = format_eng(
                power_model.energy_per_access(env), "J"
            )
        if isinstance(power_model, TemplatePowerModel):
            result["Effective capacitance"] = format_quantity(
                power_model.effective_capacitance(env), "F"
            )
        if entry.models.area is not None:
            result["Active area"] = format_quantity(
                entry.models.area.area(env) * 1e12, "um2"
            )
        if entry.models.timing is not None:
            delay = entry.models.timing.delay(env)
            result["Delay"] = format_quantity(delay, "s")
            result["Max frequency"] = format_quantity(1.0 / delay, "Hz")
        return result

    def _cell_compute(self, data: Mapping[str, str]) -> Response:
        user = self._user(data)
        name = data.get("name", "")
        entry = self.find_entry(user, name)
        session = self.users.session(user)
        values = self._param_values(data)
        try:
            result = self._compute_result(entry, values)
            error = ""
        except PowerPlayError as exc:
            result = None
            error = str(exc)
        if result:
            session.remember_defaults(name, values)
        return Response(
            body=pages.cell_form_page(
                user,
                entry,
                values,
                result=result,
                designs=sorted(session.designs),
                error=error,
                auth=self._auth_token(user),
            )
        )

    def _cell_save(self, data: Mapping[str, str]) -> Response:
        user = self._user(data)
        name = data.get("name", "")
        entry = self.find_entry(user, name)
        session = self.users.session(user)
        design_name = data.get("design", "")
        design = session.design(design_name)
        row_name = data.get("row") or name
        if row_name in design:
            raise WebError(
                f"design {design_name!r} already has a row {row_name!r}"
            )
        values = self._param_values(data)
        design.add(row_name, entry.models, params=values, doc=entry.doc)
        session.put_design(design)
        return Response.redirect(
            f"/design?{pages.cred(user, self._auth_token(user))}"
            f"&name={design_name}"
        )

    def _resolve_design(
        self, session, name: str, path: str
    ) -> Tuple[Design, str]:
        design = session.design(name)
        if path:
            for segment in path.split("/"):
                row = design.row(segment)
                if not isinstance(row, SubDesign):
                    raise WebError(f"row {segment!r} is not a sub-design")
                design = row.design
        return design, path

    def _design_sheet(self, data: Mapping[str, str]) -> Response:
        user = self._user(data)
        session = self.users.session(user)
        name = data.get("name", "")
        design, path = self._resolve_design(session, name, data.get("path", ""))
        report = cached_evaluate_power(design, cache=self.eval_cache)
        return Response(
            body=pages.design_sheet_page(
                user, design, report, name, path,
                auth=self._auth_token(user),
            )
        )

    def _design_analysis(self, data: Mapping[str, str]) -> Response:
        user = self._user(data)
        session = self.users.session(user)
        name = data.get("name", "")
        design, path = self._resolve_design(session, name, data.get("path", ""))
        area = cached_evaluate_area(design, cache=self.eval_cache)
        timing = cached_evaluate_timing(design, cache=self.eval_cache)
        return Response(
            body=pages.design_analysis_page(
                user, design, area, timing, name, path,
                auth=self._auth_token(user),
            )
        )

    def _design_play(self, data: Mapping[str, str]) -> Response:
        user = self._user(data)
        session = self.users.session(user)
        name = data.get("name", "")
        design, path = self._resolve_design(session, name, data.get("path", ""))
        error = ""
        try:
            for key, text in data.items():
                if key.startswith("g:"):
                    design.scope.set(key[2:], text)
                elif key.startswith("p:"):
                    _prefix, row_name, parameter = key.split(":", 2)
                    design.row(row_name).set(parameter, text)
        except PowerPlayError as exc:
            error = str(exc)
        report = cached_evaluate_power(design, cache=self.eval_cache)
        session.put_design(session.design(name))  # persist top-level design
        return Response(
            body=pages.design_sheet_page(
                user, design, report, name, path, error,
                auth=self._auth_token(user),
            )
        )

    def _design_new(self, data: Mapping[str, str]) -> Response:
        user = self._user(data)
        session = self.users.session(user)
        name = (data.get("name") or "").strip()
        if not name:
            raise WebError("design name cannot be empty")
        if name in session.designs:
            raise WebError(f"you already have a design named {name!r}")
        design = Design(name, doc=f"created by {user}")
        design.scope.set("VDD", 1.5)
        design.scope.set("f", 2e6)
        session.put_design(design)
        return Response.redirect(
            f"/design?{pages.cred(user, self._auth_token(user))}&name={name}"
        )

    def _design_load_example(self, data: Mapping[str, str]) -> Response:
        user = self._user(data)
        session = self.users.session(user)
        example = data.get("example", "")
        if example not in EXAMPLES:
            raise WebError(f"unknown example {example!r}")
        design = _build_example(example)
        # deep-copy through the payload so each user owns their instance
        design = design_from_payload(design_to_payload(design))
        base = design.name
        suffix = 0
        while design.name in session.designs:
            suffix += 1
            design.name = f"{base}_{suffix}"
        session.put_design(design)
        return Response.redirect(
            f"/design?{pages.cred(user, self._auth_token(user))}"
            f"&name={design.name}"
        )

    def _define_model(self, data: Mapping[str, str]) -> Response:
        user = self._user(data)
        session = self.users.session(user)
        name = (data.get("name") or "").strip()
        equation = (data.get("equation") or "").strip()
        if not name or not name.replace("_", "a").isalnum():
            return Response(
                body=pages.define_model_page(
                    user, error=f"bad model name {name!r}",
                    auth=self._auth_token(user),
                )
            )
        if name in session.user_library:
            return Response(
                body=pages.define_model_page(
                    user, error=f"you already defined a model named {name!r}",
                    auth=self._auth_token(user),
                )
            )
        parameters: List[Parameter] = []
        try:
            for pair in (data.get("parameters") or "").split():
                if "=" not in pair:
                    raise WebError(
                        f"parameter {pair!r} must look like name=default"
                    )
                pname, default = pair.split("=", 1)
                parameters.append(Parameter(pname, parse_float(default)))
            model = ExpressionPowerModel(
                name, equation, parameters, doc=data.get("doc", "")
            )
            area_model = None
            timing_model = None
            area_equation = (data.get("area_equation") or "").strip()
            delay_equation = (data.get("delay_equation") or "").strip()
            if area_equation:
                area_model = ExpressionAreaModel(
                    name + "_area", area_equation, parameters
                )
            if delay_equation:
                timing_model = ExpressionTimingModel(
                    name + "_delay", delay_equation, parameters
                )
            # probe-evaluate with defaults so bad equations fail here,
            # on the form, not later inside a design
            probe = {p.name: float(p.default) for p in parameters}
            probe.setdefault("VDD", 1.5)
            probe.setdefault("f", 2e6)
            model.power(probe)
            if area_model is not None:
                area_model.area(probe)
            if timing_model is not None:
                timing_model.delay(probe)
        except PowerPlayError as exc:
            return Response(
                body=pages.define_model_page(
                    user, error=str(exc), auth=self._auth_token(user)
                )
            )
        entry = LibraryEntry(
            name,
            ModelSet(power=model, area=area_model, timing=timing_model),
            category=data.get("category", "other"),
            doc=data.get("doc", ""),
            links=(f"/doc/cell/{name}",),
            proprietary=data.get("proprietary", "no") == "yes",
        )
        session.user_library.add(entry)
        session.save()
        return Response(
            body=pages.define_model_page(
                user, saved=name, auth=self._auth_token(user)
            )
        )

    # -- sweep jobs ----------------------------------------------------------

    def _job_summaries(self, user: str) -> List[dict]:
        """The listed user's jobs, newest first."""
        return [
            job.summary()
            for job in reversed(self.jobs.list_jobs())
            if job.owner == user
        ]

    def _user_job(self, user: str, data: Mapping[str, str]):
        """Fetch a job by id and enforce ownership."""
        job = self.jobs.job(data.get("job", ""))
        if job.owner and job.owner != user:
            raise WebError(
                f"job {job.job_id!r} belongs to user {job.owner!r}"
            )
        return job

    def _start_job_thread(self, job) -> None:
        """Run a sweep job on a daemon thread.

        The job object is its own coordination point: ``run_job`` moves
        it through running -> done/failed/cancelled and checkpoints
        every chunk, so the thread needs no channel back to the request
        that spawned it — status pages just reload the job.
        """

        def runner() -> None:
            try:
                run_job(job)
            except PowerPlayError:
                pass  # already recorded on the job as state=failed
            except Exception:  # noqa: BLE001 - keep the server alive
                get_logger("web.sweep").error(
                    "job runner crashed", job=job.job_id
                )

        thread = threading.Thread(
            target=runner, name=f"sweep-{job.job_id}", daemon=True
        )
        with self._job_threads_lock:
            self._job_threads[job.job_id] = thread
        thread.start()

    @staticmethod
    def _sweep_lines(data: Mapping[str, str], key: str) -> List[str]:
        return [
            line.strip()
            for line in (data.get(key) or "").splitlines()
            if line.strip()
        ]

    @staticmethod
    def _sweep_int(data: Mapping[str, str], key: str, default: int) -> int:
        text = (data.get(key) or "").strip()
        if not text:
            return default
        try:
            return int(text)
        except ValueError:
            raise ExploreError(
                f"{key} must be a whole number, got {text!r}"
            ) from None

    @staticmethod
    def _sweep_float(
        data: Mapping[str, str], key: str, default: float
    ) -> float:
        text = (data.get(key) or "").strip()
        if not text:
            return default
        try:
            return float(text)
        except ValueError:
            raise ExploreError(
                f"{key} must be a number, got {text!r}"
            ) from None

    def _build_job(self, user: str, session, data: Mapping[str, str]):
        """Validate the sweep form and persist a pending job.

        Everything user-typed funnels through the same parsers the CLI
        uses; every malformed field raises :class:`ExploreError`, which
        the submit handler turns into a re-rendered form — never a 500.
        """
        name = data.get("design", "")
        if name.startswith("example:"):
            design = _build_example(name[len("example:"):])
        elif name:
            design = session.design(name)
        else:
            raise ExploreError("pick a design to sweep")
        axes = [parse_axis_spec(spec)
                for spec in self._sweep_lines(data, "axes")]
        if not axes:
            raise ExploreError(
                "give at least one axis (e.g. VDD=1.1:3.3:0.1)"
            )
        coupled = [coupled_from_spec(spec)
                   for spec in self._sweep_lines(data, "couple")]
        derived = []
        for spec in self._sweep_lines(data, "derive"):
            if "=" not in spec:
                raise ExploreError(
                    f"derived objective {spec!r} must look like "
                    "name=expression"
                )
            dname, _, source = spec.partition("=")
            derived.append(DerivedObjective(dname.strip(), source.strip()))
        objectives = tuple(
            part.strip()
            for part in (data.get("objectives") or "power").split(",")
            if part.strip()
        ) or ("power",)
        for objective in objectives:
            if objective not in ("power", "area", "delay"):
                raise ExploreError(
                    f"unknown objective {objective!r}: choose from "
                    "power, area, delay (or add it under 'derive')"
                )
        surrogate = None
        if data.get("surrogate", "no") == "yes":
            # JobError subclasses ExploreError, so a bad fraction or
            # basis re-renders the form like any other field mistake
            surrogate = coerce_surrogate(
                {
                    "train_frac": self._sweep_float(
                        data, "train_frac", 0.01
                    ),
                    "train_seed": self._sweep_int(
                        data, "train_seed", 1996
                    ),
                    "verify_top": self._sweep_int(
                        data, "verify_top", 64
                    ),
                    "max_error": self._sweep_float(
                        data, "max_error", 0.0
                    ),
                    "basis": (data.get("basis") or "auto").strip(),
                }
            )
        point_cap = self._sweep_int(data, "point_cap", 0)
        lazy = surrogate is not None
        if point_cap > 0:
            space = ParameterSpace(
                axes, coupled, point_cap=point_cap, lazy=lazy
            )
        else:
            space = ParameterSpace(axes, coupled, lazy=lazy)
        return self.jobs.create(
            design,
            space,
            objectives=objectives,
            derived=derived,
            owner=user,
            workers=self._sweep_int(data, "workers", 2),
            mode=data.get("mode", "thread"),
            chunk_size=self._sweep_int(data, "chunk_size", 16),
            prune=data.get("prune", "no") == "yes",
            surrogate=surrogate,
        )

    def _sweep_form(self, data: Mapping[str, str]) -> Response:
        user = self._user(data)
        session = self.users.session(user)
        return Response(
            body=pages.sweep_form_page(
                user,
                sorted(session.designs),
                EXAMPLES,
                jobs=self._job_summaries(user),
                auth=self._auth_token(user),
            )
        )

    def _sweep_submit(self, data: Mapping[str, str]) -> Response:
        user = self._user(data)
        session = self.users.session(user)
        try:
            job = self._build_job(user, session, data)
        except ExploreError as exc:
            # a typo'd range or an exploding grid is the user's input,
            # not a server fault: 400 with the form refilled, never 500
            return Response(
                status=400,
                body=pages.sweep_form_page(
                    user,
                    sorted(session.designs),
                    EXAMPLES,
                    jobs=self._job_summaries(user),
                    values=data,
                    error=str(exc),
                    auth=self._auth_token(user),
                ),
            )
        self._start_job_thread(job)
        return Response.redirect(
            f"/sweep/job?{pages.cred(user, self._auth_token(user))}"
            f"&job={job.job_id}"
        )

    def _sweep_job_status(self, data: Mapping[str, str]) -> Response:
        user = self._user(data)
        job = self._user_job(user, data)
        return Response(
            body=pages.sweep_job_page(
                user, job.summary(), auth=self._auth_token(user)
            )
        )

    def _sweep_result(self, data: Mapping[str, str]) -> Response:
        user = self._user(data)
        job = self._user_job(user, data)
        if job.state != "done":
            raise WebError(
                f"job {job.job_id!r} is {job.state} "
                f"({job.done_points}/{job.total_points} points); results "
                "are served once it is done"
            )
        rows = job.result_rows()
        axis_names = list(job.space.axis_names)
        objective_names = job.objective_names
        fmt = data.get("fmt", "")
        if fmt == "csv":
            return Response(
                body=export_csv(rows, axis_names, objective_names),
                content_type="text/csv; charset=utf-8",
            )
        if fmt == "json":
            return Response.json_text(
                export_json(
                    rows,
                    axis_names,
                    objective_names,
                    meta={"job": job.job_id, "design": job.design_name},
                )
            )
        if fmt:
            raise WebError(f"unknown results format {fmt!r}")
        front = pareto_rows(rows, objective_names)
        sensitivity = sensitivity_ranking(
            rows, axis_names, objective=objective_names[0]
        )
        surrogate = None
        if job.surrogate is not None:
            from ..surrogate.runner import surrogate_report

            surrogate = surrogate_report(job).to_payload()
        return Response(
            body=pages.sweep_results_page(
                user,
                job.summary(),
                axis_names,
                objective_names,
                front,
                sensitivity,
                total_rows=len(rows),
                auth=self._auth_token(user),
                surrogate=surrogate,
            )
        )

    def _sweep_cancel(self, data: Mapping[str, str]) -> Response:
        user = self._user(data)
        job = self._user_job(user, data)
        job.request_cancel()
        return Response.redirect(
            f"/sweep/job?{pages.cred(user, self._auth_token(user))}"
            f"&job={job.job_id}"
        )

    # -- observability endpoints --------------------------------------------

    @property
    def uptime_seconds(self) -> float:
        return time.time() - self.started_at

    def _metrics_exposition(self) -> Response:
        """``GET /metrics`` — Prometheus text format, curl-able."""
        self._uptime.set(self.uptime_seconds)
        obs_process.refresh_process_metrics(self.registry)
        self._maybe_evaluate_slos(force=True)
        return Response(
            body=self.registry.render(),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    # -- fleet telemetry plane ----------------------------------------------

    def _maybe_evaluate_slos(self, force: bool = False):
        """Evaluate SLOs (rate-limited on the hot path) and react.

        Returns the fresh statuses, or ``None`` when the rate limiter
        skipped this call.  Any SLO *transitioning into* ``page``
        forces a flight-recorder snapshot — that file is the first
        thing a responder opens, so it bypasses snapshot rate limits.
        """
        if self.slo_tracker is None:
            return None
        now = time.monotonic()
        with self._slo_guard:
            if (
                not force
                and now - self._slo_last_eval < self._slo_eval_interval_s
            ):
                return None
            self._slo_last_eval = now
        statuses = self.slo_tracker.evaluate()
        paged = [
            status
            for status in statuses
            if status.changed and status.state == "page"
        ]
        if paged and self.recorder is not None:
            self.recorder.snapshot(
                reason="SLO page: "
                + ", ".join(status.slo.name for status in paged),
                trigger="slo_page",
                slo_payload=SLOTracker.payload(statuses),
                force=True,
            )
        return statuses

    def configure_fleet(
        self, peers: Sequence[Tuple[str, str]], timeout: float = 5.0
    ) -> obs_fleet.FleetScraper:
        """Install the peer scraper behind ``/fleet``.

        ``peers`` is ``[(name, base_url), ...]``; this server always
        appears as a local node (no self-scrape over HTTP).
        """
        self.fleet = obs_fleet.FleetScraper(
            peers,
            timeout=timeout,
            local=self._local_fleet_sample,
            local_name=self.server_name,
        )
        return self.fleet

    def _local_fleet_sample(self) -> Tuple[dict, Dict[str, dict]]:
        """(health payload, metrics state) for this very server."""
        self._uptime.set(self.uptime_seconds)
        obs_process.refresh_process_metrics(self.registry)
        return self.health(), self.registry.export_state()

    def _fleet_endpoint(self, data: Mapping[str, str]) -> Response:
        """``GET /fleet`` — per-node and aggregate fleet telemetry.

        ``?fmt=json`` returns the canonical (arrival-order-independent)
        aggregate payload; the default is an HTML dashboard.
        """
        scraper = self.fleet
        if scraper is None:
            scraper = obs_fleet.FleetScraper(
                (),
                local=self._local_fleet_sample,
                local_name=self.server_name,
            )
        report = scraper.scrape()
        if data.get("fmt") == "json":
            return Response.json_text(report.to_json())
        quantiles = report.latency_quantiles()
        node_rows = [
            (
                node.name,
                node.url,
                "up" if node.ok else "down",
                node.health_state,
                node.slo_state,
                node.breaker_state,
                int(node.requests_total()),
                node.error,
            )
            for node in report.nodes
        ]
        return Response(
            body=pages.fleet_page(
                self.server_name,
                report.fleet_state,
                node_rows,
                aggregate_requests=int(report.aggregate_requests_total()),
                reachable=report.reachable,
                total=len(report.nodes),
                quantiles={
                    name: (f"{value * 1e3:.2f} ms" if value else "—")
                    for name, value in quantiles.items()
                },
                skipped=report.skipped,
                duration_ms=report.duration_s * 1e3,
            )
        )

    # -- durable telemetry history -------------------------------------------

    def attach_history(
        self,
        history_dir: Path,
        interval_s: float = 5.0,
        config: Optional[obs_history.HistoryConfig] = None,
        rehydrate: bool = True,
    ) -> obs_history.HistoryRecorder:
        """Open (or create) the history store and wire the recorder.

        Rehydrates the SLO burn windows from what the store remembers
        — a paging condition from before a restart is still burning
        after it.  The recorder is *not* started here: the server
        starts the background thread, tests call ``sample_once``.
        """
        if config is None:
            config = obs_history.HistoryConfig(interval_s=interval_s)
        store = obs_history.HistoryStore(Path(history_dir), config)
        if rehydrate and self.slo_tracker is not None:
            horizon = (
                self.slo_tracker.policy.longest_s + config.interval_s
            )
            samples = store.flat_recent(time.time() - horizon)
            if samples:
                self.slo_tracker.rehydrate(samples)
        self.history = store
        self.history_recorder = obs_history.HistoryRecorder(
            store, self._history_sample, interval_s=config.interval_s,
        )
        return self.history_recorder

    def _history_sample(self) -> Dict[str, Dict[str, object]]:
        """One history round: registry state + cached fleet summaries."""
        self._uptime.set(self.uptime_seconds)
        obs_process.refresh_process_metrics(self.registry)
        self._history_rounds += 1
        if self.fleet is not None and (
            self._history_rounds % self._history_fleet_every == 1
        ):
            self._history_fleet_state = self._fleet_summary_state()
        state = self.registry.export_state()
        state.update(self._history_fleet_state)
        return state

    def _fleet_summary_state(self) -> Dict[str, Dict[str, object]]:
        """Bounded per-node summary series from one peer scrape."""
        from ..obs.metrics import _series_key
        from ..obs.slo import SLO_STATES

        if self.fleet is None:
            return {}
        try:
            report = self.fleet.scrape()
        except Exception as exc:  # noqa: BLE001 - peers must not kill sampling
            self._access.warning("history_fleet_scrape", error=repr(exc))
            return {}
        up: Dict[str, object] = {}
        requests: Dict[str, object] = {}
        slo_state: Dict[str, object] = {}
        for node in report.nodes:
            labels = {"node": node.name}
            up[_series_key("powerplay_fleet_node_up", labels)] = (
                1.0 if node.ok else 0.0
            )
            requests[
                _series_key("powerplay_fleet_node_requests_total", labels)
            ] = float(node.requests_total())
            state = node.slo_state
            slo_state[
                _series_key("powerplay_fleet_node_slo_state", labels)
            ] = float(
                SLO_STATES.index(state) if state in SLO_STATES else 0
            )
        return {
            "powerplay_fleet_node_up": {
                "kind": "gauge", "series": up,
            },
            "powerplay_fleet_node_requests_total": {
                "kind": "counter", "series": requests,
            },
            "powerplay_fleet_node_slo_state": {
                "kind": "gauge", "series": slo_state,
            },
        }

    #: the series surfaced on the /history dashboard: (family, unit)
    _HISTORY_DASHBOARD_SERIES = (
        ("powerplay_http_requests_total", "req (rate/s)"),
        ("powerplay_process_rss_bytes", "bytes"),
        ("powerplay_process_open_fds", "fds"),
        ("powerplay_process_uptime_seconds", "s"),
        ("powerplay_slo_burn_rate", "burn"),
        ("powerplay_fleet_node_up", "up"),
    )

    def _history_endpoint(self, data: Mapping[str, str]) -> Response:
        """``GET /history`` — store stats + sparklines (+ ``fmt=json``)."""
        store = self.history
        if store is None:
            return self._history_disabled(data)
        stats = store.stats()
        if data.get("fmt") == "json":
            return Response.json({
                "server": self.server_name,
                "recording": self.history_recorder is not None,
                "stats": stats,
                "series": store.series_keys(),
            })
        series_rows: List[Tuple[str, str, str, str]] = []
        for family, unit in self._HISTORY_DASHBOARD_SERIES:
            op = "rate" if family.endswith("_total") else "range"
            try:
                result = store.query(family, op=op)
            except obs_history.HistoryError:
                continue
            for entry in result.series:
                points = entry.get("points", [])
                if not points:
                    continue
                values = [value for _, value in points]
                latest = values[-1]
                series_rows.append((
                    str(entry["key"]),
                    format_eng(latest) if latest else "0",
                    unit,
                    obs_history.render_sparkline(values),
                ))
        capacity_rows: List[Tuple[str, str, str, str, str]] = []
        total_workers = 0
        try:
            report = obs_capacity.build_capacity_report(store)
            total_workers = report.total_workers
            for route in report.routes:
                latency = (
                    "—" if route.mean_latency_s is None
                    else f"{route.mean_latency_s * 1e3:.2f} ms"
                )
                capacity_rows.append((
                    route.route,
                    f"{route.rps_peak:.3f}",
                    f"{route.trend_per_hour:+.3f}",
                    latency,
                    str(route.workers),
                ))
        except (obs_history.HistoryError, ValueError):
            pass
        return Response(
            body=pages.history_page(
                self.server_name,
                stats,
                series_rows,
                capacity_rows=capacity_rows,
                total_workers=total_workers,
                recording=self.history_recorder is not None,
            )
        )

    def _api_history_query(self, data: Mapping[str, str]) -> Response:
        """``GET /api/history/query?name=&op=&since=&until=&q=``.

        Label filters arrive as ``l:<label>=<value>`` parameters — the
        same prefix convention the parameter forms use.  The answer is
        the deterministic :meth:`HistoryStore.query` JSON.
        """
        store = self.history
        if store is None:
            return self._history_disabled(data)
        name = (data.get("name") or "").strip()
        labels = {
            key[2:]: value
            for key, value in data.items()
            if key.startswith("l:") and len(key) > 2
        }
        try:
            since = float(data["since"]) if data.get("since") else None
            until = float(data["until"]) if data.get("until") else None
            q = float(data.get("q", "0.95"))
        except ValueError:
            return self._json_error(
                400, "since/until/q must be numbers"
            )
        try:
            result = store.query(
                name,
                labels=labels,
                op=data.get("op", "range"),
                since=since,
                until=until,
                q=q,
            )
        except obs_history.HistoryError as exc:
            return self._json_error(400, str(exc))
        return Response.json_text(result.to_json())

    def _history_disabled(self, data: Mapping[str, str]) -> Response:
        if data.get("fmt") == "json" or "name" in data:
            return self._json_error(
                404,
                "telemetry history is not enabled on this server "
                "(start with --history-dir)",
            )
        return Response.not_found(
            "telemetry history is not enabled on this server — "
            "start it with `repro serve --history-dir DIR`"
        )

    def _flight_endpoint(self, data: Mapping[str, str]) -> Response:
        """``GET /debug/flight`` — the live ring + snapshot inventory.

        ``?fmt=json`` returns the records; ``?limit=N`` bounds them.
        """
        if self.recorder is None:
            return Response.not_found("flight recorder disabled")
        limit: Optional[int] = None
        if data.get("limit", "").isdigit():
            limit = max(1, min(10000, int(data["limit"])))
        payload = self.recorder.to_payload(limit)
        payload["server"] = self.server_name
        if data.get("fmt") == "json":
            return Response.json(payload)
        record_rows = [
            (
                record["seq"],
                record["route"],
                record["method"],
                record["status"],
                f"{record['duration_ms']:.2f} ms",
                record.get("trace_id", ""),
                ",".join(record.get("alerts", [])),
            )
            for record in reversed(payload["records"])
        ]
        return Response(
            body=pages.flight_page(
                self.server_name,
                capacity=payload["capacity"],
                recorded_total=payload["recorded_total"],
                record_rows=record_rows,
                snapshots=payload["snapshots"],
            )
        )

    def _status_page(self) -> Response:
        """``GET /status`` — the same registry, as an HTML dashboard."""
        self._uptime.set(self.uptime_seconds)
        snapshot = self.registry.snapshot()

        def samples(name: str) -> Dict[Tuple[str, ...], float]:
            return snapshot.get(name, {})

        requests_by_route: Dict[str, float] = {}
        for (method, route), count in samples(
            "powerplay_http_requests_total"
        ).items():
            requests_by_route[route] = requests_by_route.get(route, 0) + count
        latency_count = samples("powerplay_http_request_seconds_count")
        latency_sum = samples("powerplay_http_request_seconds_sum")
        # lazy import: repro.loadgen's package __init__ pulls the load
        # driver, which imports this module back — resolve at call time
        from ..loadgen.stats import histogram_quantile

        latency_hist = self.registry.get("powerplay_http_request_seconds")

        def quantile_ms(route: str, q: float) -> str:
            if latency_hist is None or not latency_count.get((route,), 0.0):
                return "—"
            value = histogram_quantile(latency_hist, q, route=route)
            return f"{value * 1e3:.2f} ms"

        request_rows = []
        for route in sorted(requests_by_route):
            count = latency_count.get((route,), 0.0)
            mean_ms = (
                1e3 * latency_sum.get((route,), 0.0) / count if count else 0.0
            )
            request_rows.append(
                (
                    route,
                    int(requests_by_route[route]),
                    f"{mean_ms:.2f} ms",
                    quantile_ms(route, 0.50),
                    quantile_ms(route, 0.95),
                    quantile_ms(route, 0.99),
                )
            )
        slo_rows = []
        statuses = self._maybe_evaluate_slos(force=True)
        for status in statuses or []:
            slo_rows.append(
                (
                    status.slo.name,
                    status.state,
                    f"{status.burn_rates.get('page_short', 0.0):.2f}",
                    f"{status.burn_rates.get('page_long', 0.0):.2f}",
                    f"{100.0 * status.budget_remaining:.1f}%",
                    int(status.window_total),
                )
            )
        status_rows = [
            (key[0], int(value))
            for key, value in sorted(
                samples("powerplay_http_responses_total").items()
            )
        ]
        circuit_rows = [
            (key[0], _CIRCUIT_WORDS.get(int(value), str(value)))
            for key, value in sorted(samples("powerplay_circuit_state").items())
        ]
        cache_rows = [
            (key[0], int(value))
            for key, value in sorted(
                samples("powerplay_model_cache_total").items()
            )
        ]
        event_rows = [
            ("retries issued", int(sum(
                samples("powerplay_retries_total").values()))),
            ("circuit transitions", int(sum(
                samples("powerplay_circuit_transitions_total").values()))),
            ("faults injected", int(sum(
                samples("powerplay_faults_injected_total").values()))),
            ("stale models served", int(sum(
                samples("powerplay_stale_served_total").values()))),
            ("session saves", int(
                samples("powerplay_session_ops_total").get(("save",), 0))),
            ("sessions quarantined", int(
                samples("powerplay_session_ops_total").get(("quarantine",), 0))),
        ]
        health = self.health()
        store = self.models_registry.store
        registry_rows = [
            ("artifacts mirrored", len(store)),
            ("artifacts quarantined", len(store.quarantined)),
            ("versions pinned", len(store.pinned())),
        ]
        registry_rows += [
            (f"sync {key[0]}", int(value))
            for key, value in sorted(
                samples("powerplay_registry_sync_total").items()
            )
        ]
        resolution_rows = [
            (key[0], int(value))
            for key, value in sorted(
                samples("powerplay_registry_resolutions_total").items()
            )
        ]
        trace_rows = [
            (
                trace.name,
                trace.span_id,
                f"{trace.duration * 1e3:.2f} ms",
                sum(1 for _ in trace.walk()),
            )
            for trace in recent_traces()[-8:]
        ]
        job_rows = [
            (
                job.job_id,
                job.design_name,
                job.state,
                f"{job.done_points}/{job.total_points}",
            )
            for job in self.jobs.list_jobs()
        ]
        return Response(
            body=pages.status_page(
                self.server_name,
                self.uptime_seconds,
                len(self.users.known_users()),
                request_rows,
                status_rows,
                circuit_rows,
                cache_rows,
                event_rows,
                trace_rows,
                job_rows=job_rows,
                registry_rows=registry_rows,
                resolution_rows=resolution_rows,
                health=health["status"],
                slo_rows=slo_rows,
            )
        )

    def _trace_endpoint(self, data: Mapping[str, str]) -> Response:
        """``GET /trace`` — recent root traces, remote subtrees included.

        ``?fmt=json`` exports the span payloads (the same shape the
        ``X-PowerPlay-Span`` header carries), so a trace can be saved,
        diffed, or re-imported; the default is an HTML dashboard of
        rendered trees.
        """
        roots = recent_traces()
        if data.get("fmt") == "json":
            return Response.json(
                {
                    "server": self.server_name,
                    "tracing_enabled": is_enabled(),
                    "traces": [root.to_payload() for root in roots],
                }
            )
        rendered = [
            (
                root.name,
                root.trace_id,
                f"{root.duration * 1e3:.3f} ms",
                sum(1 for _ in root.walk()),
                sum(1 for node in root.walk() if node.remote),
                render_trace(root),
            )
            for root in reversed(roots)
        ]
        return Response(
            body=pages.trace_page(
                self.server_name, is_enabled(), rendered
            )
        )

    def _profile_endpoint(self, data: Mapping[str, str]) -> Response:
        """``GET /profile`` — the trace ring aggregated into a profile.

        Count / total / self / min / max per call path, a top-N
        hot-path table, and a text flamegraph; ``?fmt=json`` exports
        the same aggregation for tooling (the CI artifact shape).
        """
        profile = obs_profile.aggregate(recent_traces())
        top = 20
        if data.get("top", "").isdigit():
            top = max(1, min(200, int(data["top"])))
        if data.get("fmt") == "json":
            payload = obs_profile.profile_payload(profile, top=top)
            payload["server"] = self.server_name
            payload["tracing_enabled"] = is_enabled()
            return Response.json(payload)
        return Response(
            body=pages.profile_page(
                self.server_name,
                is_enabled(),
                profile.count,
                obs_profile.render_profile(profile, top=top),
                obs_profile.render_flamegraph(profile),
            )
        )

    # -- federated registry --------------------------------------------------

    @staticmethod
    def _json_error(status: int, message: str) -> Response:
        return Response(
            status=status,
            body=json.dumps({"error": message}, indent=1),
            content_type="application/json",
        )

    def health(self) -> dict:
        """The /healthz verdict: ok, degraded, or failing.

        *failing*: the mirror cannot persist artifacts, or every recent
        resolution through the chain failed outright.  *degraded*: the
        server is still answering, but from stale caches or mirrors, or
        it has quarantined corrupt state.  The verdict is exported as
        the ``powerplay_health_state`` gauge on every evaluation, so
        ``/metrics`` and ``/healthz`` can never disagree.
        """
        store = self.models_registry.store
        mirror_writable = store.writable()
        quarantined = len(store.quarantined) + len(self.users.quarantined)
        degraded_recent = failed_recent = resolved_recent = 0
        if self.model_resolver is not None:
            counts = self.model_resolver.health_counts()
            degraded_recent = counts.get("stale", 0) + counts.get("mirror", 0)
            failed_recent = counts.get("failed", 0)
            resolved_recent = sum(counts.values())
        slo_payload: Optional[Dict[str, object]] = None
        if self.slo_tracker is not None:
            statuses = self._maybe_evaluate_slos(force=True)
            if statuses is not None:
                slo_payload = SLOTracker.payload(statuses)
        if not mirror_writable or (
            resolved_recent and failed_recent == resolved_recent
        ):
            state = "failing"
        elif degraded_recent or failed_recent or quarantined:
            state = "degraded"
        elif slo_payload is not None and slo_payload["state"] == "page":
            # an SLO page is a *service* problem, not a storage one:
            # the node keeps taking traffic (200), but /healthz admits
            # the error budget is burning
            state = "degraded"
        else:
            state = "ok"
        code = HEALTH_STATES.index(state)
        self._health_gauge.set(code)
        payload: Dict[str, object] = {
            "status": state,
            "code": code,
            "server": self.server_name,
            "backend": self.state_backend.kind,
            "checks": {
                "mirror_writable": mirror_writable,
                "quarantined": quarantined,
                "resolutions_recent": resolved_recent,
                "resolutions_degraded": degraded_recent,
                "resolutions_failed": failed_recent,
                "artifacts_mirrored": len(store),
            },
        }
        if slo_payload is not None:
            payload["slo"] = slo_payload
        if self.worker_index is not None:
            payload["worker"] = {
                "index": self.worker_index,
                "count": self.worker_count,
            }
        return payload

    def _healthz(self) -> Response:
        """``GET /healthz`` — 200 for ok/degraded, 503 for failing.

        Degraded is deliberately 200: a server answering from mirrors
        is the design working, and load balancers must not drain it.
        """
        payload = self.health()
        status = 503 if payload["status"] == "failing" else 200
        return Response(
            status=status,
            body=json.dumps(payload, indent=1, sort_keys=True),
            content_type="application/json",
        )

    def flush(self) -> Dict[str, int]:
        """Persist everything volatile (the graceful-drain hook).

        Artifact and pin writes are already atomic at each operation;
        what can lag are loaded user sessions — and the journaled
        history rounds, which seal into a segment here so a graceful
        stop leaves no active journal behind.  Returns counts so the
        drain path can log what it flushed.
        """
        counts = {"sessions": self.users.flush()}
        if self.history is not None:
            counts["history_sealed"] = (
                1 if self.history.seal() is not None else 0
            )
        self.state_backend.flush()
        return counts

    def _registry_page(self) -> Response:
        catalog = self.models_registry.catalog()
        recent = (
            [report.to_payload() for report in self.model_resolver.recent()]
            if self.model_resolver is not None
            else []
        )
        return Response(
            body=pages.registry_page(
                self.server_name,
                self.health(),
                catalog,
                self.models_registry.store.quarantined,
                self.models_registry.store.pinned(),
                recent,
            )
        )

    def _api_registry_catalog(self) -> Response:
        """``GET /api/registry/catalog.json`` — the subscribe entry point."""
        rows = [
            row for row in self.models_registry.catalog()
            if not row.get("corrupt")
        ]
        return Response.json(
            {
                "format": "powerplay-registry-catalog/1",
                "server": self.server_name,
                "artifacts": rows,
            }
        )

    def _api_registry_artifact(self, data: Mapping[str, str]) -> Response:
        """``GET /api/registry/artifact?kind=&name=[&version=]``."""
        kind = data.get("kind", "entry")
        name = data.get("name", "")
        try:
            validate_kind(kind)
            validate_artifact_name(name)
        except RegistryError as exc:
            return self._json_error(400, str(exc))
        version: Optional[int] = None
        version_text = (data.get("version") or "").strip()
        if version_text:
            try:
                version = int(version_text)
            except ValueError:
                return self._json_error(
                    400, f"version must be an integer, got {version_text!r}"
                )
        try:
            artifact = self.models_registry.get_artifact(kind, name, version)
        except IntegrityError as exc:
            # quarantined on this read — gone until a re-sync restores it
            return self._json_error(404, f"artifact quarantined: {exc}")
        except RegistryError as exc:
            return self._json_error(404, str(exc))
        return Response.json_text(artifact.to_json())

    def _api_registry_publish(self, data: Mapping[str, str]) -> Response:
        """``POST /api/registry/publish`` — a peer pushes one artifact.

        The body is digest-verified before anything lands; a truncated
        or tampered push is rejected and counted, never mirrored.
        """
        text = data.get("artifact", "")
        if not text:
            return self._json_error(400, "missing 'artifact' form field")
        if len(text) > MAX_ARTIFACT_BYTES:
            return self._json_error(
                413,
                f"artifact is {len(text)} bytes "
                f"(limit {MAX_ARTIFACT_BYTES})",
            )
        try:
            artifact = ModelArtifact.from_json(text)
        except IntegrityError as exc:
            _metric_integrity().inc(event="rejected_push")
            return self._json_error(400, f"integrity check failed: {exc}")
        except RegistryError as exc:
            return self._json_error(400, str(exc))
        try:
            ingested = self.models_registry.ingest(artifact)
        except ArtifactConflict as exc:
            return self._json_error(409, str(exc))
        return Response.json(
            {
                "server": self.server_name,
                "ref": artifact.ref,
                "digest": artifact.digest,
                "ingested": ingested,
            }
        )

    def _api_registry_sync(self, data: Mapping[str, str]) -> Response:
        """``POST /api/registry/sync`` — subscribe to a peer, once.

        Mirrors everything the peer has that this server lacks and
        returns the per-artifact :class:`SyncReport`; a flapping peer
        yields a partial report, not an error.
        """
        peer = (data.get("peer") or "").strip()
        if not peer.startswith(("http://", "https://")):
            return self._json_error(400, "peer must be an http(s) URL")
        client = RegistrySyncClient(peer)
        try:
            report = sync_from(self.models_registry, client)
        except (RemoteError, CircuitOpenError, OSError) as exc:
            # the catalog itself was unreachable: nothing to iterate
            return self._json_error(
                502, f"cannot fetch catalog from {peer}: {exc}"
            )
        payload = report.to_payload()
        payload["server"] = self.server_name
        return Response.json(payload)

    # -- export / remote API -----------------------------------------------

    def _export_design(self, data: Mapping[str, str]) -> Response:
        user = self._user(data)
        session = self.users.session(user)
        design = session.design(data.get("name", ""))
        return Response.json_text(design_to_json(design))

    def _export_library(self, data: Mapping[str, str]) -> Response:
        wanted = data.get("library", self.libraries[0].name)
        for library in self.libraries:
            if library.name == wanted:
                return Response.json_text(library.to_json())
        raise WebError(f"no shared library named {wanted!r}")

    def _api_library(self, data: Mapping[str, str]) -> Response:
        merged = Library(
            f"{self.server_name}_shared",
            f"all shared models on {self.server_name}",
        )
        for library in self.libraries:
            merged.merge(library, prefer="theirs")
        return Response.json_text(merged.to_json())

    def _api_model(self, data: Mapping[str, str]) -> Response:
        name = data.get("name", "")
        entry = self.find_entry_anywhere(name)
        if entry.proprietary:
            raise WebError(f"model {name!r} is proprietary")
        return Response.json(entry.to_payload())

    def _agent_estimate(self, data: Mapping[str, str]) -> Response:
        """The Design Agent behind a hyperlink.

        "Models which require tool invocations are implemented through a
        dynamic design-flow manager called the Design Agent, which
        translates the hyperlink request for data into a sequence of
        appropriate tool invocations determined by the chosen design
        context."  GET /agent/estimate?user=..&name=<cell>&target=power
        &context=early&p:...=... returns the value and the invoked
        tool sequence.
        """
        from ..core.model import TemplatePowerModel
        from .agent import default_agent

        user = self._user(data)
        name = data.get("name", "")
        entry = self.find_entry(user, name)
        if not isinstance(entry.models.power, TemplatePowerModel):
            raise WebError(
                f"the agent's quick-estimate path needs a template model; "
                f"{name!r} is a {type(entry.models.power).__name__}"
            )
        target = data.get("target", "power")
        if target not in ("power", "energy_per_access", "switched_capacitance"):
            raise WebError(f"unknown agent target {target!r}")
        context = data.get("context", "early")
        values = self._param_values(data)
        defaults = {
            parameter.name: float(parameter.default)
            for parameter in entry.models.parameters
            if isinstance(parameter.default, (int, float))
        }
        defaults.update(values)
        operating_point = {
            "VDD": defaults.pop("VDD", 1.5),
            "f": defaults.pop("f", 2e6),
        }
        agent = default_agent(context)
        context_data = {
            "model": entry.models.power,
            "parameters": dict(defaults),
            "operating_point": operating_point,
        }
        context_data.update(defaults)
        value, invoked = agent.fulfill(target, context_data)
        return Response.json(
            {
                "model": name,
                "context": context,
                "target": target,
                "value": value,
                "invoked_tools": invoked,
                "operating_point": operating_point,
                "parameters": defaults,
            }
        )

    def _doc_cell(self, name: str, data: Mapping[str, str]) -> Response:
        try:
            entry = self.find_entry_anywhere(name)
        except WebError:
            user = data.get("user")
            if not user:
                raise
            entry = self.find_entry(user, name)
        return Response(body=pages.doc_page(entry))
